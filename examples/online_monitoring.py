"""Section IV-C3 in practice: keep raw samples only for anomalies.

Dumping every PEBS sample costs hundreds of MB/s per core.  This
example streams per-item estimates through the OnlineDiagnoser: a
steady warm workload builds the baseline, then a query that invalidates
the cache assumption (a never-before-seen n) arrives — only *its* raw
samples are kept, with everything else discarded.

Run:  python examples/online_monitoring.py
"""

from repro.core.online import OnlineDiagnoser
from repro.core.storage import encode_samples
from repro.session import trace
from repro.workloads import Query, SampleApp, SampleAppConfig


def main() -> None:
    # Steady traffic of n=3 / n=5 queries, one surprise n=8 near the end.
    ns = [3, 5, 3, 5, 3, 5, 3, 5, 3, 5, 3, 5, 3, 5, 3, 8, 3, 5]
    queries = tuple(Query(i + 1, n) for i, n in enumerate(ns))
    app = SampleApp(SampleAppConfig(queries=queries))
    session = trace(app, reset_value=8000)
    t = session.trace_for(SampleApp.WORKER_CORE)
    unit = session.units[SampleApp.WORKER_CORE]
    record_bytes = len(encode_samples(unit.finalize())) // max(1, unit.sample_count)

    diagnoser = OnlineDiagnoser(k_sigma=3.0, min_baseline=4)
    print(f"{'query':>6} {'n':>3} {'decision':>9}  trigger")
    for q in queries:
        samples_of_item = sum(
            est.n_samples for est in (
                t.estimate(q.qid, fn) for fn in t.functions()
            ) if est is not None
        )
        decision = diagnoser.observe_item(
            q.qid, t.breakdown(q.qid), raw_bytes=samples_of_item * record_bytes
        )
        verdict = "DUMP" if decision.dumped else "discard"
        print(f"{q.qid:>6} {q.n:>3} {verdict:>9}  {decision.trigger_fn or '-'}")

    kept = diagnoser.bytes_dumped
    total = kept + diagnoser.bytes_discarded
    print(
        f"\nKept {kept} of {total} raw-sample bytes "
        f"({diagnoser.reduction_factor:.1f}x storage reduction) while "
        "preserving full forensic detail for the anomalous query."
    )


if __name__ == "__main__":
    main()
