"""Quickstart: trace the sample application and diagnose its fluctuation.

Runs the paper's Fig 7 query app (two pinned threads, an in-memory
result cache) under the hybrid tracer — coarse instrumentation at
data-item switches plus simulated PEBS sampling — and prints the
per-query, per-function elapsed times of Fig 8, then the automatic
diagnosis: queries 1 and 5 are the cold-cache outliers and f3_compute
is where their extra time went.

Run:  python examples/quickstart.py
"""

import repro
from repro.workloads import SampleApp

US_PER_CYCLE = 1 / 3000.0  # 3 GHz machine


def main() -> None:
    app = SampleApp()
    session = repro.record(app, reset_value=8000)  # the paper's Fig 8 setting
    t = session.trace_for(SampleApp.WORKER_CORE)

    print("Per-query breakdown (microseconds):")
    print(f"{'query':>6} {'n':>3} {'f1':>7} {'f2':>7} {'f3':>7} {'total':>7}")
    for q in app.config.queries:
        bd = t.breakdown(q.qid)
        f1 = bd.get("f1_parse", 0) * US_PER_CYCLE
        f2 = bd.get("f2_cache_lookup", 0) * US_PER_CYCLE
        f3 = bd.get("f3_compute", 0) * US_PER_CYCLE
        total = t.item_window_cycles(q.qid) * US_PER_CYCLE
        print(f"{q.qid:>6} {q.n:>3} {f1:>7.2f} {f2:>7.2f} {f3:>7.2f} {total:>7.2f}")

    print("\nDiagnosis (items compared within same-n groups):")
    for verdict in repro.diagnose(t, group_of=app.group_of).outliers:
        print(" ", verdict.describe())

    unit = session.units[SampleApp.WORKER_CORE]
    print(
        f"\n{unit.sample_count} PEBS samples taken, "
        f"{session.tracer.calls} marking calls "
        f"(2 per data-item — the whole point of the hybrid approach)."
    )


if __name__ == "__main__":
    main()
