"""Scaling the ACL pipeline to several worker cores, traced end to end.

The Fig 5 architecture scales by adding pinned workers.  This example
builds RX -> {ACL-0, ACL-1} -> TX (round-robin dispatch over two SPSC
rings, an MPMC ring into TX), runs it saturated, and shows:

* throughput roughly doubles with the second worker;
* PEBS + marks run on *both* ACL cores simultaneously (Section III-D)
  and ``merge_traces`` combines them into one per-packet view in which
  the A > B > C classify-time ordering still holds.

Run:  python examples/scaling_pipeline.py
"""

from statistics import mean

from repro.acl.packets import make_test_stream
from repro.acl.rules import small_ruleset
from repro.acl.trie import MultiTrieClassifier, TrieCostModel
from repro.core.hybrid import integrate, merge_traces
from repro.core.instrument import MarkingTracer
from repro.core.symbols import AddressAllocator
from repro.machine.block import Block
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.pebs import PEBSConfig
from repro.runtime import (
    AppThread,
    Exec,
    IdleUntil,
    Mark,
    MPMCQueue,
    Pop,
    Push,
    Scheduler,
    SPSCQueue,
    SwitchKind,
)
from repro.units import ns_to_cycles

RULES = small_ruleset(8, 8)
CLASSIFIER = MultiTrieClassifier(RULES, max_rules_per_trie=1)  # 64 tries
COST = TrieCostModel()
GAP_NS = 1_500.0  # saturating arrival rate for one worker
PER_TYPE = 60


def build_pipeline(n_workers: int):
    alloc = AddressAllocator()
    rx_ip = alloc.add("rx_main_loop")
    classify_ip = alloc.add("rte_acl_classify")
    worker_ips = [alloc.add(f"acl_worker_{i}_loop") for i in range(n_workers)]
    tx_ip = alloc.add("tx_main_loop")
    mark_ip = alloc.add("__mark")
    symtab = alloc.table()

    packets = make_test_stream(PER_TYPE)
    gap = ns_to_cycles(GAP_NS, 3.0)
    rings = [SPSCQueue(f"ring_{i}", capacity=256) for i in range(n_workers)]
    ring_tx = MPMCQueue("ring_tx", capacity=512)
    done_ts = {}

    def rx_body():
        for i, pkt in enumerate(packets):
            yield IdleUntil((i + 1) * gap)
            yield Exec(Block(ip=rx_ip, uops=300))
            yield Push(rings[i % n_workers], pkt)
        for ring in rings:
            yield Push(ring, None)

    def worker_body(idx):
        def body():
            while True:
                pkt = yield Pop(rings[idx])
                if pkt is None:
                    yield Push(ring_tx, None)
                    return
                yield Mark(SwitchKind.ITEM_START, pkt.pkt_id)
                result = CLASSIFIER.classify(*pkt.key)
                uops, stalls = COST.chunk_cost(result.visits)
                yield Exec(
                    Block(ip=classify_ip, uops=uops, extra_cycles=stalls)
                )
                yield Mark(SwitchKind.ITEM_END, pkt.pkt_id)
                yield Push(ring_tx, pkt)

        return body

    def tx_body():
        eos = 0
        while eos < n_workers:
            pkt = yield Pop(ring_tx)
            if pkt is None:
                eos += 1
                continue
            out = yield Exec(Block(ip=tx_ip, uops=300))
            done_ts[pkt.pkt_id] = out.end

    threads = [AppThread("RX", 0, rx_body, rx_ip)]
    for i in range(n_workers):
        threads.append(AppThread(f"ACL{i}", 1 + i, worker_body(i), worker_ips[i]))
    threads.append(AppThread("TX", 1 + n_workers, tx_body, tx_ip))
    return threads, symtab, mark_ip, done_ts, packets


def run(n_workers: int):
    threads, symtab, mark_ip, done_ts, packets = build_pipeline(n_workers)
    machine = Machine(n_cores=2 + n_workers)
    units = {
        t.core_id: machine.attach_pebs(
            t.core_id, PEBSConfig(HWEvent.UOPS_RETIRED_ALL, 2000)
        )
        for t in threads
        if t.name.startswith("ACL")
    }
    tracer = MarkingTracer(mark_ip=mark_ip, cost_ns=200.0)
    Scheduler(machine, threads, tracer=tracer).run()
    makespan_us = max(done_ts.values()) / 3000.0
    traces = [
        integrate(unit.finalize(), tracer.records_for_core(core), symtab)
        for core, unit in units.items()
    ]
    return makespan_us, merge_traces(traces), packets


def main() -> None:
    span1, _, _ = run(1)
    span2, merged, packets = run(2)
    print(f"makespan, 1 worker: {span1:8.1f} us")
    print(f"makespan, 2 workers: {span2:8.1f} us  (speedup {span1 / span2:.2f}x)")

    by_type = {p.pkt_id: p.ptype for p in packets}
    print("\nmerged per-packet classify estimates (both ACL cores):")
    for ptype in "ABC":
        ests = [
            merged.elapsed_cycles(p, "rte_acl_classify") / 3000
            for p in merged.items()
            if by_type[p] == ptype
            and merged.elapsed_cycles(p, "rte_acl_classify") > 0
        ]
        print(f"  type {ptype}: {mean(ests):5.2f} us over {len(ests)} packets")


if __name__ == "__main__":
    main()
