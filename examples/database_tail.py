"""Diagnosing a database's tail latency — the paper's opening motivation.

Huang et al. measured TPC-C on production databases: the standard
deviation of query latency was ~2x the mean, and the 99th percentile an
order of magnitude above it.  This example reproduces that shape with
the thread-pool database workload (a real shared run queue and a real
LRU buffer pool), then uses the paper's hybrid tracer to answer the
question profiles cannot: *which queries* make up the tail, and *which
function* is responsible for each.

Run:  python examples/database_tail.py
"""

from repro.core.fluctuation import diagnose
from repro.core.hybrid import merge_traces
from repro.session import trace
from repro.core.fluctuation import UNATTRIBUTED
from repro.workloads import DBPoolApp, DBPoolConfig, QueryClass


def main() -> None:
    app = DBPoolApp(DBPoolConfig())
    print(
        f"running {app.config.n_queries} queries on {app.config.n_workers} "
        "workers (tracing every worker core) ..."
    )
    session = trace(app, sample_cores=app.worker_cores, reset_value=8000)
    merged = merge_traces([session.trace_for(c) for c in app.worker_cores])

    s = app.latency_summary()
    print("\nlatency statistics (paper quote: std ~ 2x mean, p99 ~ 10x mean):")
    print(f"  mean {s['mean_us']:8.1f} us")
    print(f"  std  {s['std_us']:8.1f} us   = {s['std_over_mean']:.2f}x mean")
    print(f"  p99  {s['p99_us']:8.1f} us   = {s['p99_over_mean']:.2f}x mean")
    for qc in QueryClass:
        lats = app.latencies_us(qc)
        print(f"  {qc.value:>8}: n={len(lats):4d}, mean {sum(lats)/len(lats):7.1f} us")

    rep = diagnose(merged, app.group_of, threshold=2.0)
    print(f"\n{len(rep.outliers)} within-class outliers; the worst five:")
    for o in rep.outliers[:5]:
        misses = app.page_misses[o.item_id]
        print(f"  {o.describe()}  [{misses} buffer-pool misses]")

    stallers = sum(
        1 for o in rep.outliers if o.culprit in (UNATTRIBUTED, "fetch_pages")
    )
    print(
        f"\n{stallers}/{len(rep.outliers)} outliers attribute their excess to "
        "the buffer-pool path — IO stalls retire almost no uops, so they "
        "appear as fetch_pages time or as unattributed window time (the "
        "stall signature under retirement-event sampling)."
    )


if __name__ == "__main__":
    main()
