"""Localize the paper's ACL-trie regression with `repro.diff`.

The Section IV-C1 case study, fully automated: classify the same packet
stream twice against the same rule set — once with vanilla DPDK's trie
build (at most 8 tries) and once with the modified build that bounds
rules per trie instead (many more tries) — then let the differential
engine say *which function* got slower and by how much per packet.

The expected verdict names ``rte_acl_classify`` — the trie walk — as the
top excess-time contributor, with a sample-density confidence attached.

Run:  python examples/acl_regression_diff.py
"""

import tempfile

import repro
from repro.acl.app import ACLApp, ACLAppConfig
from repro.acl.packets import make_test_stream
from repro.acl.rules import small_ruleset

RESET_VALUE = 500  # fine-grained sampling so per-function excess resolves


def record_run(max_rules_per_trie, out):
    rules = small_ruleset(8, 8)  # 64 rules
    pkts = make_test_stream(6)  # 18 packets, types A/B/C interleaved
    config = ACLAppConfig(max_rules_per_trie=max_rules_per_trie)
    app = ACLApp(rules, pkts, config=config)
    repro.record(
        app,
        out=out,
        reset_value=RESET_VALUE,
        groups={p.pkt_id: p.ptype for p in pkts},
    )
    return app.classifier.n_tries


def main() -> None:
    with tempfile.TemporaryDirectory() as d:
        base, regress = f"{d}/base.npz", f"{d}/regress.npz"
        n_base = record_run(None, base)  # vanilla: 64 rules / 8 tries
        n_regress = record_run(2, regress)  # modified: 2 rules per trie
        print(f"base build: {n_base} tries; regressed build: {n_regress} tries")

        report = repro.diff(base, regress)
        print(report.describe())

        top = report.top
        assert top.fn_name == "rte_acl_classify", top
        print(
            f"\nverdict: the regression lives in {top.fn_name} "
            f"(+{top.excess_per_item / 3000.0:.2f} us per packet, "
            f"confidence {top.confidence:.2f})"
        )


if __name__ == "__main__":
    main()
