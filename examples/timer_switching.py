"""Section V-A extension: tracing a timer-switching (NGINX-like) system.

Self-switching systems (DPDK, MariaDB) process one item to completion
per core, so two marks per item suffice.  Timer-switching systems
preempt items on a time slice; this example shows the paper's proposed
fix — park the data-item ID in a general-purpose register (r13) so every
PEBS sample carries it — and compares the recovered per-item times with
the ground truth, with **zero instrumentation** in the target.

Run:  python examples/timer_switching.py
"""

from repro.core.registertag import integrate_by_tag
from repro.core.symbols import AddressAllocator
from repro.machine.block import Block
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.pebs import PEBSConfig
from repro.runtime import AppThread, Exec, Scheduler, ULTRuntime, ULTask


def main() -> None:
    alloc = AddressAllocator()
    sched_ip = alloc.add("ult_scheduler")
    handler_ip = alloc.add("handle_request")
    symtab = alloc.table()

    # Four requests multiplexed on one core; request 1 is 4x heavier.
    def request_work(blocks: int):
        def body():
            for _ in range(blocks):
                yield Exec(Block(ip=handler_ip, uops=4000))

        return body

    work = {1: 40, 2: 10, 3: 10, 4: 10}
    runtime = ULTRuntime(
        [ULTask(rid, request_work(n)) for rid, n in work.items()],
        timeslice_cycles=3000,       # preempt every ~1 us
        switch_cost_cycles=150,
        scheduler_ip=sched_ip,
        mark_switches=False,         # NO instrumentation at all
        tag_items=True,              # item id lives in r13
    )

    machine = Machine(n_cores=1)
    unit = machine.attach_pebs(0, PEBSConfig(HWEvent.UOPS_RETIRED_ALL, 2000))
    Scheduler(machine, [AppThread("worker", 0, runtime.body, sched_ip)]).run()

    trace = integrate_by_tag(unit.finalize(), symtab)
    print(
        f"{runtime.preemptions} preemptions, {unit.sample_count} PEBS samples, "
        "0 marking calls.\n"
    )
    print("Recovered per-request handler time (relative to request 2):")
    base = trace.elapsed_cycles(2, "handle_request")
    for rid, blocks in work.items():
        est = trace.elapsed_cycles(rid, "handle_request")
        print(
            f"  request {rid}: {est / 3000:7.2f} us "
            f"(= {est / base:4.2f}x;  true work ratio {blocks / work[2]:.2f}x)"
        )
    unmapped = trace.unmapped_samples
    print(
        f"\n{unmapped} samples fell in the scheduler itself (tag cleared) "
        "and were left unattributed — the conservative choice."
    )


if __name__ == "__main__":
    main()
