"""Tracing your own application: the Fig 1 imaginary web server.

Shows the full API surface a downstream user touches to put a new
system under the tracer:

1. lay out a "binary" with AddressAllocator (symbols per function);
2. write thread bodies as generators yielding Exec / Push / Pop / Mark;
3. run under `trace()` and query the per-item results;
4. contrast the trace with the averaged profile built from the same run
   (the Fig 1 lesson: only the trace shows the fluctuation).

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.session import trace
from repro.core.profilelib import profile_from_trace
from repro.core.symbols import AddressAllocator
from repro.machine.block import timed_block
from repro.runtime import Exec, Mark, SwitchKind
from repro.runtime.thread import AppThread

US = 3000  # cycles per microsecond at 3 GHz


class TinyWebServer:
    """Three functions per request; function A is slow for request #1
    (think: a cold page cache) and fast afterwards."""

    def __init__(self, n_requests: int = 50, seed: int = 7) -> None:
        alloc = AddressAllocator()
        self.poll_ip = alloc.add("event_loop")
        self.fn_a = alloc.add("handle_io")      # "function A" of Fig 1
        self.fn_b = alloc.add("render_page")
        self.fn_c = alloc.add("write_log")
        self.mark_ip = alloc.add("__mark")
        self.symtab = alloc.table()
        self.n_requests = n_requests
        self.rng = np.random.default_rng(seed)

    def _worker(self):
        for req in range(1, self.n_requests + 1):
            yield Mark(SwitchKind.ITEM_START, req)
            a_cycles = 90 * US if req == 1 else 10 * US
            jitter = 1.0 + 0.05 * float(self.rng.standard_normal())
            yield Exec(timed_block(self.fn_a, int(a_cycles * jitter)))
            yield Exec(timed_block(self.fn_b, 2 * US))
            yield Exec(timed_block(self.fn_c, 1 * US))
            yield Mark(SwitchKind.ITEM_END, req)

    def threads(self):
        return [AppThread("worker", 0, self._worker, self.poll_ip)]


def main() -> None:
    app = TinyWebServer()
    session = trace(app, reset_value=2000)
    t = session.trace_for(0)

    print("Trace view (per request) — request #1 sticks out:")
    for req in (1, 2, 3):
        bd = {fn: cy / US for fn, cy in t.breakdown(req).items()}
        print(f"  request #{req}: " + ", ".join(f"{k}={v:.1f}us" for k, v in bd.items()))

    print("\nProfile view (whole run) — the same data, averaged:")
    for fn, cycles in sorted(profile_from_trace(t).items()):
        print(f"  {fn}: {cycles / US:.0f} us total")

    slow = t.elapsed_cycles(1, "handle_io") / US
    fast = t.elapsed_cycles(2, "handle_io") / US
    print(
        f"\nhandle_io: {slow:.1f} us for request #1 vs {fast:.1f} us for #2 "
        f"({slow / fast:.1f}x) — visible only in the trace."
    )


if __name__ == "__main__":
    main()
