"""Catching a noisy neighbour: per-item diagnosis of LLC contention.

Identical packets through the same code sometimes run 2-3x slower —
because a batch job on another core periodically floods the shared last-
level cache (the paper's Dobrescu et al. motivation).  A profile just
shows a slightly worse average; the per-data-item trace shows *which*
packets were hit and a PEBS trace on the LLC-miss event shows the
misses moving into the victim's table walk (Section V-D).

Run:  python examples/noisy_neighbor.py   (~30 s: real cache simulation)
"""

import statistics

from repro.core.hybrid import integrate
from repro.core.instrument import MarkingTracer
from repro.core.records import build_windows
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.pebs import PEBSConfig
from repro.runtime import Scheduler
from repro.workloads import ContentionApp, ContentionConfig

# Default duty cycle: the idle window must outlast the victim's re-warm
# sweep *including tracing overhead*, or a traced victim never re-warms
# (an observer effect worth knowing about: shorter idle values here tip
# the system into permanent thrash only when the miss tracer is on).
CFG = ContentionConfig(n_items=800)


def run(with_aggressor: bool):
    app = ContentionApp(CFG, with_aggressor=with_aggressor)
    machine = Machine(spec=app.machine_spec(), n_cores=2, with_caches=True)
    unit = machine.attach_pebs(
        ContentionApp.VICTIM_CORE, PEBSConfig(HWEvent.MEM_LOAD_RETIRED_L3_MISS, 8)
    )
    tracer = MarkingTracer(mark_ip=app.mark_ip, cost_ns=200.0)
    Scheduler(machine, app.threads(), tracer=tracer, lockstep=True).run()
    records = tracer.records_for_core(ContentionApp.VICTIM_CORE)
    windows = build_windows(records)[100:]  # skip the cold first sweep
    t = integrate(unit.finalize(), records, app.symtab)
    return windows, t


def main() -> None:
    print("running the victim alone ...")
    alone, _ = run(False)
    print("running with the noisy neighbour ...")
    contended, miss_trace = run(True)

    base = statistics.mean(w.duration for w in alone)
    slow = [w for w in contended if w.duration > 1.3 * base]
    mean_c = statistics.mean(w.duration for w in contended)
    print(f"\nmean item time alone:     {base / 3000:6.2f} us")
    print(
        f"mean item time contended: {mean_c / 3000:6.2f} us "
        f"({100 * (mean_c / base - 1):.0f}% slowdown)"
    )
    print(
        f"{len(slow)} of {len(contended)} identical items ran >1.3x slower "
        f"(worst {max(w.duration for w in contended) / base:.1f}x)"
    )

    # Per-item LLC-miss evidence for a hit item vs a clean one.
    victim_ids = {w.item_id for w in slow}
    clean_ids = [w.item_id for w in contended if w.item_id not in victim_ids]
    hit = max(slow, key=lambda w: w.duration).item_id
    est_hit = miss_trace.estimate(hit, "table_walk")
    clean_samples = [
        (miss_trace.estimate(i, "table_walk") or type("E", (), {"n_samples": 0})).n_samples
        for i in clean_ids[:50]
    ]
    print(
        f"\nitem {hit} (slow): {est_hit.n_samples if est_hit else 0} LLC-miss "
        f"samples in table_walk; clean items average "
        f"{statistics.mean(clean_samples):.2f} — the misses moved into the "
        "table walk exactly when the neighbour was bursting."
    )


if __name__ == "__main__":
    main()
