"""The paper's realistic case study: a DPDK-style ACL firewall.

Builds the Table III rule set (50 000 rules in 247 tries), pushes the
Table IV packet types through the RX -> ACL -> TX pipeline while the
hybrid tracer watches the ACL core, and reports:

* per-packet-type estimated elapsed time of rte_acl_classify (Fig 9);
* the externally measured latency from the GNET tester model;
* a reset value chosen for a 5% overhead budget (Section V-C workflow).

Run:  python examples/acl_firewall.py        (~15 s: builds 50k rules)
"""

from repro.session import trace
from repro.acl import ACLApp, make_test_stream, paper_ruleset
from repro.core.overhead import reset_value_for_budget
from statistics import mean, stdev


def main() -> None:
    print("Building the Table III rule set (50 000 rules) ...")
    rules = paper_ruleset()
    app = ACLApp(rules, make_test_stream(per_type=50))
    print(f"  -> {app.classifier.n_tries} tries, {app.classifier.n_nodes} trie nodes")

    print("Tracing the ACL thread (PEBS UOPS_RETIRED.ALL, R=16000) ...")
    session = trace(app, sample_cores=[ACLApp.ACL_CORE], reset_value=16_000)
    t = session.trace_for(ACLApp.ACL_CORE)

    print("\nEstimated rte_acl_classify time per packet type:")
    for ptype in "ABC":
        ests = [
            t.elapsed_cycles(p, "rte_acl_classify") / 3000
            for p in t.items()
            if app.group_of(p) == ptype
            and t.elapsed_cycles(p, "rte_acl_classify") > 0
        ]
        gnet = app.tester.mean_latency_us(ptype)
        print(
            f"  type {ptype}: estimate {mean(ests):6.2f} +/- {stdev(ests):.2f} us "
            f"(n={len(ests)});  GNET end-to-end latency {gnet:6.2f} us"
        )

    # Section V-C: choose R for an overhead budget from the event rate.
    core = session.machine.core(ACLApp.ACL_CORE)
    rate = core.uops_retired / core.clock
    r_5pct = reset_value_for_budget(rate, per_sample_cycles=750, budget_fraction=0.05)
    print(
        f"\nACL core retires {rate:.2f} uops/cycle; for a 5% overhead budget "
        f"choose reset value >= {r_5pct}."
    )


if __name__ == "__main__":
    main()
