"""repro — hybrid instrumentation + hardware-sampling fluctuation tracer.

A production-shaped reproduction of *"Diagnosing Performance Fluctuations
of High-throughput Software for Multi-core CPUs"* (Akiyama, Hirofuchi,
Takano; 2018) on a simulated multicore substrate.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

The supported import surface is the :mod:`repro.api` facade, re-exported
here::

    import repro

    repro.record("acl", out="run.npz")
    report = repro.diagnose("run.npz")
    delta = repro.diff("base.npz", "regressed.npz")
    print(delta.top)

Engine layers (:mod:`repro.machine`, :mod:`repro.runtime`,
:mod:`repro.core`, :mod:`repro.workloads` / :mod:`repro.acl`,
:mod:`repro.analysis`, :mod:`repro.obs`) remain importable by their full
module paths for custom assemblies; only the *package-level* re-exports
of ``repro.core`` and ``repro.machine`` are deprecated (they still work,
with a :class:`DeprecationWarning` naming the new spelling).
"""

from repro.api import (
    AnomalyConfig,
    IngestOptions,
    OverloadPolicy,
    diagnose,
    diff,
    explain,
    integrate,
    load,
    record,
    recover,
)
from repro.errors import ReproError

__version__ = "1.2.0"

__all__ = [
    "AnomalyConfig",
    "IngestOptions",
    "OverloadPolicy",
    "ReproError",
    "diagnose",
    "diff",
    "explain",
    "integrate",
    "load",
    "record",
    "recover",
    "__version__",
]

#: Pre-1.1 package-level exports, now behind a deprecation shim.
_DEPRECATED = {
    "trace": ("repro.session", "trace", "repro.record()"),
    "TraceSession": ("repro.session", "TraceSession", "repro.session.TraceSession"),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        import importlib
        import warnings

        module, attr, new = _DEPRECATED[name]
        warnings.warn(
            f"repro.{name} is deprecated; use {new} (or import it from "
            f"{module})",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__ + list(_DEPRECATED))
