"""repro — hybrid instrumentation + hardware-sampling fluctuation tracer.

A production-shaped reproduction of *"Diagnosing Performance Fluctuations
of High-throughput Software for Multi-core CPUs"* (Akiyama, Hirofuchi,
Takano; 2018) on a simulated multicore substrate.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import trace
    from repro.workloads import SampleApp

    app = SampleApp()
    session = trace(app, reset_value=8000)
    t = session.trace_for(SampleApp.WORKER_CORE)
    for qid in t.items():
        print(qid, t.breakdown(qid))

Layers (each fully public):

* :mod:`repro.machine`  — simulated cores, caches, PMU, PEBS, perf-style
  software sampling.
* :mod:`repro.runtime`  — pinned threads, SPSC queues, the DES scheduler,
  user-level threading.
* :mod:`repro.core`     — the paper's contribution: marking
  instrumentation, hybrid integration, diagnosis, baselines.
* :mod:`repro.workloads`, :mod:`repro.acl` — the evaluated applications.
* :mod:`repro.analysis` — experiment statistics and report rendering.
"""

from repro.errors import ReproError
from repro.session import TraceSession, trace

__version__ = "1.0.0"

__all__ = ["ReproError", "TraceSession", "trace", "__version__"]
