"""High-level one-call API: run an application under the hybrid tracer.

Workload objects in this package share a small convention: they expose
``threads()`` (pinned :class:`~repro.runtime.thread.AppThread` objects),
``symtab`` (their symbol table) and ``mark_ip`` (the address allocated for
the marking function).  :func:`trace` wires such an app to a machine,
attaches PEBS to the requested cores, runs it, and integrates the result —
the whole paper pipeline in one call.

For anything unusual (software samplers, multiple counters, custom
tracers) assemble the pieces manually; every layer is public.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.hybrid import HybridTrace, integrate
from repro.core.instrument import MarkingTracer
from repro.core.symbols import SymbolTable
from repro.errors import ConfigError
from repro.machine.config import SKYLAKE_LIKE, MachineSpec
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.pebs import PEBSConfig, PEBSUnit
from repro.obs.spans import span
from repro.runtime.scheduler import Scheduler
from repro.runtime.thread import AppThread


class TraceableApp(Protocol):
    """The workload convention :func:`trace` relies on."""

    symtab: SymbolTable
    mark_ip: int

    def threads(self) -> list[AppThread]:
        ...


@dataclass
class TraceSession:
    """Everything produced by one traced run."""

    machine: Machine
    tracer: MarkingTracer
    units: dict[int, PEBSUnit]
    traces: dict[int, HybridTrace]
    #: Symbol table of the traced app (set by :func:`trace`); lets the
    #: session persist itself without the workload object at hand.
    symtab: SymbolTable | None = None

    def trace_for(self, core_id: int) -> HybridTrace:
        """The integrated trace of one sampled core."""
        try:
            return self.traces[core_id]
        except KeyError:
            raise ConfigError(f"core {core_id} was not sampled")

    def save(
        self,
        path,
        meta: dict | None = None,
        *,
        chunk_size: int | None = None,
        compress: bool = True,
        checksums: bool = True,
    ) -> None:
        """Persist samples + switches to a trace container.

        ``chunk_size`` writes the chunked layout that
        :mod:`repro.core.streaming` ingests with bounded memory;
        ``checksums`` controls the version-3 per-chunk CRCs that let
        readers detect bit rot.
        """
        if self.symtab is None:
            raise ConfigError("session has no symbol table; use save_session()")
        from repro.core.tracefile import save_session

        save_session(
            path,
            self,
            self.symtab,
            meta=meta,
            chunk_size=chunk_size,
            compress=compress,
            checksums=checksums,
        )


def trace(
    app: TraceableApp,
    sample_cores: list[int] | None = None,
    reset_value: int = 8000,
    event: HWEvent = HWEvent.UOPS_RETIRED_ALL,
    spec: MachineSpec = SKYLAKE_LIKE,
    with_caches: bool = False,
    mark_cost_ns: float = 200.0,
    double_buffered: bool = False,
    lockstep: bool = False,
) -> TraceSession:
    """Run ``app`` with instrumentation + PEBS and integrate per core.

    ``sample_cores`` defaults to every core an app thread is pinned to
    (the paper enables PEBS on all relevant cores simultaneously).
    ``lockstep`` interleaves threads action-by-action in virtual time —
    required when threads interact through shared cache state.
    """
    threads = app.threads()
    if not threads:
        raise ConfigError("app has no threads")
    n_cores = max(t.core_id for t in threads) + 1
    machine = Machine(spec=spec, n_cores=n_cores, with_caches=with_caches)
    cores = sample_cores if sample_cores is not None else [t.core_id for t in threads]
    units = {
        c: machine.attach_pebs(
            c, PEBSConfig(event, reset_value, double_buffered=double_buffered)
        )
        for c in cores
    }
    tracer = MarkingTracer(
        mark_ip=app.mark_ip, cost_ns=mark_cost_ns, freq_ghz=spec.freq_ghz
    )
    with span("session.schedule", threads=len(threads), cores=n_cores):
        Scheduler(machine, threads, tracer=tracer, lockstep=lockstep).run()
    with span("session.integrate", cores=len(units)):
        traces = {
            c: integrate(unit.finalize(), tracer.records_for_core(c), app.symtab)
            for c, unit in units.items()
        }
    return TraceSession(
        machine=machine, tracer=tracer, units=units, traces=traces, symtab=app.symtab
    )
