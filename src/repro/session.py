"""High-level one-call API: run an application under the hybrid tracer.

Workload objects in this package share a small convention: they expose
``threads()`` (pinned :class:`~repro.runtime.thread.AppThread` objects),
``symtab`` (their symbol table) and ``mark_ip`` (the address allocated for
the marking function).  :func:`trace` wires such an app to a machine,
attaches PEBS to the requested cores, runs it, and integrates the result —
the whole paper pipeline in one call.

For anything unusual (software samplers, multiple counters, custom
tracers) assemble the pieces manually; every layer is public.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.hybrid import HybridTrace, integrate, integrate_degraded
from repro.core.instrument import MarkingTracer
from repro.core.symbols import SymbolTable
from repro.errors import ConfigError, SignalInterrupt, TraceWriteError
from repro.machine.config import SKYLAKE_LIKE, MachineSpec
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.overload import OverloadPolicy
from repro.machine.pebs import PEBSConfig, PEBSUnit
from repro.obs.anomaly import (
    KIND_IDLE_CORE,
    KIND_SHED_BURST,
    AnomalyConfig,
    AnomalyLog,
    IdleQueueChecker,
    ShedBurstChecker,
)
from repro.obs.instrumented import pipeline as _obs
from repro.obs.spans import span
from repro.runtime.scheduler import Scheduler
from repro.runtime.thread import AppThread


class TraceableApp(Protocol):
    """The workload convention :func:`trace` relies on."""

    symtab: SymbolTable
    mark_ip: int

    def threads(self) -> list[AppThread]:
        ...


def capture_meta_for_units(units: dict[int, PEBSUnit]) -> dict:
    """Degraded-capture accounting for a set of PEBS units, as trace meta.

    Empty when nothing was shed and R never moved, so clean captures keep
    clean metadata.  The ``capture.shed_spans`` entry is what lets
    diagnosis mark items overlapping a shed span as degraded instead of
    misattributing their missing samples as fast execution.
    """
    shed_spans = {
        str(c): [[int(lo), int(hi)] for lo, hi in u.shed_spans]
        for c, u in units.items()
        if u.shed_spans
    }
    r_history = {
        str(c): [[int(t), int(r)] for t, r in u.controller.history]
        for c, u in units.items()
        if u.controller is not None and u.controller.history
    }
    if not shed_spans and not r_history:
        return {}
    return {
        "capture": {
            "degraded": bool(shed_spans),
            "shed_samples": int(sum(u.shed_samples for u in units.values())),
            "shed_spans": shed_spans,
            "r_history": r_history,
        }
    }


class SessionWatchdog:
    """Periodic durable checkpoints + storage-failure degradation.

    Wraps the real tracer as the scheduler's ``InstrumentationHook``: the
    mark stream doubles as the watchdog's clock (no wall-clock timers in
    a virtual-time simulation), so every ``every_marks`` switch marks the
    accumulated sample/switch deltas are sealed into the recording
    journal.  A process killed between checkpoints loses at most one
    checkpoint interval — and :func:`repro.core.durable.recover` says
    exactly which spans.

    Storage failure mid-capture (ENOSPC on a checkpoint) **degrades**
    instead of dying: checkpointing is disabled, the error is kept in
    ``write_errors``, and capture continues in memory — samples may later
    be shed under overload, switch marks never are.
    """

    def __init__(
        self,
        tracer: MarkingTracer,
        writer,
        units: dict[int, PEBSUnit],
        every_marks: int = 256,
        ring=None,
    ) -> None:
        if every_marks < 1:
            raise ConfigError(f"every_marks must be >= 1, got {every_marks}")
        if writer is None and ring is None:
            raise ConfigError("watchdog needs a writer, a segment ring, or both")
        self.tracer = tracer
        self.writer = writer
        #: Optional :class:`~repro.core.durable.SegmentRing` receiving the
        #: same checkpoint deltas (flight-recorder mode; in-memory, so its
        #: appends cannot fail and do not degrade the session).
        self.ring = ring
        self.units = units
        self.every_marks = every_marks
        self._since = 0
        self._sample_idx: dict[int, int] = {c: 0 for c in units}
        self._switch_idx: dict[int, int] = {c: 0 for c in units}
        self._sample_seals: dict[int, int] = {}
        self._switch_seals: dict[int, int] = {}
        self.checkpoints = 0
        self.degraded = False
        self.write_errors: list[str] = []
        #: Optional :class:`~repro.obs.flightrec.FlightRecorder`; armed
        #: incidents seal right after each periodic checkpoint (the
        #: post-trigger roll — the triggering window has closed by then).
        self.flight = None

    # -- InstrumentationHook ---------------------------------------------
    def on_mark(self, thread, core, kind, item_id):
        out = self.tracer.on_mark(thread, core, kind, item_id)
        self._since += 1
        if not self.degraded and self._since >= self.every_marks:
            self._since = 0
            self.checkpoint()
            if self.flight is not None:
                self.flight.on_checkpoint()
        return out

    def on_fn_enter(self, thread, core, fn_ip):
        return self.tracer.on_fn_enter(thread, core, fn_ip)

    def on_fn_leave(self, thread, core, fn_ip):
        return self.tracer.on_fn_leave(thread, core, fn_ip)

    def _sealed_any(self, core: int) -> bool:
        return bool(self._sample_seals.get(core))

    # -- checkpointing ----------------------------------------------------
    def checkpoint(self, final: bool = False) -> bool:
        """Seal every core's delta since the last checkpoint.

        ``final`` additionally seals *empty* segments for cores that
        never produced data, so the recovered container declares the same
        core set a direct :func:`~repro.core.tracefile.save_session`
        would.  Returns True when the checkpoint was durably sealed;
        False when storage failed (the session is then degraded, not
        dead).
        """
        try:
            for c, unit in self.units.items():
                n = unit.sample_count
                if n > self._sample_idx[c] or (final and not self._sealed_any(c)):
                    delta = unit.snapshot_since(self._sample_idx[c])
                    if self.ring is not None:
                        self.ring.append_samples(c, delta)
                    if self.writer is not None:
                        self.writer.append_samples(c, delta)
                    self._sample_idx[c] = n
                    self._sample_seals[c] = self._sample_seals.get(c, 0) + 1
                    # Sealed samples are recorded (on disk, or retained by
                    # the flight ring); overload shedding must not touch
                    # them.
                    unit.checkpoint_barrier = n
                records = self.tracer.records_for_core(c)
                k = len(records)
                if k > self._switch_idx[c] or (
                    final and not self._switch_seals.get(c)
                ):
                    if self.ring is not None:
                        self.ring.append_switches(
                            c, records, start=self._switch_idx[c]
                        )
                    if self.writer is not None:
                        self.writer.append_switches(
                            c, records, start=self._switch_idx[c]
                        )
                    self._switch_idx[c] = k
                    self._switch_seals[c] = self._switch_seals.get(c, 0) + 1
            patch = capture_meta_for_units(self.units)
            if patch:
                if self.ring is not None:
                    self.ring.append_meta(patch)
                if self.writer is not None:
                    self.writer.append_meta(patch)
            self.checkpoints += 1
            _obs().checkpoints.inc()
            return True
        except TraceWriteError as exc:
            self.degraded = True
            self.write_errors.append(str(exc))
            return False


@dataclass
class TraceSession:
    """Everything produced by one traced run."""

    machine: Machine
    tracer: MarkingTracer
    units: dict[int, PEBSUnit]
    traces: dict[int, HybridTrace]
    #: Symbol table of the traced app (set by :func:`trace`); lets the
    #: session persist itself without the workload object at hand.
    symtab: SymbolTable | None = None
    #: Watchdog of a durable capture (None for plain in-memory runs).
    watchdog: SessionWatchdog | None = None
    #: finalize() report of a durable capture (None when not durable, or
    #: when finalize itself failed — see ``watchdog.write_errors``).
    recovery_report: object | None = None
    #: Signal number that cut the run short, or None for a full run.  An
    #: interrupted durable session is still finalized: everything traced
    #: up to the signal is in the container, marked ``interrupted`` in
    #: its meta.
    interrupted: int | None = None
    #: Invariant violations observed live (None unless the run enabled
    #: anomaly checking via ``trace(anomaly=...)``).
    anomalies: AnomalyLog | None = None
    #: Flight recorder of the run (None unless ``trace(flight_dir=...)``);
    #: ``flight.incidents`` lists the sealed incident bundles.
    flight: object | None = None
    #: Typed wait edges recorded by the scheduler (a
    #: :class:`~repro.runtime.waitedge.WaitEdgeLog`; None when the run
    #: opted out via ``trace(record_waits=False)``).  Saved into the
    #: container as an optional member — old readers simply ignore it.
    wait_log: object | None = None

    def capture_meta(self) -> dict:
        """Degraded-capture accounting (shed spans, R history) as meta."""
        return capture_meta_for_units(self.units)

    @property
    def degraded(self) -> bool:
        """True when capture shed samples or lost its durable storage."""
        if any(u.shed_samples for u in self.units.values()):
            return True
        return self.watchdog is not None and self.watchdog.degraded

    def trace_for(self, core_id: int) -> HybridTrace:
        """The integrated trace of one sampled core."""
        try:
            return self.traces[core_id]
        except KeyError:
            raise ConfigError(f"core {core_id} was not sampled")

    def save(
        self,
        path,
        meta: dict | None = None,
        *,
        chunk_size: int | None = None,
        compress: bool = True,
        checksums: bool = True,
    ) -> None:
        """Persist samples + switches to a trace container.

        ``chunk_size`` writes the chunked layout that
        :mod:`repro.core.streaming` ingests with bounded memory;
        ``checksums`` controls the version-3 per-chunk CRCs that let
        readers detect bit rot.
        """
        if self.symtab is None:
            raise ConfigError("session has no symbol table; use save_session()")
        from repro.core.tracefile import save_session

        merged = dict(meta or {})
        for key, value in self.capture_meta().items():
            merged.setdefault(key, value)
        save_session(
            path,
            self,
            self.symtab,
            meta=merged,
            chunk_size=chunk_size,
            compress=compress,
            checksums=checksums,
        )


def trace(
    app: TraceableApp,
    sample_cores: list[int] | None = None,
    reset_value: int = 8000,
    event: HWEvent = HWEvent.UOPS_RETIRED_ALL,
    spec: MachineSpec = SKYLAKE_LIKE,
    with_caches: bool = False,
    mark_cost_ns: float = 200.0,
    double_buffered: bool = False,
    lockstep: bool = False,
    overload: OverloadPolicy | None = None,
    durable_out=None,
    checkpoint_every_marks: int = 256,
    durable_meta: dict | None = None,
    anomaly: AnomalyConfig | None = None,
    flight_dir=None,
    flight_capacity: int = 16,
    record_waits: bool = True,
) -> TraceSession:
    """Run ``app`` with instrumentation + PEBS and integrate per core.

    ``sample_cores`` defaults to every core an app thread is pinned to
    (the paper enables PEBS on all relevant cores simultaneously).
    ``lockstep`` interleaves threads action-by-action in virtual time —
    required when threads interact through shared cache state.

    ``overload`` opts into overload-graceful capture (shed samples under
    sustained PEBS overflow instead of stalling, adaptive reset-value
    backoff).  ``durable_out`` records through a journaled
    :class:`~repro.core.durable.DurableTraceWriter` at that path: a
    :class:`SessionWatchdog` checkpoints every ``checkpoint_every_marks``
    switch marks, so a kill at any instant leaves a journal that
    ``repro recover`` turns into a valid container.  Storage failures
    mid-run degrade the session (``session.degraded``) instead of
    raising.

    ``record_waits`` (on by default) has the scheduler log one typed
    :class:`~repro.runtime.waitedge.WaitEdge` per blocking spin — the
    raw material of blocked-by-chain diagnosis (`repro diagnose --why`).
    The log rides into saved containers as an optional member; turn it
    off only to measure its (sub-budget) overhead.

    ``anomaly`` (an enabled :class:`~repro.obs.anomaly.AnomalyConfig`)
    turns on the online invariant checkers for the run: queue waits feed
    the idle-core checker, PEBS shed spans feed the shed-burst checker,
    and violations land in ``session.anomalies``.  ``flight_dir``
    additionally arms the flight recorder: checkpoints stream into a
    bounded in-memory :class:`~repro.core.durable.SegmentRing` of
    ``flight_capacity`` segments, and any anomaly at or above
    ``anomaly.trigger_severity`` seals the ring into a tagged incident
    bundle under ``flight_dir`` (see ``session.flight.incidents``).
    """
    threads = app.threads()
    if not threads:
        raise ConfigError("app has no threads")
    n_cores = max(t.core_id for t in threads) + 1
    machine = Machine(spec=spec, n_cores=n_cores, with_caches=with_caches)
    cores = sample_cores if sample_cores is not None else [t.core_id for t in threads]
    units = {
        c: machine.attach_pebs(
            c,
            PEBSConfig(event, reset_value, double_buffered=double_buffered),
            overload=overload,
        )
        for c in cores
    }
    tracer = MarkingTracer(
        mark_ip=app.mark_ip, cost_ns=mark_cost_ns, freq_ghz=spec.freq_ghz
    )
    # -- online invariant checking (off by default, zero-cost when off) --
    acfg = anomaly if anomaly is not None else AnomalyConfig()
    anomaly_log: AnomalyLog | None = None
    idle_checker: IdleQueueChecker | None = None
    if acfg.enabled:
        anomaly_log = AnomalyLog(acfg.log_capacity)
        if acfg.wants(KIND_IDLE_CORE):
            idle_checker = IdleQueueChecker(anomaly_log, acfg)
        if acfg.wants(KIND_SHED_BURST):
            shed_checker = ShedBurstChecker(anomaly_log, acfg)
            for c, unit in units.items():
                unit.shed_listener = (
                    lambda lo, hi, n, _c=c: shed_checker.on_shed(_c, lo, hi, n)
                )
    flight = None
    ring = None
    if flight_dir is not None:
        from repro.core.durable import SegmentRing
        from repro.obs.flightrec import FlightRecorder

        ring = SegmentRing(app.symtab, durable_meta, capacity=flight_capacity)
        flight = FlightRecorder(
            ring, flight_dir, trigger_severity=acfg.trigger_severity
        )
        if anomaly_log is not None:
            flight.attach(anomaly_log)
    watchdog: SessionWatchdog | None = None
    hook = tracer
    if durable_out is not None or ring is not None:
        writer = None
        if durable_out is not None:
            from repro.core.durable import DurableTraceWriter

            writer = DurableTraceWriter(durable_out, app.symtab, durable_meta)
        watchdog = SessionWatchdog(
            tracer, writer, units, every_marks=checkpoint_every_marks, ring=ring
        )
        hook = watchdog
        if flight is not None:
            # Seal-on-anomaly must see everything up to the event, not
            # just up to the last periodic checkpoint — final=True also
            # declares cores that have produced nothing yet, so the
            # incident bundle carries the session's full core set.
            wd = watchdog
            flight.flush = lambda: wd.checkpoint(final=True)
            watchdog.flight = flight
    wait_log = None
    if record_waits:
        from repro.runtime.waitedge import WaitEdgeLog

        wait_log = WaitEdgeLog()
    interrupted: int | None = None
    try:
        with span("session.schedule", threads=len(threads), cores=n_cores):
            Scheduler(
                machine,
                threads,
                tracer=hook,
                lockstep=lockstep,
                wait_probe=idle_checker,
                wait_log=wait_log,
            ).run()
    except (SignalInterrupt, KeyboardInterrupt) as exc:
        if watchdog is None:
            # Nothing durable to save: let the signal unwind normally.
            raise
        # Graceful interrupt of a durable capture: stop tracing here,
        # seal and finalize what exists.  The partial run is a valid
        # container, marked interrupted in its meta.
        interrupted = int(getattr(exc, "signum", 0)) or None
    if flight is not None:
        # An incident armed after the last periodic checkpoint seals at
        # end-of-run (its flush checkpoints the tail first).
        flight.on_checkpoint()
    recovery_report = None
    if watchdog is not None and not watchdog.degraded:
        # Seal the tail and finalize: the journal becomes the container.
        if watchdog.checkpoint(final=True) and watchdog.writer is not None:
            extra = capture_meta_for_units(units)
            if interrupted is not None:
                extra = dict(extra)
                extra["interrupted"] = {"signum": interrupted}
            if anomaly_log is not None and anomaly_log.total:
                extra = dict(extra)
                extra["anomalies"] = anomaly_log.summary()
            try:
                recovery_report = watchdog.writer.finalize(extra_meta=extra)
            except TraceWriteError as exc:
                watchdog.degraded = True
                watchdog.write_errors.append(str(exc))
    with span("session.integrate", cores=len(units)):
        if interrupted is None:
            traces = {
                c: integrate(unit.finalize(), tracer.records_for_core(c), app.symtab)
                for c, unit in units.items()
            }
        else:
            # The signal cut items mid-window (dangling STARTs): pair
            # what genuinely paired, count the cut marks as degraded.
            traces = {}
            for c, unit in units.items():
                tr, _coverage = integrate_degraded(
                    unit.finalize(), tracer.records_for_core(c), app.symtab
                )
                traces[c] = tr
    return TraceSession(
        machine=machine,
        tracer=tracer,
        units=units,
        traces=traces,
        symtab=app.symtab,
        watchdog=watchdog,
        recovery_report=recovery_report,
        interrupted=interrupted,
        anomalies=anomaly_log,
        flight=flight,
        wait_log=wait_log,
    )
