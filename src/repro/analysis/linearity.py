"""Reset-value <-> sample-interval linearity (paper Section V-C).

The paper verifies that for the ACL workload the achieved sample interval
"has a strong linearity with the reset values and the deviations are very
small", making the interval predictable from R.  This module fits and
scores that relation so the extension bench can report slope, intercept
and R².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class LinearFit:
    """interval ~ slope * reset_value + intercept."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, reset_value: float) -> float:
        return self.slope * reset_value + self.intercept


def fit_interval_linearity(
    reset_values: np.ndarray, intervals_cycles: np.ndarray
) -> LinearFit:
    """Least-squares fit of achieved interval against reset value."""
    x = np.asarray(reset_values, dtype=np.float64)
    y = np.asarray(intervals_cycles, dtype=np.float64)
    if x.shape != y.shape or x.shape[0] < 2:
        raise ConfigError("need >= 2 (reset value, interval) pairs of equal length")
    slope, intercept = np.polyfit(x, y, deg=1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r2)
