"""Waiting-dependency graphs: why a slow item's core was *not* running.

Per-function latency attribution (:mod:`repro.analysis.diagnose`) names
the code that ran; this module names the code that made a core wait.
Following DepGraph (arxiv 2103.04933), each recorded
:class:`~repro.runtime.waitedge.WaitColumns` edge is one arc of a
waiting-dependency graph — waiter core → queue/lock → blocking core and
the function it was executing — and the diagnosis question "why is item
N slow?" becomes a heaviest-path query over the arcs that overlap item
N's residency window.

The answer is a ``blocked_by`` chain of :class:`WaitHop` entries::

    core 1 waited 65,430 cy on lock:shared [lock] <- core 0 in locked_update
    core 0 waited 12,800 cy on pipe [queue-full] <- core 2 in slow_drain

Hop 0 is the waiter's own heaviest wait inside the window; each further
hop recurses into the blocking core's waits over the same span, so a
convoy (A waits on B, B waits on C) is followed to its true upstream
cause.  Weights are wait cycles *clipped to the window*, so an edge
half inside the window contributes only its overlapping part.

Containers without the optional wait member yield empty chains — never
an error — which keeps every diagnosis path valid on v1/v2 containers
and on journal-recovered ones.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.records import WindowColumns
from repro.runtime.waitedge import WaitColumns, kind_name

#: Chains stop after this many hops even if the graph goes deeper — a
#: wait cycle among cores (A on B on A) would otherwise never terminate.
MAX_CHAIN_DEPTH = 4


@dataclass(frozen=True)
class WaitHop:
    """One hop of a blocked-by chain: who waited, on what, behind whom."""

    waiter_core: int
    #: Blocker kind name: lock | queue-full | queue-empty | producer.
    kind: str
    #: Name of the queue (or lock token queue) waited on.
    queue: str
    #: Core of the blocking side (-1 when never observed).
    blocker_core: int
    #: Symbolised function the blocker last executed ("?" when unknown).
    blocker_fn: str
    #: Wait cycles inside the queried window (clipped overlap).
    wait_cycles: int
    #: Number of wait edges merged into this hop.
    n_edges: int

    def to_dict(self) -> dict:
        return {
            "waiter_core": self.waiter_core,
            "kind": self.kind,
            "queue": self.queue,
            "blocker_core": self.blocker_core,
            "blocker_fn": self.blocker_fn,
            "wait_cycles": self.wait_cycles,
            "n_edges": self.n_edges,
        }

    def describe(self) -> str:
        blocker = (
            f"core {self.blocker_core} in {self.blocker_fn}"
            if self.blocker_core >= 0
            else "unknown blocker"
        )
        return (
            f"core {self.waiter_core} waited {self.wait_cycles:,} cy on "
            f"{self.queue} [{self.kind}] <- {blocker}"
        )


def _symbolize(symtab, ip: int) -> str:
    if ip == 0 or symtab is None:
        return "?"
    try:
        name = symtab.lookup(int(ip))
    except Exception:
        return "?"
    return str(name) if name is not None else "?"


def _overlap_slice(w: WaitColumns, t0: int, t1: int):
    """(index array, clipped cycles) of edges overlapping [t0, t1).

    Per-core edges are recorded in that core's virtual-time order, so
    both ``ts`` and ``ts + cycles`` ascend and the overlapping run is
    contiguous — two binary searches, no scan.
    """
    if len(w) == 0 or t1 <= t0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ends = w.ts + w.cycles
    lo = int(np.searchsorted(ends, t0, side="right"))
    hi = int(np.searchsorted(w.ts, t1, side="left"))
    if hi <= lo:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    idx = np.arange(lo, hi, dtype=np.int64)
    clipped = np.minimum(ends[lo:hi], t1) - np.maximum(w.ts[lo:hi], t0)
    keep = clipped > 0
    return idx[keep], clipped[keep].astype(np.int64)


def heaviest_wait(
    w: WaitColumns, t0: int, t1: int, symtab=None
) -> WaitHop | None:
    """The dominant wait group of one core inside [t0, t1), or None.

    Edges are grouped by (kind, queue, blocker core, blocker function)
    and the group with the most clipped wait cycles wins — one noisy
    short spin cannot outvote a sustained convoy.
    """
    idx, clipped = _overlap_slice(w, t0, t1)
    if idx.shape[0] == 0:
        return None
    groups: dict[tuple, list[int]] = {}
    for pos, cyc in zip(idx.tolist(), clipped.tolist()):
        key = (
            int(w.kind[pos]),
            int(w.queue[pos]),
            int(w.blocker_core[pos]),
            int(w.blocker_ip[pos]),
        )
        acc = groups.setdefault(key, [0, 0])
        acc[0] += int(cyc)
        acc[1] += 1
    (kind, qidx, b_core, b_ip), (cycles, n) = max(
        groups.items(), key=lambda kv: (kv[1][0], -kv[0][0])
    )
    queue = (
        w.queue_names[qidx] if 0 <= qidx < len(w.queue_names) else f"queue#{qidx}"
    )
    waiter_core = -1  # filled by the caller, who knows which core w is
    return WaitHop(
        waiter_core=waiter_core,
        kind=kind_name(kind),
        queue=queue,
        blocker_core=b_core,
        blocker_fn=_symbolize(symtab, b_ip),
        wait_cycles=int(cycles),
        n_edges=int(n),
    )


def blocked_by_chain(
    waits_by_core: dict[int, WaitColumns],
    core: int,
    t0: int,
    t1: int,
    *,
    symtab=None,
    max_depth: int = MAX_CHAIN_DEPTH,
) -> tuple[WaitHop, ...]:
    """Critical-wait-path extraction for one window of one core.

    Hop 0 is ``core``'s heaviest wait group inside [t0, t1); subsequent
    hops follow the blocking core's own heaviest wait over the same
    span (the convoy's upstream).  The walk stops at ``max_depth``, at a
    core with no recorded waits in the span, or when it would revisit a
    core (a wait cycle).
    """
    chain: list[WaitHop] = []
    visited: set[int] = set()
    current = core
    for _ in range(max_depth):
        if current in visited:
            break
        visited.add(current)
        w = waits_by_core.get(current)
        if w is None or len(w) == 0:
            break
        hop = heaviest_wait(w, t0, t1, symtab)
        if hop is None:
            break
        chain.append(dataclasses.replace(hop, waiter_core=current))
        if hop.blocker_core < 0 or hop.blocker_core == current:
            break
        current = hop.blocker_core
    return tuple(chain)


def item_wait_cycles(
    w: WaitColumns, windows: WindowColumns
) -> tuple[np.ndarray, np.ndarray]:
    """Per-item wait totals on one core: (item ids asc, clipped cycles).

    The contention-vs-code split in :mod:`repro.analysis.differential`
    compares the median of these totals between two runs against the
    growth of total residency: a regression whose growth is wait-borne
    is contention, the rest is code.
    """
    if len(windows) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    order = np.argsort(windows.item_id, kind="stable")
    uniq, start = np.unique(windows.item_id[order], return_index=True)
    totals = np.zeros(uniq.shape[0], dtype=np.int64)
    if len(w):
        slot = np.searchsorted(uniq, windows.item_id)
        for row in range(len(windows)):
            _idx, clipped = _overlap_slice(
                w, int(windows.t_start[row]), int(windows.t_end[row])
            )
            if clipped.shape[0]:
                totals[slot[row]] += int(clipped.sum())
    return uniq.astype(np.int64), totals


def window_of_item(windows: WindowColumns, item_id: int) -> tuple[int, int] | None:
    """[t_start, t_end) hull of one item's windows, or None if absent."""
    mask = windows.item_id == item_id
    if not np.any(mask):
        return None
    return int(windows.t_start[mask].min()), int(windows.t_end[mask].max())


def describe_chain(chain: tuple[WaitHop, ...]) -> str:
    """Multi-line rendering of a blocked-by chain (CLI `--why` output)."""
    if not chain:
        return "no recorded waits inside this item's window"
    lines = []
    for depth, hop in enumerate(chain):
        lines.append("  " * depth + ("blocked by: " if depth else "waited:    ") + hop.describe())
    return "\n".join(lines)


__all__ = [
    "MAX_CHAIN_DEPTH",
    "WaitHop",
    "heaviest_wait",
    "blocked_by_chain",
    "item_wait_cycles",
    "window_of_item",
    "describe_chain",
]
