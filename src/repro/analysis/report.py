"""Versioned report envelopes: one shape for every machine-readable output.

Every ``--json`` surface of the CLI (`diagnose`, `diff`, `runs`,
`fleet`, `verify-attribution`) used to emit an ad-hoc top-level shape
with nothing identifying *which* schema or *which* tool version wrote
it — so consumers had to sniff keys, and a field change was silently
breaking.  The envelope fixes both with three reserved top-level keys
added to (never wrapped around) each payload::

    {
      "schema_version": 1,          # bumped on breaking shape changes
      "schema": "diagnosis",        # which payload this is
      "generated_by": "repro 1.2.0",
      ... the payload's own keys, unchanged ...
    }

Adding keys preserves every existing consumer that reads payloads by
top-level key; the snapshot tests in
``tests/integration/test_json_schemas.py`` pin each schema's key set so
future changes are deliberate, not accidental.
"""

from __future__ import annotations

import json

#: Version of every envelope this build writes.  Bump ONLY on breaking
#: changes to a payload shape (key removal/rename/retyping); additive
#: keys do not bump it.
SCHEMA_VERSION = 1

#: Known schema kinds (the ``schema`` envelope key).
SCHEMAS = (
    "diagnosis",
    "diff",
    "runs",
    "fleet",
    "attribution",
    "explain",
    "sync",
    "retire",
)


def generated_by() -> str:
    """The ``generated_by`` stamp: package name + version."""
    from repro import __version__

    return f"repro {__version__}"


def envelope(payload: dict, *, kind: str) -> dict:
    """Return ``payload`` with the envelope keys prepended.

    The payload's own keys win on (unexpected) collision, so an envelope
    can never corrupt data; the reserved keys come first purely for
    human readability of the serialized form.
    """
    out = {
        "schema_version": SCHEMA_VERSION,
        "schema": kind,
        "generated_by": generated_by(),
    }
    out.update(payload)
    return out


def render_json(payload: dict, *, kind: str) -> str:
    """Serialize an enveloped payload the way every CLI verb does."""
    return json.dumps(envelope(payload, kind=kind), indent=2)


__all__ = ["SCHEMA_VERSION", "SCHEMAS", "generated_by", "envelope", "render_json"]
