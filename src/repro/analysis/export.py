"""Exporting traces to standard viewer formats.

* :func:`to_chrome_trace` — the Chrome trace-event JSON format, loadable
  in ``chrome://tracing`` / Perfetto: one row per core, a complete ("X")
  event per data-item window, nested events for per-function estimates,
  and instant events for the raw PEBS samples.  This is the interactive
  counterpart of the paper's Fig 8 stacked bars.
* :func:`to_csv` — flat per-(item, function) rows for spreadsheet
  analysis.

Cycle timestamps are converted to microseconds (the trace-event unit).
"""

from __future__ import annotations

import json
import pathlib

from repro.core.hybrid import HybridTrace
from repro.core.records import SwitchRecords, build_windows
from repro.errors import TraceError
from repro.machine.pebs import SampleArrays


def chrome_doc(events: list[dict]) -> dict:
    """Wrap trace events in the envelope every exporter here shares.

    Both the workload exporter below and the self-telemetry span
    exporter (:mod:`repro.obs.spans`) emit into this same structure, so
    a workload trace and the tracer's own spans open identically in
    Perfetto / ``chrome://tracing``.
    """
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def thread_name_event(pid: int, tid: int, name: str) -> dict:
    """The metadata event that names one row of the trace viewer."""
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def to_chrome_trace(
    traces_by_core: dict[int, HybridTrace],
    samples_by_core: dict[int, SampleArrays] | None = None,
    freq_ghz: float = 3.0,
    min_samples: int = 2,
) -> dict:
    """Build a trace-event JSON object from per-core hybrid traces.

    Items become complete events on the core's row; each function
    estimate becomes a nested complete event (its first-to-last sample
    span); raw samples (optional) become instant events named by their
    resolved function.
    """
    if not traces_by_core:
        raise TraceError("need at least one core's trace")

    def cyc_to_us(c: int) -> float:
        # cycles -> microseconds at freq_ghz GHz (1000 cycles/us per GHz).
        return c / (freq_ghz * 1_000.0)

    events: list[dict] = []
    for core, trace in sorted(traces_by_core.items()):
        events.append(thread_name_event(1, core, f"core {core}"))
        for w in trace.windows:
            events.append(
                {
                    "name": f"item {w.item_id}",
                    "cat": "item",
                    "ph": "X",
                    "pid": 1,
                    "tid": core,
                    "ts": cyc_to_us(w.t_start),
                    "dur": cyc_to_us(w.duration),
                    "args": {"item_id": w.item_id},
                }
            )
        for est in trace.rows(min_samples=min_samples):
            if est.elapsed_cycles <= 0:
                continue
            events.append(
                {
                    "name": est.fn_name,
                    "cat": "function",
                    "ph": "X",
                    "pid": 1,
                    "tid": core,
                    "ts": cyc_to_us(est.t_first),
                    "dur": cyc_to_us(est.elapsed_cycles),
                    "args": {
                        "item_id": est.item_id,
                        "n_samples": est.n_samples,
                    },
                }
            )
        if samples_by_core and core in samples_by_core:
            s = samples_by_core[core]
            fidx = trace.symtab.lookup_many(s.ip)
            names = trace.symtab.names
            for ts, fi in zip(s.ts, fidx):
                events.append(
                    {
                        "name": names[int(fi)] if fi >= 0 else "<unknown>",
                        "cat": "sample",
                        "ph": "i",
                        "s": "t",
                        "pid": 1,
                        "tid": core,
                        "ts": cyc_to_us(int(ts)),
                    }
                )
    return chrome_doc(events)


def write_chrome_trace(
    path: str | pathlib.Path,
    traces_by_core: dict[int, HybridTrace],
    samples_by_core: dict[int, SampleArrays] | None = None,
    freq_ghz: float = 3.0,
) -> None:
    """Serialise :func:`to_chrome_trace` to a file."""
    doc = to_chrome_trace(traces_by_core, samples_by_core, freq_ghz)
    pathlib.Path(path).write_text(json.dumps(doc))


def to_csv(trace: HybridTrace, freq_ghz: float = 3.0, min_samples: int = 2) -> str:
    """Flat CSV: item_id, function, samples, elapsed_us, window_us."""
    lines = ["item_id,function,n_samples,elapsed_us,window_us"]
    for est in trace.rows(min_samples=min_samples):
        window = trace.item_window_cycles(est.item_id)
        lines.append(
            f"{est.item_id},{est.fn_name},{est.n_samples},"
            f"{est.elapsed_cycles / freq_ghz / 1000:.3f},"
            f"{window / freq_ghz / 1000:.3f}"
        )
    return "\n".join(lines) + "\n"
