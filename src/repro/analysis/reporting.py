"""Plain-text rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
show; these helpers keep that output aligned and consistent without any
plotting dependency.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width table with a header rule, ready for printing."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)


def format_ingest_report(
    stats, diag_summary: dict | None = None, coverage: dict | None = None
) -> str:
    """Render one streaming-ingest run's throughput (and online policy).

    ``stats`` is an :class:`~repro.core.streaming.IngestStats`;
    ``diag_summary`` the dict from ``OnlineDiagnoser.summary()`` when an
    online estimator rode along with the ingest; ``coverage`` the
    per-core :class:`~repro.core.integrity.CoverageStats` of a lenient
    run — cores whose data survived incomplete get a coverage row so a
    degraded report is never mistaken for a clean one.
    """
    rows = [
        ["cores", ", ".join(str(c) for c in stats.cores)],
        ["workers", f"{stats.workers} ({stats.pool})"],
        ["chunk size (samples)", stats.chunk_size or "(whole shard)"],
        ["chunks", stats.chunks],
        ["samples", stats.samples],
        ["wall time (s)", f"{stats.wall_s:.3f}"],
        ["throughput (MB/s)", f"{stats.mb_per_s:.1f}"],
        ["throughput (samples/s)", f"{stats.samples_per_s:,.0f}"],
    ]
    if stats.failed_cores:
        rows.append(
            ["FAILED cores", ", ".join(str(c) for c in stats.failed_cores)]
        )
    if coverage is not None:
        for core in sorted(coverage):
            cov = coverage[core]
            if cov.complete:
                continue
            detail = (
                "shard failed"
                if cov.shard_failed
                else f"samples {cov.sample_coverage:.1%}, "
                f"windows {cov.window_coverage:.1%}"
                + (
                    f", degraded items: "
                    + ", ".join(str(i) for i in cov.degraded_items)
                    if cov.degraded_items
                    else ""
                )
                + (", extent unknown" if cov.unknown_extent else "")
            )
            rows.append([f"core {core} coverage", detail])
    if diag_summary is not None:
        rows.append(["items observed online", diag_summary["items_observed"]])
        rows.append(["items dumped", diag_summary["items_dumped"]])
        red = diag_summary["reduction_factor"]
        rows.append(
            ["storage reduction", "inf" if red == float("inf") else f"{red:.1f}x"]
        )
    return format_table(["metric", "value"], rows, title="streaming ingest")


def ascii_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 50,
    label: str = "",
) -> str:
    """A one-line-per-point log-friendly bar rendering of a series."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not ys:
        return f"{label}: (empty)"
    top = max(ys)
    lines = [f"{label}:"] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(width * (y / top)))) if top > 0 else ""
        lines.append(f"  {x:>12g}  {y:>12.3f}  {bar}")
    return "\n".join(lines)
