"""Plain-text rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
show; these helpers keep that output aligned and consistent without any
plotting dependency.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width table with a header rule, ready for printing."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 50,
    label: str = "",
) -> str:
    """A one-line-per-point log-friendly bar rendering of a series."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not ys:
        return f"{label}: (empty)"
    top = max(ys)
    lines = [f"{label}:"] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(width * (y / top)))) if top > 0 else ""
        lines.append(f"  {x:>12g}  {y:>12.3f}  {bar}")
    return "\n".join(lines)
