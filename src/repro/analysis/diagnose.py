"""Automated fluctuation diagnosis: robust baselines + excess attribution.

This is the closing step of the paper's workflow.  The raw material is a
:class:`~repro.core.hybrid.HybridTrace` — exact per-item residency from
the instrumented windows, estimated per-(item, function) elapsed time
from PEBS samples.  The engine turns that into verdicts:

1. **Classify.**  Each data-item's total residency is compared against a
   *robust* baseline of its similarity group (same packet type, same
   query size, ...): median ± k·σ where σ comes from the median absolute
   deviation (MAD), or a percentile band.  Robust statistics matter
   because the population we are hunting — items inflated by
   non-functional state — is exactly the population that would corrupt a
   mean/stddev baseline.
2. **Attribute.**  For every outlier, the item's per-function elapsed
   times are compared with the per-function group medians; functions are
   ranked by their share of the excess.  Window time no sampled function
   covers is tracked as the :data:`UNATTRIBUTED` pseudo-function, so
   stall-dominated outliers are *named*, not silently unexplained.
3. **Qualify.**  Every attribution carries a confidence derived from
   sample density: with reset value R, a per-(item, function) elapsed
   estimate is only resolved to about one inter-sample gap (~R cycles)
   at each end, so an excess must clear ``2R/sqrt(n)`` before it means
   much (:func:`sample_confidence`).

The same classification runs online: :class:`StreamingDiagnoser`
duck-types the ``observe_item`` protocol of
:class:`~repro.core.online.OnlineDiagnoser`, so it rides
:func:`~repro.core.streaming.ingest_trace` and emits verdicts while the
trace is still streaming (with running baselines — a documented
approximation of the one-shot bands).

Everything batch is vectorised over :class:`~repro.core.records.WindowColumns`
— grouped medians and MADs are computed with one lexsort +
``reduceat``-style segmentation, never a per-item Python loop.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

import numpy as np

from repro.core.fluctuation import UNATTRIBUTED
from repro.core.hybrid import HybridTrace
from repro.core.records import WindowColumns
from repro.errors import TraceError
from repro.obs.instrumented import pipeline as _obs

#: Scale factor turning a median absolute deviation into a consistent
#: estimate of the standard deviation under normality.
SIGMA_PER_MAD = 1.4826

#: Reset value assumed when neither the caller nor the trace metadata
#: supplies one (the paper's default sampling period).
DEFAULT_RESET_VALUE = 8000

#: Baseline methods accepted by :func:`diagnose_trace`.
METHODS = ("mad", "percentile")


def sample_confidence(
    excess_cycles: float, n_samples: int, reset_value: int
) -> float:
    """Confidence in [0, 1) that an excess-time attribution is resolvable.

    A per-(item, function) elapsed estimate is ``t_last - t_first`` over
    ``n`` samples taken every ~R cycles: each endpoint is uncertain by
    about one inter-sample gap, and averaging over the item population
    shrinks that by ``sqrt(n)``.  The confidence is the excess measured
    in units of itself plus that resolution floor::

        confidence = excess / (excess + 2R / sqrt(n))

    → 0 when the excess vanishes or nothing was sampled, → 1 when the
    excess dwarfs the sampling resolution.  Monotone in both ``excess``
    and ``n``, so rankings by excess·confidence are stable under R.
    """
    if excess_cycles <= 0 or n_samples <= 0 or reset_value <= 0:
        return 0.0
    floor = 2.0 * reset_value / math.sqrt(n_samples)
    return float(excess_cycles / (excess_cycles + floor))


# ---------------------------------------------------------------------------
# Vectorised grouped statistics


def item_totals(cols: WindowColumns) -> tuple[np.ndarray, np.ndarray]:
    """Per-item total residency from window columns: (items, totals).

    Items ascend; an item occupying several windows (timer switching)
    has its durations summed — one ``argsort`` + ``reduceat``, no Python
    loop over windows.
    """
    if len(cols) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    durations = cols.t_end - cols.t_start
    order = np.argsort(cols.item_id, kind="stable")
    uniq, start = np.unique(cols.item_id[order], return_index=True)
    return uniq.astype(np.int64), np.add.reduceat(durations[order], start)


def grouped_median(codes: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Median of ``values`` per group code; result indexed by code.

    ``codes`` must be integers in ``[0, n_groups)`` with every group
    nonempty.  One lexsort; medians picked by segment index arithmetic.
    """
    n_groups = int(codes.max()) + 1 if codes.shape[0] else 0
    order = np.lexsort((values, codes))
    sorted_codes = codes[order]
    sorted_vals = values[order]
    start = np.searchsorted(sorted_codes, np.arange(n_groups), side="left")
    end = np.searchsorted(sorted_codes, np.arange(n_groups), side="right")
    count = end - start
    if np.any(count == 0):
        raise TraceError("grouped_median: every group code must be populated")
    lo = start + (count - 1) // 2
    hi = start + count // 2
    return (sorted_vals[lo] + sorted_vals[hi]) / 2.0


def grouped_mad(
    codes: np.ndarray, values: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """Median absolute deviation per group, given per-group centers."""
    dev = np.abs(values - centers[codes])
    return grouped_median(codes, dev)


def grouped_percentile(
    codes: np.ndarray, values: np.ndarray, q: float
) -> np.ndarray:
    """Per-group percentile ``q`` (0..100), nearest-rank, indexed by code."""
    n_groups = int(codes.max()) + 1 if codes.shape[0] else 0
    order = np.lexsort((values, codes))
    sorted_codes = codes[order]
    sorted_vals = values[order]
    start = np.searchsorted(sorted_codes, np.arange(n_groups), side="left")
    end = np.searchsorted(sorted_codes, np.arange(n_groups), side="right")
    count = end - start
    if np.any(count == 0):
        raise TraceError("grouped_percentile: every group code must be populated")
    rank = np.ceil(q / 100.0 * count).astype(np.int64)
    idx = start + np.clip(rank - 1, 0, count - 1)
    return sorted_vals[idx].astype(np.float64)


# ---------------------------------------------------------------------------
# Result model


@dataclass(frozen=True)
class BaselineBand:
    """The robust acceptance band of one similarity group."""

    group: Hashable
    n_items: int
    #: Group median of item totals (cycles).
    center: float
    #: Robust spread estimate (sigma-equivalent cycles; 0 if degenerate).
    spread: float
    #: Band edges: items with ``total > hi`` are outliers.
    lo: float
    hi: float
    method: str


@dataclass(frozen=True)
class FunctionAttribution:
    """One function's share of an outlier item's excess time."""

    fn_name: str
    #: Item's elapsed in this function minus the group median (cycles).
    excess_cycles: int
    #: Fraction of the item's total positive excess this function holds.
    share: float
    #: Samples behind the item's estimate for this function.
    n_samples: int
    #: Sample-density confidence (see :func:`sample_confidence`).
    confidence: float


@dataclass(frozen=True)
class ItemVerdict:
    """Classification of one data-item against its group baseline."""

    item_id: int
    group: Hashable
    total_cycles: int
    center_cycles: float
    #: Signed deviation in band-widths: exactly ``k_sigma`` at the edge.
    deviation: float
    is_outlier: bool
    #: Item total minus group center, clamped at 0 (cycles).
    excess_cycles: int
    #: Ranked by excess, descending; empty for non-outliers.
    attributions: tuple[FunctionAttribution, ...] = ()
    #: True when the item's windows overlap data the capture lost (shed
    #: samples under overload, spans a crash recovery could not salvage):
    #: the verdict was computed from incomplete evidence and should be
    #: read as "affected by degraded capture", not misattributed.
    degraded: bool = False
    #: Waiting-dependency chain of the item's window: hop dicts (see
    #: :meth:`repro.analysis.depgraph.WaitHop.to_dict`) from the item's
    #: own core to its true upstream blocker.  Empty when the container
    #: carries no wait edges or the item never waited — attribution by
    #: function latency is then the whole story.
    blocked_by: tuple = ()

    @property
    def culprit(self) -> str | None:
        """The top-ranked excess function, if any."""
        return self.attributions[0].fn_name if self.attributions else None

    def describe(self, freq_ghz: float = 3.0) -> str:
        total_us = self.total_cycles / freq_ghz / 1_000
        med_us = self.center_cycles / freq_ghz / 1_000
        head = (
            f"item {self.item_id} (group {self.group!r}): {total_us:.2f} us vs "
            f"baseline {med_us:.2f} us ({self.deviation:+.1f} band-widths)"
        )
        tail = " [degraded capture]" if self.degraded else ""
        if self.blocked_by:
            hop = self.blocked_by[0]
            tail += (
                f" [blocked {hop['wait_cycles']:,} cy on {hop['queue']} "
                f"({hop['kind']})]"
            )
        if not self.is_outlier:
            return head + " — within band" + tail
        if not self.attributions:
            return head + " — OUTLIER, no attributable excess" + tail
        top = self.attributions[0]
        return (
            head
            + f" — OUTLIER; top contributor {top.fn_name} "
            + f"(+{top.excess_cycles} cycles, {top.share:.0%} of excess, "
            + f"confidence {top.confidence:.2f})"
            + tail
        )


@dataclass(frozen=True)
class DiagnosisReport:
    """All verdicts of one run, plus the baselines they were judged by."""

    verdicts: tuple[ItemVerdict, ...]
    baselines: tuple[BaselineBand, ...]
    method: str
    k_sigma: float
    min_ratio: float
    min_samples: int
    reset_value: int

    @property
    def outliers(self) -> list[ItemVerdict]:
        """Outlier verdicts, most deviant first."""
        out = [v for v in self.verdicts if v.is_outlier]
        out.sort(key=lambda v: v.deviation, reverse=True)
        return out

    @property
    def degraded_items(self) -> list[ItemVerdict]:
        """Verdicts computed from incomplete capture data, item order."""
        return [v for v in self.verdicts if v.degraded]

    @property
    def fluctuating(self) -> bool:
        return any(v.is_outlier for v in self.verdicts)

    def describe(self, freq_ghz: float = 3.0, limit: int = 10) -> str:
        lines = [
            f"diagnosis: {len(self.verdicts)} item(s) in "
            f"{len(self.baselines)} group(s), method={self.method}"
        ]
        for b in sorted(self.baselines, key=lambda b: str(b.group)):
            lines.append(
                f"  group {b.group!r}: n={b.n_items} center={b.center:.0f} "
                f"spread={b.spread:.0f} band=[{b.lo:.0f}, {b.hi:.0f}]"
            )
        outs = self.outliers
        if not outs:
            lines.append("  no outliers")
        for v in outs[:limit]:
            lines.append("  " + v.describe(freq_ghz))
        if len(outs) > limit:
            lines.append(f"  ... and {len(outs) - limit} more outlier(s)")
        n_deg = len(self.degraded_items)
        if n_deg:
            lines.append(
                f"  {n_deg} item(s) overlap lost capture data (shed or "
                "unrecovered spans); their verdicts are marked degraded"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The report's JSON payload (envelope keys are added by
        :func:`repro.analysis.report.envelope` at serialization time)."""
        return {
            "method": self.method,
            "k_sigma": self.k_sigma,
            "min_ratio": self.min_ratio,
            "reset_value": self.reset_value,
            "baselines": [
                {
                    "group": str(b.group),
                    "n_items": b.n_items,
                    "center": b.center,
                    "spread": b.spread,
                    "lo": b.lo,
                    "hi": b.hi,
                }
                for b in self.baselines
            ],
            "degraded_items": [v.item_id for v in self.degraded_items],
            "outliers": [
                {
                    "item_id": v.item_id,
                    "group": str(v.group),
                    "total_cycles": v.total_cycles,
                    "center_cycles": v.center_cycles,
                    "deviation": v.deviation,
                    "excess_cycles": v.excess_cycles,
                    "degraded": v.degraded,
                    "attributions": [
                        {
                            "fn": a.fn_name,
                            "excess_cycles": a.excess_cycles,
                            "share": a.share,
                            "n_samples": a.n_samples,
                            "confidence": a.confidence,
                        }
                        for a in v.attributions
                    ],
                    "blocked_by": [dict(h) for h in v.blocked_by],
                }
                for v in self.outliers
            ],
        }

    def to_json(self) -> str:
        from repro.analysis.report import render_json

        return render_json(self.to_dict(), kind="diagnosis")


# ---------------------------------------------------------------------------
# One-shot engine


def _attribute(
    trace: HybridTrace,
    item: int,
    members: list[int],
    per_item_bd: dict[int, dict[str, int]],
    min_samples: int,
    reset_value: int,
) -> tuple[FunctionAttribution, ...]:
    """Rank functions by their share of one outlier item's excess time."""
    fn_names: set[str] = set()
    for bd in per_item_bd.values():
        fn_names.update(bd)
    total_mapped = sum(
        e.n_samples
        for e in (trace.estimate(item, f) for f in trace.breakdown(item, 0))
        if e is not None
    )
    attrs: list[FunctionAttribution] = []
    excesses: dict[str, int] = {}
    for fn in fn_names:
        med = float(np.median([per_item_bd[m].get(fn, 0) for m in members]))
        excess = int(per_item_bd[item].get(fn, 0) - med)
        if excess > 0:
            excesses[fn] = excess
    total_excess = sum(excesses.values())
    for fn, excess in sorted(excesses.items(), key=lambda kv: -kv[1]):
        if fn == UNATTRIBUTED:
            n = total_mapped
        else:
            est = trace.estimate(item, fn)
            n = est.n_samples if est is not None else 0
        attrs.append(
            FunctionAttribution(
                fn_name=fn,
                excess_cycles=excess,
                share=excess / total_excess if total_excess else 0.0,
                n_samples=n,
                confidence=sample_confidence(excess, n, reset_value),
            )
        )
    return tuple(attrs)


def diagnose_trace(
    trace: HybridTrace,
    group_of: Mapping[int, Hashable] | Callable[[int], Hashable] | None = None,
    *,
    method: str = "mad",
    k_sigma: float = 3.5,
    min_ratio: float = 1.2,
    percentile: float = 99.0,
    min_samples: int = 2,
    reset_value: int | None = None,
    degraded_items: set[int] | None = None,
) -> DiagnosisReport:
    """Classify every item against its group baseline; attribute outliers.

    ``group_of`` maps item ids to similarity keys (the packet type, the
    query size); ``None`` treats the whole trace as one group — valid
    when the workload is homogeneous, and noisy otherwise.

    The band is robust: center = group median, spread = 1.4826·MAD
    (``method="mad"``) or a nearest-rank percentile
    (``method="percentile"``), and in both cases the upper edge is at
    least ``min_ratio``·center so that near-constant groups (MAD ≈ 0)
    do not flag microscopic jitter.  ``k_sigma`` is the MAD-band width;
    ``deviation`` in the verdicts is normalised so the upper edge sits at
    exactly ``k_sigma`` band-widths regardless of method.

    ``reset_value`` (the sampling period R) feeds attribution confidence;
    defaults to :data:`DEFAULT_RESET_VALUE` when unknown.

    ``degraded_items`` marks item ids whose evidence is known-incomplete
    (their windows overlap samples shed under overload or spans a crash
    recovery could not salvage).  Their verdicts still classify — the
    window ground truth survives — but carry ``degraded=True`` so a
    missing-samples artifact is never misread as attribution.
    """
    if method not in METHODS:
        raise TraceError(f"method must be one of {METHODS}, got {method!r}")
    if k_sigma <= 0:
        raise TraceError(f"k_sigma must be > 0, got {k_sigma}")
    if min_ratio < 1.0:
        raise TraceError(f"min_ratio must be >= 1.0, got {min_ratio}")
    if not 0 < percentile <= 100:
        raise TraceError(f"percentile must be in (0, 100], got {percentile}")
    R = reset_value if reset_value is not None else DEFAULT_RESET_VALUE
    lookup = (
        (lambda _i: "all")
        if group_of is None
        else (group_of if callable(group_of) else group_of.__getitem__)
    )

    items_arr, totals_arr = item_totals(trace.window_columns)
    sampled = set(trace.items())
    if degraded_items:
        # A degraded item may have lost *every* sample (a whole shed or
        # unrecovered span); its window ground truth still classifies it,
        # and silently dropping it would hide exactly the loss the flag
        # exists to surface.
        sampled |= {int(i) for i in degraded_items}
    keep = np.asarray([int(i) in sampled for i in items_arr], dtype=bool)
    items_arr = items_arr[keep]
    totals_arr = totals_arr[keep].astype(np.float64)
    ins = _obs()
    ins.diag_runs.inc()
    if items_arr.shape[0] == 0:
        return DiagnosisReport(
            verdicts=(),
            baselines=(),
            method=method,
            k_sigma=k_sigma,
            min_ratio=min_ratio,
            min_samples=min_samples,
            reset_value=R,
        )

    # Group codes: stable order of first appearance in ascending item id.
    group_keys: list[Hashable] = []
    code_of: dict[Hashable, int] = {}
    codes = np.empty(items_arr.shape[0], dtype=np.int64)
    for pos, item in enumerate(items_arr.tolist()):
        key = lookup(int(item))
        if key not in code_of:
            code_of[key] = len(group_keys)
            group_keys.append(key)
        codes[pos] = code_of[key]

    centers = grouped_median(codes, totals_arr)
    if method == "mad":
        spread = SIGMA_PER_MAD * grouped_mad(codes, totals_arr, centers)
        hi = centers + np.maximum(k_sigma * spread, (min_ratio - 1.0) * centers)
        lo = centers - np.maximum(k_sigma * spread, (min_ratio - 1.0) * centers)
    else:
        p_hi = grouped_percentile(codes, totals_arr, percentile)
        p_lo = grouped_percentile(codes, totals_arr, 100.0 - percentile)
        hi = np.maximum(p_hi, min_ratio * centers)
        lo = np.minimum(p_lo, centers / max(min_ratio, 1e-9))
        spread = np.maximum(hi - centers, 0.0) / k_sigma
    # Normalise deviation so the upper band edge is at k_sigma widths.
    sigma_eff = np.maximum(hi - centers, 0.0) / k_sigma
    sigma_eff[sigma_eff == 0] = np.inf
    deviations = (totals_arr - centers[codes]) / sigma_eff[codes]
    outlier_mask = totals_arr > hi[codes]

    counts = np.bincount(codes, minlength=len(group_keys))
    baselines = tuple(
        BaselineBand(
            group=group_keys[c],
            n_items=int(counts[c]),
            center=float(centers[c]),
            spread=float(spread[c]),
            lo=float(lo[c]),
            hi=float(hi[c]),
            method=method,
        )
        for c in range(len(group_keys))
    )

    # Per-item breakdowns (incl. the stall pseudo-function) are needed
    # only for groups that actually contain outliers.
    members_of: dict[int, list[int]] = {}
    for pos, item in enumerate(items_arr.tolist()):
        members_of.setdefault(int(codes[pos]), []).append(int(item))
    bd_cache: dict[int, dict[int, dict[str, int]]] = {}
    for c in set(int(codes[p]) for p in np.nonzero(outlier_mask)[0].tolist()):
        per_item = {}
        for m in members_of[c]:
            bd = dict(trace.breakdown(m, min_samples=min_samples))
            bd[UNATTRIBUTED] = trace.unattributed_cycles(m, min_samples=min_samples)
            per_item[m] = bd
        bd_cache[c] = per_item

    verdicts: list[ItemVerdict] = []
    for pos, item in enumerate(items_arr.tolist()):
        c = int(codes[pos])
        is_out = bool(outlier_mask[pos])
        total = int(totals_arr[pos])
        center = float(centers[c])
        attrs: tuple[FunctionAttribution, ...] = ()
        if is_out:
            attrs = _attribute(
                trace, int(item), members_of[c], bd_cache[c], min_samples, R
            )
        verdicts.append(
            ItemVerdict(
                item_id=int(item),
                group=group_keys[c],
                total_cycles=total,
                center_cycles=center,
                deviation=float(deviations[pos]),
                is_outlier=is_out,
                excess_cycles=max(0, int(round(total - center))),
                attributions=attrs,
                degraded=bool(degraded_items) and int(item) in degraded_items,
            )
        )
    ins.diag_items.inc(len(verdicts))
    n_out = int(np.count_nonzero(outlier_mask))
    if n_out:
        ins.diag_outliers.inc(n_out)
    return DiagnosisReport(
        verdicts=tuple(verdicts),
        baselines=baselines,
        method=method,
        k_sigma=k_sigma,
        min_ratio=min_ratio,
        min_samples=min_samples,
        reset_value=R,
    )


# ---------------------------------------------------------------------------
# Online engine


class _RunningGroup:
    """Running robust-ish baseline of one group: median + Welford sigma."""

    __slots__ = ("sorted_totals", "n", "mean", "m2", "fn_sum", "fn_n")

    def __init__(self) -> None:
        self.sorted_totals: list[int] = []
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.fn_sum: dict[str, int] = {}
        self.fn_n: dict[str, int] = {}

    def add(self, total: int, breakdown: Mapping[str, int]) -> None:
        bisect.insort(self.sorted_totals, total)
        self.n += 1
        delta = total - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (total - self.mean)
        for fn, cyc in breakdown.items():
            self.fn_sum[fn] = self.fn_sum.get(fn, 0) + int(cyc)
            self.fn_n[fn] = self.fn_n.get(fn, 0) + 1

    @property
    def median(self) -> float:
        s = self.sorted_totals
        m = len(s)
        return (s[(m - 1) // 2] + s[m // 2]) / 2.0 if m else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.m2 / (self.n - 1)) if self.n > 1 else 0.0

    def fn_mean(self, fn: str) -> float:
        n = self.fn_n.get(fn, 0)
        return self.fn_sum.get(fn, 0) / n if n else 0.0


class StreamingDiagnoser:
    """Online outlier verdicts as items complete mid-stream.

    Duck-types the ``observe_item(item_id, breakdown, raw_bytes)``
    protocol of :class:`~repro.core.online.OnlineDiagnoser`, so it plugs
    straight into :func:`~repro.core.streaming.ingest_trace` (sequential
    path) or :meth:`StreamingIntegrator.drain_completed` loops and
    classifies each item the moment its windows close.

    The baseline is a *running* approximation of the one-shot band: the
    group's running median of totals with a Welford standard deviation
    for spread (the exact MAD is not incrementally maintainable at
    O(log n)).  An item is an outlier once its group holds at least
    ``min_baseline`` observations and its total exceeds
    ``median + max(k_sigma·std, (min_ratio−1)·median)``.  Item totals are
    the *sampled* per-function sums (window ground truth is not available
    mid-stream), so verdicts can differ near the band edge from the final
    one-shot report — which is why the facade re-runs the exact batch
    diagnosis on the finalized trace after the stream ends.
    """

    def __init__(
        self,
        group_of: Mapping[int, Hashable] | Callable[[int], Hashable] | None = None,
        *,
        k_sigma: float = 3.5,
        min_ratio: float = 1.2,
        min_baseline: int = 5,
        reset_value: int | None = None,
        record_bytes: int = 240,
        on_verdict: Callable[[ItemVerdict], None] | None = None,
    ) -> None:
        if min_baseline < 2:
            raise TraceError(f"min_baseline must be >= 2, got {min_baseline}")
        self._lookup = (
            (lambda _i: "all")
            if group_of is None
            else (group_of if callable(group_of) else group_of.__getitem__)
        )
        self.k_sigma = k_sigma
        self.min_ratio = min_ratio
        self.min_baseline = min_baseline
        self.reset_value = (
            reset_value if reset_value is not None else DEFAULT_RESET_VALUE
        )
        self.record_bytes = record_bytes
        self.on_verdict = on_verdict
        self.items_seen = 0
        #: Outlier verdicts, in observation order.
        self.verdicts: list[ItemVerdict] = []
        self._groups: dict[Hashable, _RunningGroup] = {}

    def observe_item(
        self, item_id: int, breakdown: Mapping[str, int], raw_bytes: int
    ) -> ItemVerdict | None:
        """Classify one completed item; returns its verdict when flagged.

        The baseline is updated *after* classification, so an extreme
        item cannot vouch for itself.
        """
        self.items_seen += 1
        key = self._lookup(item_id)
        g = self._groups.setdefault(key, _RunningGroup())
        total = int(sum(breakdown.values()))
        verdict: ItemVerdict | None = None
        if g.n >= self.min_baseline:
            center = g.median
            band = max(self.k_sigma * g.std, (self.min_ratio - 1.0) * center)
            hi = center + band
            if total > hi and band > 0:
                n_samples = max(1, raw_bytes // self.record_bytes)
                excesses = {
                    fn: int(cyc - g.fn_mean(fn))
                    for fn, cyc in breakdown.items()
                    if cyc - g.fn_mean(fn) > 0
                }
                total_excess = sum(excesses.values())
                attrs = tuple(
                    FunctionAttribution(
                        fn_name=fn,
                        excess_cycles=exc,
                        share=exc / total_excess if total_excess else 0.0,
                        n_samples=n_samples,
                        confidence=sample_confidence(
                            exc, n_samples, self.reset_value
                        ),
                    )
                    for fn, exc in sorted(excesses.items(), key=lambda kv: -kv[1])
                )
                verdict = ItemVerdict(
                    item_id=item_id,
                    group=key,
                    total_cycles=total,
                    center_cycles=center,
                    deviation=(total - center) / (band / self.k_sigma),
                    is_outlier=True,
                    excess_cycles=max(0, int(round(total - center))),
                    attributions=attrs,
                )
                self.verdicts.append(verdict)
                ins = _obs()
                ins.diag_online_verdicts.inc()
                if self.on_verdict is not None:
                    self.on_verdict(verdict)
        g.add(total, breakdown)
        return verdict

    def summary(self) -> dict:
        return {
            "items_seen": self.items_seen,
            "groups": len(self._groups),
            "outliers": len(self.verdicts),
        }
