"""Experiment analysis: interval statistics, regressions, report rendering.

Machine-readable output goes through one door: the versioned envelope of
:mod:`repro.analysis.report` (re-exported here).  The pre-envelope
spellings — reaching for the per-verb report classes at *this* package
level to hand-serialize their ad-hoc JSON shapes — are deprecated for
one release behind a PEP 562 shim: they still resolve, with a
:class:`DeprecationWarning` naming the supported replacement
(:mod:`repro.api` verbs, whose reports serialize enveloped via
``to_json``).
"""

from repro.analysis.depgraph import (
    WaitHop,
    blocked_by_chain,
    describe_chain,
    heaviest_wait,
    item_wait_cycles,
)
from repro.analysis.distribution import LatencyStats, latency_stats, text_histogram
from repro.analysis.export import to_chrome_trace, to_csv, write_chrome_trace
from repro.analysis.intervals import IntervalStats, interval_stats
from repro.analysis.linearity import LinearFit, fit_interval_linearity
from repro.analysis.report import SCHEMA_VERSION, SCHEMAS, envelope, render_json
from repro.analysis.reporting import ascii_series, format_table
from repro.analysis.timeline import render_item_timeline

__all__ = [
    "IntervalStats",
    "LatencyStats",
    "LinearFit",
    "SCHEMAS",
    "SCHEMA_VERSION",
    "WaitHop",
    "ascii_series",
    "blocked_by_chain",
    "describe_chain",
    "envelope",
    "fit_interval_linearity",
    "format_table",
    "heaviest_wait",
    "interval_stats",
    "item_wait_cycles",
    "latency_stats",
    "render_item_timeline",
    "render_json",
    "text_histogram",
    "to_chrome_trace",
    "to_csv",
    "write_chrome_trace",
]

#: Ad-hoc per-verb JSON entry points the envelope replaces, kept one
#: release behind a deprecation shim: (module, attr, supported spelling).
_DEPRECATED = {
    "DiagnosisReport": (
        "repro.analysis.diagnose",
        "DiagnosisReport",
        "repro.api.diagnose() (enveloped to_json)",
    ),
    "DiffReport": (
        "repro.analysis.differential",
        "DiffReport",
        "repro.api.diff() (enveloped to_json)",
    ),
    "diagnose_trace": (
        "repro.analysis.diagnose",
        "diagnose_trace",
        "repro.api.diagnose()",
    ),
    "diff_traces": (
        "repro.analysis.differential",
        "diff_traces",
        "repro.api.diff()",
    ),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        import importlib
        import warnings

        module, attr, new = _DEPRECATED[name]
        warnings.warn(
            f"repro.analysis.{name} is deprecated; use {new} (or import it "
            f"from {module})",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__ + list(_DEPRECATED))
