"""Experiment analysis: interval statistics, regressions, report rendering."""

from repro.analysis.distribution import LatencyStats, latency_stats, text_histogram
from repro.analysis.export import to_chrome_trace, to_csv, write_chrome_trace
from repro.analysis.intervals import IntervalStats, interval_stats
from repro.analysis.linearity import LinearFit, fit_interval_linearity
from repro.analysis.reporting import ascii_series, format_table
from repro.analysis.timeline import render_item_timeline

__all__ = [
    "IntervalStats",
    "LatencyStats",
    "LinearFit",
    "ascii_series",
    "fit_interval_linearity",
    "format_table",
    "interval_stats",
    "latency_stats",
    "render_item_timeline",
    "text_histogram",
    "to_chrome_trace",
    "to_csv",
    "write_chrome_trace",
]
