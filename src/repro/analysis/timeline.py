"""ASCII timeline of one data-item: where its samples landed.

The visual counterpart of the paper's Fig 3/Fig 6 — the item's window on
one core, one row per function, a mark in every time bucket holding at
least one sample of that function.  Gaps (buckets with no sample in any
function) are the stall/off-CPU signature discussed in
:meth:`~repro.core.hybrid.HybridTrace.unattributed_cycles`.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import SwitchRecords, build_windows
from repro.core.symbols import UNKNOWN, SymbolTable
from repro.errors import TraceError
from repro.machine.pebs import SampleArrays


def render_item_timeline(
    samples: SampleArrays,
    switches: SwitchRecords,
    symtab: SymbolTable,
    item_id: int,
    width: int = 72,
    freq_ghz: float = 3.0,
) -> str:
    """Render one item's sample timeline as fixed-width text."""
    if width < 8:
        raise TraceError(f"width must be >= 8, got {width}")
    windows = [w for w in build_windows(switches) if w.item_id == item_id]
    if not windows:
        raise TraceError(f"no window recorded for item {item_id}")
    start = min(w.t_start for w in windows)
    end = max(w.t_end for w in windows)
    span = max(1, end - start)
    in_item = (samples.ts >= start) & (samples.ts <= end)
    fidx = symtab.lookup_many(samples.ip)
    lines = [
        f"item {item_id}: window {span / freq_ghz / 1000:.2f} us "
        f"({len(windows)} residenc{'y' if len(windows) == 1 else 'ies'}, "
        f"{int(np.count_nonzero(in_item))} samples)"
    ]
    name_w = max((len(n) for n in symtab.names), default=4)
    any_col = np.zeros(width, dtype=bool)
    for fi, name in enumerate(symtab.names):
        mask = in_item & (fidx == fi)
        if not np.any(mask):
            continue
        cols = np.minimum(
            ((samples.ts[mask] - start) * width) // span, width - 1
        ).astype(np.int64)
        row = np.full(width, ".", dtype="U1")
        row[cols] = "#"
        any_col[cols] = True
        lines.append(f"{name.rjust(name_w)} |{''.join(row)}|")
    unknown_mask = in_item & (fidx == UNKNOWN)
    if np.any(unknown_mask):
        cols = np.minimum(
            ((samples.ts[unknown_mask] - start) * width) // span, width - 1
        ).astype(np.int64)
        row = np.full(width, ".", dtype="U1")
        row[cols] = "?"
        any_col[cols] = True
        lines.append(f"{'<unknown>'.rjust(name_w)} |{''.join(row)}|")
    # Bottom rail: '-' where no function had a sample (stall signature).
    rail = np.full(width, " ", dtype="U1")
    rail[~any_col] = "-"
    lines.append(f"{'(no samples)'.rjust(name_w)} |{''.join(rail)}|")
    return "\n".join(lines)
