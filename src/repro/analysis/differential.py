"""Differential diagnosis: localize a regression between two runs.

The paper's ACL case study in computable form: two traces of the *same
workload* — a healthy baseline and a fluctuating/regressed run — are
compared function by function.  For every function (plus the
:data:`~repro.core.fluctuation.UNATTRIBUTED` stall pseudo-function) we
take the **median per-item elapsed time** in each run and rank functions
by the per-item excess of the regressed run over the baseline.  Medians,
not totals: the runs may have processed different item counts, and the
regression signature the paper cares about is "the same packet now costs
more in the trie walk", a per-item statement.

Functions are matched by *name*, so the two traces may carry different
symbol tables (rebuilt processes, ASLR) as long as symbolisation is
consistent.

Per-item vectors are assembled column-wise from the trace's arrays (one
``searchsorted`` to map rows to item slots, a loop only over the few
observed functions), so the per-item hot path never enters Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.diagnose import (
    DEFAULT_RESET_VALUE,
    item_totals,
    sample_confidence,
)
from repro.core.fluctuation import UNATTRIBUTED
from repro.core.hybrid import HybridTrace
from repro.errors import TraceError
from repro.obs.instrumented import pipeline as _obs


@dataclass(frozen=True)
class FunctionDelta:
    """One function's per-item cost change between the two runs."""

    fn_name: str
    #: Median per-item elapsed cycles in each run (0 if unobserved).
    base_median_per_item: float
    other_median_per_item: float
    #: ``other_median_per_item - base_median_per_item`` (signed).
    excess_per_item: float
    #: Aggregate effect: excess_per_item × items in the other run.
    excess_cycles: int
    #: Summed attributed cycles in each run, for context.
    base_total_cycles: int
    other_total_cycles: int
    #: Samples behind the other run's estimates for this function.
    n_samples: int
    #: Sample-density confidence in the per-item excess.
    confidence: float

    def describe(self, freq_ghz: float = 3.0) -> str:
        d_us = self.excess_per_item / freq_ghz / 1_000
        return (
            f"{self.fn_name}: {self.base_median_per_item:.0f} -> "
            f"{self.other_median_per_item:.0f} cycles/item "
            f"({d_us:+.2f} us/item, confidence {self.confidence:.2f})"
        )


@dataclass(frozen=True)
class DiffReport:
    """Function deltas between two runs, worst regression first."""

    deltas: tuple[FunctionDelta, ...]
    n_items_base: int
    n_items_other: int
    #: Median total residency per item in each run (window ground truth).
    base_median_total: float
    other_median_total: float
    reset_value: int
    #: Items per run whose windows overlap capture losses (shed samples,
    #: unrecovered journal spans); their evidence is incomplete, so every
    #: delta's confidence is discounted by the intact fraction of both
    #: runs rather than presented at full strength.
    n_degraded_base: int = 0
    n_degraded_other: int = 0
    #: Median per-item wait cycles in each run (0.0 when neither trace
    #: carried wait edges — older containers, in-memory diffs).
    base_wait_median: float = 0.0
    other_wait_median: float = 0.0
    #: Regression classification from the wait-vs-code split:
    #: ``"contention"`` when the median total's growth is mostly wait
    #: cycles, ``"code"`` when it is mostly function latency, ``"none"``
    #: when nothing regressed or no wait data was available to split.
    cause: str = "none"

    @property
    def wait_excess_per_item(self) -> float:
        """Growth of the per-item wait median (signed cycles)."""
        return self.other_wait_median - self.base_wait_median

    @property
    def regressions(self) -> list[FunctionDelta]:
        """Deltas where the other run is slower per item."""
        return [d for d in self.deltas if d.excess_per_item > 0]

    @property
    def top(self) -> FunctionDelta | None:
        """The largest per-item regression, or None if nothing regressed."""
        regs = self.regressions
        return regs[0] if regs else None

    @property
    def regressed(self) -> bool:
        return self.top is not None

    def describe(self, freq_ghz: float = 3.0, limit: int = 10) -> str:
        lines = [
            f"diff: {self.n_items_base} baseline item(s) vs "
            f"{self.n_items_other} item(s); median total "
            f"{self.base_median_total:.0f} -> {self.other_median_total:.0f} cycles"
        ]
        if self.n_degraded_base or self.n_degraded_other:
            lines.append(
                f"  degraded capture: {self.n_degraded_base} baseline / "
                f"{self.n_degraded_other} other item(s) overlap lost data; "
                "confidences discounted"
            )
        top = self.top
        if top is None:
            lines.append("  no per-item regression found")
        else:
            lines.append(
                f"  top excess-time contributor: {top.fn_name} "
                f"(+{top.excess_per_item:.0f} cycles/item, "
                f"confidence {top.confidence:.2f})"
            )
        if self.cause != "none":
            total_d = self.other_median_total - self.base_median_total
            lines.append(
                f"  cause: {self.cause} "
                f"(wait {self.wait_excess_per_item:+.0f} of "
                f"{total_d:+.0f} cycles/item growth)"
            )
        for d in self.deltas[:limit]:
            lines.append("  " + d.describe(freq_ghz))
        if len(self.deltas) > limit:
            lines.append(f"  ... and {len(self.deltas) - limit} more function(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The report's JSON payload (envelope keys are added by
        :func:`repro.analysis.report.envelope` at serialization time)."""
        return {
            "n_items_base": self.n_items_base,
            "n_items_other": self.n_items_other,
            "base_median_total": self.base_median_total,
            "other_median_total": self.other_median_total,
            "reset_value": self.reset_value,
            "n_degraded_base": self.n_degraded_base,
            "n_degraded_other": self.n_degraded_other,
            "base_wait_median": self.base_wait_median,
            "other_wait_median": self.other_wait_median,
            "cause": self.cause,
            "deltas": [
                {
                    "fn": d.fn_name,
                    "base_median_per_item": d.base_median_per_item,
                    "other_median_per_item": d.other_median_per_item,
                    "excess_per_item": d.excess_per_item,
                    "excess_cycles": d.excess_cycles,
                    "n_samples": d.n_samples,
                    "confidence": d.confidence,
                }
                for d in self.deltas
            ],
        }

    def to_json(self) -> str:
        from repro.analysis.report import render_json

        return render_json(self.to_dict(), kind="diff")


def _per_item_matrix(
    trace: HybridTrace, min_samples: int, include_unattributed: bool
) -> tuple[np.ndarray, dict[str, np.ndarray], dict[str, int], np.ndarray]:
    """Per-function per-item elapsed vectors, 0-filled over all items.

    Returns ``(items, fn_vectors, fn_sample_counts, window_totals)``
    where each vector is aligned to the ascending ``items`` array.
    """
    w_items, w_totals = item_totals(trace.window_columns)
    sampled = np.unique(trace.item_ids)
    # Items with windows but no mapped sample still occupy a slot: their
    # function costs are legitimately zero and their window time feeds
    # the stall pseudo-function.
    items = np.union1d(w_items, sampled)
    totals = np.zeros(items.shape[0], dtype=np.int64)
    if w_totals.shape[0]:
        totals[np.searchsorted(items, w_items)] = w_totals
    slot = np.searchsorted(items, trace.item_ids)
    vectors: dict[str, np.ndarray] = {}
    samples: dict[str, int] = {}
    ok = trace.n_samples >= min_samples
    for fi in np.unique(trace.fn_idx).tolist():
        rows = (trace.fn_idx == fi) & ok
        if not np.any(rows):
            continue
        vec = np.zeros(items.shape[0], dtype=np.int64)
        vec[slot[rows]] = trace.elapsed[rows]
        name = trace.symtab.names[int(fi)]
        vectors[name] = vec
        samples[name] = int(trace.n_samples[rows].sum())
    if include_unattributed:
        attributed = (
            np.sum(list(vectors.values()), axis=0)
            if vectors
            else np.zeros(items.shape[0], dtype=np.int64)
        )
        vectors[UNATTRIBUTED] = np.maximum(totals - attributed, 0)
        samples[UNATTRIBUTED] = int(trace.n_samples.sum())
    return items, vectors, samples, totals


#: A run must be at least this factor slower (median total) before the
#: contention/code classifier calls it a regression at all.
MIN_REGRESSION_RATIO = 1.02


def classify_cause(
    base_median_total: float,
    other_median_total: float,
    base_wait_median: float,
    other_wait_median: float,
    *,
    min_ratio: float = MIN_REGRESSION_RATIO,
) -> str:
    """Contention-caused vs code-caused, from the wait/latency split.

    The median total's growth decomposes into growth of wait cycles
    (recorded wait edges inside item windows) and growth of everything
    else (function latency).  Whichever part dominates names the cause;
    sub-``min_ratio`` growth is ``"none"`` — no regression to explain.
    """
    if base_median_total <= 0 or other_median_total < base_median_total * min_ratio:
        return "none"
    total_delta = other_median_total - base_median_total
    wait_delta = other_wait_median - base_wait_median
    return "contention" if wait_delta >= total_delta - wait_delta else "code"


def diff_traces(
    base: HybridTrace,
    other: HybridTrace,
    *,
    min_samples: int = 2,
    include_unattributed: bool = True,
    reset_value: int | None = None,
    degraded_base: set[int] | None = None,
    degraded_other: set[int] | None = None,
    base_item_waits: np.ndarray | None = None,
    other_item_waits: np.ndarray | None = None,
) -> DiffReport:
    """Rank functions by per-item excess of ``other`` over ``base``.

    Both traces must come from the same workload; item ids need not
    match (medians are compared, not item-by-item pairs).  The result's
    :attr:`~DiffReport.top` is the regression verdict — the function
    whose per-item median cost grew the most.

    ``reset_value`` is the sampling period R behind the confidence
    figures; when the runs used different R values pass the larger
    (conservative) one.

    ``degraded_base`` / ``degraded_other`` are item ids whose windows
    overlap capture losses (shed samples under overload, spans a crash
    recovery could not salvage).  Missing samples depress a function's
    apparent cost, so a degraded side biases the comparison; every
    delta's confidence is multiplied by the intact item fraction of both
    runs so the report can never be *more* confident on worse evidence.

    ``base_item_waits`` / ``other_item_waits`` are per-item wait-cycle
    totals (see :func:`repro.analysis.depgraph.item_wait_cycles`); when
    given, the report carries per-run wait medians and a
    contention-vs-code ``cause`` classification.  Traces without wait
    data leave ``cause="none"`` — the split cannot be computed, which is
    different from "no regression".
    """
    R = reset_value if reset_value is not None else DEFAULT_RESET_VALUE
    b_items, b_vec, b_n, b_totals = _per_item_matrix(
        base, min_samples, include_unattributed
    )
    o_items, o_vec, o_n, o_totals = _per_item_matrix(
        other, min_samples, include_unattributed
    )
    if b_items.shape[0] == 0 or o_items.shape[0] == 0:
        raise TraceError("diff_traces needs at least one item in each trace")
    n_b = int(b_items.shape[0])
    n_o = int(o_items.shape[0])
    n_deg_b = len(set(degraded_base or ()) & set(b_items.tolist()))
    n_deg_o = len(set(degraded_other or ()) & set(o_items.tolist()))
    intact = (1.0 - n_deg_b / n_b) * (1.0 - n_deg_o / n_o)

    deltas: list[FunctionDelta] = []
    for name in sorted(set(b_vec) | set(o_vec)):
        bv = b_vec.get(name)
        ov = o_vec.get(name)
        b_med = float(np.median(bv)) if bv is not None else 0.0
        o_med = float(np.median(ov)) if ov is not None else 0.0
        excess = o_med - b_med
        # Sample density per item in whichever run is sparser bounds how
        # well *both* medians are resolved.
        dens_b = (b_n.get(name, 0) / n_b) if bv is not None else 0.0
        dens_o = (o_n.get(name, 0) / n_o) if ov is not None else 0.0
        dens = min(d for d in (dens_b, dens_o) if d > 0) if (dens_b or dens_o) else 0.0
        deltas.append(
            FunctionDelta(
                fn_name=name,
                base_median_per_item=b_med,
                other_median_per_item=o_med,
                excess_per_item=excess,
                excess_cycles=int(round(excess * n_o)),
                base_total_cycles=int(bv.sum()) if bv is not None else 0,
                other_total_cycles=int(ov.sum()) if ov is not None else 0,
                n_samples=o_n.get(name, b_n.get(name, 0)),
                confidence=intact * sample_confidence(excess, max(1, int(dens)), R)
                if dens > 0
                else 0.0,
            )
        )
    deltas.sort(key=lambda d: d.excess_per_item, reverse=True)
    base_median_total = float(np.median(b_totals))
    other_median_total = float(np.median(o_totals))
    have_waits = base_item_waits is not None or other_item_waits is not None

    def _wait_median(arr) -> float:
        return float(np.median(np.asarray(arr))) if arr is not None and len(arr) else 0.0

    b_wait = _wait_median(base_item_waits)
    o_wait = _wait_median(other_item_waits)
    cause = (
        classify_cause(base_median_total, other_median_total, b_wait, o_wait)
        if have_waits
        else "none"
    )
    report = DiffReport(
        deltas=tuple(deltas),
        n_items_base=n_b,
        n_items_other=n_o,
        base_median_total=base_median_total,
        other_median_total=other_median_total,
        reset_value=R,
        n_degraded_base=n_deg_b,
        n_degraded_other=n_deg_o,
        base_wait_median=b_wait,
        other_wait_median=o_wait,
        cause=cause,
    )
    ins = _obs()
    ins.diff_runs.inc()
    n_reg = len(report.regressions)
    if n_reg:
        ins.diff_regressions.inc(n_reg)
    return report
