"""Sample-interval statistics (the quantity Fig 4 plots).

A *sample interval* is the time difference between two consecutive
samples (paper Section III-B).  For interval studies the workload should
be steady-state; percentiles let tests check both the central tendency
and the floor behaviour of software sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.machine.pebs import SampleArrays
from repro.units import cycles_to_us


@dataclass(frozen=True)
class IntervalStats:
    """Distribution summary of achieved sample intervals (in cycles)."""

    n_samples: int
    mean_cycles: float
    median_cycles: float
    p5_cycles: float
    p95_cycles: float
    min_cycles: int
    max_cycles: int

    def mean_us(self, freq_ghz: float) -> float:
        return cycles_to_us(self.mean_cycles, freq_ghz)

    def median_us(self, freq_ghz: float) -> float:
        return cycles_to_us(self.median_cycles, freq_ghz)


def interval_stats(samples: SampleArrays) -> IntervalStats:
    """Compute interval statistics from one core's sample stream."""
    ts = samples.ts
    if ts.shape[0] < 2:
        raise TraceError(
            f"need at least 2 samples to measure intervals, got {ts.shape[0]}"
        )
    iv = np.diff(ts)
    if np.any(iv < 0):
        raise TraceError("sample timestamps are not sorted")
    return IntervalStats(
        n_samples=int(ts.shape[0]),
        mean_cycles=float(iv.mean()),
        median_cycles=float(np.median(iv)),
        p5_cycles=float(np.percentile(iv, 5)),
        p95_cycles=float(np.percentile(iv, 95)),
        min_cycles=int(iv.min()),
        max_cycles=int(iv.max()),
    )
