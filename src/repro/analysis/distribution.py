"""Latency-distribution statistics (the tail vocabulary of Section II-A).

The paper's motivation speaks in distribution terms — means, standard
deviations, 99th percentiles, "an order of magnitude greater".  This
module provides those statistics over any latency list plus a compact
text histogram, shared by workload summaries and benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (unit-agnostic)."""

    n: int
    mean: float
    std: float
    p50: float
    p90: float
    p99: float
    p999: float
    max_value: float

    @property
    def std_over_mean(self) -> float:
        return self.std / self.mean if self.mean else 0.0

    @property
    def p99_over_mean(self) -> float:
        return self.p99 / self.mean if self.mean else 0.0


def latency_stats(values) -> LatencyStats:
    """Compute the summary; needs at least two observations."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 2:
        raise TraceError(f"need >= 2 latencies, got {arr.size}")
    if np.any(arr < 0):
        raise TraceError("latencies must be >= 0")
    return LatencyStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        p999=float(np.percentile(arr, 99.9)),
        max_value=float(arr.max()),
    )


def text_histogram(values, bins: int = 10, width: int = 40, log: bool = False) -> str:
    """A fixed-width histogram; ``log=True`` uses log-spaced bins (tails)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return "(no data)"
    if bins < 1 or width < 1:
        raise TraceError("bins and width must be >= 1")
    lo, hi = float(arr.min()), float(arr.max())
    if lo == hi:
        return f"all {arr.size} values = {lo:g}"
    if log:
        lo_pos = max(lo, hi * 1e-6, np.min(arr[arr > 0], initial=hi))
        edges = np.geomspace(lo_pos, hi, bins + 1)
        edges[0] = lo
    else:
        edges = np.linspace(lo, hi, bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    top = counts.max()
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * (round(width * c / top) if top else 0)
        lines.append(f"[{edges[i]:10.2f}, {edges[i + 1]:10.2f})  {c:6d}  {bar}")
    return "\n".join(lines)
