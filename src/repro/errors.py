"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Invalid machine, sampler, or tracer configuration."""


class SimulationError(ReproError):
    """The simulated machine or scheduler reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All runnable threads are blocked and no queue can make progress."""


class SymbolError(ReproError):
    """Symbol table construction or lookup failed (overlap, unknown name)."""


class TraceError(ReproError):
    """Trace records are malformed or inconsistent (e.g. unmatched switch)."""


class IntegrationError(TraceError):
    """Hybrid sample/instrumentation integration failed."""


class CorruptionError(TraceError):
    """Stored trace data failed an integrity check (checksum, length, order)."""


class TraceWriteError(TraceError):
    """Writing trace data to storage failed (ENOSPC, EACCES, torn write).

    Wraps the underlying :class:`OSError` so CLI users get exit code 3
    ("your storage failed") instead of a raw traceback, and so recording
    layers can degrade gracefully instead of dying mid-capture.
    """


class RecoveryError(TraceError):
    """A recording journal cannot be replayed into a usable container."""


class ShardError(TraceError):
    """A worker shard failed permanently during parallel ingestion."""


class ProtocolError(TraceError):
    """A shard-protocol frame is malformed, truncated, or corrupt.

    Raised by the wire layer (:mod:`repro.service.protocol`) — a frame
    that fails any structural or checksum test is rejected whole; no
    partially-decoded payload ever reaches the ingestion path.
    """


class StoreError(TraceError):
    """The multi-run trace store refused an operation (unknown run,
    invalid run id, inconsistent catalog)."""


class RunCommittedError(StoreError):
    """A producer tried to append to (or re-push) an already-committed
    run — accepting it would make a duplicate run visible to ``diff``."""


class ReplicationError(StoreError):
    """Replication to (or repair of) a follower store failed permanently:
    the follower refused a frame with a non-retryable reason, or kept
    shedding past the bounded resend budget."""


class RetentionError(StoreError):
    """The retention engine refused an operation — most importantly, an
    attempt to retire a run that has not reached its replication quorum."""


class SignalInterrupt(ReproError):
    """A termination signal (SIGTERM) arrived mid-capture.

    Raised *by our own signal handler* so the capture path can finalize
    the durable journal before exiting; carries the signal number for
    the conventional ``128 + signum`` exit code.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"interrupted by signal {signum}")
        self.signum = signum


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class InterferenceError(WorkloadError):
    """An interference injector cannot attach to the given workload."""


class ACLError(WorkloadError):
    """ACL rule set or classifier construction failed."""
