"""GNET-like hardware network tester (paper ref [17]).

The paper measures packet latency *outside* the traced machine: GNET
injects packets one by one with a short interval (so DPDK never batches)
and timestamps them on the way out.  The simulated tester does the same —
it owns the injection schedule and collects egress timestamps from the TX
thread, so its latency numbers are independent of any instrumentation
inside the application (which is what makes them a fair overhead probe for
Fig 10).
"""

from __future__ import annotations

from statistics import mean, stdev

from repro.acl.packets import Packet
from repro.errors import WorkloadError
from repro.units import ns_to_cycles


class GNETTester:
    """Injection schedule + egress capture + latency statistics."""

    def __init__(
        self,
        packets: list[Packet],
        inter_packet_gap_ns: float = 25_000.0,
        freq_ghz: float = 3.0,
    ) -> None:
        if not packets:
            raise WorkloadError("need at least one packet")
        ids = [p.pkt_id for p in packets]
        if len(set(ids)) != len(ids):
            raise WorkloadError("packet ids must be unique")
        if inter_packet_gap_ns <= 0:
            raise WorkloadError("inter-packet gap must be positive")
        self.packets = list(packets)
        self.freq_ghz = freq_ghz
        gap = ns_to_cycles(inter_packet_gap_ns, freq_ghz)
        self._ingress: dict[int, int] = {
            p.pkt_id: (i + 1) * gap for i, p in enumerate(packets)
        }
        self._egress: dict[int, int] = {}
        self._ptype: dict[int, str] = {p.pkt_id: p.ptype for p in packets}

    def ingress_ts(self, pkt_id: int) -> int:
        """When the packet arrives at the device's NIC (cycles)."""
        try:
            return self._ingress[pkt_id]
        except KeyError:
            raise WorkloadError(f"unknown packet id {pkt_id}")

    def record_egress(self, pkt_id: int, ts: int) -> None:
        """Called by the TX thread when the packet leaves NIC 1."""
        if pkt_id not in self._ingress:
            raise WorkloadError(f"egress for unknown packet id {pkt_id}")
        if pkt_id in self._egress:
            raise WorkloadError(f"duplicate egress for packet {pkt_id}")
        if ts < self._ingress[pkt_id]:
            raise WorkloadError(
                f"packet {pkt_id} egressed at {ts} before ingress at "
                f"{self._ingress[pkt_id]}"
            )
        self._egress[pkt_id] = ts

    # -- statistics ------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self._egress)

    def latency_cycles(self, pkt_id: int) -> int:
        try:
            return self._egress[pkt_id] - self._ingress[pkt_id]
        except KeyError:
            raise WorkloadError(f"packet {pkt_id} has not egressed")

    def latencies_us(self, ptype: str | None = None) -> list[float]:
        """Per-packet latencies in µs, optionally filtered by type."""
        out = []
        for pkt_id, egress in self._egress.items():
            if ptype is not None and self._ptype[pkt_id] != ptype:
                continue
            cycles = egress - self._ingress[pkt_id]
            out.append(cycles / self.freq_ghz / 1_000.0)
        return out

    def mean_latency_us(self, ptype: str | None = None) -> float:
        vals = self.latencies_us(ptype)
        if not vals:
            raise WorkloadError(f"no completed packets for type {ptype!r}")
        return mean(vals)

    def std_latency_us(self, ptype: str | None = None) -> float:
        vals = self.latencies_us(ptype)
        if len(vals) < 2:
            return 0.0
        return stdev(vals)
