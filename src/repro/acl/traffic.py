"""Randomised packet traffic for the ACL pipeline.

Table IV's three fixed packets probe three specific walk depths; real
traffic sits on a continuum.  This generator draws packets whose key
fields match the rule set's address/port structure with configurable
probabilities, so walk depths — and therefore per-packet classify times —
form a distribution rather than three spikes.  Used by the per-packet
accuracy study (does the hybrid estimate *correlate* with each packet's
true cost, not just class means?).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acl.packets import Packet
from repro.acl.rules import parse_ipv4
from repro.errors import ACLError


@dataclass(frozen=True)
class TrafficMix:
    """Probabilities that a drawn packet matches each key section.

    ``p_src_match`` — source address inside 192.168.10.0/24;
    ``p_dst_match`` — destination inside 192.168.11.0/24 (given src match);
    ``p_port_match`` — ports inside the rule grid (given both addresses).
    Mismatching fields are drawn to diverge at a random byte, so shallow
    and deep early-exits both occur.
    """

    p_src_match: float = 0.6
    p_dst_match: float = 0.6
    p_port_match: float = 0.3

    def __post_init__(self) -> None:
        for p in (self.p_src_match, self.p_dst_match, self.p_port_match):
            if not 0.0 <= p <= 1.0:
                raise ACLError(f"probabilities must be in [0, 1], got {p}")


def random_traffic(
    n_packets: int,
    mix: TrafficMix = TrafficMix(),
    seed: int | np.random.Generator = 7,
    first_id: int = 1,
) -> list[Packet]:
    """Draw ``n_packets`` random packets against the Table III structure.

    ``seed`` accepts either an integer or an already-constructed
    :class:`numpy.random.Generator`, so callers threading one generator
    through a whole workload build (``repro run --seed``) can share it.
    """
    if n_packets < 1:
        raise ACLError("need at least one packet")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    src_net = parse_ipv4("192.168.10.0")
    dst_net = parse_ipv4("192.168.11.0")
    out: list[Packet] = []
    for i in range(n_packets):
        if rng.random() < mix.p_src_match:
            src = src_net | int(rng.integers(1, 255))
            if rng.random() < mix.p_dst_match:
                dst = dst_net | int(rng.integers(1, 255))
                if rng.random() < mix.p_port_match:
                    sp = int(rng.integers(1, 67))
                    dp = int(rng.integers(1, 751))
                else:
                    sp = int(rng.integers(1024, 65535))
                    dp = int(rng.integers(1024, 65535))
            else:
                # Diverge the destination at a random byte depth.
                depth = int(rng.integers(0, 3))  # byte 0, 1 or 2 differs
                dst = _diverge(dst_net, depth, rng)
                sp = int(rng.integers(1024, 65535))
                dp = int(rng.integers(1024, 65535))
        else:
            depth = int(rng.integers(0, 3))
            src = _diverge(src_net, depth, rng)
            dst = dst_net | int(rng.integers(1, 255))
            sp = int(rng.integers(1024, 65535))
            dp = int(rng.integers(1024, 65535))
        out.append(
            Packet(
                pkt_id=first_id + i,
                src_addr=src,
                dst_addr=dst,
                src_port=sp,
                dst_port=dp,
                ptype="R",  # randomised
            )
        )
    return out


def _diverge(net: int, byte_index: int, rng: np.random.Generator) -> int:
    """An address sharing ``byte_index`` leading bytes with ``net``."""
    shift = (3 - byte_index) * 8
    original = (net >> shift) & 0xFF
    candidates = [b for b in range(256) if b != original]
    wrong = int(rng.choice(candidates))
    mask_keep = (0xFFFF_FFFF << (shift + 8)) & 0xFFFF_FFFF
    tail = int(rng.integers(0, 1 << shift)) if shift else 0
    return (net & mask_keep) | (wrong << shift) | tail
