"""The DPDK ACL sample application: RX -> ACL -> TX pinned pipeline.

Paper Section IV-C: three worker threads pinned to designated cores.  RX
receives packets and pushes them into a software ring; the ACL thread
pops, checks the rules (the ``rte_acl_classify`` hot function), and pushes
survivors to the TX ring; TX sends them out the second NIC, where the
GNET tester timestamps them.

Instrumentation follows the paper exactly: only the ACL thread is marked,
"right after it retrieves a packet from the RX thread and right before it
pushes a packet to the TX thread" — the self-switching architecture makes
those two points trivial to find.  ``FnEnter/FnLeave`` markers around the
classify section exist so the Fig 9 "baseline" (selective instrumentation
of the known-bottleneck function) can run from the same source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.acl.packets import Packet
from repro.acl.rules import ACLRule
from repro.acl.tester import GNETTester
from repro.acl.trie import MultiTrieClassifier, TrieCostModel
from repro.core.symbols import AddressAllocator, SymbolTable
from repro.errors import WorkloadError
from repro.machine.block import Block
from repro.runtime.actions import Exec, FnEnter, FnLeave, IdleUntil, Mark, Pop, Push, SwitchKind
from repro.runtime.queue import SPSCQueue
from repro.runtime.thread import AppThread


@dataclass(frozen=True)
class ACLAppConfig:
    """Pipeline and cost configuration.

    ``max_rules_per_trie=203`` reproduces the paper's modified DPDK: the
    Table III rule set lands in ceil(50000/203) = 247 tries.  Set it to
    None to get vanilla DPDK's at-most-``max_tries`` behaviour.
    """

    max_rules_per_trie: int | None = 203
    max_tries: int = 8
    tries_per_block: int = 8
    inter_packet_gap_ns: float = 25_000.0
    #: Packets per rte_eth_rx_burst.  1 = the paper's setting ("packets
    #: are sent one by one ... so that DPDK does not batch them").  With
    #: batching > 1 the data-item switch marks can only bracket the whole
    #: batch — per-packet IDs inside a batch are exactly the open problem
    #: the paper defers (Section IV-C2); the batching extension bench
    #: quantifies what that granularity loss costs.
    batch_size: int = 1
    rx_uops: int = 300
    pre_uops: int = 200
    post_uops: int = 100
    tx_uops: int = 300
    ring_capacity: int = 1024
    cost_model: TrieCostModel = field(default_factory=TrieCostModel)
    freq_ghz: float = 3.0

    def __post_init__(self) -> None:
        if self.tries_per_block < 1:
            raise WorkloadError("tries_per_block must be >= 1")
        if min(self.rx_uops, self.pre_uops, self.post_uops, self.tx_uops) < 1:
            raise WorkloadError("stage costs must be >= 1 uop")
        if self.batch_size < 1:
            raise WorkloadError("batch_size must be >= 1")


class ACLApp:
    """Builds the three pinned threads around a (shareable) classifier."""

    RX_CORE = 0
    ACL_CORE = 1
    TX_CORE = 2

    #: Data-item ids for batches start here (clear of any packet id).
    BATCH_ID_BASE = 10_000_000

    def __init__(
        self,
        rules: list[ACLRule],
        packets: list[Packet],
        config: ACLAppConfig = ACLAppConfig(),
        classifier: MultiTrieClassifier | None = None,
    ) -> None:
        self.config = config
        self.packets = list(packets)
        if classifier is None:
            classifier = MultiTrieClassifier(
                rules,
                max_tries=config.max_tries,
                max_rules_per_trie=config.max_rules_per_trie,
            )
        self.classifier = classifier
        self.tester = GNETTester(
            packets,
            inter_packet_gap_ns=config.inter_packet_gap_ns,
            freq_ghz=config.freq_ghz,
        )
        alloc = AddressAllocator()
        self.rx_poll_ip = alloc.add("rx_main_loop")
        self.rx_recv_ip = alloc.add("rte_eth_rx_burst")
        self.acl_poll_ip = alloc.add("acl_main_loop")
        self.pre_ip = alloc.add("pkt_setup")
        self.classify_ip = alloc.add("rte_acl_classify")
        self.post_ip = alloc.add("pkt_verdict")
        self.tx_poll_ip = alloc.add("tx_main_loop")
        self.tx_send_ip = alloc.add("rte_eth_tx_burst")
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        self.ring_rx = SPSCQueue("ring_rx", capacity=config.ring_capacity)
        self.ring_tx = SPSCQueue("ring_tx", capacity=config.ring_capacity)
        #: pkt_id -> verdict ('allow'/'drop'), filled during the run.
        self.verdicts: dict[int, str] = {}
        #: batch item id -> tuple of member packet ids (batching mode).
        self.batch_members: dict[int, tuple[int, ...]] = {}

    # -- thread bodies -------------------------------------------------------
    def _rx_body(self):
        batch: list = []
        for pkt in self.packets:
            yield IdleUntil(self.tester.ingress_ts(pkt.pkt_id))
            yield Exec(Block(ip=self.rx_recv_ip, uops=self.config.rx_uops, branches=10))
            batch.append(pkt)
            if len(batch) >= self.config.batch_size:
                yield Push(self.ring_rx, tuple(batch))
                batch = []
        if batch:
            yield Push(self.ring_rx, tuple(batch))
        yield Push(self.ring_rx, None)

    def _classify_actions(self, pkt):
        """The per-packet classify work (shared by both batch modes)."""
        cfg = self.config
        cm = cfg.cost_model
        yield Exec(Block(ip=self.pre_ip, uops=cfg.pre_uops, branches=8))
        result = self.classifier.classify(*pkt.key)
        yield FnEnter(self.classify_ip)
        visits = result.visits
        for start in range(0, visits.shape[0], cfg.tries_per_block):
            chunk = visits[start : start + cfg.tries_per_block]
            uops, stalls = cm.chunk_cost(chunk)
            yield Exec(
                Block(
                    ip=self.classify_ip,
                    uops=uops,
                    branches=int(chunk.sum()),
                    extra_cycles=stalls,
                )
            )
        yield FnLeave(self.classify_ip)
        yield Exec(Block(ip=self.post_ip, uops=cfg.post_uops, branches=4))
        self.verdicts[pkt.pkt_id] = result.action
        if result.action != "drop":
            yield Push(self.ring_tx, pkt)

    def _acl_body(self):
        batch_seq = 0
        while True:
            batch = yield Pop(self.ring_rx)
            if batch is None:
                yield Push(self.ring_tx, None)
                return
            if len(batch) == 1:
                # The paper's setting: the data-item is the packet.
                pkt = batch[0]
                yield Mark(SwitchKind.ITEM_START, pkt.pkt_id)
                yield from self._classify_actions(pkt)
                yield Mark(SwitchKind.ITEM_END, pkt.pkt_id)
            else:
                # Batching: marks can only bracket the whole burst — the
                # per-packet granularity inside is lost (Section IV-C2).
                batch_id = self.BATCH_ID_BASE + batch_seq
                batch_seq += 1
                self.batch_members[batch_id] = tuple(p.pkt_id for p in batch)
                yield Mark(SwitchKind.ITEM_START, batch_id)
                for pkt in batch:
                    yield from self._classify_actions(pkt)
                yield Mark(SwitchKind.ITEM_END, batch_id)

    def _tx_body(self):
        while True:
            pkt = yield Pop(self.ring_tx)
            if pkt is None:
                return
            outcome = yield Exec(
                Block(ip=self.tx_send_ip, uops=self.config.tx_uops, branches=10)
            )
            self.tester.record_egress(pkt.pkt_id, outcome.end)

    # -- public ----------------------------------------------------------------
    def threads(self) -> list[AppThread]:
        """The three pinned threads (RX, ACL, TX)."""
        return [
            AppThread("RX", self.RX_CORE, self._rx_body, self.rx_poll_ip),
            AppThread("ACL", self.ACL_CORE, self._acl_body, self.acl_poll_ip),
            AppThread("TX", self.TX_CORE, self._tx_body, self.tx_poll_ip),
        ]

    def group_of(self, pkt_id: int) -> str:
        """Similarity key for diagnosis: the packet's Table IV type."""
        for p in self.packets:
            if p.pkt_id == pkt_id:
                return p.ptype
        raise WorkloadError(f"unknown packet id {pkt_id}")
