"""Packets and the paper's Table IV test packet types.

* Type A — both addresses match rules; tries are walked through the port
  section too (longest walk, highest latency).
* Type B — source matches, destination does not; the walk stops inside
  the destination-address section.
* Type C — nothing matches; the walk stops inside the source-address
  section (shortest walk, lowest latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acl.rules import parse_ipv4
from repro.errors import ACLError


@dataclass(frozen=True)
class Packet:
    """A minimal TCP/IPv4 packet: the classification 4-tuple plus identity."""

    pkt_id: int
    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    ptype: str = "?"

    def __post_init__(self) -> None:
        if self.pkt_id < 0:
            raise ACLError(f"packet id must be >= 0, got {self.pkt_id}")
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ACLError(f"invalid port {port}")

    @property
    def key(self) -> tuple[int, int, int, int]:
        return (self.src_addr, self.dst_addr, self.src_port, self.dst_port)


#: Table IV: the three test packet 4-tuples.
PACKET_TYPES: dict[str, tuple[str, str, int, int]] = {
    "A": ("192.168.10.4", "192.168.11.5", 10001, 10002),
    "B": ("192.168.10.4", "192.168.22.2", 10001, 10002),
    "C": ("192.168.12.4", "192.168.22.2", 10001, 10002),
}


def make_packet(ptype: str, pkt_id: int) -> Packet:
    """One Table IV packet of the given type."""
    try:
        src, dst, sp, dp = PACKET_TYPES[ptype]
    except KeyError:
        raise ACLError(f"unknown packet type {ptype!r}; choose from A/B/C")
    return Packet(
        pkt_id=pkt_id,
        src_addr=parse_ipv4(src),
        dst_addr=parse_ipv4(dst),
        src_port=sp,
        dst_port=dp,
        ptype=ptype,
    )


def make_test_stream(per_type: int, types: str = "ABC") -> list[Packet]:
    """An interleaved A/B/C/A/B/C... stream, ``per_type`` of each type.

    Interleaving (rather than blocks per type) keeps the experiment honest:
    consecutive packets genuinely differ, so per-packet attribution cannot
    ride on temporal locality.
    """
    if per_type < 1:
        raise ACLError("per_type must be >= 1")
    if not types or any(t not in PACKET_TYPES for t in types):
        raise ACLError(f"types must be drawn from {sorted(PACKET_TYPES)}")
    out: list[Packet] = []
    pkt_id = 1
    for _ in range(per_type):
        for t in types:
            out.append(make_packet(t, pkt_id))
            pkt_id += 1
    return out
