"""Byte-wise multi-trie ACL classifier modelled on DPDK's ``rte_acl``.

The three implementation facts the paper identifies as the root cause of
the fluctuation (Section IV-C1) are all present:

1. Rules are stored in trie structures for efficiency with large rule
   counts.
2. Rules are divided into **multiple** tries; vanilla DPDK caps the count
   at 8, the paper's modified build allows more (247 for Table III).  The
   cap is a constructor knob here.
3. The trie key is the 12 bytes (src addr, dst addr, src+dst ports) of the
   TCP/IPv4 header; a lookup walks byte by byte and stops at the first
   byte no rule covers.  The *number of key bytes examined* — per trie —
   is what differs between packets, and the difference is amplified by
   the number of tries.

The walk is a real data-structure traversal; visit counts are measured,
not scripted.  :class:`TrieCostModel` converts measured visits into block
costs for the simulated machine.

Limitations (documented, test-enforced): CIDR prefix lengths must be
multiples of 8, and a trie node cannot mix an exact edge with a wildcard
edge at the same position (rte_acl's internal range expansion removes the
need; our rule sets never require it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acl.rules import ACLRule
from repro.errors import ACLError

KEY_BYTES = 12  # 4 src addr + 4 dst addr + 2 src port + 2 dst port

#: Sentinel edge matching any byte value.
_WILDCARD = -1


def key_bytes(src_addr: int, dst_addr: int, src_port: int, dst_port: int) -> list[int]:
    """The 12-byte classification key, most-significant byte first."""
    out: list[int] = []
    for v, n in ((src_addr, 4), (dst_addr, 4), (src_port, 2), (dst_port, 2)):
        for shift in range((n - 1) * 8, -8, -8):
            out.append((v >> shift) & 0xFF)
    return out


def _rule_key_pattern(rule: ACLRule) -> list[int]:
    """A rule's 12-position pattern: byte values or _WILDCARD."""
    pattern: list[int] = []
    for (net, plen) in (rule.src_net, rule.dst_net):
        if plen % 8 != 0:
            raise ACLError(
                f"prefix length {plen} not a multiple of 8 (byte-wise trie limitation)"
            )
        nbytes = plen // 8
        for i in range(4):
            if i < nbytes:
                pattern.append((net >> ((3 - i) * 8)) & 0xFF)
            else:
                pattern.append(_WILDCARD)
    for port in (rule.src_port, rule.dst_port):
        pattern.append((port >> 8) & 0xFF)
        pattern.append(port & 0xFF)
    return pattern


class _Node:
    __slots__ = ("children", "wildcard", "rule")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.wildcard: _Node | None = None
        self.rule: ACLRule | None = None


class Trie:
    """One trie holding a subset of the rules."""

    def __init__(self) -> None:
        self._root = _Node()
        self.n_rules = 0
        self.n_nodes = 1

    def insert(self, rule: ACLRule) -> None:
        node = self._root
        for b in _rule_key_pattern(rule):
            if b == _WILDCARD:
                if node.children:
                    raise ACLError(
                        "cannot add a wildcard edge where exact edges exist "
                        "(mixed specificity; see module docstring)"
                    )
                if node.wildcard is None:
                    node.wildcard = _Node()
                    self.n_nodes += 1
                node = node.wildcard
            else:
                if node.wildcard is not None:
                    raise ACLError(
                        "cannot add an exact edge where a wildcard edge exists "
                        "(mixed specificity; see module docstring)"
                    )
                child = node.children.get(b)
                if child is None:
                    child = _Node()
                    node.children[b] = child
                    self.n_nodes += 1
                node = child
        if node.rule is None or rule.priority > node.rule.priority:
            node.rule = rule
        self.n_rules += 1

    def lookup(self, key: list[int]) -> tuple[ACLRule | None, int]:
        """Walk the key; return (matched rule or None, byte lookups done)."""
        node = self._root
        visits = 0
        for b in key:
            visits += 1
            nxt = node.wildcard if node.wildcard is not None else node.children.get(b)
            if nxt is None:
                return (None, visits)
            node = nxt
        return (node.rule, visits)


@dataclass(frozen=True)
class ClassifyResult:
    """Outcome of classifying one packet against every trie."""

    matched: ACLRule | None
    visits: np.ndarray  # byte lookups per trie
    key: tuple[int, int, int, int]

    @property
    def total_visits(self) -> int:
        return int(self.visits.sum())

    @property
    def action(self) -> str:
        """'allow' when no rule matched (default-permit, as in the paper's
        firewall where unmatched packets are forwarded)."""
        return self.matched.action if self.matched is not None else "allow"


@dataclass(frozen=True)
class TrieCostModel:
    """Cycles/uops charged per measured trie work (calibration constants).

    Defaults put the Table III + Table IV configuration at the paper's
    Fig 9 scale on the 3 GHz machine: type A ~ 12.8 µs, type C ~ 5.9 µs
    with 247 tries (A walks 9 bytes per trie — it fails at the first port
    byte; B walks 7; C walks 3), at a realistic ~2.3 retired uops/cycle
    inside the classify loop (so UOPS_RETIRED-driven sample intervals
    match real hardware).
    """

    per_visit_uops: int = 32
    per_visit_stall_cycles: int = 6
    per_trie_uops: int = 64
    per_trie_stall_cycles: int = 14

    def chunk_cost(self, visits: np.ndarray) -> tuple[int, int]:
        """(uops, stall cycles) for classifying one packet against a chunk
        of tries whose visit counts are given."""
        n_tries = int(visits.shape[0])
        total_visits = int(visits.sum())
        uops = n_tries * self.per_trie_uops + total_visits * self.per_visit_uops
        stalls = (
            n_tries * self.per_trie_stall_cycles
            + total_visits * self.per_visit_stall_cycles
        )
        return uops, stalls


class MultiTrieClassifier:
    """Rules partitioned across tries, classified against all of them.

    Parameters
    ----------
    rules:
        The rule list (insertion order = partitioning order, as in
        ``rte_acl_add_rules``).
    max_tries:
        Vanilla-DPDK-style cap: rules are split evenly into at most this
        many tries.  Ignored when ``max_rules_per_trie`` is given.
    max_rules_per_trie:
        The paper's modification: uncap the trie count and bound each
        trie's rule count instead (203 yields 247 tries for Table III).
    """

    def __init__(
        self,
        rules: list[ACLRule],
        max_tries: int = 8,
        max_rules_per_trie: int | None = None,
    ) -> None:
        if not rules:
            raise ACLError("need at least one rule")
        if max_rules_per_trie is not None:
            if max_rules_per_trie < 1:
                raise ACLError("max_rules_per_trie must be >= 1")
            chunk = max_rules_per_trie
        else:
            if max_tries < 1:
                raise ACLError("max_tries must be >= 1")
            chunk = -(-len(rules) // max_tries)  # ceil division
        self.tries: list[Trie] = []
        for start in range(0, len(rules), chunk):
            trie = Trie()
            for rule in rules[start : start + chunk]:
                trie.insert(rule)
            self.tries.append(trie)
        self.n_rules = len(rules)
        self._memo: dict[tuple[int, int, int, int], ClassifyResult] = {}

    @property
    def n_tries(self) -> int:
        return len(self.tries)

    @property
    def n_nodes(self) -> int:
        return sum(t.n_nodes for t in self.tries)

    def classify(
        self, src_addr: int, dst_addr: int, src_port: int, dst_port: int
    ) -> ClassifyResult:
        """Classify one 4-tuple against every trie (memoised per key —
        identical packets do identical walks, so the result is reusable)."""
        key_t = (src_addr, dst_addr, src_port, dst_port)
        hit = self._memo.get(key_t)
        if hit is not None:
            return hit
        key = key_bytes(*key_t)
        visits = np.empty(len(self.tries), dtype=np.int64)
        best: ACLRule | None = None
        for i, trie in enumerate(self.tries):
            rule, v = trie.lookup(key)
            visits[i] = v
            if rule is not None and (best is None or rule.priority > best.priority):
                best = rule
        result = ClassifyResult(matched=best, visits=visits, key=key_t)
        self._memo[key_t] = result
        return result
