"""ACL rules and the paper's Table III rule set.

A rule matches on an IPv4 5-tuple subset: source network (CIDR),
destination network (CIDR), exact source port, exact destination port.
The paper's set: src 192.168.10.0/24, dst 192.168.11.0/24, source ports
1..666 each with destination ports 1..750, plus source port 667 with
destination ports 1..500 — 666 * 750 + 500 = 50 000 rules, all Drop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ACLError


def parse_ipv4(text: str) -> int:
    """Dotted-quad string -> 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ACLError(f"invalid IPv4 address {text!r}")
    value = 0
    for p in parts:
        try:
            b = int(p)
        except ValueError:
            raise ACLError(f"invalid IPv4 address {text!r}")
        if not 0 <= b <= 255:
            raise ACLError(f"invalid IPv4 address {text!r}")
        value = (value << 8) | b
    return value


def parse_cidr(text: str) -> tuple[int, int]:
    """'a.b.c.d/p' -> (network address, prefix length)."""
    if "/" in text:
        addr_s, _, plen_s = text.partition("/")
        try:
            plen = int(plen_s)
        except ValueError:
            raise ACLError(f"invalid CIDR {text!r}")
    else:
        addr_s, plen = text, 32
    if not 0 <= plen <= 32:
        raise ACLError(f"invalid prefix length in {text!r}")
    addr = parse_ipv4(addr_s)
    mask = (0xFFFF_FFFF << (32 - plen)) & 0xFFFF_FFFF if plen else 0
    return (addr & mask, plen)


def format_ipv4(addr: int) -> str:
    """32-bit integer -> dotted quad."""
    return ".".join(str((addr >> s) & 0xFF) for s in (24, 16, 8, 0))


@dataclass(frozen=True)
class ACLRule:
    """One classification rule (the paper's Table III row shape).

    ``src_net``/``dst_net`` are (network, prefix-length) pairs; ports are
    exact 16-bit values (what Table III enumerates).  ``action`` follows
    DPDK's convention of a user-defined verdict string.
    """

    src_net: tuple[int, int]
    dst_net: tuple[int, int]
    src_port: int
    dst_port: int
    action: str = "drop"
    priority: int = 0

    def __post_init__(self) -> None:
        for net, plen in (self.src_net, self.dst_net):
            if not 0 <= plen <= 32:
                raise ACLError(f"invalid prefix length {plen}")
            if not 0 <= net <= 0xFFFF_FFFF:
                raise ACLError(f"invalid network {net:#x}")
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ACLError(f"invalid port {port}")

    @classmethod
    def from_strings(
        cls,
        src: str,
        dst: str,
        src_port: int,
        dst_port: int,
        action: str = "drop",
        priority: int = 0,
    ) -> "ACLRule":
        return cls(parse_cidr(src), parse_cidr(dst), src_port, dst_port, action, priority)

    def matches(self, src_addr: int, dst_addr: int, src_port: int, dst_port: int) -> bool:
        """Reference (linear-scan) semantics; the trie must agree with this."""
        for (net, plen), addr in ((self.src_net, src_addr), (self.dst_net, dst_addr)):
            mask = (0xFFFF_FFFF << (32 - plen)) & 0xFFFF_FFFF if plen else 0
            if (addr & mask) != net:
                return False
        return self.src_port == src_port and self.dst_port == dst_port


def paper_ruleset(literal_table_iii: bool = False) -> list[ACLRule]:
    """The Table III rule set: a dense src-port x dst-port grid, all Drop.

    Table III is internally inconsistent: it lists source ports 1..666 x
    destination ports 1..750 plus port 667 x 1..500 and claims the total
    is "666 x 750 + 500 = 50,000" — but that product is 500,000.  The
    quantitative anchors the evaluation actually uses are **50 000 rules**
    and **247 tries**, so the default here keeps those (source ports 1..66
    x destination ports 1..750, plus port 67 x 1..500 = 50 000; with
    max_rules_per_trie=203 that is ceil(50000/203) = 247 tries).

    Pass ``literal_table_iii=True`` for the half-million-rule literal
    reading (slow to build, same walk lengths per packet — walk length
    depends on the shared address prefixes, not the grid size).
    """
    src = parse_cidr("192.168.10.0/24")
    dst = parse_cidr("192.168.11.0/24")
    last_sp = 667 if literal_table_iii else 67
    rules: list[ACLRule] = []
    for sp in range(1, last_sp):
        for dp in range(1, 751):
            rules.append(ACLRule(src, dst, sp, dp))
    for dp in range(1, 501):
        rules.append(ACLRule(src, dst, last_sp, dp))
    if not literal_table_iii:
        assert len(rules) == 50_000
    return rules


def small_ruleset(n_src_ports: int = 10, n_dst_ports: int = 10) -> list[ACLRule]:
    """A scaled-down Table III shape for fast tests."""
    if n_src_ports < 1 or n_dst_ports < 1:
        raise ACLError("port counts must be >= 1")
    src = parse_cidr("192.168.10.0/24")
    dst = parse_cidr("192.168.11.0/24")
    return [
        ACLRule(src, dst, sp, dp)
        for sp in range(1, n_src_ports + 1)
        for dp in range(1, n_dst_ports + 1)
    ]
