"""DPDK-like Access Control List subsystem (paper Section IV-C).

A real (not scripted) reimplementation of the behaviour that makes the
paper's ACL case study fluctuate:

* :mod:`~repro.acl.rules` — ACL rules and the Table III 50 000-rule set.
* :mod:`~repro.acl.trie` — the byte-wise multi-trie classifier modelled on
  ``rte_acl``: rules are partitioned into many tries, a lookup walks each
  trie over the 12-byte key (src addr, dst addr, src/dst ports) and stops
  at the first non-matching byte — so the per-packet cost depends on *how
  far into the key* each trie can match, which is the fluctuation.
* :mod:`~repro.acl.packets` — packets and the Table IV type A/B/C test
  generators.
* :mod:`~repro.acl.app` — the RX -> ACL -> TX pinned-thread pipeline.
* :mod:`~repro.acl.tester` — the GNET-like hardware tester measuring
  end-to-end latency outside the traced program.
"""

from repro.acl.app import ACLApp, ACLAppConfig
from repro.acl.packets import PACKET_TYPES, Packet, make_packet, make_test_stream
from repro.acl.rules import ACLRule, paper_ruleset
from repro.acl.tester import GNETTester
from repro.acl.trie import MultiTrieClassifier, TrieCostModel

__all__ = [
    "ACLApp",
    "ACLAppConfig",
    "ACLRule",
    "GNETTester",
    "MultiTrieClassifier",
    "PACKET_TYPES",
    "Packet",
    "TrieCostModel",
    "make_packet",
    "make_test_stream",
    "paper_ruleset",
]
