"""The supported Python surface of the tracer, in eleven verbs.

::

    import repro.api as repro

    session = repro.record("acl", out="run.npz", items=60)   # trace a workload
    tf      = repro.load("run.npz")                          # open a container
    result  = repro.integrate("run.npz")                     # stream-integrate
    report  = repro.diagnose("run.npz")                      # find outlier items
    why     = repro.explain("run.npz", 17)                   # blocked-by chain
    delta   = repro.diff("base.npz", "regressed.npz")        # localize a regression
    rec     = repro.recover("run.npz")                       # replay a crash journal
    rep     = repro.push("run.npz", "run-1", "unix:/s")      # ship to the daemon
    store   = repro.open_store("traces/")                    # the multi-run store
    srpt    = repro.sync("primary/", "follower/")            # anti-entropy scrub
    rrpt    = repro.retire("traces/", max_runs=100)          # retention/compaction

Everything here is a thin, *stable* wrapper over the engine modules
(:mod:`repro.session`, :mod:`repro.core.streaming`,
:mod:`repro.analysis.diagnose`, :mod:`repro.analysis.differential`).
The deep modules remain importable for unusual assemblies, but the
package-level re-exports of ``repro.core`` / ``repro.machine`` are
deprecated in favour of this facade; this module itself never imports
through a deprecated path, so ``python -W error::DeprecationWarning``
code can use it freely.

Ingestion knobs travel in one :class:`IngestOptions` object everywhere.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Callable, Hashable, Mapping

from repro.analysis import depgraph
from repro.analysis.diagnose import (
    DiagnosisReport,
    ItemVerdict,
    StreamingDiagnoser,
    diagnose_trace,
)
from repro.analysis.differential import DiffReport, diff_traces
from repro.core.durable import RecoveryReport
from repro.core.durable import recover as _recover_journal
from repro.core.hybrid import HybridTrace
from repro.core.integrity import degraded_items_for_span
from repro.core.options import IngestOptions
from repro.core.streaming import IngestResult, ingest_trace
from repro.core.tracefile import TraceFile, TraceReader, load_trace
from repro.errors import ReproError
from repro.machine.events import resolve_event
from repro.machine.overload import OverloadPolicy
from repro.obs.anomaly import AnomalyConfig, AnomalyEvent, AnomalyLog
from repro.session import TraceSession
from repro.session import trace as _run_trace
from repro.workloads import build_workload

__all__ = [
    "AnomalyConfig",
    "AnomalyEvent",
    "AnomalyLog",
    "IngestOptions",
    "OverloadPolicy",
    "record",
    "load",
    "integrate",
    "diagnose",
    "explain",
    "diff",
    "recover",
    "open_store",
    "push",
    "sync",
    "retire",
]


def record(
    workload,
    *,
    out: str | pathlib.Path | None = None,
    items: int = 60,
    full_rules: bool = False,
    seed: int | None = None,
    reset_value: int = 8000,
    event="uops",
    sample_cores: list[int] | None = None,
    double_buffered: bool = False,
    groups: Mapping[int, Hashable] | None = None,
    chunk_size: int | None = None,
    compress: bool = True,
    checksums: bool = True,
    meta: dict | None = None,
    durable: bool = False,
    checkpoint_every_marks: int = 256,
    overload: OverloadPolicy | None = None,
    anomaly: AnomalyConfig | None = None,
    flight_dir: str | pathlib.Path | None = None,
    flight_capacity: int = 16,
) -> TraceSession:
    """Run a workload under the hybrid tracer; optionally save the trace.

    ``workload`` is a registered name (``"sampleapp"``, ``"nginx"``,
    ``"acl"``, ``"dbpool"`` — see :func:`repro.workloads.build_workload`)
    or any app object following the
    :class:`~repro.session.TraceableApp` convention.  ``event`` accepts
    an :class:`~repro.machine.events.HWEvent` or a short alias like
    ``"uops"``.

    When ``out`` is given the trace container is written with metadata
    the offline verbs understand: the workload name, ``reset_value``,
    the event, and the item → similarity-group map that
    :func:`diagnose` baselines within (from the named workload's
    definition, or ``groups=`` for custom apps).

    ``seed`` threads one :class:`numpy.random.Generator` seed through a
    *named* workload's randomness (see
    :func:`repro.workloads.build_workload`), making the run
    bit-reproducible; it is recorded in the container metadata.  It is
    ignored for pre-built app objects, whose randomness was already
    drawn at construction.

    ``durable=True`` records through the crash-safe journal
    (:class:`~repro.core.durable.DurableTraceWriter`, checkpointed every
    ``checkpoint_every_marks`` switch marks): a kill at any instant
    leaves a journal :func:`recover` turns into a valid container.
    Requires ``out``.  ``overload`` opts into overload-graceful capture
    (see :class:`~repro.machine.overload.OverloadPolicy`).

    ``anomaly`` (an enabled :class:`~repro.obs.anomaly.AnomalyConfig`)
    turns on the online invariant checkers; violations land on
    ``session.anomalies``.  ``flight_dir`` additionally arms the flight
    recorder: recent capture checkpoints ride a bounded in-memory ring
    of ``flight_capacity`` segments, and an anomaly at or above
    ``anomaly.trigger_severity`` seals it into a tagged incident bundle
    under ``flight_dir`` (``session.flight.incidents``) that
    :func:`diagnose` and :func:`push` consume like any container.
    """
    hw_event = resolve_event(event)
    if durable and out is None:
        raise ReproError("durable=True needs out= (the container to journal)")
    if flight_dir is not None and (anomaly is None or not anomaly.enabled):
        raise ReproError(
            "flight_dir needs an enabled anomaly config (nothing would "
            "trigger the recorder)"
        )
    if isinstance(workload, str):
        app, wl_groups = build_workload(
            workload, items=items, full_rules=full_rules, seed=seed
        )
        name = workload
    else:
        app, wl_groups = workload, dict(groups or {})
        name = type(workload).__name__
    if groups is not None:
        wl_groups = dict(groups)
    full_meta = {
        "workload": name,
        "reset_value": reset_value,
        "event": event if isinstance(event, str) else hw_event.value,
        "groups": {str(k): str(v) for k, v in wl_groups.items()},
    }
    if seed is not None:
        full_meta["seed"] = int(seed)
    if meta:
        full_meta.update(meta)
    session = _run_trace(
        app,
        sample_cores=sample_cores,
        reset_value=reset_value,
        event=hw_event,
        double_buffered=double_buffered,
        overload=overload,
        durable_out=out if durable else None,
        checkpoint_every_marks=checkpoint_every_marks,
        durable_meta=full_meta if durable else None,
        anomaly=anomaly,
        flight_dir=flight_dir,
        flight_capacity=flight_capacity,
    )
    if out is not None and not durable:
        session.save(
            out,
            meta=full_meta,
            chunk_size=chunk_size,
            compress=compress,
            checksums=checksums,
        )
    return session


def load(path: str | pathlib.Path) -> TraceFile:
    """Open a trace container whole (symbols, samples, switches, meta)."""
    return load_trace(path)


def integrate(
    path: str | pathlib.Path,
    options: IngestOptions | None = None,
    *,
    cores: list[int] | None = None,
    diagnoser=None,
) -> IngestResult:
    """Stream-integrate a container into per-core + merged traces."""
    return ingest_trace(
        path,
        options=options if options is not None else IngestOptions(),
        cores=cores,
        diagnoser=diagnoser,
    )


# ---------------------------------------------------------------------------
# Source plumbing shared by diagnose()/diff()


def _meta_of(source) -> dict:
    if isinstance(source, (str, pathlib.Path)):
        with TraceReader(source) as reader:
            return reader.meta
    if isinstance(source, TraceFile):
        return source.meta
    return {}


def _pick_core(source, requested: int | None) -> int | None:
    """Default core: the one with the most switch records (the worker)."""
    if requested is not None:
        return requested
    if isinstance(source, (str, pathlib.Path)):
        with TraceReader(source) as reader:
            return max(reader.sample_cores, key=reader.n_switch_records)
    if isinstance(source, TraceFile):
        return max(source.sample_cores, key=lambda c: len(source.switches(c)))
    return None


def _groups_from_meta(meta: dict) -> Callable[[int], Hashable] | None:
    raw = meta.get("groups") or {}
    if not raw:
        return None
    groups = {int(k): v for k, v in raw.items()}
    return lambda i: groups.get(i, "?")


def _degraded_items(trace: HybridTrace, meta: dict, core: int | None) -> set[int]:
    """Item ids whose windows overlap capture losses recorded in ``meta``.

    Two metadata blocks describe lost sample data: ``capture.shed_spans``
    (overload shedding during the run) and ``recovery.lost_spans``
    (segments a crash recovery could not salvage).  Both are per-core
    ``[lo, hi]`` timestamp spans with ``None`` meaning unbounded.
    """
    spans: list[tuple[int | None, int | None]] = []
    for block, key in (("capture", "shed_spans"), ("recovery", "lost_spans")):
        per_core = (meta.get(block) or {}).get(key) or {}
        for c, pairs in per_core.items():
            if core is not None and int(c) != int(core):
                continue
            spans.extend((lo, hi) for lo, hi in pairs)
    if not spans:
        return set()
    windows = trace.window_columns
    items: set[int] = set()
    for lo, hi in spans:
        items.update(degraded_items_for_span(windows, lo, hi))
    return items


def _waits_of(source) -> dict:
    """Recorded wait edges of a container keyed by core — ``{}`` when the
    source predates the optional wait member (v1/v2 containers, journal
    recoveries, in-memory traces).  Never an error."""
    if isinstance(source, (str, pathlib.Path)):
        with TraceReader(source) as reader:
            return {c: reader.wait_columns(c) for c in reader.wait_cores}
    if isinstance(source, TraceFile):
        return {c: source.waits(c) for c in source.wait_cores}
    return {}


def _attach_blocked_by(
    report: DiagnosisReport, trace: HybridTrace, waits_by_core: dict, core: int | None
) -> DiagnosisReport:
    """Attach waiting-dependency chains to every verdict with one.

    A chain is computed over the item's window hull on the analysis
    core, following blockers across cores (the convoy's upstream); items
    that never waited keep an empty ``blocked_by``.
    """
    if not waits_by_core or core is None:
        return report
    windows = trace.window_columns
    verdicts = []
    changed = False
    for v in report.verdicts:
        span = depgraph.window_of_item(windows, v.item_id)
        if span is not None:
            chain = depgraph.blocked_by_chain(
                waits_by_core, core, span[0], span[1], symtab=trace.symtab
            )
            if chain:
                v = dataclasses.replace(
                    v, blocked_by=tuple(h.to_dict() for h in chain)
                )
                changed = True
        verdicts.append(v)
    if not changed:
        return report
    return dataclasses.replace(report, verdicts=tuple(verdicts))


def _item_waits_for(source, trace: HybridTrace, core: int | None):
    """Per-item wait-cycle totals of one run, or None without wait data."""
    if core is None:
        return None
    w = _waits_of(source).get(core)
    if w is None or len(w) == 0:
        return None
    _ids, totals = depgraph.item_wait_cycles(w, trace.window_columns)
    return totals


def _one_shot_trace(source, core: int | None) -> HybridTrace:
    if isinstance(source, HybridTrace):
        return source
    if isinstance(source, (str, pathlib.Path)):
        source = load_trace(source)
    if isinstance(source, TraceFile):
        use = core if core is not None else _pick_core(source, None)
        return source.integrate(use)
    raise ReproError(
        f"cannot diagnose a {type(source).__name__}; pass a path, a "
        "TraceFile, or a HybridTrace"
    )


def diagnose(
    source,
    *,
    group_of: Mapping[int, Hashable] | Callable[[int], Hashable] | None = None,
    core: int | None = None,
    stream: bool = False,
    options: IngestOptions | None = None,
    method: str = "mad",
    k_sigma: float = 3.5,
    min_ratio: float = 1.2,
    min_samples: int = 2,
    reset_value: int | None = None,
    on_verdict: Callable[[ItemVerdict], None] | None = None,
) -> DiagnosisReport:
    """Classify every data-item against its group baseline; name culprits.

    ``source`` is a container path, a loaded :class:`TraceFile`, or an
    already-integrated :class:`HybridTrace`.  The similarity grouping
    defaults to the ``groups`` map recorded in the container's metadata
    (see :func:`record`); without either, the whole trace is one group.
    ``reset_value`` likewise defaults to the recorded one.

    ``stream=True`` ingests the container chunk by chunk and emits
    verdicts *while streaming* through ``on_verdict`` (running
    baselines; see :class:`~repro.analysis.diagnose.StreamingDiagnoser`);
    the returned report is still computed from the finalized trace, so
    it is identical to the one-shot result on the same data.

    When the container records capture losses (samples shed under
    overload, spans a crash recovery could not salvage), the affected
    items come back with ``degraded=True`` instead of being silently
    misattributed from incomplete evidence.

    When the container carries the optional wait-edge member (see
    :mod:`repro.runtime.waitedge`), every verdict whose item waited gets
    a ``blocked_by`` chain — the waiting-dependency path from the item's
    core through the queue or lock to the function that held it up (see
    :func:`explain` for the one-item view).  Containers without the
    member yield empty chains, never an error.
    """
    meta = _meta_of(source)
    if group_of is None:
        group_of = _groups_from_meta(meta)
    if reset_value is None:
        rv = meta.get("reset_value")
        reset_value = int(rv) if rv is not None else None
    use_core = _pick_core(source, core) if not isinstance(source, HybridTrace) else core
    if stream:
        if isinstance(source, HybridTrace):
            raise ReproError("stream=True needs a container path, not a trace")
        path = source if isinstance(source, (str, pathlib.Path)) else None
        if path is None:
            raise ReproError("stream=True needs a container path")
        sd = StreamingDiagnoser(
            group_of,
            k_sigma=k_sigma,
            min_ratio=min_ratio,
            reset_value=reset_value,
            on_verdict=on_verdict,
        )
        result = ingest_trace(
            path,
            options=options if options is not None else IngestOptions(),
            cores=[use_core],
            diagnoser=sd,
        )
        trace = result.per_core[use_core]
    else:
        trace = _one_shot_trace(source, use_core)
    report = diagnose_trace(
        trace,
        group_of,
        method=method,
        k_sigma=k_sigma,
        min_ratio=min_ratio,
        min_samples=min_samples,
        reset_value=reset_value,
        degraded_items=_degraded_items(trace, meta, use_core) or None,
    )
    return _attach_blocked_by(report, trace, _waits_of(source), use_core)


def explain(
    source,
    item: int,
    *,
    core: int | None = None,
    group_of: Mapping[int, Hashable] | Callable[[int], Hashable] | None = None,
    method: str = "mad",
    k_sigma: float = 3.5,
    min_ratio: float = 1.2,
    min_samples: int = 2,
    reset_value: int | None = None,
) -> dict:
    """Why is this item slow?  One item's verdict plus blocked-by chain.

    Runs the same classification as :func:`diagnose` and returns a plain
    dict for item ``item``: the verdict fields, the function
    attributions (for outliers), the ``blocked_by`` waiting-dependency
    chain, and a human-readable ``why`` rendering of it.  The dict
    carries the versioned report envelope (``schema="explain"``), so it
    serializes directly.

    Items in containers without recorded wait edges come back with an
    empty chain and ``why`` saying so — never an error — which keeps the
    verb valid on v1/v2 containers and journal recoveries.
    """
    from repro.analysis.report import envelope

    item = int(item)
    report = diagnose(
        source,
        group_of=group_of,
        core=core,
        method=method,
        k_sigma=k_sigma,
        min_ratio=min_ratio,
        min_samples=min_samples,
        reset_value=reset_value,
    )
    verdict = next((v for v in report.verdicts if v.item_id == item), None)
    if verdict is None:
        known = sorted(v.item_id for v in report.verdicts)
        raise ReproError(
            f"item {item} has no windows in this trace "
            f"(items: {known[:10]}{'...' if len(known) > 10 else ''})"
        )
    chain = [dict(h) for h in verdict.blocked_by]
    hops = tuple(depgraph.WaitHop(**h) for h in chain)
    payload = {
        "item_id": verdict.item_id,
        "group": str(verdict.group),
        "total_cycles": verdict.total_cycles,
        "center_cycles": verdict.center_cycles,
        "deviation": verdict.deviation,
        "is_outlier": verdict.is_outlier,
        "excess_cycles": verdict.excess_cycles,
        "degraded": verdict.degraded,
        "attributions": [
            {
                "fn": a.fn_name,
                "excess_cycles": a.excess_cycles,
                "share": a.share,
                "n_samples": a.n_samples,
                "confidence": a.confidence,
            }
            for a in verdict.attributions
        ],
        "blocked_by": chain,
        "why": depgraph.describe_chain(hops),
    }
    return envelope(payload, kind="explain")


def recover(
    source,
    out: str | pathlib.Path | None = None,
    *,
    policy: str = "quarantine",
    salvage_unsealed: bool = False,
) -> RecoveryReport:
    """Replay a crashed capture's recording journal into a valid container.

    ``source`` is the journal directory a durable :func:`record` left
    behind (``<out>.journal``), or the container path whose journal
    sibling should be replayed; ``out`` defaults to the path the journal
    manifest recorded.  The default ``policy="quarantine"`` salvages
    every sealed segment that validates and reports the rest as
    :class:`~repro.core.integrity.Defect` records on the returned
    report's ``quarantine`` log; ``"strict"`` raises on any damage.
    ``salvage_unsealed`` additionally admits segments that were fully
    written but never committed to the journal.

    Replay is idempotent and the result loads cleanly under
    ``--on-corruption strict``; lost sample spans land in the
    container's ``recovery`` metadata so :func:`diagnose` flags the
    affected items as degraded.
    """
    return _recover_journal(
        source, out=out, policy=policy, salvage_unsealed=salvage_unsealed
    )


def diff(
    base,
    other,
    *,
    core: int | None = None,
    stream: bool = False,
    options: IngestOptions | None = None,
    min_samples: int = 2,
    include_unattributed: bool = True,
    reset_value: int | None = None,
    allow_degraded_baseline: bool = False,
    store: str | pathlib.Path | None = None,
) -> DiffReport:
    """Localize a regression between two runs of the same workload.

    Functions are ranked by per-item excess of ``other`` over ``base``
    (matched by name, so differing symbol tables are fine);
    ``report.top`` names the regression.  The analysis core defaults to
    the busiest core of ``base`` and is applied to both runs;
    ``reset_value`` defaults to the larger of the runs' recorded values
    (conservative for the confidence figures).

    Items whose windows overlap capture losses (shed spans, unrecovered
    journal spans, per the containers' metadata) discount every delta's
    confidence.  A baseline whose items are *all* degraded cannot anchor
    a comparison at all — missing samples read as "this function got
    cheaper", inverting the verdict — so it is refused with
    :class:`~repro.errors.ReproError` unless ``allow_degraded_baseline``
    is set.

    ``stream=True`` routes both runs through chunked
    :func:`~repro.core.streaming.ingest_trace` instead of whole-file
    loading; the traces — and therefore the report — are identical
    either way (streaming integration is bitwise-equal to one-shot).

    ``store`` resolves ``base``/``other`` as run ids in an ingestion
    store (see :func:`open_store`) instead of container paths.

    When both containers carry recorded wait edges, the report also
    splits the regression into contention vs code: ``report.cause`` is
    ``"contention"`` when the median item's growth is mostly wait cycles
    (queue backpressure, lock convoys), ``"code"`` when it is mostly
    function latency, and ``"none"`` when nothing regressed — or when
    either side lacks wait data to split with.
    """
    if store is not None:
        trace_store = open_store(store)
        base = trace_store.path_for(str(base))
        other = trace_store.path_for(str(other))
    base_meta, other_meta = _meta_of(base), _meta_of(other)
    if reset_value is None:
        values = [
            int(m["reset_value"])
            for m in (base_meta, other_meta)
            if m.get("reset_value") is not None
        ]
        reset_value = max(values) if values else None
    use_core = _pick_core(base, core)
    if stream:
        traces = []
        for source in (base, other):
            if not isinstance(source, (str, pathlib.Path)):
                raise ReproError("stream=True needs container paths")
            result = ingest_trace(
                source,
                options=options if options is not None else IngestOptions(),
                cores=[use_core] if use_core is not None else None,
            )
            traces.append(
                result.per_core[use_core]
                if use_core is not None
                else result.trace
            )
        base_trace, other_trace = traces
    else:
        base_trace = _one_shot_trace(base, use_core)
        other_trace = _one_shot_trace(other, use_core)
    degraded_base = _degraded_items(base_trace, base_meta, use_core)
    degraded_other = _degraded_items(other_trace, other_meta, use_core)
    base_items = {int(w.item_id) for w in base_trace.windows}
    if base_items and degraded_base >= base_items and not allow_degraded_baseline:
        raise ReproError(
            "baseline capture is fully degraded: every one of its "
            f"{len(base_items)} item(s) overlaps shed or lost sample spans, "
            "so it cannot anchor a differential comparison (missing samples "
            "would read as the regression's opposite). Re-record the "
            "baseline, or pass allow_degraded_baseline=True "
            "(--allow-degraded-baseline) to force the comparison."
        )
    return diff_traces(
        base_trace,
        other_trace,
        min_samples=min_samples,
        include_unattributed=include_unattributed,
        reset_value=reset_value,
        degraded_base=degraded_base,
        degraded_other=degraded_other,
        base_item_waits=_item_waits_for(base, base_trace, use_core),
        other_item_waits=_item_waits_for(other, other_trace, use_core),
    )


def open_store(root: str | pathlib.Path):
    """Open (or create) a multi-run ingestion store.

    The store is what :func:`serve` compacts pushed runs into; committed
    runs are queryable by id — ``diff("good", "bad", store=root)``.
    Imported lazily so the one-shot pipeline stays asyncio-free.
    """
    from repro.service.store import TraceStore

    return TraceStore(root)


def push(
    source: str | pathlib.Path,
    run_id: str,
    addr: str,
    *,
    options: IngestOptions | None = None,
    token: bytes | None = None,
    seed: int | None = None,
):
    """Push a recording journal or finished container to an ingestion
    daemon at ``addr`` (``unix:<path>`` or ``host:port``); returns the
    :class:`~repro.service.client.PushReport`.  ``token`` answers the
    daemon's auth challenge; ``seed`` makes the shed backoff jitter
    deterministic."""
    from repro.service.client import push_journal

    return push_journal(source, run_id, addr, token=token, seed=seed, options=options)


def sync(
    src: str | pathlib.Path,
    dst: str | pathlib.Path,
    *,
    verify: bool = True,
    ledger: bool = True,
):
    """Anti-entropy scrub between two stores on one filesystem: diff the
    catalogs and per-segment crcs, repair ``dst`` from ``src`` (missing
    runs, corrupted or truncated containers, bad sealed segments).
    Returns the :class:`~repro.service.replica.SyncReport`; confirmed
    runs are recorded in ``src``'s replication ledger unless
    ``ledger=False``.  Imported lazily like :func:`open_store`."""
    from repro.service.replica import scrub_local

    return scrub_local(src, dst, verify=verify, ledger=ledger)


def retire(
    root: str | pathlib.Path,
    *,
    max_age_s: float | None = None,
    max_runs: int | None = None,
    max_total_bytes: int | None = None,
    quorum: int = 0,
    archive_dir: str | pathlib.Path | None = None,
    dry_run: bool = False,
):
    """Enforce a retention policy on a store: compact cold committed
    runs into one archived container and drop them from the catalog.
    A run below its replication ``quorum`` (ledger confirmations) is
    never retired, whatever the budgets say.  ``dry_run=True`` plans
    without touching the store.  Returns the
    :class:`~repro.service.retention.RetireReport`."""
    from repro.service.retention import RetentionPolicy, retire_runs
    from repro.service.store import TraceStore

    policy = RetentionPolicy(
        max_age_s=max_age_s,
        max_runs=max_runs,
        max_total_bytes=max_total_bytes,
        quorum=quorum,
        archive_dir=str(archive_dir) if archive_dir is not None else None,
    )
    return retire_runs(TraceStore(root), policy, dry_run=dry_run)
