"""Known-root-cause attribution matrix: score the diagnoser end-to-end.

The validation strategy (DepGraph-style): run a grid of
workload × injector × intensity cells whose root cause is known *by
construction* (see :mod:`repro.interference`), feed every captured trace
through the very analysis paths users run —
:func:`~repro.analysis.diagnose.diagnose_trace` for within-run
fluctuations, :func:`~repro.analysis.differential.diff_traces` for
run-to-run regressions — and check the named cause against ground truth.

Cell modes map to how each analysis is meant to be used:

* ``burst`` — sparse interference (a minority of items hit); the
  diagnoser must flag outliers and its excess-weighted attribution vote
  must name the injected symbol;
* ``sustained`` — every item hit; a baseline run under the *identical*
  environment is recorded and ``diff_traces`` must rank the injected
  symbol as the top regression;
* ``capture`` — the interference is in the capture path, not the
  timeline; the only correct diagnosis is *degraded capture* (shed spans
  recorded, affected items flagged), never a confident function name;
* ``control`` — intensity 0 under the same environment; the diagnoser
  must stay silent (no outliers).

The result is a :class:`Scorecard` whose JSON form contains only
run-to-run-stable fields (names, counts, booleans, the hit rate) so it
can be checked in as a golden regression artifact and gated in CI via
``repro verify-attribution``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.diagnose import DiagnosisReport, diagnose_trace
from repro.analysis.differential import diff_traces
from repro.core.integrity import degraded_items_for_span
from repro.errors import InterferenceError
from repro.interference.injectors import DEGRADED_CAPTURE, inject, make_injector
from repro.interference.targets import build_target

#: Diagnosed-cause token for a cell where the analysis saw nothing.
NO_CAUSE = "none"

#: Default sampling period of matrix captures (cells whose injector
#: pins its own environment reset value override it).
MATRIX_RESET_VALUE = 2000


@dataclass(frozen=True)
class MatrixCell:
    """One workload × injector × intensity grid point."""

    workload: str
    injector: str
    intensity: float
    #: "burst" | "sustained" | "capture" | "control" (see module doc).
    mode: str
    #: Injector construction parameters (shape of the interference).
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Item-count override for this cell (None: the target's default).
    items: int | None = None

    MODES = ("burst", "sustained", "capture", "control")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise InterferenceError(
                f"cell mode must be one of {self.MODES}, got {self.mode!r}"
            )
        if self.mode == "control" and self.intensity != 0.0:
            raise InterferenceError("control cells must have intensity 0")

    @property
    def label(self) -> str:
        return f"{self.workload}×{self.injector}@{self.intensity:g}/{self.mode}"


@dataclass(frozen=True)
class CellResult:
    """Ground truth vs diagnosis for one executed cell."""

    cell: MatrixCell
    expected: str
    diagnosed: str
    correct: bool
    n_outliers: int
    #: Items the diagnosis flagged as resting on incomplete evidence.
    n_degraded_items: int
    #: Capture shed samples during the run.
    shed: bool
    detail: str

    def to_stable_dict(self) -> dict:
        """Only fields that are bit-stable across runs of the same code."""
        return {
            "workload": self.cell.workload,
            "injector": self.cell.injector,
            "intensity": self.cell.intensity,
            "mode": self.cell.mode,
            "expected": self.expected,
            "diagnosed": self.diagnosed,
            "correct": self.correct,
            "n_outliers": self.n_outliers,
            "n_degraded_items": self.n_degraded_items,
            "shed": self.shed,
        }


@dataclass(frozen=True)
class Scorecard:
    """All cell results of one matrix run, plus aggregate rates."""

    grid: str
    seed: int
    results: tuple[CellResult, ...]

    @property
    def n_cells(self) -> int:
        return len(self.results)

    @property
    def n_correct(self) -> int:
        return sum(1 for r in self.results if r.correct)

    @property
    def hit_rate(self) -> float:
        return self.n_correct / self.n_cells if self.results else 0.0

    @property
    def by_injector(self) -> dict[str, float]:
        hits: dict[str, list[int]] = defaultdict(list)
        for r in self.results:
            hits[r.cell.injector].append(int(r.correct))
        return {k: sum(v) / len(v) for k, v in sorted(hits.items())}

    def to_stable_dict(self) -> dict:
        return {
            "grid": self.grid,
            "seed": self.seed,
            "n_cells": self.n_cells,
            "n_correct": self.n_correct,
            "hit_rate": round(self.hit_rate, 4),
            "by_injector": {
                k: round(v, 4) for k, v in self.by_injector.items()
            },
            "cells": [r.to_stable_dict() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_stable_dict(), indent=2) + "\n"

    def describe(self) -> str:
        lines = [
            f"attribution matrix [{self.grid}]: "
            f"{self.n_correct}/{self.n_cells} cells correct "
            f"({self.hit_rate:.0%})"
        ]
        for name, rate in self.by_injector.items():
            lines.append(f"  {name:18s} {rate:.0%}")
        for r in self.results:
            mark = "ok " if r.correct else "MISS"
            lines.append(
                f"  [{mark}] {r.cell.label:42s} expected={r.expected} "
                f"diagnosed={r.diagnosed} ({r.detail})"
            )
        return "\n".join(lines)


def attribution_vote(report: DiagnosisReport) -> str:
    """The diagnosis' overall named cause: excess-weighted culprit vote.

    Each outlier item contributes its per-function excess attributions;
    the function holding the most excess across all outliers is what the
    diagnosis, read as a whole, blames — robust against a single
    marginal item whose partial overlap with the interference splits its
    excess with the stall pseudo-function.
    """
    weight: dict[str, int] = defaultdict(int)
    for verdict in report.verdicts:
        if not verdict.is_outlier:
            continue
        for attribution in verdict.attributions:
            weight[attribution.fn_name] += attribution.excess_cycles
    if not weight:
        return NO_CAUSE
    return min(weight.items(), key=lambda kv: (-kv[1], kv[0]))[0]


def smoke_grid() -> list[MatrixCell]:
    """The checked-in CI grid: every injector at ≥2 intensities over the
    three matrix targets, each with a zero-intensity control."""
    burst_stall = {"duty": 0.25}
    burst_queue = {"max_delay_cycles": 120_000, "period": 24}
    sustained_queue = {"max_delay_cycles": 36_000}
    burst_thrash = {"idle_cycles": 400_000}
    return [
        # uniform: single-core, near-identical items.
        MatrixCell("uniform", "core-stall", 0.5, "burst", burst_stall),
        MatrixCell("uniform", "core-stall", 1.0, "burst", burst_stall),
        MatrixCell("uniform", "sampler-overload", 0.7, "capture"),
        MatrixCell("uniform", "sampler-overload", 1.0, "capture"),
        MatrixCell("uniform", "core-stall", 0.0, "control"),
        # pipeline: producer -> bounded ring -> consumer.
        MatrixCell("pipeline", "queue-saturation", 0.5, "sustained", sustained_queue),
        MatrixCell("pipeline", "queue-saturation", 1.0, "sustained", sustained_queue),
        MatrixCell("pipeline", "queue-saturation", 1.0, "burst", burst_queue),
        MatrixCell("pipeline", "core-stall", 1.0, "sustained"),
        MatrixCell("pipeline", "queue-saturation", 0.0, "control"),
        # memwalk: LLC-resident working set, one memory-bound function.
        MatrixCell("memwalk", "cache-thrash", 0.6, "burst", burst_thrash),
        MatrixCell("memwalk", "cache-thrash", 1.0, "burst", burst_thrash),
        MatrixCell("memwalk", "cache-thrash", 1.0, "sustained", items=28),
        MatrixCell("memwalk", "core-stall", 0.7, "burst", burst_stall),
        MatrixCell("memwalk", "cache-thrash", 0.0, "control"),
    ]


GRIDS = {"smoke": smoke_grid}


def _capture_degraded_items(session, trace, core: int) -> set[int]:
    """Item ids whose windows overlap this session's shed spans."""
    spans = (session.capture_meta().get("capture") or {}).get("shed_spans") or {}
    items: set[int] = set()
    for c, pairs in spans.items():
        if int(c) != core:
            continue
        for lo, hi in pairs:
            items.update(degraded_items_for_span(trace.window_columns, lo, hi))
    return items


def _run_cell(
    cell: MatrixCell,
    seed: int,
    baselines: dict,
) -> CellResult:
    target = build_target(cell.workload, items=cell.items, seed=seed)
    injector = make_injector(cell.injector, **dict(cell.params))
    injected = inject(target.app, injector, cell.intensity, seed=seed)
    core = target.victim_core
    overrides: dict[str, Any] = {"sample_cores": [core]}
    if "reset_value" not in injected.trace_kwargs:
        overrides["reset_value"] = MATRIX_RESET_VALUE
    reset_value = injected.trace_kwargs.get(
        "reset_value", MATRIX_RESET_VALUE
    )
    session = injected.record(**overrides)
    trace = session.trace_for(core)
    degraded = _capture_degraded_items(session, trace, core)
    expected = NO_CAUSE if cell.mode == "control" else injected.expected_cause

    if cell.mode == "sustained":
        key = (cell.workload, cell.injector, cell.items, frozenset(cell.params))
        if key not in baselines:
            baselines[key] = injected.record_baseline(**overrides).trace_for(core)
        diff = diff_traces(
            baselines[key],
            trace,
            reset_value=reset_value,
            degraded_other=degraded,
        )
        diagnosed = diff.top.fn_name if diff.top is not None else NO_CAUSE
        return CellResult(
            cell=cell,
            expected=expected,
            diagnosed=diagnosed,
            correct=diagnosed == expected,
            n_outliers=0,
            n_degraded_items=len(degraded),
            shed=session.degraded,
            detail=(
                f"diff excess {diff.top.excess_per_item:.0f} cy/item"
                if diff.top is not None
                else "no regression"
            ),
        )

    report = diagnose_trace(
        trace,
        target.groups,
        reset_value=reset_value,
        degraded_items=degraded or None,
    )
    n_outliers = sum(1 for v in report.verdicts if v.is_outlier)
    n_degraded = sum(1 for v in report.verdicts if v.degraded)

    if cell.mode == "capture":
        # Correct means the capture honestly reports its losses: samples
        # shed, affected items flagged — not a confident function name.
        degraded_seen = session.degraded and n_degraded > 0
        diagnosed = DEGRADED_CAPTURE if degraded_seen else NO_CAUSE
        return CellResult(
            cell=cell,
            expected=expected,
            diagnosed=diagnosed,
            correct=diagnosed == expected,
            n_outliers=n_outliers,
            n_degraded_items=n_degraded,
            shed=session.degraded,
            detail=f"{n_degraded} item(s) flagged degraded",
        )

    diagnosed = attribution_vote(report)
    if cell.mode == "control":
        correct = n_outliers == 0
        diagnosed = NO_CAUSE if correct else diagnosed
    else:  # burst
        correct = n_outliers > 0 and diagnosed == expected
    return CellResult(
        cell=cell,
        expected=expected,
        diagnosed=diagnosed,
        correct=correct,
        n_outliers=n_outliers,
        n_degraded_items=n_degraded,
        shed=session.degraded,
        detail=f"{n_outliers} outlier(s)",
    )


def run_matrix(
    cells: list[MatrixCell] | None = None,
    *,
    grid: str = "smoke",
    seed: int = 0,
) -> Scorecard:
    """Execute a cell grid and score every diagnosis against ground truth.

    Baseline runs for ``sustained`` cells are recorded once per
    (workload, injector, params) under the injector's environment kwargs
    and shared across intensities — exactly the healthy-run reuse a
    practitioner's regression workflow has.
    """
    if cells is None:
        try:
            cells = GRIDS[grid]()
        except KeyError:
            raise InterferenceError(
                f"unknown grid {grid!r}; known: {', '.join(sorted(GRIDS))}"
            )
    baselines: dict = {}
    results = [_run_cell(cell, seed, baselines) for cell in cells]
    return Scorecard(grid=grid, seed=seed, results=tuple(results))


def compare_scorecards(current: dict, golden: dict) -> list[str]:
    """Differences between two stable-dict scorecards (empty = match)."""
    problems: list[str] = []
    for key in ("grid", "n_cells", "n_correct", "hit_rate"):
        if current.get(key) != golden.get(key):
            problems.append(
                f"{key}: golden {golden.get(key)!r} != current {current.get(key)!r}"
            )
    cur_cells = current.get("cells") or []
    gold_cells = golden.get("cells") or []
    if len(cur_cells) != len(gold_cells):
        problems.append(
            f"cell count: golden {len(gold_cells)} != current {len(cur_cells)}"
        )
        return problems
    for i, (c, g) in enumerate(zip(cur_cells, gold_cells)):
        for key in sorted(set(c) | set(g)):
            if c.get(key) != g.get(key):
                problems.append(
                    f"cell {i} ({g.get('workload')}×{g.get('injector')}"
                    f"@{g.get('intensity')}/{g.get('mode')}) {key}: "
                    f"golden {g.get(key)!r} != current {c.get(key)!r}"
                )
    return problems
