"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the fault-injection harness: it corrupts
saved trace containers (bit flips, truncation, shuffled chunks, switch-log
damage) and provides misbehaving shard workers (hangs, transient crashes)
so the fault-tolerance layer can be exercised deterministically.
"""
