"""Fault injection for trace containers and shard workers.

Every fault the ingestion pipeline claims to survive is injectable here,
against a real saved container, so tests assert each corruption policy's
exact behavior instead of trusting code inspection:

* storage faults — :func:`flip_sample_bit` (bit rot; checksums left
  stale on purpose), :func:`truncate_chunks` (torn write),
  :func:`misalign_columns` (partial column), :func:`shuffle_chunks`
  (out-of-order writer);
* semantic faults — :func:`drop_switch_records` /
  :func:`duplicate_switch_records` (log-buffer overrun, double marking);
* worker faults — :func:`hang_then_integrate` /
  :func:`flaky_then_integrate`, module-level so ``functools.partial`` of
  them pickles into a process pool, for ``ingest_trace``'s ``_shard_fn``
  hook;
* writer faults — shims over the durable recorder's
  :class:`~repro.core.durable.RecorderIO` syscall surface:
  :class:`CrashingIO` (SIGKILL before operation N, optionally tearing a
  write halfway), :class:`ENOSPCIO` (disk fills after a byte budget),
  :class:`FsyncFailingIO` (fsync starts failing with EIO).  Run a
  scenario once against :class:`CountingIO` to learn how many kill
  points it has; the kill-at-any-offset suite then enumerates them all.

Storage faults rewrite the ``.npz`` in place via :func:`rewrite_container`.
``refresh_checksums`` distinguishes the two corruption families: bit rot
happens *after* the checksum was computed (leave it stale, the mismatch is
the point), while writer bugs — shuffled chunks, duplicated marks —
produce self-consistent files whose *content* is wrong (refresh, so only
the semantic fault is visible).
"""

from __future__ import annotations

import errno
import json
import os
import pathlib
import time

import numpy as np

from repro.core.durable import RecorderIO
from repro.core.integrity import member_crc
from repro.core.streaming import _integrate_core_shard

_HEADER = "header_json"
_SAMPLE_COLS = ("ts", "ip", "tag")
_SWITCH_COLS = ("ts", "item", "kind")


def read_container(path: str | pathlib.Path) -> tuple[dict[str, np.ndarray], dict]:
    """All members (minus the header) plus the parsed header dict."""
    with np.load(str(path), allow_pickle=False) as data:
        arrays = {k: data[k].copy() for k in data.files if k != _HEADER}
        header = json.loads(bytes(data[_HEADER]).decode("utf-8"))
    return arrays, header


def write_container(
    path: str | pathlib.Path, arrays: dict[str, np.ndarray], header: dict
) -> None:
    """Reassemble a container from mutated members (uncompressed)."""
    out = dict(arrays)
    out[_HEADER] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(str(path), **out)


def rewrite_container(
    path: str | pathlib.Path, mutate, *, refresh_checksums: bool = False
) -> None:
    """Apply ``mutate(arrays, header)`` to a saved container, in place.

    With ``refresh_checksums`` the header's crc32 map is recomputed from
    the mutated members (simulating a buggy-but-checksumming writer);
    without it, stale checksums expose the mutation as bit rot.
    """
    arrays, header = read_container(path)
    mutate(arrays, header)
    if refresh_checksums and "crc32" in header:
        header["crc32"] = {
            name: member_crc(arrays[name])
            for name in header["crc32"]
            if name in arrays
        }
    write_container(path, arrays, header)


def sample_member(header: dict, core: int, chunk: int, column: str) -> str:
    """Resolve a sample member name for either container layout."""
    if "sample_chunks" in header:
        return f"core{core}_s{chunk}_{column}"
    return f"core{core}_sample_{column}"


# ---------------------------------------------------------------------------
# Storage faults


def flip_sample_bit(
    path: str | pathlib.Path,
    core: int,
    *,
    chunk: int = 0,
    column: str = "ts",
    index: int = 0,
    bit: int = 60,
) -> None:
    """Bit rot: flip one bit of one stored sample value.

    Checksums are deliberately left stale — the crc32 mismatch is what a
    reader is supposed to notice.  Flipping a high bit of a ``ts`` value
    also breaks monotonicity, which is what lets the repair policy
    localise the damage to that single record.
    """

    def mutate(arrays: dict, header: dict) -> None:
        name = sample_member(header, core, chunk, column)
        arr = arrays[name].copy()
        arr[index] ^= np.int64(1) << np.int64(bit)
        arrays[name] = arr

    rewrite_container(path, mutate)


def flip_switch_bit(
    path: str | pathlib.Path,
    core: int,
    *,
    column: str = "ts",
    index: int = 0,
    bit: int = 60,
) -> None:
    """Bit rot in the switch log (checksums left stale)."""

    def mutate(arrays: dict, header: dict) -> None:
        name = f"core{core}_switch_{column}"
        arr = arrays[name].copy()
        arr[index] ^= arr.dtype.type(1) << arr.dtype.type(bit)
        arrays[name] = arr

    rewrite_container(path, mutate)


def truncate_chunks(
    path: str | pathlib.Path, core: int, *, n_chunks: int = 1
) -> None:
    """Torn write: the last ``n_chunks`` chunk members never hit the disk.

    The header still claims them (the writer died after the directory
    update), so a reader sees missing members — the classic truncated
    container.
    """

    def mutate(arrays: dict, header: dict) -> None:
        total = int(header["sample_chunks"][str(core)])
        for k in range(total - n_chunks, total):
            for col in _SAMPLE_COLS:
                arrays.pop(f"core{core}_s{k}_{col}", None)

    rewrite_container(path, mutate)


def misalign_columns(
    path: str | pathlib.Path,
    core: int,
    *,
    chunk: int = 0,
    column: str = "ip",
    drop: int = 1,
    refresh_checksums: bool = True,
) -> None:
    """Partial column: one of a chunk's three columns lost its tail.

    Checksums are refreshed by default so the *length* disagreement is
    the only fault the reader sees (pass ``refresh_checksums=False`` to
    stack a checksum mismatch on top).
    """

    def mutate(arrays: dict, header: dict) -> None:
        name = sample_member(header, core, chunk, column)
        arrays[name] = arrays[name][:-drop]

    rewrite_container(path, mutate, refresh_checksums=refresh_checksums)


def shuffle_chunks(
    path: str | pathlib.Path,
    core: int,
    *,
    order: list[int] | None = None,
    refresh_checksums: bool = True,
) -> None:
    """Out-of-order writer: permute one core's stored chunks.

    Default permutation swaps the first two chunks.  Each chunk stays
    internally intact (and, by default, correctly checksummed): the fault
    is purely cross-chunk ordering, which is what lets the repair policy
    recover it losslessly.
    """

    def mutate(arrays: dict, header: dict) -> None:
        total = int(header["sample_chunks"][str(core)])
        perm = list(order) if order is not None else [1, 0] + list(range(2, total))
        if sorted(perm) != list(range(total)):
            raise ValueError(f"order must permute range({total}), got {perm}")
        old = {
            k: {c: arrays[f"core{core}_s{k}_{c}"] for c in _SAMPLE_COLS}
            for k in range(total)
        }
        for new_k, old_k in enumerate(perm):
            for c in _SAMPLE_COLS:
                arrays[f"core{core}_s{new_k}_{c}"] = old[old_k][c]
        rows = header.get("chunk_rows", {}).get(str(core))
        if rows is not None:
            header["chunk_rows"][str(core)] = [rows[k] for k in perm]

    rewrite_container(path, mutate, refresh_checksums=refresh_checksums)


# ---------------------------------------------------------------------------
# Semantic faults (switch log)


def _edit_switch_log(path, core, edit, refresh_checksums: bool) -> None:
    def mutate(arrays: dict, header: dict) -> None:
        names = [f"core{core}_switch_{c}" for c in _SWITCH_COLS]
        cols = [arrays[n] for n in names]
        for n, col in zip(names, edit(cols)):
            arrays[n] = col

    rewrite_container(path, mutate, refresh_checksums=refresh_checksums)


def drop_switch_records(
    path: str | pathlib.Path,
    core: int,
    indices: list[int],
    *,
    refresh_checksums: bool = True,
) -> None:
    """Log-buffer overrun: the given switch records were never written."""

    def edit(cols):
        n = int(cols[0].shape[0])
        keep = np.ones(n, dtype=bool)
        keep[np.asarray(indices, dtype=np.int64)] = False
        return [c[keep] for c in cols]

    _edit_switch_log(path, core, edit, refresh_checksums)


def duplicate_switch_records(
    path: str | pathlib.Path,
    core: int,
    index: int,
    *,
    refresh_checksums: bool = True,
) -> None:
    """Double marking: one switch record appears twice in a row."""

    def edit(cols):
        return [np.insert(c, index, c[index]) for c in cols]

    _edit_switch_log(path, core, edit, refresh_checksums)


# ---------------------------------------------------------------------------
# Writer-side faults: shims over the durable recorder's syscall surface.


class SimulatedCrash(BaseException):
    """Stands in for SIGKILL in the kill-at-any-offset tests.

    A ``BaseException`` on purpose: nothing in the write path may catch
    it (a real SIGKILL runs no handlers), so the writer is abandoned in
    exactly the state the interrupted syscall left on disk.
    """


class CountingIO(RecorderIO):
    """Real filesystem I/O that counts every syscall-surface operation.

    ``ops`` after a clean scenario run is the number of distinct kill
    points that scenario has; ``log`` records ``(op, filename)`` pairs
    for debugging a failing kill index.
    """

    def __init__(self) -> None:
        self.ops = 0
        self.log: list[tuple[str, str]] = []

    def _tick(self, op: str, path) -> None:
        self.ops += 1
        self.log.append((op, pathlib.Path(path).name))

    def makedirs(self, path):
        self._tick("makedirs", path)
        super().makedirs(path)

    def write_bytes(self, path, data):
        self._tick("write_bytes", path)
        super().write_bytes(path, data)

    def append_bytes(self, path, data):
        self._tick("append_bytes", path)
        super().append_bytes(path, data)

    def fsync_path(self, path):
        self._tick("fsync_path", path)
        super().fsync_path(path)

    def fsync_dir(self, path):
        self._tick("fsync_dir", path)
        super().fsync_dir(path)

    def replace(self, src, dst):
        self._tick("replace", src)
        super().replace(src, dst)

    def rmtree(self, path):
        self._tick("rmtree", path)
        super().rmtree(path)


class CrashingIO(CountingIO):
    """Kill the process *before* syscall-surface operation ``kill_at``.

    Operations ``0 .. kill_at-1`` complete normally; operation
    ``kill_at`` raises :class:`SimulatedCrash` instead of running.  With
    ``torn=True`` a killed ``write_bytes``/``append_bytes`` first lands
    the leading half of its payload — the torn-file state a real kill
    mid-``write(2)`` leaves behind.
    """

    def __init__(self, kill_at: int, *, torn: bool = False) -> None:
        super().__init__()
        self.kill_at = kill_at
        self.torn = torn

    def _tick(self, op: str, path) -> None:
        if self.ops >= self.kill_at:
            raise SimulatedCrash(f"killed before op {self.ops} ({op} {path})")
        super()._tick(op, path)

    def write_bytes(self, path, data):
        self._maybe_tear(path, data, append=False)
        super().write_bytes(path, data)

    def append_bytes(self, path, data):
        self._maybe_tear(path, data, append=True)
        super().append_bytes(path, data)

    def _maybe_tear(self, path, data, *, append: bool) -> None:
        if self.torn and self.ops == self.kill_at and len(data) > 1:
            half = data[: len(data) // 2]
            mode = "ab" if append else "wb"
            with open(path, mode) as fh:
                fh.write(half)


class ENOSPCIO(CountingIO):
    """The disk fills after ``capacity_bytes`` of journal/segment writes.

    The over-budget write raises ``OSError(ENOSPC)`` without touching
    the file, the way a full filesystem fails an ``O_APPEND`` write —
    the durable writer must surface it as a typed
    :class:`~repro.errors.TraceWriteError`.
    """

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__()
        self.capacity_bytes = capacity_bytes
        self.bytes_written = 0

    def _charge(self, path, n: int) -> None:
        if self.bytes_written + n > self.capacity_bytes:
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(path))
        self.bytes_written += n

    def write_bytes(self, path, data):
        self._charge(path, len(data))
        super().write_bytes(path, data)

    def append_bytes(self, path, data):
        self._charge(path, len(data))
        super().append_bytes(path, data)


class FsyncFailingIO(CountingIO):
    """``fsync`` starts failing with EIO after ``ok_fsyncs`` successes.

    Models a dying disk (or an fsync-gate like a full thin-provisioned
    volume): data writes still appear to succeed, but durability
    barriers do not — the writer must refuse to report such a segment as
    sealed.
    """

    def __init__(self, ok_fsyncs: int) -> None:
        super().__init__()
        self.ok_fsyncs = ok_fsyncs
        self.fsyncs = 0

    def _fail_or_count(self, path) -> None:
        if self.fsyncs >= self.ok_fsyncs:
            raise OSError(errno.EIO, os.strerror(errno.EIO), str(path))
        self.fsyncs += 1

    def fsync_path(self, path):
        self._fail_or_count(path)
        super().fsync_path(path)

    def fsync_dir(self, path):
        self._fail_or_count(path)
        super().fsync_dir(path)


# ---------------------------------------------------------------------------
# Worker faults — module-level so functools.partial of them pickles into a
# process pool (fork pickles functions by reference).


def hang_then_integrate(
    path: str,
    core: int,
    chunk_size: int | None,
    policy: str,
    hang_cores: tuple[int, ...] = (),
    sleep_s: float = 600.0,
):
    """Shard worker that hangs on selected cores (supervision tests).

    The sleep stands in for a worker stuck in a dead spin or lost I/O;
    the supervisor's per-shard timeout must reclaim it.
    """
    if core in hang_cores:
        time.sleep(sleep_s)
    return _integrate_core_shard(path, core, chunk_size, policy)


def flaky_then_integrate(
    path: str,
    core: int,
    chunk_size: int | None,
    policy: str,
    marker_dir: str = "",
    fail_cores: tuple[int, ...] = (),
    fail_times: int = 1,
):
    """Shard worker that crashes transiently, then succeeds on retry.

    Attempts are counted with ``O_EXCL`` marker files in ``marker_dir``
    because the counting must survive process boundaries: each attempt
    may run in a different pool worker.
    """
    if core in fail_cores:
        for attempt in range(1, fail_times + 1):
            marker = os.path.join(marker_dir, f"core{core}.attempt{attempt}")
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue  # this attempt already burned on an earlier call
            raise RuntimeError(
                f"injected transient failure for core {core} (attempt {attempt})"
            )
    return _integrate_core_shard(path, core, chunk_size, policy)
