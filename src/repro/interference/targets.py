"""Matrix target workloads: small apps with declared injection points.

The attribution matrix needs workloads that are fast, bit-reproducible
(one seeded :class:`numpy.random.Generator` drives all their randomness)
and honest about where each interference mechanism should show up:

* ``uniform`` — single thread, three fixed-cost functions with ±2 %
  jitter; the cleanest substrate for stall and sampler cells;
* ``pipeline`` — producer → bounded SPSC ring → consumer; items are
  marked on the *producer*, so ring backpressure lands inside item
  windows at the producer's ``tx_ring_wait`` poll symbol;
* ``memwalk`` — a worker whose per-item table walk sweeps a region
  larger than its private L2 but resident in a (scaled) shared LLC;
  each item re-warms the region, so an LLC-thrash burst makes the next
  item(s) pay DRAM latency in ``mw_table_walk``.

Every target declares ``injection_points`` (injector name → expected
root cause), the attributes injectors introspect (``queue_consumer``,
``spare_core``, ``machine_spec``), and ``victim_core`` (the core whose
trace the matrix diagnoses).  They are also registered as CLI workloads
(``repro run --workload uniform ...``) via
:func:`repro.workloads.build_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.symbols import AddressAllocator, SymbolTable
from repro.errors import WorkloadError
from repro.interference.injectors import DEGRADED_CAPTURE, STALL_SYMBOL
from repro.machine.block import LINE_BYTES, Block, MemRef, timed_block
from repro.machine.config import CacheLevelSpec, MachineSpec
from repro.runtime.actions import Exec, FnEnter, FnLeave, Mark, Pop, Push, SwitchKind
from repro.runtime.queue import SPSCQueue
from repro.runtime.thread import AppThread
from repro.workloads.synth import FixedSequenceApp, jittered_items

#: Per-function cycles of the uniform target's three stages.
UNIFORM_FN_CYCLES = {"u_parse": 5_000, "u_transform": 9_000, "u_emit": 4_000}


class UniformApp(FixedSequenceApp):
    """Near-identical items on one core: the cleanest attribution substrate."""

    def __init__(self, n_items: int = 48, seed: int = 0) -> None:
        rng = np.random.default_rng([int(seed), 1])
        super().__init__(
            jittered_items(n_items, UNIFORM_FN_CYCLES, jitter=0.02, rng=rng)
        )
        self.injection_points = {
            "core-stall": STALL_SYMBOL,
            "sampler-overload": DEGRADED_CAPTURE,
        }

    def group_of(self, item_id: int) -> str:
        return "item"


class PipelineApp:
    """Producer → bounded ring → consumer; marks on the producer.

    The producer prepares an item (``tx_prepare``), pushes it, and closes
    the item's window — so when the ring is full the push's spin time at
    ``tx_ring_wait`` (the producer's poll symbol) is charged inside the
    window.  The consumer drains at a service rate faster than the
    producer's inter-item time, so the ring never fills without injected
    interference.
    """

    PRODUCER_CORE = 0
    CONSUMER_CORE = 1

    def __init__(
        self, n_items: int = 48, seed: int = 0, queue_capacity: int = 3
    ) -> None:
        if n_items < 1:
            raise WorkloadError("need at least one item")
        rng = np.random.default_rng([int(seed), 2])
        alloc = AddressAllocator()
        self.tx_prepare_ip = alloc.add("tx_prepare")
        self.tx_ring_wait_ip = alloc.add("tx_ring_wait")
        self.rx_drain_ip = alloc.add("rx_drain")
        self.rx_process_ip = alloc.add("rx_process")
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        self.n_items = n_items
        self.queue = SPSCQueue("pipe", capacity=queue_capacity)
        self._prepare_cycles = [
            max(1, int(round(5_000 * (1.0 + 0.02 * (2.0 * float(rng.random()) - 1.0)))))
            for _ in range(n_items)
        ]
        self._process_cycles = 3_000
        #: Thread the queue-saturation injector drags.
        self.queue_consumer = "pipe-rx"
        self.injection_points = {
            "queue-saturation": "tx_ring_wait",
            "core-stall": STALL_SYMBOL,
            "sampler-overload": DEGRADED_CAPTURE,
        }

    def _producer(self):
        for i in range(1, self.n_items + 1):
            yield Mark(SwitchKind.ITEM_START, i)
            yield FnEnter(self.tx_prepare_ip)
            yield Exec(timed_block(self.tx_prepare_ip, self._prepare_cycles[i - 1]))
            yield FnLeave(self.tx_prepare_ip)
            yield Push(self.queue, i)
            yield Mark(SwitchKind.ITEM_END, i)
        yield Push(self.queue, None)

    def _consumer(self):
        while True:
            item = yield Pop(self.queue)
            if item is None:
                return
            yield Exec(timed_block(self.rx_process_ip, self._process_cycles))

    def threads(self) -> list[AppThread]:
        return [
            AppThread("pipe-tx", self.PRODUCER_CORE, self._producer, self.tx_ring_wait_ip),
            AppThread("pipe-rx", self.CONSUMER_CORE, self._consumer, self.rx_drain_ip),
        ]

    def group_of(self, item_id: int) -> str:
        return "pkt"


class MemWalkApp:
    """Per-item table walk over a region sized between L2 and the LLC.

    Every item walks the whole region, so the working set is re-warmed
    per item: alone, every item after the warm-up prelude hits the
    (scaled) LLC; after a thrash burst the next item pays DRAM for every
    line — the paper's Section V-D shape with exactly one culprit,
    ``mw_table_walk``.  The warm-up walk runs before the first item mark,
    outside all windows.
    """

    VICTIM_CORE = 0
    #: Where the cache-thrash aggressor goes.
    spare_core = 1

    REGION_BYTES = 64 * 1024
    _WALK_CHUNK_LINES = 256

    def __init__(self, n_items: int = 40, seed: int = 0) -> None:
        if n_items < 1:
            raise WorkloadError("need at least one item")
        rng = np.random.default_rng([int(seed), 3])
        alloc = AddressAllocator()
        self.loop_ip = alloc.add("mw_loop")
        self.process_ip = alloc.add("mw_process")
        self.walk_ip = alloc.add("mw_table_walk")
        self.warmup_ip = alloc.add("mw_warmup")
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        self.n_items = n_items
        self.region_base = 0x4000_0000
        self._base_uops = [
            max(1, int(round(8_000 * (1.0 + 0.02 * (2.0 * float(rng.random()) - 1.0)))))
            for _ in range(n_items)
        ]
        self.injection_points = {
            "cache-thrash": "mw_table_walk",
            "core-stall": STALL_SYMBOL,
            "sampler-overload": DEGRADED_CAPTURE,
        }

    def machine_spec(self) -> MachineSpec:
        """Scaled-down geometry: region > L2, region < LLC, cheap to thrash."""
        return MachineSpec(
            l1=CacheLevelSpec(16 * 1024, 8, 4),
            l2=CacheLevelSpec(32 * 1024, 8, 12),
            llc=CacheLevelSpec(128 * 1024, 16, 42),
        )

    def _walk_blocks(self, ip: int):
        region_lines = self.REGION_BYTES // LINE_BYTES
        for first in range(0, region_lines, self._WALK_CHUNK_LINES):
            count = min(self._WALK_CHUNK_LINES, region_lines - first)
            yield Block(
                ip=ip,
                uops=count * 4,
                mem=MemRef(
                    base=self.region_base + first * LINE_BYTES,
                    count=count,
                    stride=LINE_BYTES,
                ),
                branches=count // 8,
                mem_mlp=2,
            )

    def _victim(self):
        for block in self._walk_blocks(self.warmup_ip):
            yield Exec(block)
        for item in range(1, self.n_items + 1):
            yield Mark(SwitchKind.ITEM_START, item)
            yield FnEnter(self.process_ip)
            yield Exec(
                Block(ip=self.process_ip, uops=self._base_uops[item - 1], branches=100)
            )
            yield FnLeave(self.process_ip)
            yield FnEnter(self.walk_ip)
            for block in self._walk_blocks(self.walk_ip):
                yield Exec(block)
            yield FnLeave(self.walk_ip)
            yield Mark(SwitchKind.ITEM_END, item)

    def threads(self) -> list[AppThread]:
        return [AppThread("memwalk", self.VICTIM_CORE, self._victim, self.loop_ip)]

    def group_of(self, item_id: int) -> str:
        return "walk"


@dataclass(frozen=True)
class TargetBundle:
    """One freshly-built matrix target plus its analysis handles."""

    name: str
    app: Any
    #: item id -> similarity group (what ``record`` stores in meta).
    groups: dict[int, str]
    #: Core whose trace the matrix diagnoses (the marking thread's core).
    victim_core: int


#: Matrix target registry: name -> (factory, default item count).
_TARGETS = {
    "uniform": (UniformApp, 48),
    "pipeline": (PipelineApp, 48),
    "memwalk": (MemWalkApp, 40),
}

#: Names of the registered matrix targets.
TARGETS = tuple(sorted(_TARGETS))


def build_target(name: str, *, items: int | None = None, seed: int = 0) -> TargetBundle:
    """Build a fresh matrix target; same (name, items, seed) → same app."""
    try:
        factory, default_items = _TARGETS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown matrix target {name!r}; known: {', '.join(TARGETS)}"
        )
    n = default_items if items is None else items
    app = factory(n_items=n, seed=seed)
    groups = {i: app.group_of(i) for i in range(1, n + 1)}
    return TargetBundle(name=name, app=app, groups=groups, victim_core=0)
