"""Calibrated interference injection + machine-geometry sweeps.

* :mod:`repro.interference.injectors` — the four injector mechanisms and
  the uniform :func:`~repro.interference.injectors.inject` API;
* :mod:`repro.interference.targets` — small matrix workloads with
  declared ground-truth injection points;
* :mod:`repro.interference.sweep` — SMTcheck-style sweeps recovering
  cache capacities, queue depth and the sampler saturation floor from
  observed performance cliffs.

Together they give the attribution matrix
(:mod:`repro.testing.matrix`) workload × injector × intensity cells
whose root cause is known by construction.
"""

from repro.interference.injectors import (
    DEGRADED_CAPTURE,
    INJECTORS,
    STALL_SYMBOL,
    THRASH_SYMBOL,
    CacheThrashInjector,
    CoreStallInjector,
    InjectedWorkload,
    Injector,
    QueueSaturationInjector,
    SamplerOverloadInjector,
    inject,
    make_injector,
)
from repro.interference.sweep import (
    CacheSweepResult,
    QueueSweepResult,
    SamplerSweepResult,
    sweep_cache_geometry,
    sweep_queue_depth,
    sweep_sampler_saturation,
)
from repro.interference.targets import TARGETS, TargetBundle, build_target

__all__ = [
    "CacheSweepResult",
    "CacheThrashInjector",
    "CoreStallInjector",
    "DEGRADED_CAPTURE",
    "INJECTORS",
    "InjectedWorkload",
    "Injector",
    "QueueSaturationInjector",
    "QueueSweepResult",
    "STALL_SYMBOL",
    "SamplerOverloadInjector",
    "SamplerSweepResult",
    "TARGETS",
    "THRASH_SYMBOL",
    "TargetBundle",
    "build_target",
    "inject",
    "make_injector",
    "sweep_cache_geometry",
    "sweep_queue_depth",
    "sweep_sampler_saturation",
]
