"""Diagnostic sweeps: recover hidden machine geometry from observed cliffs.

SMTcheck-style end-to-end checks that the simulator behaves like
hardware: instead of reading the :class:`~repro.machine.config.MachineSpec`,
each sweep stresses the machine through its public execution surface and
reads the geometry back from performance cliffs —

* :func:`sweep_cache_geometry` — walk working sets of growing size; a
  sequential sweep under LRU collapses to 0 % hits the moment the set
  exceeds a level's capacity, so cycles/access jumps at each capacity;
* :func:`sweep_queue_depth` — push against a stalled consumer; the first
  push that blocks reveals the ring capacity;
* :func:`sweep_sampler_saturation` — shrink the software sampler's
  period R; the achieved inter-sample interval floors at the handler
  cost (the paper's Fig 4 ≥10 µs saturation).

If a sweep's estimate disagrees with the spec it ran on, either the
machine model or the measurement path is broken — which is exactly what
the interference matrix needs to trust before scoring attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InterferenceError
from repro.machine.block import LINE_BYTES, Block, MemRef, timed_block
from repro.machine.config import CacheLevelSpec, MachineSpec
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.sampler import SoftwareSamplerConfig
from repro.runtime.actions import Exec, IdleUntil, Pop, Push
from repro.runtime.queue import SPSCQueue
from repro.runtime.scheduler import Scheduler
from repro.runtime.thread import AppThread

#: Scaled-down spec the default cache sweep probes: small enough that a
#: Python-loop cache simulation sweeps it in well under a second.
SMALL_GEOMETRY = MachineSpec(
    l1=CacheLevelSpec(8 * 1024, 8, 4),
    l2=CacheLevelSpec(32 * 1024, 8, 12),
    llc=CacheLevelSpec(128 * 1024, 16, 42),
)


@dataclass(frozen=True)
class Cliff:
    """One observed jump in the cycles/access curve."""

    size_before: int
    size_after: int
    cycles_before: float
    cycles_after: float

    @property
    def jump(self) -> float:
        return self.cycles_after / self.cycles_before - 1.0


@dataclass(frozen=True)
class CacheSweepResult:
    """Cycles/access curve over working-set size, with detected cliffs."""

    sizes: tuple[int, ...]
    cycles_per_access: tuple[float, ...]
    cliffs: tuple[Cliff, ...]

    @property
    def estimates(self) -> dict[str, int]:
        """Recovered capacities: first three cliffs → l1, l2, llc."""
        names = ("l1", "l2", "llc")
        return {
            name: cliff.size_before for name, cliff in zip(names, self.cliffs)
        }

    def describe(self) -> str:
        lines = ["cache sweep (cycles/access by working-set size):"]
        for size, cpa in zip(self.sizes, self.cycles_per_access):
            lines.append(f"  {size / 1024:8.0f} KiB  {cpa:7.2f}")
        for name, cap in self.estimates.items():
            lines.append(f"  recovered {name} capacity ~ {cap / 1024:.0f} KiB")
        return "\n".join(lines)


def sweep_cache_geometry(
    spec: MachineSpec = SMALL_GEOMETRY,
    sizes: tuple[int, ...] | None = None,
    min_jump: float = 0.3,
) -> CacheSweepResult:
    """Recover cache capacities from latency cliffs of a sequential sweep.

    For each working-set size the sweep walks the region once to warm it,
    then measures a second pass.  Under true LRU a sequential re-walk of
    a region even one line larger than a level's capacity misses that
    level on *every* access (the classic LRU pathology), so the curve
    steps sharply at each capacity; with power-of-two probe sizes the
    last size before a jump *is* the capacity.
    """
    if sizes is None:
        lo = min(spec.l1.size_bytes, 8 * 1024) // 2
        hi = spec.llc.size_bytes * 4
        out = []
        s = lo
        while s <= hi:
            out.append(s)
            s *= 2
        sizes = tuple(out)
    cpa: list[float] = []
    for size in sizes:
        n_lines = max(1, size // LINE_BYTES)
        machine = Machine(spec=spec, n_cores=1, with_caches=True)
        core = machine.core(0)
        ref = MemRef(base=0x1000_0000, count=n_lines, stride=LINE_BYTES)
        core.execute(Block(ip=0x40_0000, uops=n_lines, mem=ref))  # warm pass
        outcome = core.execute(Block(ip=0x40_0000, uops=n_lines, mem=ref))
        cpa.append(outcome.cycles / n_lines)
    cliffs = [
        Cliff(sizes[i], sizes[i + 1], cpa[i], cpa[i + 1])
        for i in range(len(sizes) - 1)
        if cpa[i] > 0 and cpa[i + 1] / cpa[i] - 1.0 > min_jump
    ]
    return CacheSweepResult(
        sizes=tuple(sizes),
        cycles_per_access=tuple(cpa),
        cliffs=tuple(cliffs),
    )


@dataclass(frozen=True)
class QueueSweepResult:
    """Per-push producer timestamps against a stalled consumer."""

    push_start_ts: tuple[int, ...]
    #: Number of pushes that completed before the first blocking one —
    #: the recovered ring capacity (None: never blocked within max_pushes).
    recovered_depth: int | None

    def describe(self) -> str:
        depth = "unbounded (never blocked)" if self.recovered_depth is None else str(
            self.recovered_depth
        )
        return f"queue sweep: {len(self.push_start_ts)} pushes, recovered depth {depth}"


def sweep_queue_depth(
    capacity: int | None,
    max_pushes: int = 64,
    stall_threshold_cycles: int = 100_000,
) -> QueueSweepResult:
    """Recover a ring's capacity by pushing against a stalled consumer.

    The consumer idles far in the future before draining; the producer
    timestamps each push attempt.  Pushes 1..capacity complete
    back-to-back; push capacity+1 blocks until the consumer's first pop,
    visible as a huge gap in the timestamp series.
    """
    if max_pushes < 2:
        raise InterferenceError("max_pushes must be >= 2")
    far_future = 50_000_000
    q = SPSCQueue("probe", capacity=capacity)
    stamps: list[int] = []

    def producer():
        for i in range(max_pushes):
            outcome = yield Exec(timed_block(0x40_0000, 10))
            stamps.append(outcome.start)
            yield Push(q, i)

    def consumer():
        yield IdleUntil(far_future)
        for _ in range(max_pushes):
            yield Pop(q)

    machine = Machine(spec=MachineSpec(), n_cores=2)
    Scheduler(
        machine,
        [
            AppThread("probe-tx", 0, producer, 0x40_0000),
            AppThread("probe-rx", 1, consumer, 0x40_0400),
        ],
    ).run()
    gaps = np.diff(np.asarray(stamps, dtype=np.int64))
    blocked = np.nonzero(gaps > stall_threshold_cycles)[0]
    # gaps[i] spans Exec i+1's start minus Exec i's start, i.e. it contains
    # Push i; the first oversized gap marks the first *blocking* push, and
    # the pushes before it — exactly its 0-based index — all completed.
    recovered = int(blocked[0]) if blocked.size else None
    return QueueSweepResult(push_start_ts=tuple(stamps), recovered_depth=recovered)


@dataclass(frozen=True)
class SamplerSweepResult:
    """Achieved inter-sample interval by requested period R (Fig 4)."""

    #: requested R -> median achieved inter-sample interval (cycles).
    achieved: dict[int, float]
    #: The floor the interval saturates at (cycles).
    floor_cycles: float

    def describe(self, freq_ghz: float = 3.0) -> str:
        lines = ["sampler sweep (requested R -> achieved interval, cycles):"]
        for r in sorted(self.achieved, reverse=True):
            lines.append(f"  R={r:>7}  {self.achieved[r]:10.0f}")
        lines.append(
            f"  saturation floor ~ {self.floor_cycles:.0f} cycles "
            f"({self.floor_cycles / freq_ghz / 1000:.1f} us)"
        )
        return "\n".join(lines)


def sweep_sampler_saturation(
    spec: MachineSpec = MachineSpec(),
    reset_values: tuple[int, ...] = (200_000, 100_000, 50_000, 20_000, 8_000, 2_000),
    total_cycles: int = 3_000_000,
) -> SamplerSweepResult:
    """Recover the software sampler's handler-cost floor (Fig 4's ≥10 µs).

    Runs a fixed retirement-heavy workload under an interrupt-driven
    sampler at decreasing periods; below the handler cost the *achieved*
    interval stops following R and floors at roughly the handler time.
    """
    achieved: dict[int, float] = {}
    for r in reset_values:
        machine = Machine(spec=spec, n_cores=1)
        sampler = machine.attach_software_sampler(
            0, SoftwareSamplerConfig(HWEvent.UOPS_RETIRED_ALL, r)
        )
        core = machine.core(0)
        block_uops = 20_000
        n_blocks = max(1, int(total_cycles * spec.ipc) // block_uops)
        for _ in range(n_blocks):
            core.execute(Block(ip=0x40_0000, uops=block_uops))
        ts = sampler.finalize().ts
        if ts.shape[0] >= 2:
            achieved[r] = float(np.median(np.diff(ts)))
        else:
            achieved[r] = float("inf")
    finite = [v for v in achieved.values() if np.isfinite(v)]
    if not finite:
        raise InterferenceError("sampler sweep produced no samples")
    return SamplerSweepResult(achieved=achieved, floor_cycles=min(finite))
