"""Calibrated, composable interference injectors.

Validating a fluctuation diagnoser needs workloads whose root cause is
known *by construction* (the way DepGraph validates waiting-dependency
localization against injected blocking).  Each injector here perturbs a
workload through exactly one mechanism of the simulated machine —

* :class:`CoreStallInjector` — lock-style stalls: extra retired work at a
  dedicated ``__interference_stall`` symbol inside selected item windows;
* :class:`QueueSaturationInjector` — SW-queue saturation: drags the
  declared consumer thread so the bounded ring fills and the producer's
  items spend their time spinning for a free slot (backpressure);
* :class:`CacheThrashInjector` — shared-LLC thrash: a streaming aggressor
  thread on a spare core evicting the victim's working set;
* :class:`SamplerOverloadInjector` — capture-side pressure: shrinks the
  PEBS buffer and slows the drain so the overload policy sheds samples —

each parameterized by one ``intensity`` knob in [0, 1], attachable to any
workload following the :class:`~repro.session.TraceableApp` convention
via the uniform :func:`inject` API.  Intensity 0 is always a no-op: the
wrapped app and capture are bitwise-identical to an uninjected run.

Injection that needs workload knowledge (which function is the cache
victim, which thread consumes the queue) reads the app's declared
``injection_points`` / ``queue_consumer`` / ``spare_core`` attributes
(see :mod:`repro.interference.targets`); mechanisms that need none
(stall, sampler overload) attach to anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from repro.core.symbols import SymbolTable
from repro.errors import InterferenceError
from repro.machine.block import LINE_BYTES, Block, MemRef, timed_block
from repro.machine.config import SKYLAKE_LIKE, MachineSpec
from repro.machine.events import HWEvent
from repro.machine.overload import OverloadPolicy
from repro.runtime.actions import Exec, IdleUntil, Mark, Pop, SwitchKind
from repro.runtime.thread import AppThread

#: Symbol the stall injector retires its extra work at — the checkable
#: ground-truth culprit for core-stall cells.
STALL_SYMBOL = "__interference_stall"

#: Symbol of the cache-thrash aggressor's streaming scan.
THRASH_SYMBOL = "__interference_thrash"

#: Expected-cause token for capture-side injectors: the right diagnosis
#: is "this data is degraded", not any function name.
DEGRADED_CAPTURE = "degraded-capture"


def extend_symtab(
    symtab: SymbolTable, names: list[str], size: int = 0x400
) -> tuple[SymbolTable, dict[str, int]]:
    """A new table with extra ranges appended after the app's last symbol.

    SymbolTable is immutable after build, so injectors that retire work at
    their own symbol rebuild the table; the original ranges are untouched,
    keeping every app ip valid in the extended table.
    """
    ranges = {s.name: (s.lo, s.hi) for s in symtab}
    base = max(hi for _, hi in ranges.values())
    ips: dict[str, int] = {}
    for name in names:
        if name in ranges:
            raise InterferenceError(
                f"symbol {name!r} already exists; is the app already injected?"
            )
        ranges[name] = (base, base + size)
        ips[name] = base
        base += size
    return SymbolTable.from_ranges(ranges), ips


class WrappedApp:
    """Proxy presenting an injected view of an app.

    Overrides ``symtab`` and ``threads()``; everything else (``mark_ip``,
    ``group_of``, ``machine_spec``, declared injection points, ...)
    forwards to the wrapped app.  ``transform`` receives the inner app's
    fresh thread list on every ``threads()`` call and returns the
    replacement list, so per-run state (completion counters, wrapper
    generators) is rebuilt per run exactly like app bodies are.
    """

    def __init__(
        self,
        inner: Any,
        symtab: SymbolTable | None = None,
        transform: Callable[[list[AppThread]], list[AppThread]] | None = None,
    ) -> None:
        self._inner = inner
        self._symtab = symtab if symtab is not None else inner.symtab
        self._transform = transform

    @property
    def symtab(self) -> SymbolTable:
        return self._symtab

    def threads(self) -> list[AppThread]:
        threads = self._inner.threads()
        return self._transform(threads) if self._transform is not None else threads

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _Completion:
    """Shared flag the aggressor polls: all victim threads finished."""

    def __init__(self, n_threads: int) -> None:
        self.remaining = n_threads

    def mark_done(self) -> None:
        self.remaining -= 1

    @property
    def done(self) -> bool:
        return self.remaining <= 0


def _watched(gen, completion: _Completion):
    """Forward a body unchanged, flipping ``completion`` on exhaustion."""
    try:
        yield from gen
    finally:
        completion.mark_done()


# ---------------------------------------------------------------------------
# Injector base


@dataclass(frozen=True)
class Injector:
    """One interference mechanism with a single intensity knob.

    ``wrap`` returns the app to trace (the original object when the
    intensity rounds to no perturbation).  ``environment`` returns
    :func:`repro.session.trace` kwargs that must be *identical across
    intensities* (cache model on, lockstep, machine spec) so baseline and
    injected runs execute on the same machine; ``pressure_kwargs``
    returns the intensity-dependent capture kwargs (empty for timeline
    injectors, the overload spec for capture-side ones).
    """

    name: str = "injector"
    #: "function" when ground truth is a symbol name; "capture" when the
    #: right diagnosis is degraded data rather than a culprit function.
    kind: str = "function"

    def wrap(self, app: Any, intensity: float, rng: np.random.Generator) -> Any:
        return app

    def environment(self, app: Any) -> dict:
        return {}

    def pressure_kwargs(self, app: Any, intensity: float) -> dict:
        return {}

    def expected_cause(self, app: Any) -> str:
        if self.kind == "capture":
            return DEGRADED_CAPTURE
        declared = getattr(app, "injection_points", {}).get(self.name)
        if declared is None:
            raise InterferenceError(
                f"workload {type(app).__name__} declares no expected cause "
                f"for injector {self.name!r} (injection_points)"
            )
        return str(declared)

    def _base_spec(self, app: Any) -> MachineSpec:
        spec_fn = getattr(app, "machine_spec", None)
        return spec_fn() if callable(spec_fn) else SKYLAKE_LIKE


# ---------------------------------------------------------------------------
# Core stalls


def _stall_body(gen, stride: int, stall_cycles: int, stall_ip: int):
    """Forward a body, retiring a stall block inside every stride-th item.

    The stall goes right after ``ITEM_START`` so its cycles land inside
    the item's window and its samples carry :data:`STALL_SYMBOL` — the
    exact signature a lock-convoy or interrupt storm leaves in the paper's
    per-item traces.  Item selection is positional (every ``stride``-th
    start), so the *same* items are hit at every intensity: measured
    interference is monotone in intensity by construction.
    """
    send = None
    count = 0
    while True:
        try:
            action = gen.send(send)
        except StopIteration:
            return
        send = yield action
        if isinstance(action, Mark) and action.kind is SwitchKind.ITEM_START:
            if count % stride == 0:
                yield Exec(timed_block(stall_ip, stall_cycles))
            count += 1


@dataclass(frozen=True)
class CoreStallInjector(Injector):
    """Lock-style core stalls inside item windows.

    ``duty`` is the fraction of items hit (1.0 = sustained, every item —
    the shape a run-to-run regression diff sees; ~0.25 = bursty — the
    within-run fluctuation shape diagnosis sees).  The stall length is
    ``intensity * max_stall_cycles``.
    """

    name: str = "core-stall"
    max_stall_cycles: int = 30_000
    duty: float = 1.0

    def wrap(self, app: Any, intensity: float, rng: np.random.Generator) -> Any:
        cycles = int(round(intensity * self.max_stall_cycles))
        if cycles <= 0:
            return app
        symtab, ips = extend_symtab(app.symtab, [STALL_SYMBOL])
        stride = max(1, int(round(1.0 / self.duty)))
        stall_ip = ips[STALL_SYMBOL]

        def transform(threads: list[AppThread]) -> list[AppThread]:
            return [
                AppThread(
                    t.name,
                    t.core_id,
                    (lambda t=t: _stall_body(t.start(), stride, cycles, stall_ip)),
                    t.poll_ip,
                )
                for t in threads
            ]

        return WrappedApp(app, symtab=symtab, transform=transform)


# ---------------------------------------------------------------------------
# SW-queue saturation


def _drag_body(gen, delay: int, period: int, burst_len: int, poll_ip: int):
    """Forward the consumer's body, dragging selected pops.

    After every ``period``-th pop (for ``burst_len`` consecutive pops)
    the consumer retires ``delay`` extra cycles before asking for the
    next item.  The bounded ring upstream fills, and the *producer* —
    whose items are the ones being measured — blocks in its push path,
    spinning at its own poll symbol: genuine backpressure, observable
    exactly where a saturated DPDK ring shows up.
    """
    send = None
    count = 0
    while True:
        try:
            action = gen.send(send)
        except StopIteration:
            return
        send = yield action
        if isinstance(action, Pop) and send is not None:
            if count % period < burst_len:
                yield Exec(timed_block(poll_ip, delay))
            count += 1


@dataclass(frozen=True)
class QueueSaturationInjector(Injector):
    """Saturate the app's bounded SW queue by dragging its consumer.

    Needs the workload to declare ``queue_consumer`` (the consuming
    thread's name) and an ``injection_points["queue-saturation"]`` entry
    naming the producer-side symbol where backpressure spin time lands.
    ``period``/``burst_len`` shape the drag: period 1 = sustained
    saturation (every pop), larger periods = bursts whose backpressure
    hits only the items produced during them.
    """

    name: str = "queue-saturation"
    max_delay_cycles: int = 18_000
    period: int = 1
    burst_len: int = 1

    def wrap(self, app: Any, intensity: float, rng: np.random.Generator) -> Any:
        consumer = getattr(app, "queue_consumer", None)
        if consumer is None:
            raise InterferenceError(
                f"workload {type(app).__name__} declares no queue_consumer; "
                "queue-saturation needs to know which thread drains the ring"
            )
        delay = int(round(intensity * self.max_delay_cycles))
        if delay <= 0:
            return app
        period, burst_len = self.period, self.burst_len

        def transform(threads: list[AppThread]) -> list[AppThread]:
            if not any(t.name == consumer for t in threads):
                raise InterferenceError(
                    f"declared queue_consumer {consumer!r} not among threads "
                    f"{[t.name for t in threads]}"
                )
            return [
                t
                if t.name != consumer
                else AppThread(
                    t.name,
                    t.core_id,
                    (lambda t=t: _drag_body(t.start(), delay, period, burst_len, t.poll_ip)),
                    t.poll_ip,
                )
                for t in threads
            ]

        return WrappedApp(app, transform=transform)


# ---------------------------------------------------------------------------
# Shared-LLC cache thrash


def _thrash_body(
    completion: _Completion,
    base: int,
    region_lines: int,
    lines_per_block: int,
    blocks_per_burst: int,
    uops_per_block: int,
    mlp: int,
    idle_cycles: int,
    ip: int,
):
    offset = 0
    # Hard cap so a mis-configured run can never spin forever.
    for _ in range(2_000_000):
        if completion.done:
            return
        outcome = None
        for _ in range(blocks_per_burst):
            count = min(lines_per_block, region_lines - offset)
            outcome = yield Exec(
                Block(
                    ip=ip,
                    uops=uops_per_block,
                    mem=MemRef(base + offset * LINE_BYTES, count, LINE_BYTES),
                    mem_mlp=mlp,
                )
            )
            offset = (offset + count) % region_lines
        if idle_cycles > 0 and outcome is not None:
            yield IdleUntil(outcome.end + idle_cycles)


@dataclass(frozen=True)
class CacheThrashInjector(Injector):
    """Streaming aggressor on a spare core evicting the shared LLC.

    A burst inserts ``intensity * 2 * llc_lines`` lines (crossing the LRU
    cliff at full intensity), then idles ``idle_cycles`` — set 0 or small
    for sustained pressure, large for bursty fluctuations.  Requires the
    cache model (``environment`` turns on ``with_caches`` + ``lockstep``,
    pinned to the app's declared machine spec so baseline and injected
    runs share cache geometry); the victim's memory-touching function is
    the declared ground truth (``injection_points["cache-thrash"]``).
    """

    name: str = "cache-thrash"
    lines_per_block: int = 256
    uops_per_block: int = 512
    mlp: int = 16
    #: 0 = sustained streaming; large values give bursty fluctuations.
    idle_cycles: int = 0
    #: Aggressor streaming-region size as a multiple of the LLC.
    region_factor: int = 8

    def environment(self, app: Any) -> dict:
        # Event swapping (paper Section V-D): a memory-stalled walk
        # retires few uops while it waits on DRAM, so a uops-driven
        # sampler barely samples the very function the thrash slows
        # down (PEBS cannot count bare cycles at all).  Sampling on
        # retired memory loads keeps the sample count per walk fixed
        # while the *gaps* stretch with the stalls, so ``t_last -
        # t_first`` tracks the DRAM time.
        return {
            "with_caches": True,
            "lockstep": True,
            "spec": self._base_spec(app),
            "event": HWEvent.MEM_LOAD_RETIRED_ALL,
            "reset_value": 128,
        }

    def wrap(self, app: Any, intensity: float, rng: np.random.Generator) -> Any:
        spec = self._base_spec(app)
        llc_lines = spec.llc.size_bytes // LINE_BYTES
        blocks_full = max(1, math.ceil(2 * llc_lines / self.lines_per_block))
        blocks = int(round(intensity * blocks_full))
        if blocks <= 0:
            return app
        symtab, ips = extend_symtab(app.symtab, [THRASH_SYMBOL])
        thrash_ip = ips[THRASH_SYMBOL]
        threads = app.threads()
        spare = getattr(app, "spare_core", None)
        if spare is None:
            spare = max(t.core_id for t in threads) + 1
        if any(t.core_id == spare for t in threads):
            raise InterferenceError(
                f"spare core {spare} already hosts an app thread"
            )
        region_lines = self.region_factor * llc_lines
        cfg = (
            0xA000_0000,
            region_lines,
            self.lines_per_block,
            blocks,
            self.uops_per_block,
            self.mlp,
            self.idle_cycles,
            thrash_ip,
        )

        def transform(threads: list[AppThread]) -> list[AppThread]:
            completion = _Completion(len(threads))
            wrapped = [
                AppThread(
                    t.name,
                    t.core_id,
                    (lambda t=t, c=completion: _watched(t.start(), c)),
                    t.poll_ip,
                )
                for t in threads
            ]
            wrapped.append(
                AppThread(
                    "__interference_thrash",
                    spare,
                    (lambda c=completion: _thrash_body(c, *cfg)),
                    thrash_ip,
                )
            )
            return wrapped

        return WrappedApp(app, symtab=symtab, transform=transform)


# ---------------------------------------------------------------------------
# Sampler / PEBS overload


@dataclass(frozen=True)
class SamplerOverloadInjector(Injector):
    """Capture-side interference: overload the PEBS drain path.

    Shrinks the PEBS buffer and scales the drain latency with intensity
    so buffers fill before the previous drain finished and the overload
    policy sheds them.  The app timeline is untouched (``wrap`` is the
    identity); the correct diagnosis of an affected cell is *degraded
    capture* — shed spans recorded, overlapping items flagged — never a
    confident function-level misattribution.
    """

    name: str = "sampler-overload"
    kind: str = "capture"
    buffer_records: int = 16
    drain_ns_max: float = 20_000.0
    policy: OverloadPolicy = field(default_factory=OverloadPolicy)

    def environment(self, app: Any) -> dict:
        return {
            "spec": self._base_spec(app),
            "double_buffered": True,
            "overload": self.policy,
        }

    def pressure_kwargs(self, app: Any, intensity: float) -> dict:
        if intensity <= 0:
            return {}
        base = self._base_spec(app)
        return {
            "spec": replace(
                base,
                pebs_buffer_records=self.buffer_records,
                pebs_drain_base_ns=base.pebs_drain_base_ns
                + intensity * self.drain_ns_max,
            )
        }


# ---------------------------------------------------------------------------
# The uniform entry point


@dataclass(frozen=True)
class InjectedWorkload:
    """One (workload, injector, intensity) attachment, ready to trace."""

    app: Any
    base_app: Any
    injector: Injector
    intensity: float
    #: kwargs for :func:`repro.session.trace` — environment + pressure.
    trace_kwargs: dict
    #: environment-only kwargs: what a fair baseline run must use.
    baseline_kwargs: dict
    expected_cause: str

    def record(self, **overrides):
        """Trace the injected app (``trace_kwargs`` + overrides)."""
        from repro.session import trace

        return trace(self.app, **{**self.trace_kwargs, **overrides})

    def record_baseline(self, **overrides):
        """Trace the *uninjected* app under the identical environment."""
        from repro.session import trace

        return trace(self.base_app, **{**self.baseline_kwargs, **overrides})


def inject(
    workload: Any,
    injector: Injector,
    intensity: float,
    seed: int = 0,
) -> InjectedWorkload:
    """Attach ``injector`` at ``intensity`` ∈ [0, 1] to ``workload``.

    Returns an :class:`InjectedWorkload` bundling the wrapped app, the
    capture kwargs the injector needs, and the expected root cause —
    everything the attribution matrix scores a cell with.  At intensity 0
    the app object is returned unwrapped and the pressure kwargs are
    empty, so the traced run is bitwise-identical to an uninjected run
    under the same environment (the no-op calibration property).

    Note: injectors may re-wire the workload's threads; build a fresh
    workload object per injection rather than re-injecting one instance.
    """
    if not 0.0 <= intensity <= 1.0:
        raise InterferenceError(
            f"intensity must be in [0, 1], got {intensity}"
        )
    rng = np.random.default_rng(int(seed))
    app = injector.wrap(workload, float(intensity), rng)
    env = injector.environment(workload)
    kwargs = {**env, **injector.pressure_kwargs(workload, float(intensity))}
    return InjectedWorkload(
        app=app,
        base_app=workload,
        injector=injector,
        intensity=float(intensity),
        trace_kwargs=kwargs,
        baseline_kwargs=env,
        expected_cause=injector.expected_cause(workload),
    )


#: Injector registry: name -> class with calibrated defaults.
INJECTORS: dict[str, type[Injector]] = {
    "core-stall": CoreStallInjector,
    "queue-saturation": QueueSaturationInjector,
    "cache-thrash": CacheThrashInjector,
    "sampler-overload": SamplerOverloadInjector,
}


def make_injector(name: str, **params) -> Injector:
    """Instantiate a registered injector by name."""
    try:
        cls = INJECTORS[name]
    except KeyError:
        raise InterferenceError(
            f"unknown injector {name!r}; known: {', '.join(sorted(INJECTORS))}"
        )
    return cls(**params)
