"""Time and frequency unit helpers.

Everything inside the simulator runs on an integer cycle clock.  Conversions
to wall-clock units (nanoseconds, microseconds) happen only at configuration
and reporting boundaries, and always go through this module so that the unit
of every quantity is explicit at the call site.

The default frequency is Skylake-like 3.0 GHz, i.e. 3 cycles per nanosecond.
"""

from __future__ import annotations

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0


def cycles_to_ns(cycles: float, freq_ghz: float) -> float:
    """Convert a cycle count to nanoseconds at ``freq_ghz`` GHz."""
    if freq_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return cycles / freq_ghz


def ns_to_cycles(ns: float, freq_ghz: float) -> int:
    """Convert nanoseconds to a whole number of cycles (rounded to nearest).

    Costs configured in nanoseconds (e.g. the 250 ns PEBS assist) become
    integer cycle charges on the core clock.
    """
    if freq_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return round(ns * freq_ghz)


def cycles_to_us(cycles: float, freq_ghz: float) -> float:
    """Convert a cycle count to microseconds at ``freq_ghz`` GHz."""
    return cycles_to_ns(cycles, freq_ghz) / NS_PER_US


def us_to_cycles(us: float, freq_ghz: float) -> int:
    """Convert microseconds to a whole number of cycles (rounded)."""
    return ns_to_cycles(us * NS_PER_US, freq_ghz)


def cycles_to_seconds(cycles: float, freq_ghz: float) -> float:
    """Convert a cycle count to seconds at ``freq_ghz`` GHz."""
    return cycles_to_ns(cycles, freq_ghz) / NS_PER_S


def bytes_per_cycle_to_mb_per_s(bytes_per_cycle: float, freq_ghz: float) -> float:
    """Convert a byte rate per cycle into MB/s (1 MB = 1e6 bytes)."""
    bytes_per_s = bytes_per_cycle * freq_ghz * NS_PER_S
    return bytes_per_s / 1e6
