"""Live dashboard over the tracer's own telemetry (`repro monitor`).

The monitor runs a streaming ingest of a trace file on a background
thread with a real metrics registry installed, and repaints a small
dashboard from that registry on the foreground thread — the same
counters `--telemetry` would export, watched live.  Because the refresh
loop only *reads* the registry (every instrument mutation is
lock-protected), the ingest thread never waits on the display.

On a TTY each frame redraws in place with ANSI cursor control; when
stdout is a pipe the monitor prints one plain snapshot per interval, so
``repro monitor trace.npz | tee log`` degrades gracefully.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.obs.metrics import MetricsRegistry, use_registry

#: Dashboard rows: (label, metric name, is_rate).  Rates are computed
#: from the delta between consecutive frames.
_ROWS: list[tuple[str, str, bool]] = [
    ("samples integrated", "repro_integrator_samples_total", True),
    ("chunks integrated", "repro_integrator_chunks_total", True),
    ("windows closed", "repro_integrator_windows_closed_total", True),
    ("reorder events", "repro_integrator_reorder_events_total", False),
    ("chunks validated", "repro_integrity_chunks_validated_total", False),
    ("chunks quarantined", "repro_integrity_chunks_quarantined_total", False),
    ("chunks repaired", "repro_integrity_chunks_repaired_total", False),
    ("crc failures", "repro_integrity_crc_failures_total", False),
    ("bytes read", "repro_reader_bytes_read_total", True),
    ("shard retries", "repro_ingest_shard_retries_total", False),
    ("shard failures", "repro_ingest_shard_failures_total", False),
    ("online items", "repro_online_items_total", True),
    ("online items dumped", "repro_online_items_dumped_total", False),
]


def _snapshot(reg: MetricsRegistry) -> dict[str, float]:
    return {name: reg.value(name, default=0.0) for _, name, _ in _ROWS}


def render_frame(
    reg: MetricsRegistry,
    prev: dict[str, float],
    dt: float,
    *,
    done: bool,
) -> tuple[str, dict[str, float]]:
    """One dashboard frame; returns (text, snapshot for the next delta)."""
    cur = _snapshot(reg)
    width = max(len(label) for label, _, _ in _ROWS)
    lines = []
    for label, name, is_rate in _ROWS:
        v = cur[name]
        line = f"  {label:<{width}}  {v:>14,.0f}"
        if is_rate and dt > 0 and not done:
            line += f"  ({(v - prev.get(name, 0.0)) / dt:>12,.0f}/s)"
        lines.append(line)
    header = "repro monitor — ingest " + ("finished" if done else "running")
    return header + "\n" + "\n".join(lines), cur


def run_monitor(tracefile, args) -> int:
    """Ingest ``tracefile`` on a worker thread; repaint until it finishes.

    The ingest runs sequentially (``workers=1``) so every low-level
    counter updates in this process and the dashboard sees it live.
    Returns 0, or re-raises the ingest error in the caller's thread so
    the CLI maps it to its usual exit codes.
    """
    from repro.core.options import IngestOptions
    from repro.core.streaming import ingest_trace

    reg = MetricsRegistry()
    failure: list[BaseException] = []
    result: list = []
    # Sequential regardless of --workers: the dashboard needs the
    # low-level counters updating in this process.
    options = IngestOptions.from_args(args).replace(workers=1)

    def _ingest() -> None:
        try:
            result.append(ingest_trace(tracefile, options=options))
        except BaseException as exc:  # noqa: BLE001 — re-raised in main thread
            failure.append(exc)

    tty = sys.stdout.isatty()
    prev: dict[str, float] = {}
    t_prev = time.perf_counter()
    n_lines = len(_ROWS) + 1
    with use_registry(reg):
        worker = threading.Thread(target=_ingest, name="repro-monitor-ingest")
        worker.start()
        first = True
        while True:
            worker.join(timeout=args.interval)
            done = not worker.is_alive()
            now = time.perf_counter()
            frame, prev = render_frame(reg, prev, now - t_prev, done=done)
            t_prev = now
            if tty and not first:
                # Repaint in place: up over the previous frame, clear down.
                sys.stdout.write(f"\x1b[{n_lines}A\x1b[0J")
            sys.stdout.write(frame + "\n")
            sys.stdout.flush()
            first = False
            if done:
                break
    if failure:
        raise failure[0]
    res = result[0]
    print(
        f"ingested {res.stats.samples} samples from "
        f"{len(res.per_core)} core(s) in {res.stats.wall_s:.2f}s "
        f"({res.stats.mb_per_s:.1f} MB/s)"
    )
    if res.anomalies is not None and res.anomalies.total:
        print(f"\nanomalies during ingest ({res.anomalies.total}):")
        for ev in res.anomalies.events():
            print(f"  {ev.describe()}")
    if not getattr(args, "no_heatmap", False):
        from repro.obs.heatmap import build_heatmap, render_heatmap

        print()
        print(
            render_heatmap(
                build_heatmap(tracefile, buckets=getattr(args, "buckets", 48))
            )
        )
    if args.telemetry:
        reg.dump(args.telemetry)
        print(f"telemetry written to {args.telemetry}")
    return 0
