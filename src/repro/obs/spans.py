"""Nestable span tracing for the tracer's own pipeline stages.

Where :mod:`repro.obs.metrics` answers "how many / how fast overall",
spans answer "where did *this* run's wall time go": every instrumented
stage (`ingest.trace`, `ingest.core`, `integrate.core`, …) opens a span
that records wall time (``perf_counter_ns``) **and** CPU time
(``thread_time_ns``), so a stage that is slow because it waits (queue
wait, pool fork) is distinguishable from one that is slow because it
computes — the same waiting-vs-working distinction DepGraph draws for
multi-core bottlenecks.

Usage::

    with span("ingest.shard", core=3):
        ...

Spans nest through a per-thread stack (the depth is recorded), and land
in a fixed-capacity :class:`SpanRecorder` **ring buffer** — recording is
O(1), memory is bounded, and a long run simply keeps the newest spans,
counting what it overwrote in :attr:`SpanRecorder.dropped`.

Like the metrics side, span recording is zero-cost-when-disabled: with
no recorder installed (:func:`set_recorder`), ``span()`` returns a
context manager whose enter/exit do nothing — no clock reads, no
allocation beyond the handle.

Export reuses the Chrome trace-event conventions of
:mod:`repro.analysis.export` (one ``X`` event per span, rows named per
thread), so the tracer's self-profile opens in the same Perfetto UI as
the workload traces it produces.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: Default ring capacity: bounded, but comfortably above one ingest run's
#: span count at default chunk sizes.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    #: ``perf_counter_ns`` at entry (monotonic, process-local).
    t_start_ns: int
    wall_ns: int
    #: CPU time the recording thread spent inside the span.
    cpu_ns: int
    thread_id: int
    #: Nesting depth at entry (0 = top-level span on its thread).
    depth: int
    attrs: tuple[tuple[str, str], ...] = ()


class SpanRecorder:
    """Fixed-capacity ring buffer of :class:`SpanRecord`.

    ``record`` overwrites the oldest entry once full; ``spans`` returns
    the survivors oldest-first; ``dropped`` counts the overwritten.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buf: list[SpanRecord | None] = [None] * capacity
        self._pos = 0

    def record(self, rec: SpanRecord) -> None:
        with self._lock:
            self._buf[self._pos % self.capacity] = rec
            self._pos += 1

    def __len__(self) -> int:
        return min(self._pos, self.capacity)

    @property
    def total_recorded(self) -> int:
        return self._pos

    @property
    def dropped(self) -> int:
        return max(0, self._pos - self.capacity)

    @property
    def spans(self) -> list[SpanRecord]:
        with self._lock:
            if self._pos <= self.capacity:
                return [r for r in self._buf[: self._pos] if r is not None]
            head = self._pos % self.capacity
            return [r for r in self._buf[head:] + self._buf[:head] if r is not None]

    def clear(self) -> None:
        with self._lock:
            self._buf = [None] * self.capacity
            self._pos = 0

    # -- export ----------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON of the recorded spans (ts in us)."""
        # Imported lazily: export pulls in the integration layers, and
        # this module must stay importable from anywhere in the package
        # (the machine layer imports obs for its counters).
        from repro.analysis.export import chrome_doc, thread_name_event

        spans = self.spans
        events: list[dict] = []
        tids: dict[int, int] = {}
        base = min((s.t_start_ns for s in spans), default=0)
        for s in spans:
            tid = tids.setdefault(s.thread_id, len(tids))
            events.append(
                {
                    "name": s.name,
                    "cat": "repro.obs",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": (s.t_start_ns - base) / 1_000.0,
                    "dur": s.wall_ns / 1_000.0,
                    "args": {
                        **dict(s.attrs),
                        "cpu_us": s.cpu_ns / 1_000.0,
                        "depth": s.depth,
                    },
                }
            )
        for thread_id, tid in tids.items():
            events.append(thread_name_event(1, tid, f"thread {thread_id}"))
        return chrome_doc(events)

    def write(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_chrome_trace()))


_recorder: SpanRecorder | None = None
_tls = threading.local()


def get_recorder() -> SpanRecorder | None:
    return _recorder


def set_recorder(recorder: SpanRecorder | None) -> SpanRecorder | None:
    """Install (or, with None, remove) the active recorder; returns the old."""
    global _recorder
    prev = _recorder
    _recorder = recorder
    return prev


@contextmanager
def use_recorder(recorder: SpanRecorder | None):
    prev = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(prev)


class _SpanHandle:
    """Class-based context manager: cheaper than a generator, and the
    no-recorder path touches no clocks at all."""

    __slots__ = ("_rec", "_name", "_attrs", "_t0", "_c0", "_depth")

    def __init__(self, rec: SpanRecorder | None, name: str, attrs: dict) -> None:
        self._rec = rec
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        if self._rec is None:
            return self
        depth = getattr(_tls, "depth", 0)
        _tls.depth = depth + 1
        self._depth = depth
        self._t0 = time.perf_counter_ns()
        self._c0 = time.thread_time_ns()
        return self

    def __exit__(self, *exc) -> bool:
        if self._rec is not None:
            wall = time.perf_counter_ns() - self._t0
            cpu = time.thread_time_ns() - self._c0
            _tls.depth = self._depth
            self._rec.record(
                SpanRecord(
                    name=self._name,
                    t_start_ns=self._t0,
                    wall_ns=wall,
                    cpu_ns=cpu,
                    thread_id=threading.get_ident(),
                    depth=self._depth,
                    attrs=tuple((str(k), str(v)) for k, v in self._attrs.items()),
                )
            )
        return False


def span(name: str, **attrs) -> _SpanHandle:
    """Open a span on the active recorder (no-op when none is installed)."""
    return _SpanHandle(_recorder, name, attrs)
