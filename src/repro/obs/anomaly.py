"""Online invariant checkers over the live capture and ingest paths.

The paper diagnoses fluctuations *after* the fact; the scheduler-bug
study that motivates this module showed the complementary tool: an
**online sanity checker** that catches invariant violations the moment
they happen, cheap enough to leave on.  Six invariants are checked:

``idle-core-while-items-queue``
    A core busy-polls a queue while items sit queued — the produce/
    consume rates have diverged (the paper's Fig 6 failure mode).
``switch-mark-gap``
    The gap between consecutive item windows on a core dwarfs the
    typical inter-item gap: the pipeline stalled between items.
``sample-rate-collapse``
    A core's achieved sample rate falls to a fraction of its own
    running rate — capture is losing resolution exactly when it is
    needed (the Fig 4 phenomenon, observed online).
``coverage-below-threshold``
    Corruption/shedding accounting says too little of a core's data
    survived for its numbers to be trusted.
``shed-span-burst``
    The overload-graceful PEBS buffer shed several spans in quick
    succession — sustained capture overload, not a blip.
``credit-window-starvation``
    The ingestion daemon withheld a producer's credits for many
    consecutive ACKs: backpressure has hardened into starvation.

Each violation is a typed :class:`AnomalyEvent` (kind, severity, core,
window, evidence) appended to a bounded, thread-safe
:class:`AnomalyLog`.  Subscribers (the flight recorder) see events
synchronously; everything is off by default and costs nothing until
:class:`AnomalyConfig` enables it — the same <5 % budget discipline as
the telemetry registry, enforced by tests.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace as _dc_replace

import numpy as np

from repro.errors import ConfigError

# -- kinds and severities ---------------------------------------------------

KIND_IDLE_CORE = "idle-core-while-items-queue"
KIND_MARK_GAP = "switch-mark-gap"
KIND_RATE_COLLAPSE = "sample-rate-collapse"
KIND_LOW_COVERAGE = "coverage-below-threshold"
KIND_SHED_BURST = "shed-span-burst"
KIND_CREDIT_STARVATION = "credit-window-starvation"
KIND_REPLICA_LAG = "replica-lag-exceeded"

#: Every checker kind, in documentation order.
ALL_KINDS = (
    KIND_IDLE_CORE,
    KIND_MARK_GAP,
    KIND_RATE_COLLAPSE,
    KIND_LOW_COVERAGE,
    KIND_SHED_BURST,
    KIND_CREDIT_STARVATION,
    KIND_REPLICA_LAG,
)

SEVERITIES = ("info", "warning", "critical")


def severity_rank(severity: str) -> int:
    """Ordinal of a severity name (raises on unknown names)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ConfigError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        )


@dataclass(frozen=True)
class AnomalyEvent:
    """One invariant violation, typed and self-describing.

    ``window`` is the virtual-time span the violation covers (``None``
    when the invariant has no time extent, e.g. end-of-stream coverage).
    ``evidence`` carries the checker's numbers — enough to re-derive the
    verdict without the raw trace.
    """

    kind: str
    severity: str
    core: int | None = None
    window: tuple[int, int] | None = None
    evidence: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validates
        if self.kind not in ALL_KINDS:
            raise ConfigError(
                f"unknown anomaly kind {self.kind!r}; expected one of {ALL_KINDS}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "core": self.core,
            "window": list(self.window) if self.window is not None else None,
            "evidence": dict(self.evidence),
        }

    def describe(self) -> str:
        where = f" core {self.core}" if self.core is not None else ""
        span = (
            f" @[{self.window[0]}..{self.window[1]}]"
            if self.window is not None
            else ""
        )
        return f"[{self.severity}] {self.kind}{where}{span} {self.evidence}"


@dataclass(frozen=True)
class AnomalyConfig:
    """Per-checker enable/threshold knobs, threaded through IngestOptions.

    ``enabled=False`` (the default) is the master off-switch: no checker
    object is even constructed, so a disabled run pays nothing.
    ``checkers`` selects which invariants run; thresholds below tune
    each one.  ``trigger_severity`` is the flight recorder's seal
    threshold (events below it only log).
    """

    enabled: bool = False
    checkers: tuple[str, ...] = ALL_KINDS
    log_capacity: int = 256
    trigger_severity: str = "critical"
    #: switch-mark-gap: flag gaps > factor x the core's median gap.
    mark_gap_factor: float = 8.0
    #: switch-mark-gap: need at least this many windows for a median.
    min_gap_windows: int = 8
    #: sample-rate-collapse: flag chunks whose rate < ratio x running rate.
    rate_collapse_ratio: float = 0.25
    #: sample-rate-collapse: chunks of history required before judging.
    min_rate_chunks: int = 4
    #: coverage-below-threshold: minimum acceptable sample/window coverage.
    coverage_threshold: float = 0.9
    #: shed-span-burst: spans shed since the last event that make a burst.
    shed_burst_spans: int = 4
    #: idle-core: cumulative spin cycles on one queue that fire the event.
    idle_wait_cycles: int = 100_000
    #: idle-core: items that must be sitting in the queue while spinning.
    idle_min_depth: int = 1
    #: credit-window-starvation: consecutive withheld ACKs that fire it.
    starved_acks: int = 8
    #: replica-lag-exceeded: committed-but-unconfirmed runs on one
    #: follower that fire it (a follower this far behind is effectively
    #: down — the primary is one disk failure from data loss).
    replica_lag_runs: int = 8

    def __post_init__(self) -> None:
        severity_rank(self.trigger_severity)  # validates
        for kind in self.checkers:
            if kind not in ALL_KINDS:
                raise ConfigError(
                    f"unknown checker {kind!r}; expected one of {ALL_KINDS}"
                )
        if self.log_capacity < 1:
            raise ConfigError(
                f"log_capacity must be >= 1, got {self.log_capacity}"
            )
        if self.mark_gap_factor <= 1.0:
            raise ConfigError(
                f"mark_gap_factor must be > 1, got {self.mark_gap_factor}"
            )
        if not 0.0 < self.rate_collapse_ratio < 1.0:
            raise ConfigError(
                "rate_collapse_ratio must be in (0, 1), got "
                f"{self.rate_collapse_ratio}"
            )
        if not 0.0 < self.coverage_threshold <= 1.0:
            raise ConfigError(
                "coverage_threshold must be in (0, 1], got "
                f"{self.coverage_threshold}"
            )
        for name in (
            "min_gap_windows",
            "min_rate_chunks",
            "shed_burst_spans",
            "idle_wait_cycles",
            "idle_min_depth",
            "starved_acks",
            "replica_lag_runs",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )

    def replace(self, **kw) -> "AnomalyConfig":
        return _dc_replace(self, **kw)

    def wants(self, kind: str) -> bool:
        return self.enabled and kind in self.checkers

    @classmethod
    def from_args(cls, args) -> "AnomalyConfig":
        """Build from CLI args (missing attributes keep their defaults)."""
        cfg = cls(enabled=bool(getattr(args, "anomaly", False)))
        checkers = getattr(args, "anomaly_checkers", None)
        if checkers:
            names = tuple(c.strip() for c in checkers.split(",") if c.strip())
            cfg = cfg.replace(checkers=names)
        capacity = getattr(args, "anomaly_log_capacity", None)
        if capacity is not None:
            cfg = cfg.replace(log_capacity=int(capacity))
        severity = getattr(args, "anomaly_severity", None)
        if severity is not None:
            cfg = cfg.replace(trigger_severity=severity)
        return cfg


class AnomalyLog:
    """Bounded, thread-safe ring of :class:`AnomalyEvent` objects.

    The newest ``capacity`` events are retained; older ones fall off the
    ring and are *counted* (``dropped``), never silently lost from the
    accounting.  ``subscribe`` registers a synchronous observer — the
    flight recorder uses it to seal incident bundles the moment a
    qualifying event fires.  Emission also feeds the telemetry registry
    (``repro_anomaly_events_total{kind=...}``) when one is installed.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[AnomalyEvent] = deque()
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._subscribers: list = []
        self.dropped = 0
        self.total = 0

    def emit(self, event: AnomalyEvent) -> None:
        with self._lock:
            self._events.append(event)
            aged = len(self._events) > self.capacity
            if aged:
                self._events.popleft()
                self.dropped += 1
            self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
            self.total += 1
            subscribers = list(self._subscribers)
        from repro.obs.instrumented import pipeline as _obs

        ins = _obs()
        if ins.enabled:
            ins.anomaly_events(event.kind).inc()
            if aged:
                ins.anomaly_dropped.inc()
        for fn in subscribers:
            fn(event)

    def subscribe(self, fn) -> None:
        """Register ``fn(event)`` to run synchronously on every emit."""
        with self._lock:
            self._subscribers.append(fn)

    def events(
        self, kind: str | None = None, min_severity: str | None = None
    ) -> list[AnomalyEvent]:
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if min_severity is not None:
            floor = severity_rank(min_severity)
            out = [e for e in out if severity_rank(e.severity) >= floor]
        return out

    @property
    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def summary(self, last: int = 32) -> dict:
        """JSON-able digest for stamping into trace/incident metadata."""
        with self._lock:
            tail = list(self._events)[-last:]
            return {
                "total": self.total,
                "dropped": self.dropped,
                "counts": dict(self._counts),
                "events": [e.to_dict() for e in tail],
            }


# -- checkers ---------------------------------------------------------------

#: Bound on events one checker instance emits — a pathological run must
#: not spend its time formatting anomaly evidence.
MAX_EVENTS_PER_CHECKER = 8


class MarkGapChecker:
    """switch-mark-gap: inter-window gaps vs. the core's own median."""

    kind = KIND_MARK_GAP

    def __init__(self, log: AnomalyLog, config: AnomalyConfig, core: int) -> None:
        self.log = log
        self.config = config
        self.core = core
        self.emitted = 0

    def check_windows(self, starts: np.ndarray, ends: np.ndarray) -> None:
        n = int(starts.shape[0])
        if n < self.config.min_gap_windows:
            return
        order = np.argsort(starts, kind="stable")
        s, e = starts[order], ends[order]
        gaps = s[1:] - np.maximum.accumulate(e)[:-1]
        gaps = np.maximum(gaps, 0)
        median = float(np.median(gaps))
        threshold = self.config.mark_gap_factor * max(median, 1.0)
        for i in np.nonzero(gaps > threshold)[0].tolist():
            if self.emitted >= MAX_EVENTS_PER_CHECKER:
                return
            self.emitted += 1
            lo = int(np.maximum.accumulate(e)[:-1][i])
            hi = int(s[1:][i])
            self.log.emit(
                AnomalyEvent(
                    kind=self.kind,
                    severity="warning",
                    core=self.core,
                    window=(lo, hi),
                    evidence={
                        "gap_cycles": int(gaps[i]),
                        "median_gap_cycles": median,
                        "factor": self.config.mark_gap_factor,
                    },
                )
            )


class RateCollapseChecker:
    """sample-rate-collapse: per-chunk rate vs. the core's running rate."""

    kind = KIND_RATE_COLLAPSE

    def __init__(self, log: AnomalyLog, config: AnomalyConfig, core: int) -> None:
        self.log = log
        self.config = config
        self.core = core
        self.emitted = 0
        self._chunks = 0
        self._total_samples = 0
        self._total_span = 0

    def observe_chunk(self, ts: np.ndarray) -> None:
        n = int(ts.shape[0])
        if n < 2:
            return
        span = int(ts[-1]) - int(ts[0])
        if span <= 0:
            return
        rate = n / span
        if (
            self._chunks >= self.config.min_rate_chunks
            and self._total_span > 0
            and self.emitted < MAX_EVENTS_PER_CHECKER
        ):
            baseline = self._total_samples / self._total_span
            if rate < self.config.rate_collapse_ratio * baseline:
                self.emitted += 1
                self.log.emit(
                    AnomalyEvent(
                        kind=self.kind,
                        severity="warning",
                        core=self.core,
                        window=(int(ts[0]), int(ts[-1])),
                        evidence={
                            "chunk_rate": rate,
                            "running_rate": baseline,
                            "ratio": rate / baseline,
                            "threshold": self.config.rate_collapse_ratio,
                        },
                    )
                )
        self._chunks += 1
        self._total_samples += n
        self._total_span += span


class CoverageChecker:
    """coverage-below-threshold: end-of-stream integrity accounting."""

    kind = KIND_LOW_COVERAGE

    def __init__(self, log: AnomalyLog, config: AnomalyConfig) -> None:
        self.log = log
        self.config = config
        self.emitted = 0

    def check(self, coverage) -> None:
        if self.emitted >= MAX_EVENTS_PER_CHECKER:
            return
        sample_cov = coverage.sample_coverage
        window_cov = coverage.window_coverage
        floor = self.config.coverage_threshold
        if sample_cov >= floor and window_cov >= floor and not coverage.shard_failed:
            return
        self.emitted += 1
        self.log.emit(
            AnomalyEvent(
                kind=self.kind,
                severity="critical",
                core=coverage.core,
                window=None,
                evidence={
                    "sample_coverage": sample_cov,
                    "window_coverage": window_cov,
                    "threshold": floor,
                    "shard_failed": bool(coverage.shard_failed),
                    "degraded_items": len(coverage.degraded_items),
                },
            )
        )


class ShedBurstChecker:
    """shed-span-burst: the PEBS unit shed several spans back to back.

    Wired as each unit's ``shed_listener`` so the check runs the moment
    a span is shed, not at the next checkpoint.
    """

    kind = KIND_SHED_BURST

    def __init__(self, log: AnomalyLog, config: AnomalyConfig) -> None:
        self.log = log
        self.config = config
        self._spans: dict[int, int] = {}
        self._burst_lo: dict[int, int] = {}
        self._shed_samples: dict[int, int] = {}
        self.emitted = 0

    def on_shed(self, core: int, lo: int, hi: int, n_samples: int) -> None:
        count = self._spans.get(core, 0) + 1
        self._spans[core] = count
        self._shed_samples[core] = self._shed_samples.get(core, 0) + n_samples
        if count == 1:
            self._burst_lo[core] = lo
        if count >= self.config.shed_burst_spans:
            if self.emitted < MAX_EVENTS_PER_CHECKER:
                self.emitted += 1
                self.log.emit(
                    AnomalyEvent(
                        kind=self.kind,
                        severity="warning",
                        core=core,
                        window=(self._burst_lo.get(core, lo), hi),
                        evidence={
                            "spans": count,
                            "shed_samples": self._shed_samples.get(core, 0),
                            "burst_threshold": self.config.shed_burst_spans,
                        },
                    )
                )
            self._spans[core] = 0
            self._shed_samples[core] = 0


class IdleQueueChecker:
    """idle-core-while-items-queue: scheduler-side spin accounting.

    The scheduler reports every backpressure/empty-poll spin through
    :meth:`on_wait`; once a core's cumulative spin on one queue crosses
    ``idle_wait_cycles`` *while items were queued*, the invariant has
    been violated for real — one event fires per crossing, critical,
    because this is the paper's headline produce/consume divergence.
    """

    kind = KIND_IDLE_CORE

    def __init__(self, log: AnomalyLog, config: AnomalyConfig) -> None:
        self.log = log
        self.config = config
        self._wait: dict[tuple[int, str], int] = {}
        self._waits_n: dict[tuple[int, str], int] = {}
        self._lo: dict[tuple[int, str], int] = {}
        self.emitted = 0

    def on_wait(
        self, core: int, op: str, queue, wait: int, depth: int, ts: int
    ) -> None:
        if wait <= 0 or depth < self.config.idle_min_depth:
            return
        key = (core, queue.name)
        total = self._wait.get(key, 0)
        if total == 0:
            self._lo[key] = ts
        total += wait
        self._waits_n[key] = self._waits_n.get(key, 0) + 1
        if total >= self.config.idle_wait_cycles:
            if self.emitted < MAX_EVENTS_PER_CHECKER:
                self.emitted += 1
                self.log.emit(
                    AnomalyEvent(
                        kind=self.kind,
                        severity="critical",
                        core=core,
                        window=(self._lo.get(key, ts), ts + wait),
                        evidence={
                            "queue": queue.name,
                            "op": op,
                            "wait_cycles": total,
                            "waits": self._waits_n.get(key, 0),
                            "depth": depth,
                            "peak_depth": getattr(queue, "peak_depth", 0),
                            "threshold": self.config.idle_wait_cycles,
                        },
                    )
                )
            total = 0
            self._waits_n[key] = 0
        self._wait[key] = total


class CreditStarvationChecker:
    """credit-window-starvation: daemon-side withheld-ACK accounting."""

    kind = KIND_CREDIT_STARVATION

    def __init__(self, log: AnomalyLog, config: AnomalyConfig) -> None:
        self.log = log
        self.config = config
        self._withheld: dict[str, int] = {}
        self.emitted = 0

    def on_withheld(self, run: str | None, queue_depth: int, credits: int) -> None:
        key = run or "?"
        n = self._withheld.get(key, 0) + 1
        self._withheld[key] = n
        if n >= self.config.starved_acks:
            if self.emitted < MAX_EVENTS_PER_CHECKER:
                self.emitted += 1
                self.log.emit(
                    AnomalyEvent(
                        kind=self.kind,
                        severity="critical",
                        core=None,
                        window=None,
                        evidence={
                            "run": key,
                            "withheld_acks": n,
                            "queue_depth": queue_depth,
                            "credits": credits,
                            "threshold": self.config.starved_acks,
                        },
                    )
                )
            self._withheld[key] = 0

    def on_restored(self, run: str | None) -> None:
        self._withheld[run or "?"] = 0


class ReplicaLagChecker:
    """replica-lag-exceeded: a follower too far behind the catalog.

    Fed by the primary daemon's replicator tasks after every sync round
    with each follower's lag — the number of committed runs the
    replication ledger has not confirmed on that follower.  Lag at or
    above the threshold fires one critical event per excursion; the
    checker re-arms when the follower catches back up below it.
    """

    kind = KIND_REPLICA_LAG

    def __init__(self, log: AnomalyLog, config: AnomalyConfig) -> None:
        self.log = log
        self.config = config
        self._firing: dict[str, bool] = {}
        self.emitted = 0

    def on_lag(self, follower: str, lag: int, committed: int) -> None:
        if lag >= self.config.replica_lag_runs:
            if not self._firing.get(follower, False):
                self._firing[follower] = True
                if self.emitted < MAX_EVENTS_PER_CHECKER:
                    self.emitted += 1
                    self.log.emit(
                        AnomalyEvent(
                            kind=self.kind,
                            severity="critical",
                            core=None,
                            window=None,
                            evidence={
                                "follower": follower,
                                "lag_runs": lag,
                                "committed_runs": committed,
                                "threshold": self.config.replica_lag_runs,
                            },
                        )
                    )
        else:
            self._firing[follower] = False


class IngestCheckers:
    """The ingest-path checker bundle for one core.

    Built only when anomaly checking is enabled, so the streaming loop's
    only cost when disabled is one ``is not None`` test per call site —
    the same discipline as the null telemetry registry.
    """

    __slots__ = ("mark_gap", "rate", "coverage_checker")

    def __init__(self, log: AnomalyLog, config: AnomalyConfig, core: int) -> None:
        self.mark_gap = (
            MarkGapChecker(log, config, core)
            if config.wants(KIND_MARK_GAP)
            else None
        )
        self.rate = (
            RateCollapseChecker(log, config, core)
            if config.wants(KIND_RATE_COLLAPSE)
            else None
        )
        self.coverage_checker = (
            CoverageChecker(log, config)
            if config.wants(KIND_LOW_COVERAGE)
            else None
        )

    def check_windows(self, starts: np.ndarray, ends: np.ndarray) -> None:
        if self.mark_gap is not None:
            self.mark_gap.check_windows(starts, ends)

    def observe_chunk(self, ts: np.ndarray) -> None:
        if self.rate is not None:
            self.rate.observe_chunk(ts)

    def check_coverage(self, coverage) -> None:
        if self.coverage_checker is not None:
            self.coverage_checker.check(coverage)


def build_ingest_checkers(
    log: AnomalyLog | None, config: AnomalyConfig, core: int
) -> IngestCheckers | None:
    """Checker bundle for one ingested core, or None when disabled."""
    if log is None or not config.enabled:
        return None
    if not (
        config.wants(KIND_MARK_GAP)
        or config.wants(KIND_RATE_COLLAPSE)
        or config.wants(KIND_LOW_COVERAGE)
    ):
        return None
    return IngestCheckers(log, config, core)
