"""Anomaly-triggered flight recorder: anomalies *capture*, not just log.

A long-running capture cannot durably record everything forever, and a
post-hoc diagnosis cannot see what was never kept.  The flight recorder
closes the loop between the two: capture checkpoints stream into a
bounded :class:`~repro.core.durable.SegmentRing` (newest segments win),
and the moment an :class:`~repro.obs.anomaly.AnomalyEvent` at or above
the configured severity fires, the ring is sealed into a **tagged
incident bundle** — a valid version-3 trace container whose meta names
the triggering anomaly, the recent anomaly history, and what the ring
had already evicted.  ``repro diagnose`` attributes the incident's root
cause from the bundle; ``repro push`` ships it to the fleet store like
any other run.

Storage failure while sealing degrades the recorder (``degraded``,
``write_errors``) instead of killing the capture — the same discipline
as :class:`~repro.session.SessionWatchdog`.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from repro.core.durable import RecoveryReport, SegmentRing
from repro.errors import ConfigError, TraceWriteError
from repro.obs.anomaly import AnomalyEvent, AnomalyLog, severity_rank
from repro.obs.instrumented import pipeline as _obs


@dataclass(frozen=True)
class Incident:
    """One sealed incident bundle and the event that triggered it."""

    path: pathlib.Path
    event: AnomalyEvent
    report: RecoveryReport


class FlightRecorder:
    """Seals the segment ring into incident bundles on qualifying events.

    Parameters
    ----------
    ring:
        The bounded segment ring the capture checkpoints into.
    out_dir:
        Directory incident bundles are written to (created on demand by
        the durable writer).  Bundles are named
        ``incident-NNN-<kind>.npz``.
    trigger_severity:
        Minimum severity that seals a bundle; events below it only log.
    max_incidents:
        Bundles per run — one incident per distinct failure burst is the
        useful record; an anomaly storm must not fill the disk.
    cooldown_events:
        After sealing, this many further qualifying events are absorbed
        into the *next* bundle's anomaly history instead of each sealing
        their own (the storm guard's second half).
    """

    def __init__(
        self,
        ring: SegmentRing,
        out_dir: str | pathlib.Path,
        *,
        trigger_severity: str = "critical",
        max_incidents: int = 4,
        cooldown_events: int = 16,
    ) -> None:
        severity_rank(trigger_severity)  # validates
        if max_incidents < 1:
            raise ConfigError(
                f"max_incidents must be >= 1, got {max_incidents}"
            )
        if cooldown_events < 0:
            raise ConfigError(
                f"cooldown_events must be >= 0, got {cooldown_events}"
            )
        self.ring = ring
        self.out_dir = pathlib.Path(out_dir)
        self.trigger_severity = trigger_severity
        self.max_incidents = max_incidents
        self.cooldown_events = cooldown_events
        self.incidents: list[Incident] = []
        self.suppressed = 0
        self.degraded = False
        self.write_errors: list[str] = []
        self._log: AnomalyLog | None = None
        self._cooldown = 0
        self._sealing = False
        self._pending: AnomalyEvent | None = None
        #: Optional pre-seal hook (the session wires the watchdog's
        #: checkpoint here so the ring holds everything up to the event,
        #: not just up to the last periodic checkpoint).
        self.flush = None

    def attach(self, log: AnomalyLog) -> "FlightRecorder":
        """Subscribe to an anomaly log; returns self for chaining."""
        self._log = log
        log.subscribe(self.on_event)
        return self

    def on_event(self, event: AnomalyEvent) -> None:
        if severity_rank(event.severity) < severity_rank(self.trigger_severity):
            return
        if self._sealing:
            return  # a checker firing inside flush(); already being sealed
        if self._pending is not None:
            self.suppressed += 1
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            self.suppressed += 1
            return
        if len(self.incidents) >= self.max_incidents:
            self.suppressed += 1
            return
        # Post-trigger roll: don't seal at the instant of the event — the
        # anomalous item is typically still *in flight* (an idle-core
        # violation fires while the wait is happening, before the slowed
        # item's END mark exists), and a bundle cut there would drop
        # exactly the window that matters.  Arm instead, and seal at the
        # next checkpoint, when the triggering window has closed.
        self._pending = event

    def on_checkpoint(self) -> Incident | None:
        """Seal the armed incident, if any (called after each checkpoint)."""
        if self._pending is None or self._sealing:
            return None
        event, self._pending = self._pending, None
        return self.seal(event)

    def seal(self, event: AnomalyEvent) -> Incident | None:
        """Seal the ring for ``event`` now; None when storage failed."""
        n = len(self.incidents)
        path = self.out_dir / f"incident-{n:03d}-{event.kind}.npz"
        incident_meta = {
            "trigger": event.to_dict(),
            "suppressed_events": self.suppressed,
        }
        if self._log is not None:
            incident_meta["anomalies"] = self._log.summary()
        self._sealing = True
        try:
            if self.flush is not None:
                self.flush()
            report = self.ring.seal_incident(path, incident_meta)
        except TraceWriteError as exc:
            self.degraded = True
            self.write_errors.append(str(exc))
            return None
        finally:
            self._sealing = False
        incident = Incident(path=path, event=event, report=report)
        self.incidents.append(incident)
        self._cooldown = self.cooldown_events
        ins = _obs()
        if ins.enabled:
            ins.flight_incidents.inc()
        return incident

    def describe(self) -> str:
        if not self.incidents:
            return "flight recorder: no incidents"
        lines = [f"flight recorder: {len(self.incidents)} incident(s)"]
        for inc in self.incidents:
            lines.append(f"  {inc.path}  <- {inc.event.describe()}")
        if self.suppressed:
            lines.append(f"  ({self.suppressed} further event(s) absorbed)")
        return "\n".join(lines)
