"""Low-overhead metric primitives for the tracer's own pipeline.

The paper's thesis is that a high-throughput system cannot be diagnosed
without low-overhead per-stage visibility; this module applies that
standard to the reproduction itself.  Three instrument kinds cover the
pipeline's needs:

* :class:`Counter` — monotonically increasing totals (samples ingested,
  chunks quarantined, shard retries);
* :class:`Gauge` — last-write-wins values (ingest wall time, worker
  count);
* :class:`Histogram` — HDR-style *log-bucketed* latency distributions.
  Bucket boundaries grow geometrically (``2 ** (1/16)`` per bucket, i.e.
  16 sub-buckets per octave), so any observation is representable with a
  bounded ~4.4 % relative error using a handful of integer cells instead
  of storing every observation — the same trick HdrHistogram uses to
  keep recording O(1) and export O(buckets).

All instruments are process-wide and thread-safe: a mutating operation
takes the instrument's own lock (never the registry lock), so concurrent
ingest workers on a thread pool can hammer the same counter without
losing increments.

The **null registry** is the zero-cost-when-disabled half of the design:
:func:`get_registry` returns :data:`NULL_REGISTRY` unless a caller
installed a real one, and the null registry hands out shared no-op
instruments.  Instrumented code therefore never branches on "is
telemetry on" — it always calls ``.inc()`` / ``.observe()`` — and pays
only an attribute lookup plus an empty method call when telemetry is
off (bounded well under the 5 % overhead budget; see
``tests/obs/test_instrumented.py``).

Exporters speak the two formats the satellite tooling expects:
Prometheus text exposition (:meth:`MetricsRegistry.to_prometheus`) and
JSON (:meth:`MetricsRegistry.to_json`).  :func:`parse_prometheus_text`
is the tiny validating parser CI uses to check the exposition really is
well-formed Prometheus text.
"""

from __future__ import annotations

import json
import math
import re
import threading
from contextlib import contextmanager

from repro.errors import ReproError

#: Sub-buckets per power of two: relative bucket width 2**(1/16)-1 = 4.4%.
BUCKETS_PER_OCTAVE = 16
_LOG2_SCALE = BUCKETS_PER_OCTAVE / math.log(2.0)

#: Bucket index used for observations <= 0 (durations can round to zero).
_ZERO_BUCKET = -(2**31)


class TelemetryError(ReproError):
    """Misuse of the metrics registry (kind conflict, bad name)."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for k, v in labels
    )
    return "{" + body + "}"


def _fmt(v: float) -> str:
    """Prometheus sample-value formatting: integers stay integral."""
    f = float(v)
    if f == int(f) and abs(f) < 2**53:
        return str(int(f))
    return repr(f)


class Counter:
    """Monotonic counter.  ``inc`` is thread-safe; negative deltas raise."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str, help: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease ({delta})")
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins value; also supports inc/dec for level tracking."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        with self._lock:
            self._value += delta

    def dec(self, delta: float = 1.0) -> None:
        self.inc(-delta)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Log-bucketed (HDR-style) distribution of non-negative observations.

    Observations land in geometric buckets indexed by
    ``floor(log2(v) * BUCKETS_PER_OCTAVE)``; recording is a dict
    increment under the instrument lock.  Quantiles are answered from
    the bucket counts with a bounded relative error of one bucket width
    (~4.4 %), clamped to the exact observed min/max.
    """

    __slots__ = (
        "name", "help", "labels", "_lock", "_buckets",
        "_count", "_sum", "_min", "_max",
    )

    kind = "histogram"

    def __init__(self, name: str, help: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @staticmethod
    def bucket_index(value: float) -> int:
        if value <= 0.0:
            return _ZERO_BUCKET
        return math.floor(math.log(value) * _LOG2_SCALE)

    @staticmethod
    def bucket_upper(idx: int) -> float:
        if idx == _ZERO_BUCKET:
            return 0.0
        return 2.0 ** ((idx + 1) / BUCKETS_PER_OCTAVE)

    def observe(self, value: float) -> None:
        v = float(value)
        idx = self.bucket_index(v)
        with self._lock:
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100), within one bucket width."""
        if not 0.0 <= p <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = p / 100.0 * self._count
            seen = 0
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if seen >= rank:
                    if idx == _ZERO_BUCKET:
                        return max(0.0, self._min)
                    # Geometric bucket midpoint, clamped to observed range.
                    mid = 2.0 ** ((idx + 0.5) / BUCKETS_PER_OCTAVE)
                    return min(max(mid, self._min), self._max)
            return self._max

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs for Prometheus export."""
        out: list[tuple[float, int]] = []
        with self._lock:
            cum = 0
            for idx in sorted(self._buckets):
                cum += self._buckets[idx]
                out.append((self.bucket_upper(idx), cum))
        return out


class _NullInstrument:
    """Shared no-op standing in for every instrument kind when disabled."""

    __slots__ = ()

    name = "null"
    help = ""
    labels: tuple = ()
    kind = "null"
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    value = 0.0

    def inc(self, delta: float = 1.0) -> None:
        pass

    def dec(self, delta: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def cumulative_buckets(self) -> list:
        return []


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Process-wide, thread-safe get-or-create store of instruments.

    Instruments are identified by ``(name, labels)``; asking twice for
    the same identity returns the same object, and asking for the same
    name with a different *kind* raises — a name means one thing.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def _get(self, cls, name: str, help: str, labels: dict[str, str]):
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        for k in labels:
            if not _LABEL_NAME_RE.match(str(k)):
                raise TelemetryError(f"invalid label name {k!r} on {name}")
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is not None:
                if inst.kind != cls.kind:
                    raise TelemetryError(
                        f"metric {name!r} already registered as {inst.kind}, "
                        f"requested {cls.kind}"
                    )
                return inst
            seen = self._kinds.get(name)
            if seen is not None and seen != cls.kind:
                raise TelemetryError(
                    f"metric {name!r} already registered as {seen}, "
                    f"requested {cls.kind}"
                )
            inst = cls(name, help or self._help.get(name, ""), key[1])
            self._instruments[key] = inst
            self._kinds[name] = cls.kind
            if help:
                self._help[name] = help
            return inst

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", **labels) -> Histogram:
        return self._get(Histogram, name, help, labels)

    # -- read side -------------------------------------------------------
    def collect(self) -> list:
        """All instruments, grouped by name then label set (stable order)."""
        with self._lock:
            return [
                self._instruments[key]
                for key in sorted(self._instruments, key=lambda k: (k[0], k[1]))
            ]

    def value(self, name: str, default: float | None = None, **labels) -> float:
        """Current value of a counter/gauge (tests, dashboards)."""
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
        if inst is None:
            if default is not None:
                return default
            raise TelemetryError(f"no metric {name!r} with labels {labels}")
        return inst.value

    # -- exporters -------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: list[str] = []
        last_name = None
        for inst in self.collect():
            if inst.name != last_name:
                if inst.help:
                    lines.append(f"# HELP {inst.name} {inst.help}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
                last_name = inst.name
            lbl = _render_labels(inst.labels)
            if inst.kind == "histogram":
                cum = 0
                for upper, cum in inst.cumulative_buckets():
                    le = dict(inst.labels)
                    le["le"] = _fmt(upper)
                    lines.append(
                        f"{inst.name}_bucket{_render_labels(_label_key(le))} {cum}"
                    )
                inf = dict(inst.labels)
                inf["le"] = "+Inf"
                lines.append(
                    f"{inst.name}_bucket{_render_labels(_label_key(inf))} {inst.count}"
                )
                lines.append(f"{inst.name}_sum{lbl} {_fmt(inst.sum)}")
                lines.append(f"{inst.name}_count{lbl} {inst.count}")
            else:
                lines.append(f"{inst.name}{lbl} {_fmt(inst.value)}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """JSON document mirroring the Prometheus exposition."""
        doc: dict = {"counters": [], "gauges": [], "histograms": []}
        for inst in self.collect():
            entry: dict = {"name": inst.name, "labels": dict(inst.labels)}
            if inst.kind == "histogram":
                entry.update(
                    count=inst.count,
                    sum=inst.sum,
                    min=inst.min,
                    max=inst.max,
                    p50=inst.percentile(50),
                    p95=inst.percentile(95),
                    p99=inst.percentile(99),
                )
                doc["histograms"].append(entry)
            elif inst.kind == "gauge":
                entry["value"] = inst.value
                doc["gauges"].append(entry)
            else:
                entry["value"] = inst.value
                doc["counters"].append(entry)
        return doc

    def dump(self, path) -> None:
        """Write the registry to ``path``: ``.json`` or Prometheus text."""
        text = (
            json.dumps(self.to_json(), indent=2) + "\n"
            if str(path).endswith(".json")
            else self.to_prometheus()
        )
        with open(path, "w") as fh:
            fh.write(text)


class NullRegistry(MetricsRegistry):
    """Disabled registry: every instrument request returns the shared no-op.

    ``collect``/exporters see an empty registry, so accidentally
    exporting a disabled registry produces an empty document rather than
    lies.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", **labels):  # type: ignore[override]
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels):  # type: ignore[override]
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", **labels):  # type: ignore[override]
        return NULL_INSTRUMENT


#: The process default: telemetry off, all instruments no-ops.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently installed registry (the null registry by default)."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (None restores the null registry); returns the old."""
    global _active
    prev = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return prev


@contextmanager
def use_registry(registry: MetricsRegistry | None):
    """Scope helper: install a registry for the duration of a block."""
    prev = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(prev)


# ---------------------------------------------------------------------------
# Tiny validating parser (CI uses this to check the exposition format)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+"
    r"(?P<value>NaN|[+-]?Inf|[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+))"
    r"(?:\s+\d+)?$"  # optional timestamp
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse/validate Prometheus text exposition; sample -> value.

    Keys are ``name{label="v",...}`` with labels sorted (bare ``name``
    when unlabelled).  Raises :class:`ValueError` on any line that is
    neither a well-formed comment nor a well-formed sample — this is the
    CI smoke check that the exporter speaks real Prometheus.
    """
    samples: dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ValueError(f"line {lineno}: malformed {parts[1]} comment: {raw!r}")
                if parts[1] == "TYPE" and (len(parts) < 4 or parts[3] not in _TYPES):
                    raise ValueError(f"line {lineno}: unknown metric type: {raw!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: not a valid Prometheus sample: {raw!r}")
        labels = {}
        if m.group("labels"):
            body = m.group("labels")[1:-1]
            pos = 0
            while pos < len(body):
                lm = _LABEL_RE.match(body, pos)
                if lm is None:
                    raise ValueError(f"line {lineno}: malformed labels: {raw!r}")
                labels[lm.group(1)] = lm.group(2)
                pos = lm.end()
                if pos < len(body):
                    if body[pos] != ",":
                        raise ValueError(f"line {lineno}: malformed labels: {raw!r}")
                    pos += 1
        key = m.group("name") + _render_labels(_label_key(labels))
        v = m.group("value")
        samples[key] = float(v.replace("Inf", "inf"))
    return samples
