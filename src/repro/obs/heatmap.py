"""Per-core × time heatmaps of a trace container, and the fleet rollup.

A fluctuation diagnosis starts with *where to look*: which core, which
stretch of the run.  The heatmap folds one container into a small
terminal picture — per core, virtual time bucketed into fixed-width
cells, one shaded lane each for items completed, samples captured, and
wait-symbol samples (busy-poll / backpressure spins), plus markers for
shed spans and anomaly events recorded in the container's metadata.  A
glance shows "core 0 stalled in its third quarter while core 1's queue
waits spiked" without integrating anything by hand.

:func:`fleet_rollup` is the same idea one level up: every committed run
of a :class:`~repro.service.store.TraceStore`, one row each, with
anomaly and incident counts pulled from the containers' metadata — the
`repro fleet` verb.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field

import numpy as np

from repro.core.tracefile import TraceFile, TraceReader, load_trace
from repro.errors import ReproError

#: Intensity ramp for one heatmap cell (9 levels, space = zero).
SHADES = " ▁▂▃▄▅▆▇█"

#: Symbols whose samples count as *waiting* rather than working.  A
#: heuristic over symbol names — the simulator's poll/backpressure
#: symbols all match, and so do the idiomatic names real profiles use.
WAIT_SYMBOL_RE = re.compile(r"wait|spin|poll|stall|idle|drain", re.IGNORECASE)


@dataclass(frozen=True)
class CoreLane:
    """One core's bucketed activity layers."""

    core: int
    #: Item windows closing per bucket (throughput shape).
    items: np.ndarray
    #: Samples captured per bucket (capture-rate shape).
    samples: np.ndarray
    #: Samples landing in wait-ish symbols per bucket.
    waits: np.ndarray
    #: True where an overload shed span overlaps the bucket.
    shed: np.ndarray
    #: bucket -> anomaly kinds whose event window touches it.
    anomalies: dict[int, list[str]] = field(default_factory=dict)


@dataclass(frozen=True)
class Heatmap:
    """A container folded into per-core time-bucket lanes."""

    t0: int
    t1: int
    buckets: int
    lanes: tuple[CoreLane, ...]
    #: Anomaly kinds seen anywhere (legend order).
    kinds: tuple[str, ...]
    #: The incident trigger kind, for bundles sealed by the flight
    #: recorder (None for ordinary containers).
    incident_kind: str | None = None


def _bucket_of(ts: np.ndarray, t0: int, t1: int, buckets: int) -> np.ndarray:
    span = max(1, t1 - t0)
    idx = ((ts - t0) * buckets) // span
    return np.clip(idx, 0, buckets - 1).astype(np.int64)


def _bincount(idx: np.ndarray, buckets: int) -> np.ndarray:
    if idx.shape[0] == 0:
        return np.zeros(buckets, dtype=np.int64)
    return np.bincount(idx, minlength=buckets)[:buckets]


def build_heatmap(source, *, buckets: int = 48) -> Heatmap:
    """Fold a container (path or loaded :class:`TraceFile`) into lanes.

    Mid-run-sealed containers (incident bundles, interrupted runs)
    integrate leniently, so the heatmap never refuses exactly the
    containers one most wants to look at.
    """
    if buckets < 1:
        raise ReproError(f"heatmap needs buckets >= 1, got {buckets}")
    tf = source if isinstance(source, TraceFile) else load_trace(source)
    cores = tf.sample_cores
    if not cores:
        raise ReproError("container holds no per-core data to draw")
    # The time span covers every sample and switch mark of every core.
    lo: list[int] = []
    hi: list[int] = []
    for c in cores:
        ts = tf.samples(c).ts
        if ts.shape[0]:
            lo.append(int(ts[0]))
            hi.append(int(ts[-1]))
        sw = tf.switches(c).ts
        if sw.shape[0]:
            lo.append(int(sw.min()))
            hi.append(int(sw.max()))
    if not lo:
        raise ReproError("container holds no timestamps to draw")
    t0, t1 = min(lo), max(hi)

    wait_idx = {
        i for i, name in enumerate(tf.symtab.names) if WAIT_SYMBOL_RE.search(name)
    }
    meta = tf.meta or {}
    shed_spans = (meta.get("capture") or {}).get("shed_spans") or {}
    events = list(((meta.get("anomalies") or {}).get("events")) or [])
    incident = meta.get("incident") or {}
    trigger = incident.get("trigger")
    if trigger:
        events.append(trigger)
    for ev in (incident.get("anomalies") or {}).get("events") or []:
        events.append(ev)

    kinds_seen: list[str] = []
    lanes = []
    for c in cores:
        samples = tf.samples(c)
        sample_buckets = _bucket_of(samples.ts, t0, t1, buckets)
        sample_lane = _bincount(sample_buckets, buckets)
        waits = tf.waits(c)
        if len(waits):
            # Recorded wait edges are the ground truth for the wait lane:
            # each edge contributes at its start bucket, weighted by its
            # wait cycles normalized to one sample-period-ish unit so the
            # lane's scale stays comparable to the symbol-derived one.
            w_buckets = _bucket_of(waits.ts, t0, t1, buckets)
            weights = np.maximum(waits.cycles, 1).astype(np.float64)
            unit = max(1.0, float(np.median(weights)))
            wait_lane = np.round(
                np.bincount(
                    w_buckets, weights=weights / unit, minlength=buckets
                )[:buckets]
            ).astype(np.int64)
        elif wait_idx and samples.ts.shape[0]:
            # Older containers without the wait member: fall back to the
            # poll/wait-symbol heuristic over the sampled ips, silently.
            fidx = tf.symtab.lookup_many(samples.ip)
            mask = np.isin(fidx, list(wait_idx))
            wait_lane = _bincount(sample_buckets[mask], buckets)
        else:
            wait_lane = np.zeros(buckets, dtype=np.int64)
        # Items: lenient integration pairs what genuinely paired, so
        # cut-short containers still draw.
        trace = tf.integrate(c, lenient=True)
        ends = np.asarray([w.t_end for w in trace.windows], dtype=np.int64)
        item_lane = _bincount(_bucket_of(ends, t0, t1, buckets), buckets)
        shed_lane = np.zeros(buckets, dtype=bool)
        for pair in shed_spans.get(str(c)) or shed_spans.get(c) or []:
            s_lo = t0 if pair[0] is None else int(pair[0])
            s_hi = t1 if pair[1] is None else int(pair[1])
            b_lo = int(_bucket_of(np.asarray([s_lo]), t0, t1, buckets)[0])
            b_hi = int(_bucket_of(np.asarray([s_hi]), t0, t1, buckets)[0])
            shed_lane[b_lo : b_hi + 1] = True
        marks: dict[int, list[str]] = {}
        for ev in events:
            if ev.get("core") is not None and int(ev["core"]) != c:
                continue
            kind = ev.get("kind", "?")
            if kind not in kinds_seen:
                kinds_seen.append(kind)
            window = ev.get("window")
            if window is None:
                b_range = [buckets - 1]  # no extent: pin at end-of-run
            else:
                b_lo = int(_bucket_of(np.asarray([int(window[0])]), t0, t1, buckets)[0])
                b_hi = int(_bucket_of(np.asarray([int(window[1])]), t0, t1, buckets)[0])
                b_range = range(b_lo, b_hi + 1)
            for b in b_range:
                marks.setdefault(b, [])
                if kind not in marks[b]:
                    marks[b].append(kind)
        lanes.append(
            CoreLane(
                core=c,
                items=item_lane,
                samples=sample_lane,
                waits=wait_lane,
                shed=shed_lane,
                anomalies=marks,
            )
        )
    return Heatmap(
        t0=t0,
        t1=t1,
        buckets=buckets,
        lanes=tuple(lanes),
        kinds=tuple(kinds_seen),
        incident_kind=(trigger or {}).get("kind") if trigger else None,
    )


def _shade(lane: np.ndarray) -> str:
    peak = int(lane.max()) if lane.shape[0] else 0
    if peak <= 0:
        return " " * lane.shape[0]
    steps = len(SHADES) - 1
    out = []
    for v in lane:
        out.append(SHADES[0] if v <= 0 else SHADES[1 + min(steps - 1, (int(v) * steps - 1) // peak)])
    return "".join(out)


def _marker_row(lane: CoreLane, kinds: tuple[str, ...]) -> str:
    cells = []
    for b in range(lane.shed.shape[0]):
        tags = lane.anomalies.get(b)
        if tags:
            # Letter of the first kind present; '*' when several overlap.
            cells.append("*" if len(tags) > 1 else tags[0][0].upper())
        elif lane.shed[b]:
            cells.append("!")
        else:
            cells.append(" ")
    return "".join(cells)


def render_heatmap(hm: Heatmap, *, freq_ghz: float = 3.0) -> str:
    """The terminal picture: shaded lanes per core plus a legend."""
    span_us = (hm.t1 - hm.t0) / (freq_ghz * 1000.0)
    lines = [
        f"heatmap: {hm.buckets} buckets over {span_us:,.1f} us of virtual time"
        + (f"  [incident: {hm.incident_kind}]" if hm.incident_kind else "")
    ]
    for lane in hm.lanes:
        lines.append(f"  core {lane.core}")
        lines.append(f"    items    |{_shade(lane.items)}|  peak {int(lane.items.max())}/bucket")
        lines.append(f"    samples  |{_shade(lane.samples)}|  peak {int(lane.samples.max())}/bucket")
        lines.append(f"    waits    |{_shade(lane.waits)}|  peak {int(lane.waits.max())}/bucket")
        markers = _marker_row(lane, hm.kinds)
        if markers.strip():
            lines.append(f"    events   |{markers}|")
    legend = ["    legend: ! shed span"]
    for kind in hm.kinds:
        legend.append(f"{kind[0].upper()} {kind}")
    if hm.kinds or any(l.shed.any() for l in hm.lanes):
        lines.append(", ".join(legend))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fleet rollup (`repro fleet`)


def _container_health(path: pathlib.Path) -> dict:
    """Anomaly/incident/degradation facts from one container's header."""
    out = {"anomalies": 0, "anomaly_kinds": [], "incident": None, "interrupted": False, "shed": False}
    try:
        with TraceReader(path) as reader:
            meta = reader.meta or {}
    except Exception:
        return out
    incident = meta.get("incident") or {}
    # Incident bundles carry their anomaly history inside the incident
    # stamp; ordinary containers carry it at top level.
    summary = meta.get("anomalies") or incident.get("anomalies") or {}
    out["anomalies"] = int(summary.get("total") or 0)
    out["anomaly_kinds"] = sorted((summary.get("counts") or {}).keys())
    if incident.get("trigger"):
        out["incident"] = incident["trigger"].get("kind")
    out["interrupted"] = meta.get("interrupted") is not None
    out["shed"] = bool((meta.get("capture") or {}).get("shed_spans"))
    return out


def fleet_rollup(store) -> list[dict]:
    """One row per committed run of a store, newest catalog entry last.

    Each row merges the store catalog's durable facts (segments, bytes,
    commit time) with health facts read from the container header
    (anomaly counts, incident trigger, interrupted / shed flags).
    """
    rows = []
    for run_id, entry in store.catalog().items():
        row = {
            "run": run_id,
            "segments": entry.get("segments"),
            "samples": entry.get("samples"),
            "bytes": entry.get("bytes"),
            "committed_at": entry.get("committed_at"),
            "interrupted": bool(entry.get("interrupted", False)),
        }
        row.update(_container_health(store.path_for(run_id)))
        # The catalog's interrupted flag wins when present (it was
        # stamped at commit time); older catalogs lack it.
        if entry.get("interrupted") is not None:
            row["interrupted"] = bool(entry["interrupted"])
        rows.append(row)
    return rows


def render_fleet(rows: list[dict], *, title: str = "fleet") -> str:
    """The `repro fleet` table: one line per run, health at a glance."""
    from repro.analysis.reporting import format_table

    if not rows:
        return f"{title}: no committed runs"
    table_rows = []
    for r in rows:
        flags = []
        if r.get("incident"):
            flags.append(f"incident:{r['incident']}")
        if r.get("interrupted"):
            flags.append("interrupted")
        if r.get("shed"):
            flags.append("shed")
        table_rows.append(
            [
                r["run"],
                str(r.get("segments", "?")),
                str(r.get("samples", "?")),
                str(r.get("bytes", "?")),
                str(r.get("anomalies", 0)),
                ",".join(r.get("anomaly_kinds") or []) or "-",
                " ".join(flags) or "-",
            ]
        )
    return format_table(
        ["run", "segments", "samples", "bytes", "anomalies", "kinds", "flags"],
        table_rows,
        title=title,
    )


__all__ = [
    "CoreLane",
    "Heatmap",
    "build_heatmap",
    "render_heatmap",
    "fleet_rollup",
    "render_fleet",
]
