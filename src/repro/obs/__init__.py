"""Self-telemetry: the tracer's own pipeline, observable.

The paper argues you cannot diagnose a high-throughput system without
low-overhead per-stage visibility; this package turns that argument on
the reproduction itself.  Three modules:

* :mod:`repro.obs.metrics` — counter/gauge/histogram primitives with a
  process-wide thread-safe registry, HDR-style log-bucketed latency
  histograms, and Prometheus-text + JSON exporters;
* :mod:`repro.obs.spans` — nestable span tracing with per-span wall and
  CPU time, a bounded ring-buffer recorder, and Chrome-trace export;
* :mod:`repro.obs.instrumented` — the instrument bundle the pipeline's
  hot paths poke, plus the quarantine-summary publication that keeps
  stderr text and exported counters identical;
* :mod:`repro.obs.anomaly` — online invariant checkers over the live
  capture/ingest paths, emitting typed :class:`AnomalyEvent` records
  into a bounded :class:`AnomalyLog`;
* :mod:`repro.obs.flightrec` — the anomaly-triggered flight recorder
  that seals recent capture checkpoints into incident bundles;
* :mod:`repro.obs.heatmap` — per-core × time terminal heatmaps and the
  fleet health rollup.

Telemetry is **off by default**: the null registry / absent recorder
make every instrumented call a no-op (< 5 % overhead budget, enforced
by tests).  The CLI enables it via ``--telemetry`` / ``--trace-spans``
/ ``repro monitor``; library users install their own::

    from repro.obs import MetricsRegistry, use_registry

    reg = MetricsRegistry()
    with use_registry(reg):
        ingest_trace(path)
    print(reg.to_prometheus())
"""

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TelemetryError,
    get_registry,
    parse_prometheus_text,
    set_registry,
    use_registry,
)
from repro.obs.spans import (
    SpanRecord,
    SpanRecorder,
    get_recorder,
    set_recorder,
    span,
    use_recorder,
)
from repro.obs.anomaly import (
    ALL_KINDS,
    AnomalyConfig,
    AnomalyEvent,
    AnomalyLog,
    severity_rank,
)
from repro.obs.instrumented import PipelineInstruments, pipeline, publish_quarantine


def __getattr__(name: str):
    # flightrec reaches down into repro.core.durable, which itself pokes
    # the telemetry registry — importing it eagerly here would close an
    # import cycle.  Resolve its names on first use instead.
    if name in ("FlightRecorder", "Incident"):
        from repro.obs import flightrec

        return getattr(flightrec, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ALL_KINDS",
    "AnomalyConfig",
    "AnomalyEvent",
    "AnomalyLog",
    "FlightRecorder",
    "Incident",
    "severity_rank",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "TelemetryError",
    "get_registry",
    "parse_prometheus_text",
    "set_registry",
    "use_registry",
    "SpanRecord",
    "SpanRecorder",
    "get_recorder",
    "set_recorder",
    "span",
    "use_recorder",
    "PipelineInstruments",
    "pipeline",
    "publish_quarantine",
]
