"""The pipeline's instrument bundle: every metric the tracer emits about itself.

Instrumented modules do not talk to the registry directly; they call
:func:`pipeline` and poke the returned bundle::

    from repro.obs.instrumented import pipeline

    ins = pipeline()
    ins.integ_samples.inc(n)

The bundle is rebuilt (and cached) whenever the active registry changes,
so the same call sites serve three modes with no branching:

* **disabled** (default): the bundle holds the shared null instrument —
  every ``inc``/``observe`` is an empty method call;
* **enabled in-process** (CLI ``--telemetry``, ``repro monitor``): real
  instruments on the installed registry, updated live;
* **enabled across a thread pool**: same registry, same instruments —
  all instrument mutation is lock-protected.

Process pools are the documented exception: a forked worker's counters
die with it, so :func:`repro.core.streaming.ingest_trace` publishes
shard-level totals from the results it collects in the parent
(`repro_ingest_*`), while the live low-level counters
(`repro_integrator_*`, `repro_integrity_*`) reflect whatever ran in the
publishing process.  With the CLI's default sequential ingest the two
families agree exactly — the acceptance tests pin that.

:func:`publish_quarantine` is the single source of the CLI's quarantine
summary: it folds a :class:`~repro.core.integrity.QuarantineLog` into
counters and renders the stderr text **from those counter values**, so
the text and the exported metrics cannot disagree.
"""

from __future__ import annotations

from repro.core.integrity import QuarantineLog
from repro.obs.metrics import MetricsRegistry, get_registry


class PipelineInstruments:
    """Pre-resolved instruments for the hot paths (one dict lookup each
    at build time, plain attribute access afterwards)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self.enabled = registry.enabled
        c, g, h = registry.counter, registry.gauge, registry.histogram
        # -- ingest supervision (published by the parent process) --------
        self.ingest_samples = c(
            "repro_ingest_samples_total", "Samples integrated by ingest_trace runs"
        )
        self.ingest_chunks = c(
            "repro_ingest_chunks_total", "Sample chunks consumed by ingest_trace runs"
        )
        self.ingest_wall = g(
            "repro_ingest_wall_seconds", "Wall time of the most recent ingest run"
        )
        self.ingest_workers = g(
            "repro_ingest_workers", "Worker count of the most recent ingest run"
        )
        self.shard_wait = h(
            "repro_ingest_shard_wait_seconds",
            "Per-shard wall time from round start to result collection",
        )
        self.shard_retries = c(
            "repro_ingest_shard_retries_total", "Shard attempts beyond the first"
        )
        self.shard_failures = c(
            "repro_ingest_shard_failures_total", "Shards that failed permanently"
        )
        self.backoff_seconds = c(
            "repro_ingest_backoff_seconds_total", "Time slept between retry rounds"
        )
        self.pool_restarts = c(
            "repro_ingest_pool_restarts_total",
            "Fresh worker pools built for retry rounds after the first",
        )
        # -- reader / integrity (live, per validated chunk) --------------
        self.chunks_validated = c(
            "repro_integrity_chunks_validated_total",
            "Sample chunks that passed every integrity check",
        )
        self.chunks_quarantined = c(
            "repro_integrity_chunks_quarantined_total",
            "Sample chunks dropped whole by a lenient policy",
        )
        self.chunks_repaired = c(
            "repro_integrity_chunks_repaired_total",
            "Sample chunks kept after record-level repair",
        )
        self.crc_failures = c(
            "repro_integrity_crc_failures_total", "Members failing their crc32 check"
        )
        self.samples_dropped = c(
            "repro_integrity_samples_dropped_total",
            "Samples lost to quarantine or repair",
        )
        self.marks_dropped = c(
            "repro_integrity_marks_dropped_total",
            "Switch marks dropped by lenient pairing",
        )
        self.bytes_read = c(
            "repro_reader_bytes_read_total", "Raw sample-column bytes decoded"
        )
        # -- streaming integrator (live, per feed) -----------------------
        self.integ_samples = c(
            "repro_integrator_samples_total", "Samples fed to StreamingIntegrator"
        )
        self.integ_chunks = c(
            "repro_integrator_chunks_total", "Chunks fed to StreamingIntegrator"
        )
        self.feed_seconds = h(
            "repro_integrator_feed_seconds", "Wall time of one feed() call"
        )
        self.windows_closed = c(
            "repro_integrator_windows_closed_total",
            "Data-items drained as complete by the online hand-off",
        )
        self.reorder_events = c(
            "repro_integrator_reorder_events_total",
            "Out-of-order chunks absorbed by a reorder-tolerant integrator",
        )
        # -- online estimator --------------------------------------------
        self.online_items = c(
            "repro_online_items_total", "Items observed by the online diagnoser"
        )
        self.online_dumped = c(
            "repro_online_items_dumped_total", "Items whose raw samples were kept"
        )
        self.online_bytes_dumped = c(
            "repro_online_bytes_dumped_total", "Raw bytes kept by the online policy"
        )
        self.online_bytes_discarded = c(
            "repro_online_bytes_discarded_total", "Raw bytes the online policy saved"
        )
        # -- diagnosis / differential engines ----------------------------
        self.diag_runs = c(
            "repro_diagnosis_runs_total", "Batch diagnose_trace invocations"
        )
        self.diag_items = c(
            "repro_diagnosis_items_total", "Items classified by diagnose_trace"
        )
        self.diag_outliers = c(
            "repro_diagnosis_outliers_total",
            "Items flagged outside their group baseline band",
        )
        self.diag_online_verdicts = c(
            "repro_diagnosis_online_verdicts_total",
            "Outlier verdicts emitted mid-stream by StreamingDiagnoser",
        )
        self.diff_runs = c(
            "repro_diff_runs_total", "diff_traces invocations"
        )
        self.diff_regressions = c(
            "repro_diff_regressions_total",
            "Functions found slower per item by diff_traces",
        )
        # -- simulated machine / tracer ----------------------------------
        self.pebs_samples = c(
            "repro_pebs_samples_total", "Samples emitted by PEBS units"
        )
        self.pebs_buffer_fills = c(
            "repro_pebs_buffer_fills_total",
            "PEBS buffer overruns (buffer-full drain interrupts)",
        )
        self.pebs_stall_cycles = c(
            "repro_pebs_stall_cycles_total",
            "Cycles cores stalled waiting for a PEBS buffer drain",
        )
        self.sw_samples = c(
            "repro_sw_samples_total", "Samples serviced by the software sampler"
        )
        self.sw_dropped = c(
            "repro_sw_samples_dropped_total",
            "Overflows lost while the software handler was busy",
        )
        self.marks = c(
            "repro_marks_total", "Marking-function calls (two per data-item)"
        )
        # -- durable recording / crash recovery --------------------------
        self.segments_sealed = c(
            "repro_durable_segments_sealed_total",
            "Journal segments durably sealed (fsync'd journal commit)",
        )
        self.journal_fsyncs = c(
            "repro_durable_journal_fsyncs_total",
            "fsync calls issued on the recording journal",
        )
        self.journal_bytes = c(
            "repro_durable_journal_bytes_total",
            "Bytes written to journal segments and the journal log",
        )
        self.checkpoints = c(
            "repro_durable_checkpoints_total",
            "Periodic watchdog checkpoints sealed during capture",
        )
        self.recover_runs = c(
            "repro_recover_runs_total", "Journal replay (recovery) invocations"
        )
        self.segments_recovered = c(
            "repro_recover_segments_total",
            "Sealed segments salvaged into a container by recovery",
        )
        self.segments_lost = c(
            "repro_recover_segments_lost_total",
            "Journal segments lost (damaged sealed or never sealed)",
        )
        self.samples_recovered = c(
            "repro_recover_samples_total", "Samples salvaged by journal replay"
        )
        # -- overload handling (capture-side graceful degradation) --------
        self.overflow_drops = c(
            "repro_overload_samples_shed_total",
            "Samples shed by bounded capture buffers under overload",
        )
        self.r_adjustments = c(
            "repro_overload_r_adjustments_total",
            "Adaptive reset-value changes (raise under overflow, restore)",
        )
        self.online_decisions_dropped = c(
            "repro_online_decisions_dropped_total",
            "Oldest online decisions evicted by the bounded decision log",
        )
        # -- ingestion service (daemon + multi-run store) -----------------
        self.svc_queue_depth = g(
            "repro_service_queue_depth",
            "Segments currently waiting on the daemon's admission queue",
        )
        self.svc_queue_capacity = g(
            "repro_service_queue_capacity",
            "Admission queue capacity of the running daemon",
        )
        self.svc_connections = g(
            "repro_service_connections", "Open producer connections"
        )
        self.svc_credits_outstanding = g(
            "repro_service_credits_outstanding",
            "Sum of unspent credits across producer windows",
        )
        self.svc_segments_admitted = c(
            "repro_service_segments_admitted_total",
            "Segments durably sealed into run journals by the daemon",
        )
        self.svc_segments_deduped = c(
            "repro_service_segments_deduped_total",
            "Idempotent duplicate segments (resends after a lost ACK)",
        )
        self.svc_runs_committed = c(
            "repro_service_runs_committed_total",
            "Runs compacted and committed to the store catalog",
        )
        self.svc_runs_quarantined = c(
            "repro_service_runs_quarantined_total",
            "Run journals compaction refused and moved to quarantine",
        )
        self.svc_compaction_lag = g(
            "repro_service_compaction_lag_runs",
            "Finished runs whose compaction has not committed yet",
        )
        self.svc_compaction_seconds = h(
            "repro_service_compaction_seconds",
            "Wall time of one run compaction (journal replay to commit)",
        )
        self.svc_protocol_errors = c(
            "repro_service_protocol_errors_total",
            "Connections dropped for malformed or corrupt frames",
        )
        self.svc_storage_errors = c(
            "repro_service_storage_errors_total",
            "Store writes that failed and degraded to a storage NACK",
        )
        # -- replication / scrub / retention -------------------------------
        self.svc_replica_lag = g(
            "repro_service_replica_lag_runs",
            "Committed runs not yet confirmed on the slowest follower",
        )
        self.svc_replicated_segments = c(
            "repro_service_replicated_segments_total",
            "Sealed segments shipped to follower stores",
        )
        self.svc_replicated_runs = c(
            "repro_service_replicated_runs_total",
            "Committed containers shipped to follower stores",
        )
        self.svc_replication_resends = c(
            "repro_service_replication_resends_total",
            "Replication frames resent after a retryable follower NACK",
        )
        self.svc_scrub_repairs = c(
            "repro_service_scrub_repairs_total",
            "Corrupt or missing follower segments/containers repaired "
            "by the anti-entropy scrub",
        )
        self.svc_auth_failures = c(
            "repro_service_auth_failures_total",
            "Connections refused for a bad or missing auth token",
        )
        self.svc_runs_retired = c(
            "repro_service_runs_retired_total",
            "Committed runs retired to cold-storage archives by retention",
        )
        self.svc_archived_bytes = c(
            "repro_service_archived_bytes_total",
            "Bytes written into cold-storage archive containers",
        )
        # -- online invariant checking / flight recorder ------------------
        self.anomaly_dropped = c(
            "repro_anomaly_events_dropped_total",
            "Anomaly events aged off the bounded AnomalyLog ring",
        )
        self.flight_incidents = c(
            "repro_flight_incidents_total",
            "Incident bundles sealed by the flight recorder",
        )

    # Per-core children resolve through the registry (get-or-create is a
    # locked dict hit — fine at per-shard and per-chunk frequency).
    def shard_samples(self, core: int):
        return self._registry.counter(
            "repro_ingest_shard_samples_total",
            "Samples integrated per core-shard",
            core=str(core),
        )

    def shard_chunks(self, core: int):
        return self._registry.counter(
            "repro_ingest_shard_chunks_total",
            "Chunks consumed per core-shard",
            core=str(core),
        )

    def sw_drop_reason(self, reason: str):
        return self._registry.counter(
            "repro_sw_samples_dropped_by_reason_total",
            "Software-sampler drops broken down by cause",
            reason=reason,
        )

    def svc_nacks(self, reason: str):
        return self._registry.counter(
            "repro_service_nacks_total",
            "Segments NACKed by the ingestion daemon, by reason",
            reason=reason,
        )

    def anomaly_events(self, kind: str):
        return self._registry.counter(
            "repro_anomaly_events_total",
            "Invariant violations observed online, by anomaly kind",
            kind=kind,
        )


_cached: PipelineInstruments | None = None
_cached_registry: MetricsRegistry | None = None


def pipeline() -> PipelineInstruments:
    """The instrument bundle for the active registry (cached per registry)."""
    global _cached, _cached_registry
    registry = get_registry()
    if registry is not _cached_registry:
        _cached = PipelineInstruments(registry)
        _cached_registry = registry
    return _cached  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Quarantine publication: one source for stderr text and exported counters


def publish_quarantine(
    log: QuarantineLog, registry: MetricsRegistry | None = None
) -> str:
    """Fold a quarantine log into counters; render the summary *from them*.

    When the active registry is enabled the counters land there (and in
    any subsequent ``--telemetry`` export); when telemetry is off the
    same code runs against a private throwaway registry, so the stderr
    text is byte-identical either way — and always equal to whatever a
    telemetry export would say.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        reg = MetricsRegistry()
    samples_lost = reg.counter(
        "repro_quarantine_samples_lost_total", "Samples lost across all defects"
    )
    marks_lost = reg.counter(
        "repro_quarantine_marks_lost_total", "Switch marks lost across all defects"
    )
    by_kind: dict[str, float] = {}
    for d in log.defects:
        kc = reg.counter(
            "repro_quarantine_defects_total", "Defects survived, by kind", kind=d.kind
        )
        kc.inc()
        by_kind[d.kind] = kc.value
    samples_lost.inc(log.samples_lost)
    marks_lost.inc(log.marks_lost)
    n_defects = int(sum(by_kind.values())) if by_kind else 0
    if n_defects == 0:
        return "quarantine: no defects"
    lines = [
        f"quarantine: {n_defects} defect(s), "
        f"{int(samples_lost.value)} sample(s) and "
        f"{int(marks_lost.value)} switch mark(s) lost"
    ]
    lines.extend("  " + d.describe() for d in log.defects)
    return "\n".join(lines)
