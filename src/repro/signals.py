"""Turning SIGINT/SIGTERM into exceptions a capture can finalize under.

A durable capture must not lose its journal tail to a ^C: the seal
discipline means everything checkpointed so far is already safe, but the
delta since the last checkpoint — and the finalize marker that turns the
journal into a container — only land if the interrupt unwinds as an
exception instead of killing the process mid-write.

:func:`raise_on_signals` installs handlers that raise
:class:`~repro.errors.SignalInterrupt` in the main thread, restoring the
previous handlers on exit.  :func:`trace` catches it for durable
sessions (final checkpoint + finalize, session marked interrupted); the
CLI converts it into the conventional ``128 + signum`` exit status.
"""

from __future__ import annotations

import contextlib
import signal

from repro.errors import SignalInterrupt

#: The signals a graceful run traps by default.
GRACEFUL_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@contextlib.contextmanager
def raise_on_signals(signums=GRACEFUL_SIGNALS):
    """Within the block, the given signals raise :class:`SignalInterrupt`.

    Handlers are installed only when running in the main thread (signal
    handling is a main-thread privilege in Python); elsewhere the block
    is a no-op and the default disposition stands.  Previous handlers are
    always restored, even when the block exits by exception.
    """

    def _handler(signum, frame):
        raise SignalInterrupt(signum)

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _handler)
    except ValueError:  # not the main thread: leave dispositions alone
        for signum, old in previous.items():
            signal.signal(signum, old)
        previous = {}
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


def exit_status(exc: SignalInterrupt) -> int:
    """The shell convention for death-by-signal: ``128 + signum``."""
    return 128 + int(exc.signum)


__all__ = ["GRACEFUL_SIGNALS", "exit_status", "raise_on_signals"]
