"""The execution quantum of the simulated machine.

Application code does not execute instruction-by-instruction (that would be
hopeless in Python, per the HPC guidance: keep the hot loop out of the
interpreter).  Instead it emits :class:`Block` quanta — "this stretch of code
at instruction pointer ``ip`` retired ``uops`` micro-ops, touched this
memory, and took this many branches".  The core charges cycles for a block
as a whole and the PMU interpolates event positions *inside* the block, so
sample timestamps still have sub-block resolution.

Memory accesses are expressed either as an explicit array of byte addresses
or as a :class:`MemRef` descriptor (base/count/stride) that the cache expands
lazily — a view-like representation that avoids materialising large arrays
for regular access patterns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.machine.events import HWEvent

#: Cache line size used throughout the simulated machine (bytes).
LINE_BYTES = 64


@dataclass(frozen=True)
class MemRef:
    """A strided memory access pattern: ``count`` accesses from ``base``.

    ``stride`` is in bytes.  ``base`` is a byte address.  A stride of zero
    means the same address is touched repeatedly (e.g. a lock word).
    """

    base: int
    count: int
    stride: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.count < 0:
            raise SimulationError(f"MemRef count must be >= 0, got {self.count}")
        if self.base < 0:
            raise SimulationError(f"MemRef base must be >= 0, got {self.base}")

    def addresses(self) -> np.ndarray:
        """Materialise the byte addresses of this pattern (int64 array)."""
        if self.count == 0:
            return np.empty(0, dtype=np.int64)
        return self.base + self.stride * np.arange(self.count, dtype=np.int64)

    def line_addresses(self) -> np.ndarray:
        """Cache-line addresses touched, in access order (int64 array)."""
        return self.addresses() // LINE_BYTES


def _as_line_array(mem: "MemRef | np.ndarray | None") -> np.ndarray:
    """Normalise a block's memory description to an array of line addresses."""
    if mem is None:
        return np.empty(0, dtype=np.int64)
    if isinstance(mem, MemRef):
        return mem.line_addresses()
    arr = np.asarray(mem, dtype=np.int64)
    if arr.ndim != 1:
        raise SimulationError(f"memory address array must be 1-D, got shape {arr.shape}")
    return arr // LINE_BYTES


@dataclass(frozen=True)
class Block:
    """A straight-line stretch of retired work attributed to one ip.

    Parameters
    ----------
    ip:
        Representative instruction-pointer value for the stretch.  Samples
        taken inside the block carry this ip; the symbol table maps it back
        to a function.
    uops:
        Micro-ops retired by the block (must be >= 1).
    mem:
        Memory accessed by the block, as a :class:`MemRef`, an array of byte
        addresses, or None.
    branches:
        Number of retired branch instructions.
    mispredicts:
        Number of mispredicted branches (each costs the machine's
        misprediction penalty).
    insts:
        Retired instructions; defaults to ``ceil(uops / 1.2)`` (Skylake-ish
        fused-uop ratio) when not given.
    extra_cycles:
        Additional stall cycles the emitting code wants to charge directly
        (e.g. an I/O wait modelled by the application).
    mem_mlp:
        Memory-level parallelism: how many outstanding misses the code
        sustains (hardware prefetching / independent loads).  Cache *state*
        and miss *counts* are unaffected; only the charged miss penalty is
        divided by this factor.  1 = fully serial (pointer chasing);
        streaming kernels reach 8-16.
    """

    ip: int
    uops: int
    mem: MemRef | np.ndarray | None = None
    branches: int = 0
    mispredicts: int = 0
    insts: int | None = None
    extra_cycles: int = 0
    mem_mlp: int = 1

    def __post_init__(self) -> None:
        if self.uops < 1:
            raise SimulationError(f"Block must retire at least one uop, got {self.uops}")
        if self.ip < 0:
            raise SimulationError(f"Block ip must be >= 0, got {self.ip}")
        if self.branches < 0 or self.mispredicts < 0:
            raise SimulationError("branch counts must be >= 0")
        if self.mispredicts > self.branches:
            raise SimulationError(
                f"mispredicts ({self.mispredicts}) cannot exceed branches ({self.branches})"
            )
        if self.extra_cycles < 0:
            raise SimulationError(f"extra_cycles must be >= 0, got {self.extra_cycles}")
        if self.mem_mlp < 1:
            raise SimulationError(f"mem_mlp must be >= 1, got {self.mem_mlp}")

    @property
    def resolved_insts(self) -> int:
        """Retired instruction count (defaulted from uops when unset)."""
        if self.insts is not None:
            return self.insts
        return max(1, math.ceil(self.uops / 1.2))

    def line_addresses(self) -> np.ndarray:
        """Cache-line addresses touched by this block, in order."""
        return _as_line_array(self.mem)


def timed_block(ip: int, cycles: int, ipc: float = 4.0) -> Block:
    """A block that takes exactly ``cycles`` cycles, retiring 1 uop/cycle.

    Convenience for cost-modelled code (queue operations, marking calls,
    syscall-ish stretches) where the wall time is the specification and
    the uop count just has to keep event-based sampling realistic.
    """
    if cycles < 1:
        raise SimulationError(f"timed_block needs >= 1 cycle, got {cycles}")
    base = math.ceil(cycles / ipc)
    return Block(ip=ip, uops=cycles, extra_cycles=cycles - base)


@dataclass(frozen=True)
class BlockOutcome:
    """What happened when a core executed a block.

    ``start`` and ``cycles`` describe the position of the block on the core's
    clock *excluding* sampling overhead charged after it; ``overhead_cycles``
    is the sampling/interrupt cost appended by the PMU.  ``event_counts``
    holds the per-event occurrence counts used for counter arithmetic.
    """

    start: int
    cycles: int
    overhead_cycles: int
    event_counts: Mapping[HWEvent, int] = field(default_factory=dict)

    @property
    def end(self) -> int:
        """Core clock value after the block and its sampling overhead."""
        return self.start + self.cycles + self.overhead_cycles
