"""Hardware performance events counted by the simulated PMU.

The paper configures PEBS with ``UOPS_RETIRED.ALL`` for all experiments and
notes (Section V-D) that other per-core events — cache misses, branch
mispredictions, loads — can be sampled the same way.  Section V-C notes that
PEBS cannot count bare cycles; we preserve that restriction
(:data:`HWEvent.CYCLES` is valid for traditional counters but rejected by
the PEBS unit).
"""

from __future__ import annotations

import enum


class HWEvent(enum.Enum):
    """Events a counter can be programmed with.

    Values are short stable strings used in reports and trace metadata.
    """

    UOPS_RETIRED_ALL = "uops_retired.all"
    INST_RETIRED = "inst_retired.any"
    CYCLES = "cpu_clk_unhalted"
    BR_RETIRED = "br_inst_retired.all"
    BR_MISP_RETIRED = "br_misp_retired.all"
    MEM_LOAD_RETIRED_ALL = "mem_load_retired.all"
    MEM_LOAD_RETIRED_L1_MISS = "mem_load_retired.l1_miss"
    MEM_LOAD_RETIRED_L2_MISS = "mem_load_retired.l2_miss"
    MEM_LOAD_RETIRED_L3_MISS = "mem_load_retired.l3_miss"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Events PEBS hardware can sample on.  Mirrors the paper's observation that
#: PEBS counts retirement-class events but not bare cycles.
PEBS_CAPABLE_EVENTS = frozenset(
    {
        HWEvent.UOPS_RETIRED_ALL,
        HWEvent.INST_RETIRED,
        HWEvent.BR_RETIRED,
        HWEvent.BR_MISP_RETIRED,
        HWEvent.MEM_LOAD_RETIRED_ALL,
        HWEvent.MEM_LOAD_RETIRED_L1_MISS,
        HWEvent.MEM_LOAD_RETIRED_L2_MISS,
        HWEvent.MEM_LOAD_RETIRED_L3_MISS,
    }
)


def pebs_supports(event: HWEvent) -> bool:
    """Return True if the simulated PEBS unit can sample on ``event``."""
    return event in PEBS_CAPABLE_EVENTS


#: Short spellings accepted wherever an event is named by string — the
#: CLI's ``--event`` flag, trace metadata, and :func:`repro.api.record`.
EVENT_ALIASES: dict[str, HWEvent] = {
    "uops": HWEvent.UOPS_RETIRED_ALL,
    "insts": HWEvent.INST_RETIRED,
    "branches": HWEvent.BR_RETIRED,
    "l3-miss": HWEvent.MEM_LOAD_RETIRED_L3_MISS,
}


def resolve_event(event: "HWEvent | str") -> HWEvent:
    """Accept an :class:`HWEvent`, an alias ("uops"), or a value string."""
    if isinstance(event, HWEvent):
        return event
    if event in EVENT_ALIASES:
        return EVENT_ALIASES[event]
    for e in HWEvent:
        if e.value == event:
            return e
    raise ValueError(
        f"unknown event {event!r}; aliases: {sorted(EVENT_ALIASES)}"
    )
