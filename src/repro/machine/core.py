"""One simulated CPU core: clock, block execution, PMU integration.

A core owns an integer cycle clock (its TSC — invariant and synchronised
across cores, as on real Skylake), optionally a private cache hierarchy, and
a PMU.  It executes :class:`~repro.machine.block.Block` quanta: charging
base cycles (``ceil(uops / ipc)``), cache penalties, branch-miss penalties,
then letting the PMU advance its counters and charge sampling overhead.

``tag_register`` models the general-purpose register (r13 in the paper's
Section V-A discussion) where a timer-switching runtime can park the
current data-item ID; PEBS records capture it.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.machine.block import Block, BlockOutcome
from repro.machine.cache import CacheHierarchy
from repro.machine.config import MachineSpec
from repro.machine.events import HWEvent
from repro.machine.pebs import TAG_NONE
from repro.machine.pmu import PMU


class SimCore:
    """A single core with its own clock, caches, and PMU."""

    def __init__(
        self,
        core_id: int,
        spec: MachineSpec,
        hierarchy: CacheHierarchy | None = None,
        pmu: PMU | None = None,
    ) -> None:
        self.core_id = core_id
        self.spec = spec
        self.hierarchy = hierarchy
        self.pmu = pmu if pmu is not None else PMU()
        self.clock: int = 0
        self.tag_register: int = TAG_NONE
        self.blocks_executed = 0
        self.uops_retired = 0
        self.idle_cycles = 0

    @property
    def tsc(self) -> int:
        """Current timestamp-counter value (cycles)."""
        return self.clock

    def execute(self, block: Block) -> BlockOutcome:
        """Run one block to retirement; advance the clock; feed the PMU."""
        start = self.clock
        lines = block.line_addresses()
        if lines.shape[0] and self.hierarchy is not None:
            mem = self.hierarchy.access_lines(lines)
            penalty = math.ceil(mem.penalty_cycles / block.mem_mlp)
            l1_miss, l2_miss, llc_miss = mem.l1_misses, mem.l2_misses, mem.llc_misses
        else:
            penalty = 0
            l1_miss = l2_miss = llc_miss = 0
        base = math.ceil(block.uops / self.spec.ipc)
        cycles = (
            base
            + penalty
            + block.mispredicts * self.spec.branch_miss_penalty_cycles
            + block.extra_cycles
        )
        event_counts = {
            HWEvent.UOPS_RETIRED_ALL: block.uops,
            HWEvent.INST_RETIRED: block.resolved_insts,
            HWEvent.CYCLES: cycles,
            HWEvent.BR_RETIRED: block.branches,
            HWEvent.BR_MISP_RETIRED: block.mispredicts,
            HWEvent.MEM_LOAD_RETIRED_ALL: int(lines.shape[0]),
            HWEvent.MEM_LOAD_RETIRED_L1_MISS: l1_miss,
            HWEvent.MEM_LOAD_RETIRED_L2_MISS: l2_miss,
            HWEvent.MEM_LOAD_RETIRED_L3_MISS: llc_miss,
        }
        overhead = self.pmu.process_block(
            block.ip, start, cycles, event_counts, self.tag_register
        )
        self.clock = start + cycles + overhead
        self.blocks_executed += 1
        self.uops_retired += block.uops
        return BlockOutcome(
            start=start, cycles=cycles, overhead_cycles=overhead, event_counts=event_counts
        )

    def advance_to(self, t: int) -> None:
        """Jump the clock forward to ``t`` without retiring anything.

        Used for genuinely idle time (a source thread pacing its input).
        No events occur, so attached samplers see nothing — unlike
        :meth:`spin_until`, which models busy-polling.
        """
        if t < self.clock:
            raise SimulationError(
                f"core {self.core_id}: cannot advance clock backwards "
                f"({self.clock} -> {t})"
            )
        self.idle_cycles += t - self.clock
        self.clock = t

    def spin_until(self, t: int, spin_ip: int) -> BlockOutcome | None:
        """Busy-poll (retiring pause-loop uops at ~1 uop/cycle) until ``t``.

        This is how a pinned DPDK-style worker waits on an empty queue: it
        keeps retiring instructions, so PEBS keeps sampling, and those
        samples carry the poll loop's ip.  Returns the outcome of the
        aggregated spin block, or None if no wait was needed.
        """
        gap = t - self.clock
        if gap <= 0:
            return None
        base = math.ceil(gap / self.spec.ipc)
        block = Block(ip=spin_ip, uops=gap, extra_cycles=gap - base)
        return self.execute(block)
