"""Precise Event Based Sampling (PEBS) model.

Semantics follow paper Section III-B and the simple-pebs prototype of
Section III-E:

* On counter overflow the *hardware* stores a record — timestamp (TSC),
  instruction pointer, general-purpose registers — into the PEBS buffer.
  The running program pays a microcode-assist cost of ~250 ns per sample
  (ref [6]) but is **not** interrupted.
* Only when the buffer becomes full does the CPU raise an interrupt; the
  kernel module + helper program copy the buffer out (we charge a drain
  cost and account the bytes written, which feeds the Section IV-C3 data
  rate analysis).
* PEBS can only sample a pre-defined record: there is no way to make the
  hardware record the data-item ID (the technical issue the paper's hybrid
  integration solves).  The record *does* include GP registers, which the
  Section V-A extension exploits by parking the item ID in r13; our sample
  record therefore carries the core's tag register value.

Samples are accumulated in Python lists and converted to NumPy arrays once
at :meth:`PEBSUnit.finalize` (append-then-convert beats per-sample ndarray
growth; see the HPC guide on avoiding repeated reallocation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.machine.config import MachineSpec
from repro.machine.events import HWEvent, pebs_supports
from repro.obs.instrumented import pipeline as _obs
from repro.units import ns_to_cycles

#: Tag-register value meaning "no data-item ID parked in the register".
TAG_NONE = -1


@dataclass(frozen=True)
class PEBSConfig:
    """User-visible PEBS configuration: one (event, reset value) pair.

    ``double_buffered`` enables the Section III-E future-work
    optimisation: on buffer-full the hardware flips to a spare buffer and
    the helper drains the full one asynchronously; the traced program
    only stalls if the spare also fills before that drain completes.
    """

    event: HWEvent
    reset_value: int
    double_buffered: bool = False

    def __post_init__(self) -> None:
        if self.reset_value < 1:
            raise ConfigError(f"reset value must be >= 1, got {self.reset_value}")
        if not pebs_supports(self.event):
            raise ConfigError(
                f"PEBS cannot sample on {self.event} (the paper notes PEBS "
                "does not support counting bare cycles, Section V-C)"
            )


@dataclass(frozen=True)
class Sample:
    """One PEBS record as seen by the analysis side."""

    ts: int
    ip: int
    tag: int = TAG_NONE


@dataclass(frozen=True)
class SampleArrays:
    """Column-oriented view of all samples taken by one PEBS unit."""

    ts: np.ndarray
    ip: np.ndarray
    tag: np.ndarray

    def __len__(self) -> int:
        return int(self.ts.shape[0])

    def __getitem__(self, idx: int) -> Sample:
        return Sample(int(self.ts[idx]), int(self.ip[idx]), int(self.tag[idx]))

    @property
    def nbytes(self) -> int:
        """Raw in-memory size of the three columns."""
        return int(self.ts.nbytes + self.ip.nbytes + self.tag.nbytes)

    def slice(self, start: int, stop: int) -> "SampleArrays":
        """A zero-copy view of samples ``[start, stop)``."""
        return SampleArrays(
            ts=self.ts[start:stop], ip=self.ip[start:stop], tag=self.tag[start:stop]
        )

    def iter_chunks(self, chunk_size: int):
        """Yield bounded-size views in timestamp order (streaming ingest)."""
        if chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, len(self), chunk_size):
            yield self.slice(start, start + chunk_size)


class PEBSUnit:
    """Per-core PEBS machinery: buffer, assist cost, drain interrupts.

    ``overload`` (an :class:`~repro.machine.overload.OverloadPolicy`) and
    ``controller`` (an
    :class:`~repro.machine.overload.AdaptiveResetController`) are bound
    by :meth:`Machine.attach_pebs <repro.machine.machine.Machine.attach_pebs>`
    when overload-graceful capture is requested; both default to off,
    preserving the historical stall-on-overrun behaviour.
    """

    def __init__(self, config: PEBSConfig, spec: MachineSpec) -> None:
        if not spec.pebs_has_timestamps:
            raise ConfigError(
                "this CPU's PEBS records carry no timestamp; sampling "
                "timestamps with PEBS is only supported since Skylake "
                "(paper Table II) — the hybrid method cannot run here"
            )
        self.config = config
        self.spec = spec
        self._assist_cycles = ns_to_cycles(spec.pebs_assist_ns, spec.freq_ghz)
        self._switch_cycles = ns_to_cycles(spec.pebs_switch_ns, spec.freq_ghz)
        self._ts: list[int] = []
        self._ip: list[int] = []
        self._tag: list[int] = []
        self._buffered = 0
        self.drains = 0
        self.bytes_written = 0
        #: Virtual time the asynchronous drain finishes (double buffering).
        self._drain_busy_until = 0
        #: Cycles the core stalled waiting for the spare buffer.
        self.stall_cycles = 0
        #: Overload handling (bound by Machine.attach_pebs; see class doc).
        self.overload = None
        self.controller = None
        #: Samples shed by the overload policy, and their [lo, hi]
        #: timestamp spans — the degraded-capture record diagnosis uses.
        self.shed_samples = 0
        self.shed_spans: list[tuple[int, int]] = []
        #: Samples [0, barrier) are durably checkpointed and must never be
        #: shed (the watchdog advances this after each sealed delta).
        self.checkpoint_barrier = 0
        #: Optional online observer ``shed_listener(lo, hi, n)`` called
        #: the instant a span is shed (the shed-burst anomaly checker).
        self.shed_listener = None
        self._finalized: SampleArrays | None = None

    # -- OverflowSink protocol -------------------------------------------
    def on_overflows(self, timestamps: np.ndarray, ip: int, tag: int) -> int:
        """Record hardware samples; return cycles charged to the core.

        ``timestamps`` are the overflow positions on the *unperturbed*
        block timeline; each sample's recorded timestamp is shifted by the
        assist/drain overhead accrued earlier in the same block, so the
        cost of sampling stretches the sampled function's observed elapsed
        time exactly as a real microcode assist would.
        """
        ins = _obs()
        ins.pebs_samples.inc(int(len(timestamps)))
        extra = 0
        for t in timestamps:
            now = int(t) + extra
            self._ts.append(now)
            self._ip.append(ip)
            self._tag.append(tag)
            extra += self._assist_cycles
            self._buffered += 1
            if self._buffered >= self.spec.pebs_buffer_records:
                records = self.spec.pebs_buffer_records
                ins.pebs_buffer_fills.inc()
                if self.config.double_buffered:
                    extra += self._switch_cycles
                    pressured = now < self._drain_busy_until
                    if pressured and self.overload is not None and (
                        self.overload.shed_on_stall
                    ):
                        # Shed: the spare filled while the previous drain
                        # was still running.  Discard the full buffer
                        # (with span accounting) instead of stalling the
                        # traced core — degrade the data, not the
                        # measurement.
                        self._shed(records)
                    else:
                        if pressured:
                            # The spare filled before the previous drain
                            # finished: stall until the buffer frees.
                            stall = self._drain_busy_until - now
                            extra += stall
                            self.stall_cycles += stall
                            ins.pebs_stall_cycles.inc(stall)
                        self._drain_busy_until = (
                            max(now, self._drain_busy_until)
                            + self._drain_cost_cycles(records)
                        )
                        self._account_drain(records)
                    if self.controller is not None:
                        self.controller.on_buffer_fill(now, pressured)
                else:
                    extra += self._drain_cost_cycles(records)
                    self._account_drain(records)
                self._buffered = 0
        return extra

    def _shed(self, records: int) -> None:
        """Drop the just-filled buffer's samples (never below the
        durability barrier — sealed samples are already on disk)."""
        n = min(records, len(self._ts) - self.checkpoint_barrier)
        if n > 0:
            lo, hi = self._ts[-n], self._ts[-1]
            self.shed_spans.append((lo, hi))
            del self._ts[-n:]
            del self._ip[-n:]
            del self._tag[-n:]
            self.shed_samples += n
            self._finalized = None
            _obs().overflow_drops.inc(n)
            if self.shed_listener is not None:
                self.shed_listener(lo, hi, n)

    # -- host-side access --------------------------------------------------
    def flush(self) -> int:
        """Drain a partially-filled buffer (end of run); return cycle cost."""
        if self._buffered == 0:
            return 0
        cost = self._drain_cost_cycles(self._buffered)
        self._account_drain(self._buffered)
        self._buffered = 0
        return cost

    def finalize(self) -> SampleArrays:
        """Return all samples as sorted column arrays (cached)."""
        if self._finalized is None:
            ts = np.asarray(self._ts, dtype=np.int64)
            ip = np.asarray(self._ip, dtype=np.int64)
            tag = np.asarray(self._tag, dtype=np.int64)
            order = np.argsort(ts, kind="stable")
            self._finalized = SampleArrays(ts=ts[order], ip=ip[order], tag=tag[order])
        return self._finalized

    @property
    def sample_count(self) -> int:
        return len(self._ts)

    def snapshot_since(self, start: int) -> SampleArrays:
        """Copy of the samples appended at index ``start`` onward.

        The watchdog's checkpoint delta: per-core appends are monotone in
        virtual time, so ``[start:]`` is a valid sorted chunk without
        re-sorting (and without disturbing the live lists — capture
        continues while the copy is sealed).
        """
        return SampleArrays(
            ts=np.asarray(self._ts[start:], dtype=np.int64),
            ip=np.asarray(self._ip[start:], dtype=np.int64),
            tag=np.asarray(self._tag[start:], dtype=np.int64),
        )

    def _drain_cost_cycles(self, records: int) -> int:
        kb = records * self.spec.pebs_record_bytes / 1024.0
        ns = self.spec.pebs_drain_base_ns + kb * self.spec.pebs_drain_per_kb_ns
        return ns_to_cycles(ns, self.spec.freq_ghz)

    def _account_drain(self, records: int) -> None:
        self.drains += 1
        self.bytes_written += records * self.spec.pebs_record_bytes
