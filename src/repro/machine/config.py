"""Machine configuration.

Defaults model the paper's evaluation machine (Table II: a commodity
Skylake-generation Xeon).  Exact cache geometry and penalties are standard
Skylake-client figures; the experiments' conclusions depend only on the
orders of magnitude (a function of a high-throughput server takes ~1 µs;
a PEBS sample costs ~250 ns; a software sampling interrupt costs ~10 µs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    ways: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise ConfigError(f"invalid cache geometry: {self}")
        if self.size_bytes % (self.ways * 64) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible into {self.ways}-way 64B sets"
            )


@dataclass(frozen=True)
class MachineSpec:
    """Full description of the simulated machine.

    Attributes
    ----------
    freq_ghz:
        Core clock frequency; the TSC ticks at this rate (invariant TSC,
        synchronised across cores, as on real Skylake).
    ipc:
        Peak sustained micro-op retirement per cycle for straight-line code.
        Block base cost = ceil(uops / ipc).
    l1 / l2 / llc:
        Private L1D, private L2, shared LLC geometry.  ``llc`` is shared by
        all cores of the machine.
    dram_latency_cycles:
        Charge for an access that misses every level.
    branch_miss_penalty_cycles:
        Charge per mispredicted branch.
    pebs_assist_ns:
        Microcode assist cost per PEBS sample (paper/ref [6]: ~250 ns).
    pebs_record_bytes:
        Bytes one PEBS record occupies in the PEBS buffer.  Calibrated so
        the ACL experiment's data rates land near the paper's 270 MB/s at
        R = 8000 (Skylake's full PEBS record is 240 bytes; simple-pebs
        copies fixed-size records).
    pebs_buffer_records:
        PEBS buffer capacity in records; the CPU raises an interrupt only
        when the buffer becomes full (paper Section III-B).
    pebs_drain_base_ns / pebs_drain_per_kb_ns:
        Cost of the buffer-full interrupt plus copying the buffer out
        (kernel module + helper program path of Section III-E).
    pebs_switch_ns:
        With double buffering (the Section III-E future-work
        optimisation, implemented here): cost of flipping to the spare
        buffer on the interrupt; the drain itself proceeds asynchronously
        and only stalls the core if the spare fills before it finishes.
    sw_handler_ns:
        Time a perf-style software sampling interrupt steals from the
        interrupted thread per serviced overflow.  Produces the >= 10 µs
        achieved sample interval of Fig 4.
    """

    freq_ghz: float = 3.0
    ipc: float = 4.0
    l1: CacheLevelSpec = field(default_factory=lambda: CacheLevelSpec(32 * 1024, 8, 4))
    l2: CacheLevelSpec = field(default_factory=lambda: CacheLevelSpec(256 * 1024, 8, 12))
    llc: CacheLevelSpec = field(default_factory=lambda: CacheLevelSpec(8 * 1024 * 1024, 16, 42))
    dram_latency_cycles: int = 200
    branch_miss_penalty_cycles: int = 15
    pebs_assist_ns: float = 250.0
    pebs_record_bytes: int = 240
    pebs_buffer_records: int = 4096
    pebs_drain_base_ns: float = 2_000.0
    pebs_drain_per_kb_ns: float = 30.0
    pebs_switch_ns: float = 200.0
    sw_handler_ns: float = 9_500.0
    #: Whether PEBS records include the TSC.  Table II: the paper needs a
    #: Skylake CPU "because sampling timestamps with PEBS is only
    #: supported since Skylake" — older generations cannot run the
    #: method at all, which the PEBS unit enforces.
    pebs_has_timestamps: bool = True

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ConfigError(f"freq_ghz must be positive, got {self.freq_ghz}")
        if self.ipc <= 0:
            raise ConfigError(f"ipc must be positive, got {self.ipc}")
        if self.dram_latency_cycles <= 0:
            raise ConfigError("dram_latency_cycles must be positive")
        if self.pebs_assist_ns < 0 or self.sw_handler_ns < 0:
            raise ConfigError("overhead costs must be >= 0")
        if self.pebs_buffer_records <= 0:
            raise ConfigError("pebs_buffer_records must be positive")
        if self.pebs_record_bytes <= 0:
            raise ConfigError("pebs_record_bytes must be positive")


#: The default spec used by experiments unless they override it.
SKYLAKE_LIKE = MachineSpec()

#: A pre-Skylake part: PEBS exists but records carry no timestamp, so
#: the paper's method cannot run on it (attachment raises ConfigError).
BROADWELL_LIKE = MachineSpec(pebs_has_timestamps=False)
