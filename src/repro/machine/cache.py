"""Set-associative LRU caches and the private-L1/L2 + shared-LLC hierarchy.

The paper's fluctuations of interest are partly cache-warmth effects
(Section II-A), and Section V-D extends the tracer to count cache misses per
function per data-item.  This module provides a genuine (not statistical)
cache model: inclusive-enough set-associative LRU levels over 64-byte lines.

Implementation notes (per the HPC guide: measure, vectorise the hot loop,
avoid copies):

* Tag and recency state live in preallocated NumPy arrays indexed by set.
* A single access is a few vectorised operations over one set's ways — no
  Python-level per-way loop.
* ``access_lines`` accepts a whole address array; the per-access loop is in
  Python but each iteration touches only one small row.  Workloads keep
  access counts bounded (~1e5–1e6 per experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.machine.config import CacheLevelSpec, MachineSpec

LINE_BYTES = 64


class SetAssocCache:
    """One level of set-associative cache with true-LRU replacement.

    Addresses given to :meth:`access` are *line* addresses (byte address
    divided by 64).
    """

    def __init__(self, spec: CacheLevelSpec, line_bytes: int = LINE_BYTES) -> None:
        self.spec = spec
        n_lines = spec.size_bytes // line_bytes
        if n_lines % spec.ways != 0:
            raise ConfigError(
                f"{n_lines} lines not divisible by {spec.ways} ways"
            )
        self.n_sets = n_lines // spec.ways
        self.ways = spec.ways
        # -1 marks an empty way; recency holds a global access counter so the
        # minimum over a set is the LRU way.
        self._tags = np.full((self.n_sets, self.ways), -1, dtype=np.int64)
        self._recency = np.zeros((self.n_sets, self.ways), dtype=np.int64)
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate every line and zero statistics."""
        self._tags.fill(-1)
        self._recency.fill(0)
        self._tick = 0
        self.reset_stats()

    def access(self, line_addr: int) -> bool:
        """Access one line; return True on hit.  Misses fill via LRU."""
        set_idx = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        row = self._tags[set_idx]
        self._tick += 1
        hit_ways = np.nonzero(row == tag)[0]
        if hit_ways.size:
            self._recency[set_idx, hit_ways[0]] = self._tick
            self.hits += 1
            return True
        # Miss: victim is an empty way if any, else the LRU way.
        empty = np.nonzero(row == -1)[0]
        victim = empty[0] if empty.size else int(np.argmin(self._recency[set_idx]))
        row[victim] = tag
        self._recency[set_idx, victim] = self._tick
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Return True if the line is resident (no state change)."""
        set_idx = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        return bool(np.any(self._tags[set_idx] == tag))

    def access_lines(self, line_addrs: np.ndarray) -> np.ndarray:
        """Access many lines in order; return a boolean hit mask."""
        out = np.empty(line_addrs.shape[0], dtype=bool)
        for i, addr in enumerate(line_addrs):
            out[i] = self.access(int(addr))
        return out

    @property
    def occupancy(self) -> float:
        """Fraction of ways currently holding a valid line."""
        return float(np.count_nonzero(self._tags != -1)) / self._tags.size


@dataclass(frozen=True)
class AccessResult:
    """Aggregate outcome of a batch of memory accesses through a hierarchy."""

    accesses: int
    l1_misses: int
    l2_misses: int
    llc_misses: int
    penalty_cycles: int


class CacheHierarchy:
    """Private L1 + L2 in front of a (possibly shared) LLC.

    The L1 hit latency is considered part of the core's base IPC; the
    *penalty* charged for an access is the additional latency of the level
    that eventually hits.
    """

    def __init__(self, spec: MachineSpec, llc: SetAssocCache | None = None) -> None:
        self.spec = spec
        self.l1 = SetAssocCache(spec.l1)
        self.l2 = SetAssocCache(spec.l2)
        self.llc = llc if llc is not None else SetAssocCache(spec.llc)

    def flush(self) -> None:
        """Invalidate the private levels and the LLC reference."""
        self.l1.flush()
        self.l2.flush()
        self.llc.flush()

    def access_lines(self, line_addrs: np.ndarray) -> AccessResult:
        """Run the address stream through L1 -> L2 -> LLC -> DRAM.

        Returns aggregate miss counts and the total penalty in cycles.
        """
        n = int(line_addrs.shape[0])
        if n == 0:
            return AccessResult(0, 0, 0, 0, 0)
        l1_hit = self.l1.access_lines(line_addrs)
        l1_miss_addrs = line_addrs[~l1_hit]
        l2_hit = self.l2.access_lines(l1_miss_addrs)
        l2_miss_addrs = l1_miss_addrs[~l2_hit]
        llc_hit = self.llc.access_lines(l2_miss_addrs)
        l1_misses = int(l1_miss_addrs.shape[0])
        l2_misses = int(l2_miss_addrs.shape[0])
        llc_misses = int(l2_miss_addrs.shape[0] - np.count_nonzero(llc_hit))
        penalty = (
            int(np.count_nonzero(l2_hit)) * self.spec.l2.latency_cycles
            + int(np.count_nonzero(llc_hit)) * self.spec.llc.latency_cycles
            + llc_misses * self.spec.dram_latency_cycles
        )
        return AccessResult(
            accesses=n,
            l1_misses=l1_misses,
            l2_misses=l2_misses,
            llc_misses=llc_misses,
            penalty_cycles=penalty,
        )
