"""Simulated multicore machine substrate.

This package stands in for the hardware the paper measures on: Skylake-like
cores with a cycle-accurate-ish clock, a cache hierarchy, programmable
performance counters, PEBS (hardware sampling of timestamp + instruction
pointer with a ~250 ns per-sample assist cost), and a perf-style
software sampler driven by counter-overflow interrupts.

The substrate executes :class:`~repro.machine.block.Block` quanta emitted by
application code and charges cycles, counts hardware events, and produces
samples exactly where a real PMU would.

The *package-level* re-exports (``from repro.machine import Machine``)
are deprecated: import from the defining submodule instead (``from
repro.machine.machine import Machine``), or use the :mod:`repro.api`
facade, which assembles the machine for you.  They keep working for one
release, each emitting a :class:`DeprecationWarning`.
"""

#: name -> (defining module, attribute)
_EXPORTS = {
    "Block": ("repro.machine.block", "Block"),
    "BlockOutcome": ("repro.machine.block", "BlockOutcome"),
    "CacheHierarchy": ("repro.machine.cache", "CacheHierarchy"),
    "CounterConfig": ("repro.machine.pmu", "CounterConfig"),
    "HWEvent": ("repro.machine.events", "HWEvent"),
    "Machine": ("repro.machine.machine", "Machine"),
    "MachineSpec": ("repro.machine.config", "MachineSpec"),
    "MemRef": ("repro.machine.block", "MemRef"),
    "PEBSConfig": ("repro.machine.pebs", "PEBSConfig"),
    "PEBSUnit": ("repro.machine.pebs", "PEBSUnit"),
    "PMU": ("repro.machine.pmu", "PMU"),
    "Sample": ("repro.machine.pebs", "Sample"),
    "SetAssocCache": ("repro.machine.cache", "SetAssocCache"),
    "SimCore": ("repro.machine.core", "SimCore"),
    "SoftwareSampler": ("repro.machine.sampler", "SoftwareSampler"),
    "SoftwareSamplerConfig": ("repro.machine.sampler", "SoftwareSamplerConfig"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib
        import warnings

        module, attr = _EXPORTS[name]
        warnings.warn(
            f"'from repro.machine import {name}' is deprecated; import it "
            f"from {module}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro.machine' has no attribute {name!r}")


def __dir__() -> list[str]:
    return list(__all__)
