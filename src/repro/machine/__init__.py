"""Simulated multicore machine substrate.

This package stands in for the hardware the paper measures on: Skylake-like
cores with a cycle-accurate-ish clock, a cache hierarchy, programmable
performance counters, PEBS (hardware sampling of timestamp + instruction
pointer with a ~250 ns per-sample assist cost), and a perf-style
software sampler driven by counter-overflow interrupts.

The substrate executes :class:`~repro.machine.block.Block` quanta emitted by
application code and charges cycles, counts hardware events, and produces
samples exactly where a real PMU would.
"""

from repro.machine.block import Block, BlockOutcome, MemRef
from repro.machine.cache import CacheHierarchy, SetAssocCache
from repro.machine.config import MachineSpec
from repro.machine.core import SimCore
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.pebs import PEBSConfig, PEBSUnit, Sample
from repro.machine.pmu import PMU, CounterConfig
from repro.machine.sampler import SoftwareSampler, SoftwareSamplerConfig

__all__ = [
    "Block",
    "BlockOutcome",
    "CacheHierarchy",
    "CounterConfig",
    "HWEvent",
    "Machine",
    "MachineSpec",
    "MemRef",
    "PEBSConfig",
    "PEBSUnit",
    "PMU",
    "Sample",
    "SetAssocCache",
    "SimCore",
    "SoftwareSampler",
    "SoftwareSamplerConfig",
]
