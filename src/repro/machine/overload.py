"""Overload-graceful capture: bounded shedding + adaptive reset backoff.

The paper's overhead analysis (Section IV-C3) assumes the capture side
keeps up with the sample stream; under burst load a real PEBS deployment
does not — the buffer fills faster than the helper drains it, and the
choices are to stall the traced program (distorting the very
fluctuations being measured) or to drop data.  This module makes the
drop path *honest* and *bounded*:

* :class:`OverloadPolicy` configures what a PEBS unit does when its
  spare buffer fills before the previous drain completed: **shed** the
  just-filled buffer (never stall, never touch switch marks — samples
  are statistically redundant, marks are not), and account every shed
  sample with its timestamp span so diagnosis can flag the affected
  items as degraded instead of silently misattributing them.
* :class:`AdaptiveResetController` implements reset-value backoff: under
  sustained overflow pressure it raises R multiplicatively (fewer
  samples per second → the drain catches up), and restores it toward
  the configured base with hysteresis once the unit has stayed calm —
  so a transient burst does not permanently coarsen the sample rate,
  and an oscillating load does not flap R every buffer.

Both are observable: shed samples land in the
``repro_overload_samples_shed_total`` counter and per-unit
``shed_spans``; every R change lands in
``repro_overload_r_adjustments_total`` and the unit's ``r_history``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.obs.instrumented import pipeline as _obs


@dataclass(frozen=True)
class OverloadPolicy:
    """How a capture unit behaves when it cannot keep up.

    Parameters
    ----------
    shed_on_stall:
        When the spare PEBS buffer fills before the previous drain
        finished, drop that buffer's records (with span accounting)
        instead of stalling the traced core.  Stalling perturbs the
        measurement; shedding degrades it honestly.
    adaptive_reset:
        Enable reset-value backoff (the controller below).
    raise_after_fills:
        Consecutive *pressured* buffer fills (fills that shed or would
        have stalled) before R is raised — one bad buffer is a burst,
        several in a row are sustained overflow.
    raise_factor:
        Multiplier applied to R on each raise.
    restore_after_calm:
        Consecutive calm buffer fills (drain finished in time) before
        one restore step — the hysteresis that stops R from flapping.
    max_reset_multiple:
        Cap on R as a multiple of the configured base value.
    """

    shed_on_stall: bool = True
    adaptive_reset: bool = True
    raise_after_fills: int = 2
    raise_factor: float = 2.0
    restore_after_calm: int = 4
    max_reset_multiple: int = 64

    def __post_init__(self) -> None:
        if self.raise_after_fills < 1:
            raise ConfigError(
                f"raise_after_fills must be >= 1, got {self.raise_after_fills}"
            )
        if self.raise_factor <= 1.0:
            raise ConfigError(
                f"raise_factor must be > 1, got {self.raise_factor}"
            )
        if self.restore_after_calm < 1:
            raise ConfigError(
                f"restore_after_calm must be >= 1, got {self.restore_after_calm}"
            )
        if self.max_reset_multiple < 1:
            raise ConfigError(
                f"max_reset_multiple must be >= 1, got {self.max_reset_multiple}"
            )


class AdaptiveResetController:
    """Reset-value backoff for one counter: raise under pressure, restore
    with hysteresis.

    The controller never talks to the PMU directly; it is handed a
    ``set_reset`` callback (bound by :meth:`Machine.attach_pebs <repro.machine.machine.Machine.attach_pebs>`)
    so the same logic drives simulated and — in principle — real
    counters.
    """

    def __init__(
        self,
        policy: OverloadPolicy,
        base_reset_value: int,
        set_reset: Callable[[int], None],
    ) -> None:
        self.policy = policy
        self.base = base_reset_value
        self.current = base_reset_value
        self._set_reset = set_reset
        self._pressure = 0
        self._calm = 0
        self.adjustments = 0
        #: ``(virtual_ts, new_reset_value)`` for every change, in order.
        self.history: list[tuple[int, int]] = []

    def on_buffer_fill(self, now: int, pressured: bool) -> None:
        """Feed one buffer-fill event; may adjust R via the callback."""
        if not self.policy.adaptive_reset:
            return
        if pressured:
            self._calm = 0
            self._pressure += 1
            if self._pressure >= self.policy.raise_after_fills:
                self._pressure = 0
                cap = self.base * self.policy.max_reset_multiple
                new = min(int(self.current * self.policy.raise_factor), cap)
                if new > self.current:
                    self._apply(now, new)
        else:
            self._pressure = 0
            if self.current > self.base:
                self._calm += 1
                if self._calm >= self.policy.restore_after_calm:
                    self._calm = 0
                    new = max(int(self.current / self.policy.raise_factor), self.base)
                    if new < self.current:
                        self._apply(now, new)

    def _apply(self, now: int, new: int) -> None:
        self.current = new
        self._set_reset(new)
        self.adjustments += 1
        self.history.append((int(now), int(new)))
        _obs().r_adjustments.inc()


__all__ = ["OverloadPolicy", "AdaptiveResetController"]
