"""Programmable per-core performance counters.

A counter is configured with a hardware event and a reset value R (paper
Section III-B): the register starts at -R, increments once per event
occurrence, and on overflow the attached *sink* (the PEBS unit or the
software sampler) takes a sample and the register resets to -R.  We track
the equivalent "events remaining until overflow" scalar.

Event occurrences inside a block are assumed uniformly spread over the
block's cycles, so the k-th event of a block executing ``cycles`` cycles
from ``start`` happens at ``start + cycles * k / total``.  Overflow
positions within a block are computed vectorised (one ``arange`` per block,
never a Python loop over events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol

import numpy as np

from repro.errors import ConfigError
from repro.machine.events import HWEvent


class OverflowSink(Protocol):
    """Receiver of counter overflows (PEBS unit or software sampler)."""

    def on_overflows(self, timestamps: np.ndarray, ip: int, tag: int) -> int:
        """Handle overflow samples; return extra cycles charged to the core."""
        ...


@dataclass(frozen=True)
class CounterConfig:
    """Event + reset value pair, as configured into the PMU."""

    event: HWEvent
    reset_value: int

    def __post_init__(self) -> None:
        if self.reset_value < 1:
            raise ConfigError(f"reset value must be >= 1, got {self.reset_value}")


class _CounterState:
    __slots__ = ("config", "sink", "remaining", "overflows")

    def __init__(self, config: CounterConfig, sink: OverflowSink) -> None:
        self.config = config
        self.sink = sink
        self.remaining = config.reset_value
        self.overflows = 0


class PMU:
    """The performance monitoring unit of one core.

    The paper uses a single (event, reset value) pair; we allow several
    simultaneous counters, each with its own sink, which is what lets the
    extension experiments sample cache misses alongside uops.
    """

    def __init__(self) -> None:
        self._counters: list[_CounterState] = []

    def add_counter(self, config: CounterConfig, sink: OverflowSink) -> None:
        """Program a counter; counting starts with the next executed block."""
        self._counters.append(_CounterState(config, sink))

    def set_reset_value(self, sink: OverflowSink, reset_value: int) -> None:
        """Reprogram the reset value of the counter feeding ``sink``.

        This is the adaptive-backoff hook: under sustained overflow the
        overload controller raises R mid-run (and later restores it).
        Takes effect from the next overflow — the in-flight countdown
        (``remaining``) is deliberately left alone, exactly as rewriting
        the reset MSR on real hardware leaves the live counter register.
        """
        if reset_value < 1:
            raise ConfigError(f"reset value must be >= 1, got {reset_value}")
        for state in self._counters:
            if state.sink is sink:
                state.config = CounterConfig(state.config.event, reset_value)
                return
        raise ConfigError("no counter is attached to that sink")

    @property
    def counter_count(self) -> int:
        return len(self._counters)

    def total_overflows(self) -> int:
        """Total overflow (sample) events across all counters."""
        return sum(c.overflows for c in self._counters)

    def process_block(
        self,
        ip: int,
        start: int,
        cycles: int,
        event_counts: Mapping[HWEvent, int],
        tag: int,
    ) -> int:
        """Advance every counter over one executed block.

        Returns the total extra cycles the sinks charged (PEBS assists,
        buffer drains, software interrupt handlers).
        """
        if not self._counters:
            return 0
        extra = 0
        for state in self._counters:
            k = int(event_counts.get(state.config.event, 0))
            if k <= 0:
                continue
            if k < state.remaining:
                state.remaining -= k
                continue
            reset = state.config.reset_value
            n_over = 1 + (k - state.remaining) // reset
            # 1-indexed positions (in event occurrences) of each overflow.
            positions = state.remaining + reset * np.arange(n_over, dtype=np.int64)
            timestamps = start + (cycles * positions) // k
            state.remaining = reset - (k - int(positions[-1]))
            state.overflows += n_over
            extra += state.sink.on_overflows(timestamps, ip, tag)
        return extra
