"""The whole simulated machine: cores, shared LLC, sampler attachment.

This is the top-level substrate object experiments construct.  Tracing
mechanisms (PEBS units, software samplers) are attached per core, mirroring
the paper's setup where PEBS samples core-local events on every core
simultaneously (Section III-D).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.machine.cache import CacheHierarchy, SetAssocCache
from repro.machine.config import SKYLAKE_LIKE, MachineSpec
from repro.machine.core import SimCore
from repro.machine.overload import AdaptiveResetController, OverloadPolicy
from repro.machine.pebs import PEBSConfig, PEBSUnit
from repro.machine.pmu import CounterConfig
from repro.machine.sampler import SoftwareSampler, SoftwareSamplerConfig


class Machine:
    """N cores sharing one LLC (when cache modelling is enabled).

    Parameters
    ----------
    spec:
        Hardware parameters; defaults to the Skylake-like evaluation box.
    n_cores:
        Number of cores.  Threads are pinned 1:1 to cores by the runtime.
    with_caches:
        When True every core gets a private L1/L2 in front of a shared LLC
        and memory-touching blocks pay real hit/miss penalties.  Experiments
        that do not study cache behaviour leave this off for speed.
    """

    def __init__(
        self,
        spec: MachineSpec = SKYLAKE_LIKE,
        n_cores: int = 2,
        with_caches: bool = False,
    ) -> None:
        if n_cores < 1:
            raise ConfigError(f"need at least one core, got {n_cores}")
        self.spec = spec
        self.llc: SetAssocCache | None = None
        if with_caches:
            self.llc = SetAssocCache(spec.llc)
        self.cores: list[SimCore] = []
        for i in range(n_cores):
            hierarchy = CacheHierarchy(spec, llc=self.llc) if with_caches else None
            self.cores.append(SimCore(i, spec, hierarchy=hierarchy))
        self._pebs_units: dict[int, list[PEBSUnit]] = {}
        self._sw_samplers: dict[int, list[SoftwareSampler]] = {}

    def core(self, core_id: int) -> SimCore:
        """Return the core with the given id."""
        try:
            return self.cores[core_id]
        except IndexError:
            raise ConfigError(f"no core {core_id} on a {len(self.cores)}-core machine")

    # -- sampler attachment -------------------------------------------------
    def attach_pebs(
        self,
        core_id: int,
        config: PEBSConfig,
        overload: OverloadPolicy | None = None,
    ) -> PEBSUnit:
        """Enable PEBS on one core; returns the unit holding its samples.

        ``overload`` opts the unit into overload-graceful capture: shed
        the just-filled buffer instead of stalling the core, and (when
        the policy enables it) adaptively back the reset value off under
        sustained overflow, restoring it with hysteresis once the drain
        catches up.
        """
        core = self.core(core_id)
        unit = PEBSUnit(config, self.spec)
        core.pmu.add_counter(CounterConfig(config.event, config.reset_value), unit)
        if overload is not None:
            unit.overload = overload
            if overload.adaptive_reset:
                unit.controller = AdaptiveResetController(
                    overload,
                    config.reset_value,
                    lambda r, pmu=core.pmu, sink=unit: pmu.set_reset_value(sink, r),
                )
        self._pebs_units.setdefault(core_id, []).append(unit)
        return unit

    def attach_software_sampler(
        self, core_id: int, config: SoftwareSamplerConfig
    ) -> SoftwareSampler:
        """Enable perf-style interrupt-driven sampling on one core."""
        core = self.core(core_id)
        sampler = SoftwareSampler(config, self.spec)
        core.pmu.add_counter(CounterConfig(config.event, config.reset_value), sampler)
        self._sw_samplers.setdefault(core_id, []).append(sampler)
        return sampler

    def pebs_units(self, core_id: int) -> list[PEBSUnit]:
        """PEBS units attached to a core (empty list when none)."""
        return list(self._pebs_units.get(core_id, []))

    def flush_pebs(self) -> None:
        """End-of-run drain of partially filled PEBS buffers.

        The drain cost lands on the owning core's clock, matching the
        prototype where the helper program copies the final buffer out.
        """
        for core_id, units in self._pebs_units.items():
            core = self.core(core_id)
            for unit in units:
                core.clock += unit.flush()

    @property
    def max_clock(self) -> int:
        """Latest TSC value across cores (end-of-run timestamp)."""
        return max(c.clock for c in self.cores)
