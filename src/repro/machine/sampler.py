"""Software (perf-style) sampling via traditional performance counters.

The traditional counters are hardware, but *sampling program state* on
overflow is done by software: the counter raises an interrupt, the OS
suspends the target thread, and a handler walks its state (paper Sections
III-B and VI-B).  Two consequences, both reproduced here:

* every serviced overflow steals the handler time (~ 10 µs class) from the
  interrupted thread, and
* overflows arriving while the handler is busy cannot be serviced — so
  however small the reset value, the achieved sample interval is floored by
  the handler time.  This is the Fig 4 phenomenon that motivates PEBS.

An optional throttle models perf's ``kernel.perf_event_max_sample_rate``
auto-throttling (disabled in the paper's Fig 4 experiment and by default
here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.machine.config import MachineSpec
from repro.machine.events import HWEvent
from repro.machine.pebs import SampleArrays
from repro.obs.instrumented import pipeline as _obs
from repro.units import ns_to_cycles


@dataclass(frozen=True)
class SoftwareSamplerConfig:
    """Configuration of the perf-like sampler.

    ``throttle_max_rate_hz`` caps serviced samples per second of virtual
    time when not None (perf's default behaviour); the paper disables it.
    """

    event: HWEvent
    reset_value: int
    throttle_max_rate_hz: float | None = None
    #: Bound on retained samples (None = unbounded, the historical
    #: behaviour).  A long overloaded run must not grow the sample lists
    #: without limit; overflows past the bound are dropped *and counted*.
    capacity: int | None = None

    def __post_init__(self) -> None:
        if self.reset_value < 1:
            raise ConfigError(f"reset value must be >= 1, got {self.reset_value}")
        if self.throttle_max_rate_hz is not None and self.throttle_max_rate_hz <= 0:
            raise ConfigError("throttle_max_rate_hz must be positive when set")
        if self.capacity is not None and self.capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {self.capacity}")


class SoftwareSampler:
    """Interrupt-driven sampler; plugs into the PMU as an overflow sink."""

    def __init__(self, config: SoftwareSamplerConfig, spec: MachineSpec) -> None:
        self.config = config
        self.spec = spec
        self._handler_cycles = ns_to_cycles(spec.sw_handler_ns, spec.freq_ghz)
        if self.config.throttle_max_rate_hz is not None:
            min_gap_s = 1.0 / self.config.throttle_max_rate_hz
            self._throttle_gap = ns_to_cycles(min_gap_s * 1e9, spec.freq_ghz)
        else:
            self._throttle_gap = 0
        self._busy_until = -1
        self._ts: list[int] = []
        self._ip: list[int] = []
        self._tag: list[int] = []
        self.dropped = 0
        #: Optional online observer ``drop_listener(serviced, dropped)``
        #: called per overflow block — a live sample-rate-collapse signal
        #: (the achieved rate flooring of Fig 4, observed as it happens).
        self.drop_listener = None
        self._finalized: SampleArrays | None = None

    # -- OverflowSink protocol -------------------------------------------
    def on_overflows(self, timestamps: np.ndarray, ip: int, tag: int) -> int:
        """Service what the handler can; drop the rest.  Returns cycle cost.

        Like the PEBS unit, each serviced interrupt shifts later overflow
        positions within the same block by the handler time already spent —
        the target thread really was suspended for that long.
        """
        ins = _obs()
        extra = 0
        serviced = 0
        busy_drops = 0
        capacity_drops = 0
        cap = self.config.capacity
        min_gap = max(self._handler_cycles, self._throttle_gap)
        for t in timestamps:
            t = int(t) + extra
            if t < self._busy_until:
                self.dropped += 1
                busy_drops += 1
                continue
            if cap is not None and len(self._ts) >= cap:
                # The retained-sample bound is hit: the handler still runs
                # (the interrupt fired) but the record is discarded.
                self.dropped += 1
                capacity_drops += 1
                self._busy_until = t + min_gap
                extra += self._handler_cycles
                continue
            self._ts.append(t)
            self._ip.append(ip)
            self._tag.append(tag)
            self._busy_until = t + min_gap
            serviced += 1
            extra += self._handler_cycles
        if serviced:
            ins.sw_samples.inc(serviced)
        if busy_drops:
            ins.sw_dropped.inc(busy_drops)
            ins.sw_drop_reason("busy").inc(busy_drops)
        if capacity_drops:
            ins.sw_dropped.inc(capacity_drops)
            ins.sw_drop_reason("capacity").inc(capacity_drops)
        if self.drop_listener is not None and (busy_drops or capacity_drops):
            self.drop_listener(serviced, busy_drops + capacity_drops)
        return extra

    # -- host-side access --------------------------------------------------
    def finalize(self) -> SampleArrays:
        """Return serviced samples as sorted column arrays (cached)."""
        if self._finalized is None:
            ts = np.asarray(self._ts, dtype=np.int64)
            ip = np.asarray(self._ip, dtype=np.int64)
            tag = np.asarray(self._tag, dtype=np.int64)
            order = np.argsort(ts, kind="stable")
            self._finalized = SampleArrays(ts=ts[order], ip=ip[order], tag=tag[order])
        return self._finalized

    @property
    def sample_count(self) -> int:
        return len(self._ts)
