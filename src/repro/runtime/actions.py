"""Actions an application thread can yield to the scheduler.

Application code is a generator; each ``yield`` hands the scheduler one of
these action objects.  ``Pop`` is the only action whose result matters:
the popped item is delivered back as the value of the ``yield`` expression.

``Mark`` is the paper's coarse instrumentation point (a *data-item switch*,
Section III-C): the attached tracer decides its cost and what gets
recorded.  ``FnEnter``/``FnLeave`` exist so the *same* application source
can also be run under the gprof-style full-instrumentation baseline; when
no full tracer is attached they cost nothing (instrumentation compiled
out).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.machine.block import Block


class SwitchKind(enum.Enum):
    """Which side of a data-item switch a Mark action records."""

    ITEM_START = "start"
    ITEM_END = "end"


@dataclass(frozen=True)
class Exec:
    """Execute one block on the thread's core.

    The ``yield`` expression evaluates to the
    :class:`~repro.machine.block.BlockOutcome`, so bodies that need virtual
    time (e.g. the user-level-thread runtime tracking its time slice) can
    observe how long the block actually took.
    """

    block: Block


@dataclass(frozen=True)
class SetTag:
    """Write a value into the core's tag register (r13 in Section V-A).

    Costs nothing (a single mov).  PEBS samples taken afterwards carry the
    value, which is how the timer-switching extension maps samples to
    data-items without timestamp windows.
    """

    value: int


@dataclass(frozen=True)
class Push:
    """Enqueue ``item`` onto ``queue`` (blocks while the queue is full)."""

    queue: Any  # SPSCQueue; typed loosely to avoid a circular import
    item: Any


@dataclass(frozen=True)
class Pop:
    """Dequeue from ``queue`` (busy-polls while empty); yields the item."""

    queue: Any


@dataclass(frozen=True)
class Mark:
    """Data-item switch instrumentation point (start or end of an item)."""

    kind: SwitchKind
    item_id: int


@dataclass(frozen=True)
class FnEnter:
    """Function-entry marker for the full-instrumentation baseline."""

    fn_ip: int


@dataclass(frozen=True)
class FnLeave:
    """Function-exit marker for the full-instrumentation baseline."""

    fn_ip: int


@dataclass(frozen=True)
class IdleUntil:
    """Advance the core clock to an absolute time without retiring work.

    Used by paced sources (e.g. the GNET tester injecting packets "one by
    one with a short interval", Section IV-C2).  No samples are taken while
    idle — unlike busy-polling on an empty queue.
    """

    t: int


Action = Exec | Push | Pop | Mark | FnEnter | FnLeave | IdleUntil | SetTag
