"""Typed wait edges: who waited on whom, for how long, and why.

Per-function latency attribution (the paper's axis) sees only *code
that ran*; a slow item whose core sat in a poll loop shows up as time
in ``poll``/``ring_wait`` symbols with no hint of the thread on the
other side.  DepGraph-style waiting-dependency diagnosis needs the
edge itself: *this* core waited on *that* queue, and the party
responsible was the thread whose last retired function was *f* on
core *c*.

The scheduler records one :class:`WaitEdge` per blocking spin, at the
moment the spin's length becomes known (conservative simulation knows
the exact virtual wait).  Edges are typed by blocker kind:

``lock``
    pop spin on a lock's token queue (see :mod:`repro.runtime.lock`);
    the blocker is the previous holder, identified by the function it
    executed while holding.
``queue-full``
    push spin under backpressure; the blocker is the consumer that
    frees ring slots.
``queue-empty``
    pop that found the queue empty and parked; the blocker is the
    producer that eventually pushed the head item.
``producer``
    pop of an in-flight item (queued, but its availability timestamp
    is still in the waiter's future): the waiter is pacing behind the
    producer's latency rather than an empty ring.

Columns are plain numpy arrays so the capture layer can append them to
the v3 container as an *optional* member set — old readers ignore it,
new readers treat absence as "no wait data", never an error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Blocker-kind names, index == on-disk code.
WAIT_KINDS = ("lock", "queue-full", "queue-empty", "producer")

WAIT_LOCK = 0
WAIT_QUEUE_FULL = 1
WAIT_QUEUE_EMPTY = 2
WAIT_PRODUCER = 3


def kind_name(code: int) -> str:
    """Human name of a blocker-kind code (``"?"`` for unknown codes)."""
    return WAIT_KINDS[code] if 0 <= code < len(WAIT_KINDS) else "?"


@dataclass(frozen=True)
class WaitColumns:
    """One core's wait edges as parallel arrays (container layout).

    ``queue`` indexes into ``queue_names``; ``blocker_core`` is -1 and
    ``blocker_ip`` 0 when the blocking side was never seen (e.g. a wait
    on a queue nothing had touched yet).
    """

    ts: np.ndarray  # int64 — waiter clock when the spin began
    cycles: np.ndarray  # int64 — virtual length of the spin
    kind: np.ndarray  # int8  — WAIT_* code
    queue: np.ndarray  # int32 — index into queue_names
    blocker_core: np.ndarray  # int32 — -1 unknown
    blocker_ip: np.ndarray  # int64 — 0 unknown
    waiter_ip: np.ndarray  # int64 — waiter's last function, 0 unknown
    queue_names: tuple[str, ...] = ()

    def __len__(self) -> int:
        return int(self.ts.shape[0])

    @classmethod
    def empty(cls) -> "WaitColumns":
        return cls(
            ts=np.zeros(0, dtype=np.int64),
            cycles=np.zeros(0, dtype=np.int64),
            kind=np.zeros(0, dtype=np.int8),
            queue=np.zeros(0, dtype=np.int32),
            blocker_core=np.zeros(0, dtype=np.int32),
            blocker_ip=np.zeros(0, dtype=np.int64),
            waiter_ip=np.zeros(0, dtype=np.int64),
            queue_names=(),
        )


class WaitEdgeLog:
    """Append-only recorder the scheduler feeds during a run.

    The hot path is one tuple append per *blocking* spin — items that
    never wait record nothing, so the overhead scales with contention,
    not throughput (the <5% PR 3 budget is gated by
    ``benchmarks/bench_ext_depgraph.py``).
    """

    def __init__(self) -> None:
        self._by_core: dict[int, list[tuple]] = {}
        self._queue_idx: dict[str, int] = {}
        self.queue_names: list[str] = []

    def record(
        self,
        core: int,
        ts: int,
        kind: int,
        queue_name: str,
        cycles: int,
        blocker_core: int,
        blocker_ip: int,
        waiter_ip: int,
    ) -> None:
        qidx = self._queue_idx.get(queue_name)
        if qidx is None:
            qidx = self._queue_idx[queue_name] = len(self.queue_names)
            self.queue_names.append(queue_name)
        self._by_core.setdefault(core, []).append(
            (ts, cycles, kind, qidx, blocker_core, blocker_ip, waiter_ip)
        )

    @property
    def n_edges(self) -> int:
        return sum(len(rows) for rows in self._by_core.values())

    def per_core_columns(self) -> dict[int, WaitColumns]:
        """Finalize into container-ready per-core column arrays."""
        names = tuple(self.queue_names)
        out: dict[int, WaitColumns] = {}
        for core, rows in sorted(self._by_core.items()):
            arr = np.asarray(rows, dtype=np.int64)
            out[core] = WaitColumns(
                ts=arr[:, 0].copy(),
                cycles=arr[:, 1].copy(),
                kind=arr[:, 2].astype(np.int8),
                queue=arr[:, 3].astype(np.int32),
                blocker_core=arr[:, 4].astype(np.int32),
                blocker_ip=arr[:, 5].copy(),
                waiter_ip=arr[:, 6].copy(),
                queue_names=names,
            )
        return out


__all__ = [
    "WAIT_KINDS",
    "WAIT_LOCK",
    "WAIT_QUEUE_FULL",
    "WAIT_QUEUE_EMPTY",
    "WAIT_PRODUCER",
    "kind_name",
    "WaitColumns",
    "WaitEdgeLog",
]
