"""Conservative discrete-event scheduler for pinned-thread applications.

Each :class:`~repro.runtime.thread.AppThread` owns its core exclusively
(the Fig 5 architecture), so threads only interact through
:class:`~repro.runtime.queue.SPSCQueue` timestamps.  The scheduler advances
one thread at a time until it blocks (empty pop / full push) or finishes,
then rotates.  Because queues are FIFO and per-queue producer/consumer are
unique, any interleaving of *host* execution yields the same virtual-time
behaviour — the conservative property that makes the simulation
deterministic.

A tracer can be attached via the :class:`InstrumentationHook` protocol; the
scheduler calls it at data-item switches (``Mark``) and function
entries/exits (``FnEnter``/``FnLeave``) and charges whatever cost it
returns to the thread's core as retired work, so instrumentation overhead
perturbs the timeline exactly like real log-printing statements would
(Section III-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.machine.block import timed_block
from repro.machine.machine import Machine
from repro.runtime.actions import (
    Action,
    Exec,
    FnEnter,
    FnLeave,
    IdleUntil,
    Mark,
    Pop,
    Push,
    SetTag,
)
from repro.runtime.queue import SPSCQueue
from repro.runtime.thread import AppThread
from repro.runtime.waitedge import (
    WAIT_LOCK,
    WAIT_PRODUCER,
    WAIT_QUEUE_EMPTY,
    WAIT_QUEUE_FULL,
)


class InstrumentationHook(Protocol):
    """What a tracer must implement to observe a scheduled application.

    Each hook returns ``(cost_cycles, ip)``: the cycles the instrumentation
    code takes and the instruction pointer it executes at (its own symbol —
    samples can land inside the marking function).  Return ``(0, 0)`` for
    "not instrumented".
    """

    def on_mark(self, thread: AppThread, core: Any, kind: Any, item_id: int) -> tuple[int, int]:
        ...

    def on_fn_enter(self, thread: AppThread, core: Any, fn_ip: int) -> tuple[int, int]:
        ...

    def on_fn_leave(self, thread: AppThread, core: Any, fn_ip: int) -> tuple[int, int]:
        ...


@dataclass
class _ThreadState:
    thread: AppThread
    gen: Any
    send_value: Any = None
    blocked_on: SPSCQueue | None = None
    blocked_kind: str | None = None  # "pop" | "push"
    pending_action: Action | None = None
    finished: bool = False
    actions_run: int = field(default=0)
    #: IP of the function this thread most recently entered or left —
    #: the identity a wait edge records for the *blocking* side.
    last_fn_ip: int = 0
    #: Whether the queue was empty when this thread parked on a pop
    #: (distinguishes a ``queue-empty`` wait from pacing behind an
    #: in-flight item, typed ``producer``).
    parked_on_empty: bool = False


class Scheduler:
    """Runs a set of pinned threads on a machine to completion."""

    def __init__(
        self,
        machine: Machine,
        threads: list[AppThread],
        tracer: InstrumentationHook | None = None,
        max_actions: int = 50_000_000,
        lockstep: bool = False,
        wait_probe=None,
        wait_log=None,
    ) -> None:
        """``lockstep=True`` advances exactly one action at a time, always
        on the thread with the smallest core clock.  Queue-only workloads
        do not need it (queue timestamps enforce causality), but threads
        that interact through **shared cache state** (the contention
        study) do: run-until-blocked would let one thread's entire run
        hit the cache before the other starts."""
        seen_cores: set[int] = set()
        for t in threads:
            if t.core_id in seen_cores:
                raise ConfigError(
                    f"two threads pinned to core {t.core_id}; the Fig 5 "
                    "architecture allows one thread per core"
                )
            machine.core(t.core_id)  # validates the id
            seen_cores.add(t.core_id)
        self.machine = machine
        self.threads = threads
        self.tracer = tracer
        self.max_actions = max_actions
        self.lockstep = lockstep
        #: Optional online observer of queue waits: ``on_wait(core, op,
        #: queue, wait, depth, ts)`` is called for every backpressure /
        #: empty-poll spin (the idle-core-while-items-queue invariant).
        #: None (the default) costs nothing on the spin paths.
        self.wait_probe = wait_probe
        #: Optional :class:`~repro.runtime.waitedge.WaitEdgeLog`: every
        #: blocking spin appends one typed edge (waiter, blocker kind,
        #: blocker identity, cycles).  None costs nothing.
        self.wait_log = wait_log
        self._total_actions = 0

    # -- public -------------------------------------------------------------
    def run(self) -> None:
        """Drive every thread to StopIteration; flush PEBS buffers at the end.

        Each round visits threads earliest-core-clock first, so when
        several consumers wait on one shared (MPMC) queue the one whose
        virtual time is smallest gets the item — the thread that would
        really have won the race.
        """
        states = [ _ThreadState(thread=t, gen=t.start()) for t in self.threads ]
        while True:
            progressed = False
            by_clock = sorted(
                states, key=lambda st: self.machine.core(st.thread.core_id).clock
            )
            for st in by_clock:
                if st.finished:
                    continue
                if st.blocked_on is not None and not self._unblock(st):
                    continue
                if self.lockstep:
                    self._advance_one(st)
                    progressed = True
                    break
                progressed |= self._advance(st)
            if all(st.finished for st in states):
                break
            if not progressed:
                blocked = [
                    f"{st.thread.name} ({st.blocked_kind} on {st.blocked_on.name})"
                    for st in states
                    if not st.finished and st.blocked_on is not None
                ]
                raise DeadlockError(
                    "no thread can make progress; blocked: " + ", ".join(blocked)
                )
        for st in states:
            st.thread.finished = True
        self.machine.flush_pebs()

    # -- internals ------------------------------------------------------------
    def _unblock(self, st: _ThreadState) -> bool:
        """Try to clear a blocked thread; True if it became runnable."""
        q = st.blocked_on
        assert q is not None and st.pending_action is not None
        core = self.machine.core(st.thread.core_id)
        if st.blocked_kind == "pop":
            if q.empty:
                return False
            action = st.pending_action
            st.blocked_on = None
            st.blocked_kind = None
            st.pending_action = None
            self._perform_pop(st, core, action)
            return True
        # push
        if q.earliest_push_ts(core.clock) is None:
            return False
        action = st.pending_action
        st.blocked_on = None
        st.blocked_kind = None
        st.pending_action = None
        self._perform_push(st, core, action)
        return True

    def _advance_one(self, st: _ThreadState) -> None:
        """Run exactly one action of a runnable thread (lockstep mode)."""
        try:
            action = st.gen.send(st.send_value)
        except StopIteration:
            st.finished = True
            return
        st.send_value = None
        self._count_action()
        self._dispatch(st, action)

    def _advance(self, st: _ThreadState) -> bool:
        """Run one thread until it blocks or finishes.  True if any action ran."""
        ran = False
        while st.blocked_on is None and not st.finished:
            try:
                action = st.gen.send(st.send_value)
            except StopIteration:
                st.finished = True
                break
            st.send_value = None
            ran = True
            self._count_action()
            self._dispatch(st, action)
        return ran

    def _count_action(self) -> None:
        self._total_actions += 1
        if self._total_actions > self.max_actions:
            raise SimulationError(
                f"exceeded max_actions={self.max_actions}; "
                "likely an application-level livelock"
            )

    def _dispatch(self, st: _ThreadState, action: Action) -> None:
        core = self.machine.core(st.thread.core_id)
        if isinstance(action, Exec):
            st.send_value = core.execute(action.block)
        elif isinstance(action, SetTag):
            core.tag_register = action.value
        elif isinstance(action, IdleUntil):
            if action.t > core.clock:
                core.advance_to(action.t)
        elif isinstance(action, Mark):
            if self.tracer is not None:
                cost, ip = self.tracer.on_mark(st.thread, core, action.kind, action.item_id)
                if cost > 0:
                    core.execute(timed_block(ip, cost, self.machine.spec.ipc))
        elif isinstance(action, FnEnter):
            st.last_fn_ip = action.fn_ip
            if self.tracer is not None:
                cost, ip = self.tracer.on_fn_enter(st.thread, core, action.fn_ip)
                if cost > 0:
                    core.execute(timed_block(ip, cost, self.machine.spec.ipc))
        elif isinstance(action, FnLeave):
            # Keep the ip: "the function this thread last retired" is the
            # identity wait edges blame, and a blocker typically releases
            # (pushes / unlocks) right *after* leaving its hot function.
            st.last_fn_ip = action.fn_ip
            if self.tracer is not None:
                cost, ip = self.tracer.on_fn_leave(st.thread, core, action.fn_ip)
                if cost > 0:
                    core.execute(timed_block(ip, cost, self.machine.spec.ipc))
        elif isinstance(action, Push):
            self._do_push(st, core, action)
        elif isinstance(action, Pop):
            self._do_pop(st, core, action)
        else:
            raise SimulationError(f"unknown action {action!r}")

    def _do_push(self, st: _ThreadState, core: Any, action: Push) -> None:
        q: SPSCQueue = action.queue
        q.check_role("producer", st.thread.name)
        if q.earliest_push_ts(core.clock) is None:
            st.blocked_on = q
            st.blocked_kind = "push"
            st.pending_action = action
            return
        self._perform_push(st, core, action)

    def _perform_push(self, st: _ThreadState, core: Any, action: Push) -> None:
        q: SPSCQueue = action.queue
        ts = q.earliest_push_ts(core.clock)
        assert ts is not None
        if ts > core.clock:
            # Backpressure: the producer busy-polls for a free slot.
            if self.wait_probe is not None:
                self.wait_probe.on_wait(
                    st.thread.core_id, "push", q, ts - core.clock, len(q), core.clock
                )
            if self.wait_log is not None:
                # The blocking side of a full ring is whoever frees slots.
                blocker = q.last_pop_info
                self.wait_log.record(
                    st.thread.core_id,
                    core.clock,
                    WAIT_QUEUE_FULL,
                    q.name,
                    ts - core.clock,
                    blocker[0] if blocker else -1,
                    blocker[1] if blocker else 0,
                    st.last_fn_ip,
                )
            core.spin_until(ts, st.thread.poll_ip)
        if q.push_cost > 0:
            core.execute(timed_block(st.thread.poll_ip, q.push_cost, self.machine.spec.ipc))
        q.push(action.item, core.clock)
        q.last_push_info = (st.thread.core_id, st.last_fn_ip)

    def _do_pop(self, st: _ThreadState, core: Any, action: Pop) -> None:
        """Pops are block-first: the thread parks and the round loop (which
        visits threads earliest-clock-first) hands items out.  For shared
        (MPMC) queues this is what makes the *earliest-free* consumer take
        the head item — an inline pop would let a consumer far ahead in
        virtual time spin forward and starve its idle peers.  For SPSC
        queues the detour is behaviour-preserving (single consumer)."""
        q: SPSCQueue = action.queue
        q.check_role("consumer", st.thread.name)
        st.blocked_on = q
        st.blocked_kind = "pop"
        st.pending_action = action
        st.parked_on_empty = q.empty

    def _perform_pop(self, st: _ThreadState, core: Any, action: Pop) -> None:
        q: SPSCQueue = action.queue
        avail = q.head_avail_ts()
        assert avail is not None
        if avail > core.clock:
            # The consumer spins in its poll loop until the item shows up;
            # PEBS keeps sampling and attributes the spin to poll_ip.
            if self.wait_probe is not None:
                # Queued depth is the *consumable* backlog: entries whose
                # avail_ts has passed.  While the head itself is still in
                # flight that count is zero by FIFO order — the consumer
                # is waiting on latency, not on a backlog — so this spin
                # only becomes an idle-core violation if a checker opts
                # into depth 0.
                self.wait_probe.on_wait(
                    st.thread.core_id, "pop", q, avail - core.clock, 0, core.clock
                )
            if self.wait_log is not None:
                if q.is_lock:
                    kind = WAIT_LOCK
                elif st.parked_on_empty:
                    kind = WAIT_QUEUE_EMPTY
                else:
                    kind = WAIT_PRODUCER
                # The blocking side of an empty ring (or a held lock) is
                # whoever pushed last: the producer / previous holder.
                blocker = q.last_push_info
                self.wait_log.record(
                    st.thread.core_id,
                    core.clock,
                    kind,
                    q.name,
                    avail - core.clock,
                    blocker[0] if blocker else -1,
                    blocker[1] if blocker else 0,
                    st.last_fn_ip,
                )
            core.spin_until(avail, st.thread.poll_ip)
        if q.pop_cost > 0:
            core.execute(timed_block(st.thread.poll_ip, q.pop_cost, self.machine.spec.ipc))
        st.send_value = q.pop(core.clock)
        q.last_pop_info = (st.thread.core_id, st.last_fn_ip)
