"""Single-producer single-consumer software queues with timing semantics.

DPDK-style pipelines pass data-items between pinned threads through
lock-free ring buffers.  The simulated queue carries, for every item, the
virtual timestamp at which the producer made it visible; the consumer can
only observe it from that time on.  Bounded capacity produces backpressure:
a push can only complete once the slot freed by the (i - capacity)-th pop
exists.

Enqueue/dequeue costs default to DPDK ``rte_ring`` order-of-magnitude
values (tens of cycles).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError


@dataclass(frozen=True)
class _Entry:
    avail_ts: int
    item: Any


class SPSCQueue:
    """FIFO between exactly one producer and one consumer thread.

    Parameters
    ----------
    name:
        For diagnostics.
    capacity:
        Maximum items in flight; None means unbounded (no backpressure).
    push_cost / pop_cost:
        Cycles charged to the producing / consuming core per operation.

    The single-producer/single-consumer discipline is enforced: the
    scheduler registers the first thread that pushes (pops) as the
    producer (consumer), and a different thread doing the same raises.
    Use :class:`MPMCQueue` for shared dispatch queues.
    """

    #: Whether the producer/consumer roles are exclusive to one thread.
    exclusive = True
    #: True for the one-slot token queues backing :class:`repro.runtime.
    #: lock.SimLock` — their pop waits are typed ``lock``, not
    #: ``queue-empty``, and their blocker is the previous holder.
    is_lock = False

    def __init__(
        self,
        name: str,
        capacity: int | None = None,
        push_cost: int = 40,
        pop_cost: int = 40,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"queue capacity must be >= 1, got {capacity}")
        if push_cost < 0 or pop_cost < 0:
            raise SimulationError("queue op costs must be >= 0")
        self.name = name
        self.capacity = capacity
        self.push_cost = push_cost
        self.pop_cost = pop_cost
        self._roles: dict[str, str] = {}
        self._entries: deque[_Entry] = deque()
        # Virtual timestamps of every pop, in order.  The i-th push (from 0)
        # of a capacity-C queue cannot complete before the (i-C)-th pop: the
        # ring slot it reuses is only freed at that pop's virtual time.
        self._pop_ts: list[int] = []
        self.total_pushed = 0
        self.total_popped = 0
        #: High-water mark of queued items — the online idle-core checker
        #: reports it as evidence of how far produce/consume diverged.
        self.peak_depth = 0
        self.closed = False
        #: (core_id, last_fn_ip) of the most recent pusher / popper, kept
        #: by the scheduler.  This is the *blocker identity* wait edges
        #: carry: a pop spin blames the last pusher (producer / previous
        #: lock holder), a push spin blames the last popper (the consumer
        #: that frees ring slots).  None until the op has happened once.
        self.last_push_info: tuple[int, int] | None = None
        self.last_pop_info: tuple[int, int] | None = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._entries) >= self.capacity

    def close(self) -> None:
        """Mark end-of-stream; a pop on a closed empty queue raises."""
        self.closed = True

    def check_role(self, role: str, thread_name: str) -> None:
        """Enforce the queue's threading discipline (called by the
        scheduler with the acting thread's name)."""
        if not self.exclusive:
            return
        bound = self._roles.setdefault(role, thread_name)
        if bound != thread_name:
            raise SimulationError(
                f"queue {self.name}: {role} role is bound to thread "
                f"{bound!r} but {thread_name!r} used it — this is an SPSC "
                "queue; use MPMCQueue for shared queues"
            )

    def earliest_push_ts(self, producer_clock: int) -> int | None:
        """When could a push issued now complete?  None if indefinitely blocked.

        For a bounded queue the next push reuses the slot freed by the pop
        ``capacity`` positions earlier; if that pop has not happened yet in
        simulation, the producer must block (the scheduler will retry once
        the consumer has run).
        """
        if self.capacity is None:
            return producer_clock
        slot_idx = self.total_pushed - self.capacity
        if slot_idx < 0:
            return producer_clock
        if slot_idx < len(self._pop_ts):
            return max(producer_clock, self._pop_ts[slot_idx])
        return None

    def push(self, item: Any, ts: int) -> None:
        """Make ``item`` visible to the consumer from time ``ts``.

        Caller (the scheduler) is responsible for honouring capacity via
        :meth:`earliest_push_ts`; pushing into a full queue is an error.
        """
        if self.closed:
            raise SimulationError(f"queue {self.name}: push after close")
        earliest = self.earliest_push_ts(ts)
        if earliest is None or ts < earliest:
            raise SimulationError(
                f"queue {self.name}: push at {ts} before its ring slot is free"
            )
        self._entries.append(_Entry(avail_ts=ts, item=item))
        self.total_pushed += 1
        if len(self._entries) > self.peak_depth:
            self.peak_depth = len(self._entries)

    def head_avail_ts(self) -> int | None:
        """Availability timestamp of the head item, or None when empty."""
        if not self._entries:
            return None
        return self._entries[0].avail_ts

    def pop(self, ts: int) -> Any:
        """Remove and return the head item; ``ts`` is when the pop happens."""
        if not self._entries:
            raise SimulationError(f"queue {self.name}: pop from empty queue")
        entry = self._entries.popleft()
        if ts < entry.avail_ts:
            raise SimulationError(
                f"queue {self.name}: pop at {ts} before item available at {entry.avail_ts}"
            )
        self._pop_ts.append(ts)
        self.total_popped += 1
        return entry.item


class MPMCQueue(SPSCQueue):
    """Multi-producer multi-consumer queue (a locked/CAS ring).

    The shape MariaDB-style thread pools use: one dispatcher (or many)
    feeding a shared run queue drained by one worker per core.  Operations
    cost more than the SPSC ring (CAS/lock traffic); defaults are roughly
    2x DPDK's rte_ring figures.

    Virtual-time semantics are inherited: items become visible at the
    pusher's timestamp and the scheduler wakes blocked poppers
    earliest-clock-first, so the consumer that would really have won the
    race gets the item.
    """

    exclusive = False

    def __init__(
        self,
        name: str,
        capacity: int | None = None,
        push_cost: int = 90,
        pop_cost: int = 90,
    ) -> None:
        super().__init__(name, capacity=capacity, push_cost=push_cost, pop_cost=pop_cost)
