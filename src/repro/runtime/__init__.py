"""Software-architecture substrate: pinned threads, queues, scheduling.

Models the "modern software architecture for high scalability" of paper
Fig 5: one thread pinned per core, threads connected by software queues,
each core processing one data-item at a time.  Applications are written as
generator functions yielding :mod:`~repro.runtime.actions` and are run to
completion by the conservative discrete-event :class:`~repro.runtime.scheduler.Scheduler`.

:mod:`~repro.runtime.ult` adds the *timer-switching* architecture
(user-level threads preempted by a timer) used by the Section V-A
extension.
"""

from repro.runtime.actions import (
    Exec,
    FnEnter,
    FnLeave,
    IdleUntil,
    Mark,
    Pop,
    Push,
    SetTag,
    SwitchKind,
)
from repro.runtime.queue import MPMCQueue, SPSCQueue
from repro.runtime.scheduler import Scheduler
from repro.runtime.thread import AppThread
from repro.runtime.ult import ULTask, ULTRuntime

__all__ = [
    "AppThread",
    "Exec",
    "FnEnter",
    "FnLeave",
    "IdleUntil",
    "Mark",
    "MPMCQueue",
    "Pop",
    "Push",
    "SetTag",
    "SPSCQueue",
    "Scheduler",
    "SwitchKind",
    "ULTRuntime",
    "ULTask",
]
