"""User-level threading: the *timer-switching* architecture of Section V-A.

NGINX-style systems forcefully switch data-items when one takes too long,
typically via a timer plus user-level threading.  This module models that:
several :class:`ULTask` item-processors are multiplexed on **one** pinned
thread/core; a task is preempted when it exhausts its time slice (at the
next block boundary — our preemption granularity) and the runtime switches
to the next ready task round-robin, paying a context-switch cost.

Two mapping aids from the paper are implemented:

* **Switch marking** — each residency segment of an item on the core is
  bracketed with data-item switch marks, so window-based hybrid
  integration still works (with multiple windows per item).
* **Register tagging** (the paper's key extension idea) — the runtime parks
  the current item ID in the core's tag register (r13); every PEBS sample
  then carries the ID directly, with no instrumentation at all.  During the
  runtime's own scheduling code the tag is cleared, conservatively leaving
  scheduler samples unattributed.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generator

from repro.errors import ConfigError
from repro.machine.block import Block, BlockOutcome
from repro.machine.pebs import TAG_NONE
from repro.runtime.actions import Action, Exec, Mark, SetTag, SwitchKind
from repro.runtime.thread import Body

#: A task body yields Exec (and optionally FnEnter/FnLeave) actions and is
#: sent back each Exec's BlockOutcome.
TaskBody = Generator[Action, BlockOutcome, None]


@dataclass(frozen=True)
class ULTask:
    """One data-item's work, to be run as a user-level thread."""

    item_id: int
    body_factory: Callable[[], TaskBody]


class ULTRuntime:
    """Round-robin preemptive user-level scheduler for one core.

    Use :meth:`body` as the ``body_factory`` of an
    :class:`~repro.runtime.thread.AppThread`.

    Parameters
    ----------
    tasks:
        The user-level threads, started in list order.
    timeslice_cycles:
        Budget per scheduling; a task is preempted at the first block
        boundary at or past the budget.
    switch_cost_cycles:
        Context-switch cost (register save/restore, scheduler bookkeeping).
    scheduler_ip:
        Instruction pointer of the runtime's own code; switch-cost blocks
        and their samples are attributed to it.
    tag_items:
        Park the running item's ID in the core tag register (Section V-A).
    mark_switches:
        Emit Mark actions bracketing every residency segment.
    ipc:
        The machine's retirement IPC, used to shape the switch-cost block
        so it takes exactly ``switch_cost_cycles`` on that machine.
    """

    def __init__(
        self,
        tasks: list[ULTask],
        timeslice_cycles: int,
        switch_cost_cycles: int,
        scheduler_ip: int,
        tag_items: bool = True,
        mark_switches: bool = True,
        ipc: float = 4.0,
    ) -> None:
        if timeslice_cycles < 1:
            raise ConfigError(f"timeslice must be >= 1 cycle, got {timeslice_cycles}")
        if switch_cost_cycles < 0:
            raise ConfigError("switch cost must be >= 0")
        ids = [t.item_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ConfigError("ULTask item ids must be unique")
        self.tasks = tasks
        self.timeslice_cycles = timeslice_cycles
        self.switch_cost_cycles = switch_cost_cycles
        self.scheduler_ip = scheduler_ip
        self.tag_items = tag_items
        self.mark_switches = mark_switches
        self.ipc = ipc
        self.preemptions = 0
        self.completions = 0

    def body(self) -> Body:
        """Generator to install as an AppThread body."""
        ready: deque[tuple[ULTask, TaskBody]] = deque(
            (t, t.body_factory()) for t in self.tasks
        )
        first = True
        while ready:
            task, gen = ready.popleft()
            if not first and self.switch_cost_cycles > 0:
                yield Exec(self._switch_block())
            first = False
            if self.tag_items:
                yield SetTag(task.item_id)
            if self.mark_switches:
                yield Mark(SwitchKind.ITEM_START, task.item_id)
            consumed = 0
            preempted = False
            send_val: BlockOutcome | None = None
            while True:
                try:
                    action = gen.send(send_val)
                except StopIteration:
                    self.completions += 1
                    break
                send_val = None
                outcome = yield action
                if isinstance(action, Exec):
                    assert isinstance(outcome, BlockOutcome)
                    send_val = outcome
                    consumed += outcome.cycles + outcome.overhead_cycles
                    if consumed >= self.timeslice_cycles:
                        preempted = True
                        break
            if self.mark_switches:
                yield Mark(SwitchKind.ITEM_END, task.item_id)
            if self.tag_items:
                yield SetTag(TAG_NONE)
            if preempted:
                self.preemptions += 1
                ready.append((task, gen))

    def _switch_block(self) -> Block:
        cost = self.switch_cost_cycles
        base = math.ceil(cost / self.ipc)
        return Block(ip=self.scheduler_ip, uops=cost, extra_cycles=max(0, cost - base))
