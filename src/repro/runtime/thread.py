"""Application threads: a generator body pinned to one core.

The body is any generator yielding :mod:`~repro.runtime.actions`.  Each
thread declares a ``poll_ip`` — the address of its dispatch/busy-poll loop.
Samples taken while the thread waits on an empty queue carry this ip, as on
a real DPDK worker spinning in its poll loop (DESIGN.md, "samples during
busy-polling").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.runtime.actions import Action

#: The generator protocol application bodies must follow.
Body = Generator[Action, Any, None]


@dataclass
class AppThread:
    """One pinned thread of a simulated application.

    Parameters
    ----------
    name:
        Diagnostic name ("RX", "ACL", "TX", ...).
    core_id:
        The core this thread is pinned to.  Exactly one thread per core
        (the Fig 5 architecture); the scheduler enforces this.
    body_factory:
        Zero-argument callable returning the generator to run.  A factory
        (not a generator) so a thread description can be reused across runs.
    poll_ip:
        Instruction pointer attributed to busy-poll spinning.
    """

    name: str
    core_id: int
    body_factory: Callable[[], Body]
    poll_ip: int
    finished: bool = field(default=False, init=False)

    def start(self) -> Body:
        """Instantiate the generator body for one run."""
        return self.body_factory()
