"""Lock-style mutual exclusion on top of the virtual-time queues.

A lock in the simulated runtime is a one-slot token queue:
``acquire`` pops the token (blocking, with the scheduler's
earliest-clock-first wakeup giving real convoy semantics — the thread
that has waited longest in virtual time wins), ``release`` pushes it
back at the holder's current clock.  Reusing the queue machinery means
lock waits inherit everything queues already have: deterministic
replay, deadlock detection, PEBS samples landing in the waiter's poll
symbol, and — the point of this module — typed :class:`WaitEdge`
recording, where the blocker identity is the previous holder's core
and the function it executed while holding the lock.
"""

from __future__ import annotations

from repro.runtime.actions import Pop, Push
from repro.runtime.queue import MPMCQueue

#: The token circulating through a lock's queue; its value is never
#: inspected, only its presence matters.
LOCK_TOKEN = object()


class SimLock:
    """A mutex usable from thread bodies via ``yield lock.acquire()``.

    Parameters mirror the queue costs: ``acquire_cost`` / ``release_cost``
    are the cycles charged for the atomic op itself (uncontended CAS
    order of magnitude), independent of any contention spin.
    """

    def __init__(
        self, name: str, acquire_cost: int = 90, release_cost: int = 90
    ) -> None:
        self.name = name
        self._q = MPMCQueue(
            f"lock:{name}",
            capacity=1,
            push_cost=release_cost,
            pop_cost=acquire_cost,
        )
        self._q.is_lock = True
        # Prime with the token at t=0: the lock starts free.
        self._q.push(LOCK_TOKEN, 0)

    @property
    def queue(self) -> MPMCQueue:
        """The underlying token queue (exposed for diagnostics)."""
        return self._q

    def acquire(self) -> Pop:
        """The action a thread yields to take the lock."""
        return Pop(self._q)

    def release(self) -> Push:
        """The action a thread yields to drop the lock."""
        return Push(self._q, LOCK_TOKEN)


__all__ = ["SimLock", "LOCK_TOKEN"]
