"""Command-line front-end: run traced workloads, analyse trace files.

The split mirrors the paper's prototype: an *online* part that runs the
instrumented workload and dumps raw samples + switch records to a file,
and an *offline* part that integrates, diagnoses, and renders — usable
on any machine, long after the run.

Usage::

    python -m repro.cli run --workload sampleapp --out trace.npz
    python -m repro.cli recover trace.npz
    python -m repro.cli info trace.npz
    python -m repro.cli report trace.npz --core 1 --diagnose
    python -m repro.cli diagnose trace.npz
    python -m repro.cli diff base.npz regressed.npz
    python -m repro.cli callgraph trace.npz --core 1

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro.analysis.reporting import format_table
from repro.core.callgraph import guess_call_edges
from repro.core.fluctuation import diagnose
from repro.core.integrity import POLICIES
from repro.core.options import IngestOptions
from repro.core.tracefile import load_trace, save_session
from repro.errors import ReproError, SignalInterrupt, TraceError
from repro.machine.events import EVENT_ALIASES as EVENTS
from repro.machine.overload import OverloadPolicy
from repro.session import trace as run_trace
from repro.signals import exit_status, raise_on_signals
from repro.workloads import WORKLOADS, build_workload

US = 3000.0  # cycles per microsecond at the default 3 GHz


def _build_workload(args):
    """Instantiate the requested workload; returns (app, group_map)."""
    return build_workload(
        args.workload,
        items=args.items,
        full_rules=args.full_rules,
        seed=args.seed,
    )


def cmd_run(args) -> int:
    from repro.obs.anomaly import AnomalyConfig

    app, groups = _build_workload(args)
    meta = {
        "workload": args.workload,
        "reset_value": args.reset_value,
        "event": args.event,
        "groups": {str(k): str(v) for k, v in groups.items()},
    }
    if args.seed is not None:
        meta["seed"] = args.seed
    overload = OverloadPolicy() if args.overload else None
    anomaly = AnomalyConfig.from_args(args)
    if args.flight_dir is not None and not anomaly.enabled:
        raise ReproError("--flight-dir needs --anomaly (nothing would trigger it)")
    # Durable runs trap SIGINT/SIGTERM: the signal unwinds into trace(),
    # which seals the tail and finalizes, so ^C costs nothing captured.
    # Non-durable runs keep the default disposition — there is nothing
    # on disk worth a graceful path.
    signal_scope = raise_on_signals() if args.durable else contextlib.nullcontext()
    with signal_scope:
        session = run_trace(
            app,
            reset_value=args.reset_value,
            event=EVENTS[args.event],
            double_buffered=args.double_buffered,
            overload=overload,
            durable_out=args.out if args.durable else None,
            checkpoint_every_marks=args.checkpoint_marks,
            durable_meta=meta if args.durable else None,
            anomaly=anomaly if anomaly.enabled else None,
            flight_dir=args.flight_dir,
            flight_capacity=args.flight_capacity,
        )
    if not args.durable:
        save_session(
            args.out,
            session,
            app.symtab,
            meta=meta,
            chunk_size=args.chunk_size,
            compress=not args.uncompressed,
            checksums=not args.no_checksums,
        )
    total = sum(u.sample_count for u in session.units.values())
    print(
        f"traced {args.workload}: {total} samples, "
        f"{session.tracer.calls} marking calls -> {args.out}"
    )
    if args.durable and session.watchdog is not None:
        print(
            f"durable: {session.watchdog.checkpoints} checkpoint(s), "
            f"{session.watchdog.writer.segments_sealed} segment(s) sealed"
        )
    if session.anomalies is not None and session.anomalies.total:
        counts = ", ".join(
            f"{k}: {v}" for k, v in sorted(session.anomalies.counts.items())
        )
        print(f"anomalies: {session.anomalies.total} ({counts})", file=sys.stderr)
    if session.flight is not None and session.flight.incidents:
        print(session.flight.describe(), file=sys.stderr)
    if session.degraded:
        shed = sum(u.shed_samples for u in session.units.values())
        errs = session.watchdog.write_errors if session.watchdog else []
        print(
            f"warning: capture degraded ({shed} sample(s) shed"
            + (f"; storage errors: {'; '.join(errs)}" if errs else "")
            + ") — switch marks are complete, diagnosis will flag "
            "affected items",
            file=sys.stderr,
        )
        if args.durable and session.recovery_report is None:
            print(
                f"warning: container not finalized; run "
                f"`repro recover {args.out}` to salvage the journal",
                file=sys.stderr,
            )
    if session.interrupted is not None:
        print(
            f"interrupted by signal {session.interrupted}; partial run "
            f"finalized to {args.out}",
            file=sys.stderr,
        )
        return 128 + session.interrupted
    return 0


def cmd_info(args) -> int:
    tf = load_trace(args.tracefile)
    rows = [["workload", tf.meta.get("workload", "?")]]
    rows.append(["event", tf.meta.get("event", "?")])
    rows.append(["reset value", tf.meta.get("reset_value", "?")])
    rows.append(["functions", len(tf.symtab)])
    for core in tf.sample_cores:
        rows.append([f"core {core} samples", len(tf.samples(core))])
        rows.append([f"core {core} switch records", len(tf.switches(core))])
    print(format_table(["field", "value"], rows, title=str(args.tracefile)))
    return 0


def _pick_core(tf, requested: int | None) -> int:
    if requested is not None:
        return requested
    # Default to the core with the most switch records (the worker).
    return max(tf.sample_cores, key=lambda c: len(tf.switches(c)))


def cmd_report(args) -> int:
    if args.stream and args.item is None:
        return _report_streamed(args)
    tf = load_trace(args.tracefile)
    core = _pick_core(tf, args.core)
    t = tf.integrate(core)
    if args.item is not None:
        from repro.analysis.timeline import render_item_timeline

        print(
            render_item_timeline(
                tf.samples(core), tf.switches(core), tf.symtab, args.item
            )
        )
        bd = t.breakdown(args.item)
        for fn, cy in sorted(bd.items(), key=lambda x: -x[1]):
            print(f"  {fn}: {cy / US:.2f} us")
        unattr = t.unattributed_cycles(args.item)
        if unattr:
            print(f"  (unattributed/stall): {unattr / US:.2f} us")
        return 0
    _print_breakdown_table(t, core)
    return _diagnose_block(t, tf.meta, args)


def _print_breakdown_table(t, core: int, degraded: set[int] | None = None) -> None:
    degraded = degraded or set()
    rows = []
    for item in t.items():
        bd = t.breakdown(item)
        total_us = t.item_window_cycles(item) / US
        top = ", ".join(
            f"{fn}={cy / US:.2f}us" for fn, cy in sorted(bd.items(), key=lambda x: -x[1])
        )
        label = f"{item}*" if item in degraded else str(item)
        rows.append([label, f"{total_us:.2f}", top or "(below sampling resolution)"])
    print(
        format_table(
            ["item", "total (us)", "per-function breakdown"],
            rows,
            title=f"core {core}: {len(rows)} data-items",
        )
    )
    if degraded:
        print("  * diagnosed from incomplete data (see coverage above)")


def _diagnose_block(t, meta: dict, args) -> int:
    if not args.diagnose:
        return 0
    groups = {int(k): v for k, v in meta.get("groups", {}).items()}
    if not groups:
        print("\n(no group metadata in trace file; cannot diagnose)")
        return 1
    rep = diagnose(t, lambda i: groups.get(i, "?"), threshold=args.threshold)
    print()
    if not rep.outliers:
        print("no fluctuations above threshold")
    for o in rep.outliers:
        print(o.describe())
    return 0


def _report_streamed(args) -> int:
    """`report --stream`: chunked ingestion + the usual per-item table."""
    from repro.analysis.reporting import format_ingest_report
    from repro.core.online import OnlineDiagnoser
    from repro.core.streaming import ingest_trace
    from repro.core.tracefile import TraceReader

    diag = OnlineDiagnoser()
    result = ingest_trace(
        args.tracefile,
        options=IngestOptions.from_args(args),
        cores=[args.core] if args.core is not None else None,
        diagnoser=diag,
    )
    if result.quarantine:
        from repro.obs.instrumented import publish_quarantine

        # Defect accounting goes to stderr: stdout stays parseable.  The
        # summary text is rendered from telemetry counters (fed to the
        # active registry when --telemetry is on), so the stderr text and
        # any exported quarantine metrics cannot disagree.
        print(publish_quarantine(result.quarantine), file=sys.stderr)
    if args.core is not None:
        core = args.core
    else:
        with TraceReader(args.tracefile) as reader:
            core = max(result.per_core, key=lambda c: reader.n_switch_records(c))
    print(format_ingest_report(result.stats, diag.summary(), result.coverage))
    print()
    t = result.per_core[core]
    cov = result.coverage.get(core)
    degraded = set(cov.degraded_items) if cov is not None else set()
    if cov is not None and cov.unknown_extent:
        degraded = set(t.items())
    _print_breakdown_table(t, core, degraded=degraded)
    return _diagnose_block(t, _load_meta(args.tracefile), args)


def _load_meta(path) -> dict:
    """Header metadata of a container without loading its arrays."""
    from repro.core.tracefile import TraceReader

    with TraceReader(path) as reader:
        return reader.meta


def cmd_diagnose(args) -> int:
    """`repro diagnose`: automated outlier classification + attribution."""
    from repro import api

    if args.why is not None:
        result = api.explain(
            args.tracefile,
            args.why,
            core=args.core,
            method=args.method,
            k_sigma=args.k_sigma,
            min_ratio=args.min_ratio,
            reset_value=args.reset_value,
        )
        if args.json:
            import json as _json

            print(_json.dumps(result, indent=2))
            return 0
        status = "OUTLIER" if result["is_outlier"] else "within band"
        print(
            f"item {result['item_id']} (group {result['group']}): "
            f"{result['total_cycles']:,} cy vs baseline "
            f"{result['center_cycles']:,.0f} cy "
            f"({result['deviation']:+.1f} band-widths) — {status}"
        )
        for a in result["attributions"][:5]:
            print(
                f"  {a['fn']}: +{a['excess_cycles']:,} cy "
                f"({a['share']:.0%} of excess)"
            )
        print(result["why"])
        return 0

    meta = _load_meta(args.tracefile)
    if not meta.get("groups"):
        print(
            "note: no group metadata in trace file; treating the whole "
            "trace as one similarity group",
            file=sys.stderr,
        )
    live = 0

    def _on_verdict(v) -> None:
        nonlocal live
        live += 1
        print(f"[online] {v.describe()}", file=sys.stderr)

    report = api.diagnose(
        args.tracefile,
        core=args.core,
        stream=args.stream,
        options=IngestOptions.from_args(args),
        method=args.method,
        k_sigma=args.k_sigma,
        min_ratio=args.min_ratio,
        reset_value=args.reset_value,
        on_verdict=_on_verdict if args.stream else None,
    )
    if args.stream and live:
        print(f"[online] {live} mid-stream verdict(s) above", file=sys.stderr)
    if args.json:
        print(report.to_json())
    else:
        print(report.describe())
    return 0


def cmd_recover(args) -> int:
    """`repro recover`: replay a crashed capture's journal into a container."""
    from repro import api
    from repro.obs.instrumented import publish_quarantine

    report = api.recover(
        args.source,
        out=args.out,
        policy=args.on_corruption,
        salvage_unsealed=args.salvage_unsealed,
    )
    if report.quarantine.defects:
        print(publish_quarantine(report.quarantine), file=sys.stderr)
    print(report.describe())
    return 0


def cmd_diff(args) -> int:
    """`repro diff`: localize a regression between two runs."""
    from repro import api

    base, other = args.base, args.other
    if args.store:
        from repro.service.store import TraceStore

        store = TraceStore(args.store)
        base = store.path_for(base)
        other = store.path_for(other)
    report = api.diff(
        base,
        other,
        core=args.core,
        stream=args.stream,
        options=IngestOptions.from_args(args),
        min_samples=args.min_samples,
        reset_value=args.reset_value,
        allow_degraded_baseline=args.allow_degraded_baseline,
    )
    if report.n_degraded_base or report.n_degraded_other:
        print(
            f"warning: degraded capture — {report.n_degraded_base} baseline / "
            f"{report.n_degraded_other} other item(s) overlap shed or lost "
            "sample spans; confidences are discounted",
            file=sys.stderr,
        )
    if args.json:
        print(report.to_json())
        return 0
    rows = [
        [
            d.fn_name,
            f"{d.base_median_per_item / US:.2f}",
            f"{d.other_median_per_item / US:.2f}",
            f"{d.excess_per_item / US:+.2f}",
            f"{d.confidence:.2f}",
        ]
        for d in report.deltas
    ]
    print(
        format_table(
            ["function", "base (us/item)", "other (us/item)", "delta", "confidence"],
            rows,
            title=(
                f"per-item medians: {report.n_items_base} vs "
                f"{report.n_items_other} item(s)"
            ),
        )
    )
    top = report.top
    if top is None:
        print("\nno per-item regression found")
    else:
        print(
            f"\ntop excess-time contributor: {top.fn_name} "
            f"(+{top.excess_per_item / US:.2f} us/item, "
            f"confidence {top.confidence:.2f})"
        )
    if report.cause != "none":
        total_delta = report.other_median_total - report.base_median_total
        print(
            f"cause: {report.cause} "
            f"(wait {report.wait_excess_per_item / US:+.2f} of "
            f"{total_delta / US:+.2f} us/item growth)"
        )
    return 0


def cmd_serve(args) -> int:
    """`repro serve`: the fleet-scale trace ingestion daemon."""
    import asyncio

    from repro.obs.anomaly import AnomalyConfig
    from repro.service.daemon import DaemonConfig, IngestDaemon
    from repro.service.store import TraceStore

    auth_token = None
    if getattr(args, "auth_token_file", None):
        import pathlib

        auth_token = (
            pathlib.Path(args.auth_token_file).read_text().strip().encode("utf-8")
        )
    config = DaemonConfig(
        capacity=args.capacity,
        credits=args.credits,
        max_frame_bytes=args.max_frame_bytes,
        options=IngestOptions.from_args(args),
        anomaly=AnomalyConfig.from_args(args),
        auth_token=auth_token,
        replicate_to=tuple(args.replicate_to or ()),
        sync_interval_s=args.sync_interval,
        scrub_every=args.scrub_every,
    )
    store = TraceStore(args.store, options=config.options)
    if getattr(args, "replica_of", None):
        # Bootstrap/catch-up: adopt everything the primary store holds
        # before accepting connections, so a promoted or restarted
        # follower opens for business already converged.
        from repro.service.replica import scrub_local

        report = scrub_local(args.replica_of, args.store, ledger=False)
        print(
            f"caught up from {args.replica_of}: "
            f"{report.containers_shipped} container(s), "
            f"{report.segments_shipped} segment(s), "
            f"{report.containers_repaired + report.segments_pruned} repair(s)"
        )

    async def serve() -> int:
        daemon = IngestDaemon(store, config)
        actions = await daemon.start()
        for run, action in sorted(actions.items()):
            print(f"recovered {run}: {action}")
        if args.socket:
            await daemon.serve_unix(args.socket)
            where = f"unix:{args.socket}"
        else:
            await daemon.serve_tcp(args.host, args.port)
            where = f"{args.host}:{args.port}"
        print(f"ingest daemon listening on {where} (store: {store.root})")
        sys.stdout.flush()
        loop = asyncio.get_running_loop()
        stop: asyncio.Future = loop.create_future()

        def _graceful(signum: int) -> None:
            if not stop.done():
                stop.set_result(signum)

        import signal as _signal

        for signum in (_signal.SIGINT, _signal.SIGTERM):
            loop.add_signal_handler(signum, _graceful, signum)
        done, _ = await asyncio.wait(
            {stop, daemon.crashed}, return_when=asyncio.FIRST_COMPLETED
        )
        if daemon.crashed in done and daemon.crashed.exception() is not None:
            raise daemon.crashed.exception()
        signum = stop.result()
        print(
            f"signal {signum}: draining admitted segments and shutting down",
            file=sys.stderr,
        )
        await daemon.shutdown()
        return 0

    return asyncio.run(serve())


def cmd_push(args) -> int:
    """`repro push`: ship a journal or container to the daemon."""
    import pathlib

    from repro.service.client import push_journal

    run_id = args.run
    if run_id is None:
        p = pathlib.Path(args.source)
        run_id = p.stem if p.suffix else p.name
    token = args.token.encode("utf-8") if args.token else None
    if args.follow:
        import asyncio

        from repro.service.client import follow_journal

        if pathlib.Path(args.source).is_file():
            raise ReproError(
                "--follow tails a live journal directory, not a finished "
                "container"
            )

        async def tail():
            import signal as _signal

            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (_signal.SIGINT, _signal.SIGTERM):
                loop.add_signal_handler(signum, stop.set)
            return await follow_journal(
                args.source,
                run_id,
                addr=args.addr,
                stop=stop,
                token=token,
                seed=args.seed,
                reply_timeout=args.timeout,
            )

        report = asyncio.run(tail())
        if not report.committed:
            print(
                f"tail of {report.run} stopped before the capture finalized: "
                f"{report.acked} segment(s) durable on the daemon, run left "
                "open for resume",
                file=sys.stderr,
            )
    else:
        report = push_journal(
            args.source,
            run_id,
            args.addr,
            options=IngestOptions.from_args(args),
            reply_timeout=args.timeout,
            token=token,
            seed=args.seed,
        )
    if report.already_committed:
        print(f"run {report.run} already committed")
    else:
        print(
            f"pushed {report.run}: {report.sent} segment(s) sent "
            f"({report.skipped} skipped, {report.acked} acked, "
            f"{report.resent} resent, {report.credit_stalls} credit "
            f"stall(s))"
        )
    if report.nacked:
        sheds = ", ".join(f"{k}: {v}" for k, v in sorted(report.nacked.items()))
        print(f"backpressure: {sheds}", file=sys.stderr)
    if report.committed_path:
        print(f"committed -> {report.committed_path}")
    return 0 if report.committed else EXIT_TRACE_ERROR


def cmd_runs(args) -> int:
    """`repro runs`: what the store holds (committed, open, quarantined)."""
    from repro.service.store import TraceStore

    store = TraceStore(args.store)
    if args.json:
        import json as _json

        # Stable machine-readable schema: one record per committed run
        # with exactly these keys (pinned by an integration test).
        records = [
            {
                "run": run_id,
                "segments": entry.get("segments"),
                "bytes": entry.get("bytes"),
                "committed_at": entry.get("committed_at"),
                "interrupted": bool(entry.get("interrupted", False)),
            }
            for run_id, entry in store.catalog().items()
        ]
        from repro.analysis.report import envelope

        print(
            _json.dumps(
                envelope({"store": str(store.root), "runs": records}, kind="runs"),
                indent=2,
            )
        )
        return 0
    rows = []
    for run_id, entry in store.catalog().items():
        rows.append(
            [
                run_id,
                "committed",
                str(entry.get("segments", "?")),
                str(entry.get("samples", "?")),
                entry.get("file", "?"),
            ]
        )
    backlog = set(store.compaction_backlog())
    for run_id in store.open_runs():
        state = "finished (compaction pending)" if run_id in backlog else "open"
        rows.append([run_id, state, "-", "-", "-"])
    qdir = store.root / "quarantine"
    n_quarantined = sum(1 for _ in qdir.glob("*.reason")) if qdir.is_dir() else 0
    if not rows:
        print(f"store {store.root}: no runs")
    else:
        print(
            format_table(
                ["run", "state", "segments", "samples", "container"],
                rows,
                title=f"store {store.root}",
            )
        )
    if n_quarantined:
        print(
            f"\n{n_quarantined} quarantined item(s) in {qdir} — inspect "
            "the .reason files",
            file=sys.stderr,
        )
    return 0


def cmd_sync(args) -> int:
    """`repro sync`: anti-entropy scrub between two stores on disk."""
    import json as _json

    from repro.service.replica import scrub_local

    report = scrub_local(
        args.src,
        args.dst,
        verify=not args.no_verify,
        ledger=not args.no_ledger,
    )
    if args.json:
        from repro.analysis.report import envelope

        print(_json.dumps(envelope(report.to_dict(), kind="sync"), indent=2))
        return 0
    repairs = report.containers_repaired + report.segments_pruned
    print(
        f"synced {args.src} -> {args.dst}: {report.runs} run(s) walked, "
        f"{report.confirmed} confirmed, {report.containers_shipped} "
        f"container(s) shipped, {report.segments_shipped} segment(s) "
        f"shipped, {repairs} repair(s)"
    )
    return 0


def cmd_retire(args) -> int:
    """`repro retire`: enforce retention; archive + drop cold runs."""
    import json as _json

    from repro.service.retention import RetentionPolicy, retire_runs
    from repro.service.store import TraceStore

    policy = RetentionPolicy(
        max_age_s=args.max_age_s,
        max_runs=args.max_runs,
        max_total_bytes=args.max_total_bytes,
        quorum=args.quorum,
        archive_dir=args.archive_dir,
    )
    report = retire_runs(
        TraceStore(args.store), policy, dry_run=args.dry_run
    )
    if args.json:
        from repro.analysis.report import envelope

        print(_json.dumps(envelope(report.to_dict(), kind="retire"), indent=2))
        return 0
    verb = "would retire" if report.dry_run else "retired"
    print(
        f"store {args.store}: {verb} {len(report.retired)} run(s)"
        + (f" -> {report.archive}" if report.archive else "")
    )
    for run_id, why in sorted(report.blocked.items()):
        print(f"kept {run_id}: {why} (replication quorum)", file=sys.stderr)
    if report.swept:
        print(
            f"swept {len(report.swept)} orphan dir(s) from a crashed pass",
            file=sys.stderr,
        )
    return 0


def cmd_verify_attribution(args) -> int:
    """`repro verify-attribution`: score the diagnoser on a known-cause grid."""
    import json as _json
    import pathlib

    from repro.testing.matrix import compare_scorecards, run_matrix

    scorecard = run_matrix(grid=args.grid, seed=args.seed)
    print(scorecard.describe())
    if args.json:
        from repro.analysis.report import render_json

        # Envelope at file-write time: Scorecard.to_json itself stays the
        # bare stable dict (its round-trip is pinned by the matrix tests).
        pathlib.Path(args.json).write_text(
            render_json(scorecard.to_stable_dict(), kind="attribution") + "\n"
        )
        print(f"scorecard written to {args.json}")
    failed = False
    if scorecard.hit_rate < args.min_hit_rate:
        print(
            f"FAIL: hit rate {scorecard.hit_rate:.0%} below required "
            f"{args.min_hit_rate:.0%}",
            file=sys.stderr,
        )
        failed = True
    if args.golden:
        golden = _json.loads(pathlib.Path(args.golden).read_text())
        problems = compare_scorecards(scorecard.to_stable_dict(), golden)
        if problems:
            print(
                f"FAIL: scorecard diverges from golden {args.golden}:",
                file=sys.stderr,
            )
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            print(
                "  (if the change is intentional, regenerate with "
                f"`repro verify-attribution --json {args.golden}`)",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"scorecard matches golden {args.golden}")
    return EXIT_REPRO_ERROR if failed else 0


def cmd_profile(args) -> int:
    tf = load_trace(args.tracefile)
    core = _pick_core(tf, args.core)
    from repro.core.profilelib import build_profile
    from repro.core.records import build_windows

    samples = tf.samples(core)
    windows = build_windows(tf.switches(core))
    total = int(samples.ts[-1] - samples.ts[0]) if len(samples) > 1 else 0
    prof = build_profile(samples, tf.symtab, total)
    rows = [
        [r.name, str(r.n_samples), f"{r.est_cycles / US:.1f}", f"{100 * r.fraction:.1f}%"]
        for r in prof
    ]
    print(
        format_table(
            ["function", "samples", "est total (us)", "share"],
            rows,
            title=(
                f"core {core} profile over {len(windows)} items — averaged: "
                "cannot show per-item fluctuations (use `report` for those)"
            ),
        )
    )
    return 0


def cmd_export(args) -> int:
    tf = load_trace(args.tracefile)
    if args.format == "chrome":
        from repro.analysis.export import write_chrome_trace

        traces = {c: tf.integrate(c) for c in tf.sample_cores}
        samples = (
            {c: tf.samples(c) for c in tf.sample_cores} if args.samples else None
        )
        write_chrome_trace(args.out, traces, samples)
        print(f"wrote {args.out} — load it in chrome://tracing or Perfetto")
    else:  # csv
        from repro.analysis.export import to_csv

        core = _pick_core(tf, args.core)
        with open(args.out, "w") as fh:
            fh.write(to_csv(tf.integrate(core)))
        print(f"wrote {args.out}")
    return 0


def cmd_monitor(args) -> int:
    import pathlib

    from repro.obs.monitor import run_monitor

    # Fail fast, before a dashboard thread spins up: a missing or
    # unreadable trace file is an invocation problem (exit 2), not a
    # trace-data problem (exit 3).
    path = pathlib.Path(args.tracefile)
    if not path.is_file():
        raise ReproError(f"cannot monitor {path}: no such trace file")
    try:
        with open(path, "rb"):
            pass
    except OSError as exc:
        raise ReproError(f"cannot monitor {path}: {exc}")
    return run_monitor(args.tracefile, args)


def cmd_fleet(args) -> int:
    """`repro fleet`: health rollup of every committed run in a store."""
    from repro.obs.heatmap import fleet_rollup, render_fleet
    from repro.service.store import TraceStore

    store = TraceStore(args.store)
    rows = fleet_rollup(store)
    if args.json:
        import json as _json

        from repro.analysis.report import envelope

        print(
            _json.dumps(
                envelope({"store": str(store.root), "runs": rows}, kind="fleet"),
                indent=2,
            )
        )
        return 0
    print(render_fleet(rows, title=f"fleet rollup: {store.root}"))
    flagged = [r for r in rows if r.get("incident") or r.get("anomalies")]
    if flagged:
        print(
            f"\n{len(flagged)} run(s) with anomalies or incidents — "
            "inspect with `repro monitor <container>`",
            file=sys.stderr,
        )
    return 0


def cmd_callgraph(args) -> int:
    tf = load_trace(args.tracefile)
    core = _pick_core(tf, args.core)
    guess = guess_call_edges(tf.samples(core), tf.switches(core), tf.symtab)
    if args.dot:
        print(guess.dot())
    else:
        rows = [
            [g.caller, g.callee, str(g.occurrences)] for g in guess.as_list()
        ]
        print(
            format_table(
                ["caller (guessed)", "callee", "occurrences"],
                rows,
                title="call edges guessed from sample order (Section V-B2 — "
                "guesses, not ground truth)",
            )
        )
    return 0


#: Exit-code contract, shown in `repro report --help` and the README.
EXIT_CODE_EPILOG = """\
exit codes:
  0  success
  2  usage or package error (bad invocation, unknown workload, ...)
  3  trace-data error (corruption, malformed records, failed shards)
"""


def _add_ingest_args(
    p: argparse.ArgumentParser, *, default_policy: str = "strict"
) -> None:
    """The streaming-ingestion flags, one spelling for every command.

    Defaults come from :class:`~repro.core.options.IngestOptions`, and
    ``IngestOptions.from_args`` turns the parsed namespace back into the
    dataclass — flag names and Python parameter names cannot drift.
    """
    d = IngestOptions()
    p.add_argument(
        "--chunk-size",
        type=int,
        default=d.chunk_size,
        help="stream: samples per chunk",
    )
    p.add_argument(
        "--pool",
        choices=["auto", "thread", "process"],
        default=d.pool,
        help="stream: worker backend (auto = processes unless single-CPU)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=d.workers,
        help="stream: integrate core-shards with this many workers",
    )
    p.add_argument(
        "--on-corruption",
        choices=list(POLICIES),
        default=default_policy,
        help=(
            "stream: what a failed integrity check does — strict raises, "
            "quarantine skips the damaged chunk, repair drops only the "
            "offending records (coverage is reported either way)"
        ),
    )
    p.add_argument(
        "--shard-timeout",
        type=float,
        default=d.shard_timeout,
        help="stream: seconds before a parallel core-shard is declared hung",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=d.max_retries,
        help="stream: retries for timed-out or crashed shards",
    )


def _add_anomaly_args(p: argparse.ArgumentParser) -> None:
    """Online invariant-checker flags (mirrors AnomalyConfig.from_args)."""
    p.add_argument(
        "--anomaly",
        action="store_true",
        help="enable the online invariant checkers (off by default: zero cost)",
    )
    p.add_argument(
        "--anomaly-checkers",
        default=None,
        metavar="KINDS",
        help=(
            "comma-separated checker kinds to run (default: all; see "
            "`repro.obs.anomaly.ALL_KINDS`)"
        ),
    )
    p.add_argument(
        "--anomaly-log-capacity",
        type=int,
        default=None,
        help="ring capacity of the anomaly event log (default 256)",
    )
    p.add_argument(
        "--anomaly-severity",
        default=None,
        choices=["info", "warning", "critical"],
        help="flight-recorder trigger severity (default critical)",
    )


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="write the tracer's own metrics here (.json, or Prometheus text)",
    )
    p.add_argument(
        "--trace-spans",
        metavar="PATH",
        default=None,
        help="write a Chrome trace of the tracer's own pipeline stages (.json)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a traced workload, write a trace file")
    p_run.add_argument("--workload", choices=list(WORKLOADS), required=True)
    p_run.add_argument("--out", required=True, help="output trace file (.npz)")
    p_run.add_argument("--reset-value", type=int, default=8000)
    p_run.add_argument("--event", choices=sorted(EVENTS), default="uops")
    p_run.add_argument("--items", type=int, default=60, help="workload size")
    p_run.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "seed the workload's randomness (one numpy Generator threads "
            "through it) for a bit-reproducible run; recorded in metadata"
        ),
    )
    p_run.add_argument("--full-rules", action="store_true", help="ACL: the 50k-rule Table III set")
    p_run.add_argument("--double-buffered", action="store_true")
    p_run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="write the v2 chunked layout with this many samples per chunk",
    )
    p_run.add_argument(
        "--uncompressed",
        action="store_true",
        help="store raw (no zlib) — for ingest-rate experiments",
    )
    p_run.add_argument(
        "--no-checksums",
        action="store_true",
        help="omit the v3 per-chunk CRCs (bit rot then goes undetected)",
    )
    p_run.add_argument(
        "--durable",
        action="store_true",
        help=(
            "record through the crash-safe journal: a kill at any instant "
            "leaves a journal `repro recover` turns into a valid container"
        ),
    )
    p_run.add_argument(
        "--checkpoint-marks",
        type=int,
        default=256,
        help="durable: seal a checkpoint every N switch marks",
    )
    p_run.add_argument(
        "--overload",
        action="store_true",
        help=(
            "overload-graceful capture: shed samples instead of stalling "
            "on PEBS buffer overrun, adaptive reset-value backoff"
        ),
    )
    _add_anomaly_args(p_run)
    p_run.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help=(
            "arm the flight recorder: recent capture checkpoints ride a "
            "bounded in-memory ring, and an anomaly at or above "
            "--anomaly-severity seals it into a tagged incident bundle "
            "here (requires --anomaly)"
        ),
    )
    p_run.add_argument(
        "--flight-capacity",
        type=int,
        default=16,
        help="flight ring capacity in sealed segments (default 16)",
    )
    _add_telemetry_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_rec = sub.add_parser(
        "recover",
        help="replay a crashed capture's journal into a valid trace file",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_rec.add_argument(
        "source",
        help="journal directory (<out>.npz.journal) or the container path",
    )
    p_rec.add_argument(
        "--out",
        default=None,
        help="where to write the container (default: the journaled path)",
    )
    p_rec.add_argument(
        "--on-corruption",
        choices=["strict", "quarantine"],
        default="quarantine",
        help=(
            "what a damaged sealed segment does — strict raises, "
            "quarantine salvages the rest and reports the loss"
        ),
    )
    p_rec.add_argument(
        "--salvage-unsealed",
        action="store_true",
        help=(
            "also admit segments that were fully written but never "
            "committed to the journal (default: report them as lost)"
        ),
    )
    p_rec.set_defaults(func=cmd_recover)

    p_info = sub.add_parser("info", help="show trace file contents")
    p_info.add_argument("tracefile")
    p_info.set_defaults(func=cmd_info)

    p_rep = sub.add_parser(
        "report",
        help="per-item per-function breakdown",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_rep.add_argument("tracefile")
    p_rep.add_argument("--core", type=int, default=None)
    p_rep.add_argument("--diagnose", action="store_true")
    p_rep.add_argument("--threshold", type=float, default=1.5)
    p_rep.add_argument(
        "--item", type=int, default=None, help="render one item's sample timeline"
    )
    p_rep.add_argument(
        "--stream",
        action="store_true",
        help="chunked, bounded-memory ingestion (online estimator rides along)",
    )
    _add_ingest_args(p_rep)
    _add_telemetry_args(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_diag = sub.add_parser(
        "diagnose",
        help="automated outlier classification + per-function attribution",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_diag.add_argument("tracefile")
    p_diag.add_argument("--core", type=int, default=None)
    p_diag.add_argument(
        "--stream",
        action="store_true",
        help="chunked ingestion; emit verdicts on stderr as items complete",
    )
    p_diag.add_argument(
        "--method",
        choices=["mad", "percentile"],
        default="mad",
        help="baseline band: median±k·(1.4826·MAD), or a percentile band",
    )
    p_diag.add_argument(
        "--k-sigma",
        type=float,
        default=3.5,
        help="band width in robust sigmas",
    )
    p_diag.add_argument(
        "--min-ratio",
        type=float,
        default=1.2,
        help="band upper edge is at least this multiple of the group median",
    )
    p_diag.add_argument(
        "--reset-value",
        type=int,
        default=None,
        help="sampling period R for confidence (default: from trace metadata)",
    )
    p_diag.add_argument("--json", action="store_true", help="machine-readable output")
    p_diag.add_argument(
        "--why",
        type=int,
        default=None,
        metavar="ITEM",
        help=(
            "explain one item: its verdict plus the blocked-by waiting "
            "chain (core -> queue/lock -> the function that held it up)"
        ),
    )
    _add_ingest_args(p_diag)
    _add_telemetry_args(p_diag)
    p_diag.set_defaults(func=cmd_diagnose)

    p_diff = sub.add_parser(
        "diff",
        help="localize a regression between two runs of the same workload",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_diff.add_argument("base", help="baseline trace file")
    p_diff.add_argument("other", help="regressed/suspect trace file")
    p_diff.add_argument("--core", type=int, default=None)
    p_diff.add_argument(
        "--stream",
        action="store_true",
        help="ingest both runs chunked instead of loading them whole",
    )
    p_diff.add_argument(
        "--min-samples",
        type=int,
        default=2,
        help="samples needed before a per-(item, function) estimate counts",
    )
    p_diff.add_argument(
        "--reset-value",
        type=int,
        default=None,
        help="sampling period R for confidence (default: from trace metadata)",
    )
    p_diff.add_argument("--json", action="store_true", help="machine-readable output")
    p_diff.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "resolve base/other as run ids in this ingestion store "
            "(see `repro serve`) instead of file paths"
        ),
    )
    p_diff.add_argument(
        "--allow-degraded-baseline",
        action="store_true",
        help=(
            "force the comparison even when every baseline item overlaps "
            "shed or lost sample spans (normally refused: missing samples "
            "would read as the regression's opposite)"
        ),
    )
    _add_ingest_args(p_diff)
    _add_telemetry_args(p_diff)
    p_diff.set_defaults(func=cmd_diff)

    p_serve = sub.add_parser(
        "serve",
        help="run the trace ingestion daemon over a multi-run store",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_serve.add_argument(
        "--store", required=True, help="store root directory (created if missing)"
    )
    p_serve.add_argument(
        "--socket", default=None, help="listen on this unix socket path"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7071, help="TCP port (ignored with --socket)"
    )
    p_serve.add_argument(
        "--capacity",
        type=int,
        default=128,
        help="admission queue depth — segments held in RAM at most",
    )
    p_serve.add_argument(
        "--credits",
        type=int,
        default=8,
        help="per-producer credit window (max unacked segments in flight)",
    )
    p_serve.add_argument(
        "--max-frame-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="reject any frame larger than this",
    )
    p_serve.add_argument(
        "--replicate-to",
        action="append",
        default=[],
        metavar="ADDR",
        help=(
            "replicate committed runs and sealed segments to the follower "
            "daemon at this address (repeatable; unix:<path> or host:port)"
        ),
    )
    p_serve.add_argument(
        "--replica-of",
        default=None,
        metavar="STORE",
        help=(
            "before serving, catch this store up from the given primary "
            "store directory (bootstrap a follower / promote after a "
            "primary loss)"
        ),
    )
    p_serve.add_argument(
        "--auth-token-file",
        default=None,
        help=(
            "require the HMAC challenge/response handshake with the shared "
            "secret read from this file (also used for outbound "
            "replication); default: auth off"
        ),
    )
    p_serve.add_argument(
        "--sync-interval",
        type=float,
        default=30.0,
        help="seconds between replication rounds (commits also trigger one)",
    )
    p_serve.add_argument(
        "--scrub-every",
        type=int,
        default=8,
        help="every Nth replication round re-verifies follower bytes by crc",
    )
    _add_ingest_args(p_serve)
    _add_anomaly_args(p_serve)
    _add_telemetry_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_push = sub.add_parser(
        "push",
        help="push a recording journal or finished container to the daemon",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_push.add_argument(
        "source", help="journal directory (crashed/open capture) or .npz container"
    )
    p_push.add_argument(
        "--addr",
        required=True,
        help="daemon address: unix:<path> or host:port",
    )
    p_push.add_argument(
        "--run",
        default=None,
        help="run id in the store (default: derived from the source name)",
    )
    p_push.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to wait for each daemon reply",
    )
    p_push.add_argument(
        "--follow",
        action="store_true",
        help=(
            "tail a live durable capture's journal: push each segment as "
            "it seals, FINISH when the capture finalizes, stop on SIGINT"
        ),
    )
    p_push.add_argument(
        "--token",
        default=None,
        help="shared secret answering the daemon's auth challenge",
    )
    p_push.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for the jittered backpressure backoff (tests)",
    )
    _add_ingest_args(p_push)
    p_push.set_defaults(func=cmd_push)

    p_runs = sub.add_parser(
        "runs", help="list the runs held by an ingestion store"
    )
    p_runs.add_argument("--store", required=True, help="store root directory")
    p_runs.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable output: one record per committed run with "
            "run, segments, bytes, committed_at, interrupted"
        ),
    )
    p_runs.set_defaults(func=cmd_runs)

    p_sync = sub.add_parser(
        "sync",
        help="anti-entropy scrub: diff two stores and repair the follower",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_sync.add_argument(
        "--from",
        dest="src",
        required=True,
        metavar="STORE",
        help="source (primary) store root",
    )
    p_sync.add_argument(
        "--to",
        dest="dst",
        required=True,
        metavar="STORE",
        help="destination (follower) store root, repaired in place",
    )
    p_sync.add_argument(
        "--no-verify",
        action="store_true",
        help="skip crc re-verification of runs both stores already hold",
    )
    p_sync.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record confirmations in the source's replication ledger",
    )
    p_sync.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_sync.set_defaults(func=cmd_sync)

    p_retire = sub.add_parser(
        "retire",
        help="enforce retention: archive cold committed runs, drop them",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_retire.add_argument("--store", required=True, help="store root directory")
    p_retire.add_argument(
        "--max-age",
        dest="max_age_s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="retire runs committed longer ago than this",
    )
    p_retire.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="keep at most this many committed runs (oldest retire first)",
    )
    p_retire.add_argument(
        "--max-bytes",
        dest="max_total_bytes",
        type=int,
        default=None,
        help="keep committed containers within this byte budget",
    )
    p_retire.add_argument(
        "--quorum",
        type=int,
        default=0,
        help=(
            "replica confirmations (replication ledger) a run needs before "
            "it may be retired; under-replicated runs are never touched"
        ),
    )
    p_retire.add_argument(
        "--archive-dir",
        default=None,
        help="where archives land (default: <store>/archive)",
    )
    p_retire.add_argument(
        "--dry-run",
        action="store_true",
        help="plan and report without touching the store",
    )
    p_retire.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_retire.set_defaults(func=cmd_retire)

    p_ver = sub.add_parser(
        "verify-attribution",
        help=(
            "run the known-root-cause interference matrix and score the "
            "diagnoser's attributions against ground truth"
        ),
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_ver.add_argument(
        "--grid",
        default="smoke",
        help="cell grid to run (default: the checked-in CI smoke grid)",
    )
    p_ver.add_argument("--seed", type=int, default=0, help="matrix workload seed")
    p_ver.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the scorecard JSON here (also how the golden is regenerated)",
    )
    p_ver.add_argument(
        "--golden",
        metavar="PATH",
        default=None,
        help="compare against a checked-in scorecard; any divergence fails",
    )
    p_ver.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.9,
        help="fail below this fraction of correctly-attributed cells",
    )
    p_ver.set_defaults(func=cmd_verify_attribution)

    p_mon = sub.add_parser(
        "monitor", help="live dashboard while stream-ingesting a trace file"
    )
    p_mon.add_argument("tracefile")
    p_mon.add_argument(
        "--interval", type=float, default=0.5, help="seconds between repaints"
    )
    _add_ingest_args(p_mon, default_policy="quarantine")
    _add_anomaly_args(p_mon)
    p_mon.add_argument(
        "--no-heatmap",
        action="store_true",
        help="skip the per-core × time heatmap after ingest finishes",
    )
    p_mon.add_argument(
        "--buckets",
        type=int,
        default=48,
        help="heatmap time buckets (terminal columns used)",
    )
    p_mon.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="also write the final metrics here (.json, or Prometheus text)",
    )
    p_mon.set_defaults(func=cmd_monitor)

    p_fleet = sub.add_parser(
        "fleet",
        help="health rollup of every committed run in an ingestion store",
        epilog=EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_fleet.add_argument("--store", required=True, help="store root directory")
    p_fleet.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_fleet.set_defaults(func=cmd_fleet)

    p_exp = sub.add_parser("export", help="export to viewer formats")
    p_exp.add_argument("tracefile")
    p_exp.add_argument("--format", choices=["chrome", "csv"], default="chrome")
    p_exp.add_argument("--out", required=True)
    p_exp.add_argument("--core", type=int, default=None, help="csv: which core")
    p_exp.add_argument(
        "--samples", action="store_true", help="chrome: include raw sample instants"
    )
    p_exp.set_defaults(func=cmd_export)

    p_prof = sub.add_parser("profile", help="whole-run averaged profile")
    p_prof.add_argument("tracefile")
    p_prof.add_argument("--core", type=int, default=None)
    p_prof.set_defaults(func=cmd_profile)

    p_cg = sub.add_parser("callgraph", help="guess call edges from sample order")
    p_cg.add_argument("tracefile")
    p_cg.add_argument("--core", type=int, default=None)
    p_cg.add_argument("--dot", action="store_true", help="emit graphviz")
    p_cg.set_defaults(func=cmd_callgraph)
    return parser


#: Exit codes: argparse uses 2 for usage errors, so package errors get
#: distinct codes — trace-data problems (corruption, malformed records,
#: failed shards) exit 3, any other package error exits 2.  Scripts
#: driving the CLI can tell "your data is damaged" from "your invocation
#: is wrong" without parsing stderr.
EXIT_REPRO_ERROR = 2
EXIT_TRACE_ERROR = 3


@contextlib.contextmanager
def _telemetry_scope(args):
    """Install registry/recorder per the --telemetry/--trace-spans flags.

    Dumps land on exit even when the command fails partway: a corrupt
    trace's partial telemetry is exactly what one wants to look at.
    Commands without the flags (and `monitor`, which manages its own
    registry) pass through untouched.
    """
    telemetry = getattr(args, "telemetry", None) if args.command != "monitor" else None
    spans_out = getattr(args, "trace_spans", None)
    if not telemetry and not spans_out:
        yield
        return
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.spans import SpanRecorder, use_recorder

    with contextlib.ExitStack() as stack:
        reg = None
        rec = None
        if telemetry:
            reg = MetricsRegistry()
            stack.enter_context(use_registry(reg))
        if spans_out:
            rec = SpanRecorder()
            stack.enter_context(use_recorder(rec))
        try:
            yield
        finally:
            if reg is not None:
                reg.dump(telemetry)
            if rec is not None:
                rec.write(spans_out)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with _telemetry_scope(args):
            return args.func(args)
    except SignalInterrupt as exc:
        # A trapped signal that unwound past the graceful paths: exit
        # with the shell's death-by-signal convention.
        return exit_status(exc)
    except TraceError as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return EXIT_TRACE_ERROR
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_REPRO_ERROR


if __name__ == "__main__":
    sys.exit(main())
