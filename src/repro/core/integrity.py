"""Corruption policies, quarantine accounting, and coverage metrics.

Real PEBS deployments produce exactly the failures the paper's hybrid
tracer must survive: dropped samples when the PEBS buffer overflows,
truncated shards when a pinned worker dies mid-run, bit rot on the SSD
the raw stream was dumped to, and clock skew between cores.  This module
is the shared vocabulary the ingestion pipeline uses to talk about those
failures:

* a **corruption policy** selects what happens when stored data fails an
  integrity check — ``strict`` raises (the historical behavior),
  ``quarantine`` skips the offending chunk and records it, ``repair``
  drops only the offending records and keeps the rest;
* a :class:`Defect` describes one detected fault, a :class:`QuarantineLog`
  collects them for the run;
* :class:`CoverageStats` turns the accounting into the per-core /
  per-item coverage metric every degraded report is annotated with, so a
  user can always see what fraction of windows were diagnosed from
  complete data.

Nothing here imports the trace-file or integration layers; both import
this module, which keeps the dependency graph acyclic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import TraceError

#: Recognised corruption policies, in increasing order of leniency.
POLICY_STRICT = "strict"
POLICY_QUARANTINE = "quarantine"
POLICY_REPAIR = "repair"
POLICIES = (POLICY_STRICT, POLICY_QUARANTINE, POLICY_REPAIR)

#: Defect kinds a :class:`Defect` may carry.
KIND_CHECKSUM = "checksum"      # stored crc32 does not match the member bytes
KIND_LENGTH = "length"          # ts/ip/tag columns of one chunk disagree
KIND_ORDER = "order"            # timestamps out of order (within or across chunks)
KIND_MISSING = "missing"        # a chunk member is absent (truncated container)
KIND_UNREADABLE = "unreadable"  # a member exists but cannot be decoded
KIND_SWITCH = "switch"          # switch marks dropped by lenient pairing
KIND_SHARD = "shard"            # a whole core-shard failed permanently
KIND_UNSEALED = "unsealed"      # a recording segment was written but never sealed


def check_policy(policy: str) -> str:
    """Validate a policy string; returns it for chaining."""
    if policy not in POLICIES:
        raise TraceError(
            f"on_corruption must be one of {', '.join(POLICIES)}, got {policy!r}"
        )
    return policy


def member_crc(arr: np.ndarray) -> int:
    """crc32 of a member's raw bytes — the v3 container's checksum field."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


@dataclass(frozen=True)
class Defect:
    """One detected fault.  Picklable: shards report defects across processes.

    ``records_lost`` counts samples for sample-chunk defects and marks for
    switch defects; ``-1`` means the loss could not be measured (e.g. a
    missing member in a pre-v3 container that stores no per-chunk row
    counts).  ``ts_lo``/``ts_hi`` bound the affected timestamp span when
    it is known, which is what lets coverage name the affected items; a
    ``None`` bound is unbounded on that side.
    """

    core: int
    kind: str
    member: str | None
    detail: str
    records_lost: int = 0
    ts_lo: int | None = None
    ts_hi: int | None = None

    def describe(self) -> str:
        where = f"core {self.core}" + (f" [{self.member}]" if self.member else "")
        lost = (
            "loss unknown"
            if self.records_lost < 0
            else f"{self.records_lost} record(s) lost"
        )
        return f"{where}: {self.kind} — {self.detail} ({lost})"


class QuarantineLog:
    """Append-only collection of the defects one ingestion run survived."""

    def __init__(self) -> None:
        self.defects: list[Defect] = []

    def record(self, defect: Defect) -> None:
        self.defects.append(defect)

    def extend(self, defects: list[Defect]) -> None:
        self.defects.extend(defects)

    def __bool__(self) -> bool:
        return bool(self.defects)

    def __len__(self) -> int:
        return len(self.defects)

    def for_core(self, core: int) -> list[Defect]:
        return [d for d in self.defects if d.core == core]

    def _lost(self, kinds: tuple[str, ...]) -> int:
        return sum(
            d.records_lost for d in self.defects
            if d.kind in kinds and d.records_lost > 0
        )

    @property
    def samples_lost(self) -> int:
        return self._lost(
            (KIND_CHECKSUM, KIND_LENGTH, KIND_ORDER, KIND_MISSING,
             KIND_UNREADABLE, KIND_UNSEALED)
        )

    @property
    def marks_lost(self) -> int:
        return self._lost((KIND_SWITCH,))

    def summary(self) -> str:
        """Human-readable run summary (the CLI prints this to stderr)."""
        if not self.defects:
            return "quarantine: no defects"
        lines = [
            f"quarantine: {len(self.defects)} defect(s), "
            f"{self.samples_lost} sample(s) and {self.marks_lost} switch mark(s) lost"
        ]
        lines.extend("  " + d.describe() for d in self.defects)
        return "\n".join(lines)


@dataclass
class CoverageStats:
    """Per-core degradation accounting behind the coverage metric.

    ``degraded_items`` are items whose windows overlap lost data — their
    estimates were diagnosed from incomplete evidence.  ``unknown_extent``
    is set when data was lost whose timestamp span could not be recovered
    (then no per-item statement is possible and every item on the core is
    treated as degraded).
    """

    core: int
    samples_kept: int = 0
    samples_dropped: int = 0
    chunks_kept: int = 0
    chunks_dropped: int = 0
    chunks_repaired: int = 0
    switch_marks: int = 0
    switch_marks_dropped: int = 0
    degraded_items: tuple[int, ...] = ()
    unknown_extent: bool = False
    shard_failed: bool = False
    retries: int = 0

    @property
    def sample_coverage(self) -> float:
        """Fraction of stored samples that survived into the integration."""
        if self.shard_failed:
            return 0.0
        total = self.samples_kept + self.samples_dropped
        return self.samples_kept / total if total else 1.0

    @property
    def window_coverage(self) -> float:
        """Fraction of switch marks that paired into usable windows."""
        if self.shard_failed:
            return 0.0
        if self.switch_marks == 0:
            return 1.0
        return 1.0 - self.switch_marks_dropped / self.switch_marks

    @property
    def complete(self) -> bool:
        """True iff every window on this core was diagnosed from complete data."""
        return (
            not self.shard_failed
            and not self.unknown_extent
            and self.samples_dropped == 0
            and self.switch_marks_dropped == 0
        )

    def is_item_complete(self, item_id: int) -> bool:
        """Whether one item's diagnosis used only complete data."""
        if self.shard_failed or self.unknown_extent:
            return False
        return item_id not in self.degraded_items

    def mark_degraded(self, items) -> None:
        """Add item ids to the degraded set (keeps the tuple sorted-unique)."""
        merged = set(self.degraded_items)
        merged.update(int(i) for i in items)
        self.degraded_items = tuple(sorted(merged))

    def copy(self) -> "CoverageStats":
        return replace(self)


def degraded_items_for_span(
    windows, ts_lo: int | None, ts_hi: int | None
) -> list[int]:
    """Item ids whose windows intersect a lost [ts_lo, ts_hi] span.

    ``windows`` is a :class:`~repro.core.records.WindowColumns`; ``None``
    bounds are unbounded, matching :class:`Defect` span semantics.
    """
    if len(windows) == 0:
        return []
    mask = np.ones(len(windows), dtype=bool)
    if ts_lo is not None:
        mask &= windows.t_end >= ts_lo
    if ts_hi is not None:
        mask &= windows.t_start <= ts_hi
    return sorted(set(windows.item_id[mask].tolist()))


# Re-exported so users configuring pipelines only need this module.
__all__ = [
    "POLICIES",
    "POLICY_STRICT",
    "POLICY_QUARANTINE",
    "POLICY_REPAIR",
    "check_policy",
    "member_crc",
    "KIND_UNSEALED",
    "Defect",
    "QuarantineLog",
    "CoverageStats",
    "degraded_items_for_span",
]
