"""Full (per-function) instrumentation: the gprof/Vampir-style baseline.

A marking call at *every* instrumented function entry and exit (Section
II-C).  For µs-scale functions this perturbs the measurement badly — which
is the paper's motivation — and we charge that cost faithfully.  The
tracer can also be restricted to a set of functions, which models the
paper's Fig 9 "baseline" (instrumenting only ``rte_acl_classify`` because
there the bottleneck is known a-priori).

Produces exact per-(item, function) elapsed times by pairing entry/exit
events and assigning each interval to the enclosing item window.  Elapsed
time is *inclusive* (callees count), matching the paper's definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrument import MarkingTracer
from repro.core.records import build_windows
from repro.errors import TraceError
from repro.machine.core import SimCore
from repro.runtime.actions import SwitchKind
from repro.runtime.thread import AppThread
from repro.units import ns_to_cycles


@dataclass(frozen=True)
class FunctionInterval:
    """One paired entry/exit of a function on a core."""

    fn_ip: int
    t_enter: int
    t_leave: int

    @property
    def duration(self) -> int:
        return self.t_leave - self.t_enter


class FullInstrumentationTracer(MarkingTracer):
    """Marking function at every function entry/exit (plus item switches).

    Parameters
    ----------
    mark_ip:
        Address of the marking function (shared by item and function marks).
    fn_cost_ns:
        Cost of one function-boundary marking call (entry or exit).
    only_fns:
        Entry-point ips of the functions to instrument; None instruments
        every function the application marks.
    """

    def __init__(
        self,
        mark_ip: int,
        cost_ns: float = 200.0,
        fn_cost_ns: float = 200.0,
        freq_ghz: float = 3.0,
        only_fns: set[int] | None = None,
    ) -> None:
        super().__init__(mark_ip=mark_ip, cost_ns=cost_ns, freq_ghz=freq_ghz)
        if fn_cost_ns < 0:
            raise ValueError(f"fn_cost_ns must be >= 0, got {fn_cost_ns}")
        self.fn_cost_cycles = ns_to_cycles(fn_cost_ns, freq_ghz)
        self.only_fns = only_fns
        self._events: dict[int, list[tuple[int, int, bool]]] = {}
        self.fn_calls = 0

    def _instrumented(self, fn_ip: int) -> bool:
        return self.only_fns is None or fn_ip in self.only_fns

    def _log(self, core: SimCore, fn_ip: int, is_enter: bool) -> tuple[int, int]:
        self._events.setdefault(core.core_id, []).append((core.clock, fn_ip, is_enter))
        self.fn_calls += 1
        return (self.fn_cost_cycles, self.mark_ip)

    # -- InstrumentationHook -------------------------------------------------
    def on_fn_enter(self, thread: AppThread, core: SimCore, fn_ip: int) -> tuple[int, int]:
        if not self._instrumented(fn_ip):
            return (0, 0)
        return self._log(core, fn_ip, True)

    def on_fn_leave(self, thread: AppThread, core: SimCore, fn_ip: int) -> tuple[int, int]:
        if not self._instrumented(fn_ip):
            return (0, 0)
        return self._log(core, fn_ip, False)

    # -- analysis side ---------------------------------------------------------
    def function_intervals(self, core_id: int) -> list[FunctionInterval]:
        """Pair entry/exit events into intervals (handles recursion)."""
        stacks: dict[int, list[int]] = {}
        out: list[FunctionInterval] = []
        for ts, fn_ip, is_enter in self._events.get(core_id, []):
            if is_enter:
                stacks.setdefault(fn_ip, []).append(ts)
            else:
                stack = stacks.get(fn_ip)
                if not stack:
                    raise TraceError(f"exit of fn {fn_ip:#x} at {ts} without entry")
                out.append(FunctionInterval(fn_ip, stack.pop(), ts))
        dangling = {ip: s for ip, s in stacks.items() if s}
        if dangling:
            raise TraceError(f"functions never exited: {sorted(dangling)}")
        out.sort(key=lambda iv: iv.t_enter)
        return out

    def elapsed_by_item(self, core_id: int) -> dict[tuple[int, int], int]:
        """Exact inclusive elapsed cycles per ``(item_id, fn_ip)``.

        A function called several times within one item contributes the sum
        of its intervals.  Intervals outside any item window are attributed
        to item -1.
        """
        windows = build_windows(self.records_for_core(core_id))
        totals: dict[tuple[int, int], int] = {}
        wi = 0
        for iv in self.function_intervals(core_id):
            # Windows are treated half-open [start, end) for assignment so
            # an interval starting exactly where item N ends and item N+1
            # begins goes to item N+1 (marks precede function entries in
            # program order at equal timestamps).
            while wi < len(windows) and windows[wi].t_end <= iv.t_enter:
                wi += 1
            if wi < len(windows) and windows[wi].t_start <= iv.t_enter < windows[wi].t_end:
                item = windows[wi].item_id
            else:
                item = -1
            key = (item, iv.fn_ip)
            totals[key] = totals.get(key, 0) + iv.duration
        return totals
