"""Supervised worker pools: the shard-execution layer under ingestion.

Split out of :mod:`repro.core.streaming` so the same supervision
discipline — fresh pool per retry round, per-shard timeouts, exponential
backoff, permanent-vs-retryable classification — serves every consumer
of parallel or fallible work, not just container ingestion.  Users:

* :func:`repro.core.streaming.ingest_trace` fans core-shards out through
  :func:`run_supervised`;
* the ingestion daemon (:mod:`repro.service.daemon`) drives run
  compaction through :func:`supervised_call`, so a transiently failing
  compaction retries with backoff while a deterministic failure (a
  corrupt journal) fails fast instead of looping.

The classification rule is shared: a :class:`~repro.errors.TraceError`
is *permanent* — it is deterministic, the stored bytes will not change
on retry — while timeouts and infrastructure failures (a worker killed
by the OOM killer, a transient ``OSError``) are *retryable*.
"""

from __future__ import annotations

import gc
import multiprocessing
import multiprocessing.pool
import os
import time
from typing import Callable, TypeVar

from repro.errors import TraceError
from repro.obs.instrumented import pipeline as _obs
from repro.obs.spans import span

T = TypeVar("T")


def use_threads(pool: str) -> bool:
    """Resolve a pool spelling ("auto"/"thread"/"process") to a backend."""
    if pool == "thread":
        return True
    if pool == "process":
        return False
    if pool == "auto":
        # With a single CPU the process pool is pure overhead: forking,
        # shipping shard results between address spaces, and faulting in
        # copy-on-write pages can never be repaid by parallelism that
        # does not exist.  Threads share the address space, and the hot
        # numpy ops release the GIL, so they also scale on real hosts.
        return (os.cpu_count() or 1) < 2
    raise TraceError(f"pool must be 'auto', 'thread' or 'process', got {pool!r}")


def make_pool(n_procs: int, threads: bool):
    """Build a worker pool; returns (pool, cleanup) — cleanup kills it.

    ``cleanup`` uses ``terminate()`` rather than ``close()``/``join()``
    deliberately: a hung worker never finishes its task, so a graceful
    shutdown would hang the parent with it.  Terminating a process pool
    kills the workers outright; terminating a ThreadPool abandons its
    daemon threads (they cannot be killed, but they no longer block
    anything).
    """
    if threads:
        p = multiprocessing.pool.ThreadPool(processes=n_procs)
        return p, p.terminate
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        ctx = multiprocessing.get_context("spawn")
    # Freeze the parent heap before forking: without this, the first
    # garbage collection in each child touches every inherited object and
    # copy-on-write duplicates the whole parent heap per worker.
    gc.collect()
    gc.freeze()
    p = ctx.Pool(processes=n_procs)

    def cleanup() -> None:
        p.terminate()
        gc.unfreeze()

    return p, cleanup


def shard_round(
    jobs: list[tuple[int, tuple]],
    n_procs: int,
    threads: bool,
    shard_timeout: float | None,
    shard_fn,
) -> tuple[dict[int, tuple], dict[int, str], dict[int, str]]:
    """Run one attempt of every shard job in a fresh pool.

    Returns ``(done, retryable, permanent)`` keyed by core.  A
    :class:`~repro.errors.TraceError` is *permanent*: it is deterministic
    (the stored bytes will not change on retry).  Timeouts and anything
    else (a worker killed by the OOM killer surfaces as a pool error) are
    *retryable*.  The pool is terminated at the end of the round either
    way, which is what reclaims workers hung past their timeout.
    """
    done: dict[int, tuple] = {}
    retryable: dict[int, str] = {}
    permanent: dict[int, str] = {}
    ins = _obs()
    t_round = time.perf_counter()
    pool_obj, cleanup = make_pool(n_procs, threads)
    try:
        handles = [
            (core, pool_obj.apply_async(shard_fn, args)) for core, args in jobs
        ]
        for core, handle in handles:
            try:
                done[core] = handle.get(shard_timeout)
                ins.shard_wait.observe(time.perf_counter() - t_round)
            except multiprocessing.TimeoutError:
                retryable[core] = (
                    f"shard for core {core} exceeded its {shard_timeout:g}s timeout"
                )
            except TraceError as exc:
                permanent[core] = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # worker/pool infrastructure failure
                retryable[core] = f"{type(exc).__name__}: {exc}"
    finally:
        cleanup()
    return done, retryable, permanent


def run_supervised(
    jobs: list[tuple[int, tuple]],
    n_procs: int,
    threads: bool,
    shard_timeout: float | None,
    max_retries: int,
    retry_backoff_s: float,
    shard_fn,
) -> tuple[dict[int, tuple], dict[int, str], dict[int, int]]:
    """Drive shard jobs to completion with bounded retries and backoff.

    ``max_retries`` bounds the *re*-attempts after the first try.  Each
    round runs in a fresh pool so a worker hung in round N cannot occupy
    a slot in round N+1.  Returns ``(results, failures, retries)`` keyed
    by core; a core appears in exactly one of the first two.
    """
    results: dict[int, tuple] = {}
    failures: dict[int, str] = {}
    retries: dict[int, int] = {}
    ins = _obs()
    outstanding = list(jobs)
    attempt = 0
    while outstanding:
        with span("ingest.round", attempt=attempt, shards=len(outstanding)):
            done, retryable, permanent = shard_round(
                outstanding,
                min(n_procs, len(outstanding)),
                threads,
                shard_timeout,
                shard_fn,
            )
        results.update(done)
        failures.update(permanent)
        if not retryable:
            break
        attempt += 1
        if attempt > max_retries:
            failures.update(
                {
                    core: msg + f" (gave up after {max_retries} retries)"
                    for core, msg in retryable.items()
                }
            )
            break
        for core in retryable:
            retries[core] = attempt
        ins.shard_retries.inc(len(retryable))
        ins.pool_restarts.inc()
        outstanding = [(c, a) for c, a in outstanding if c in retryable]
        backoff = retry_backoff_s * (2 ** (attempt - 1))
        ins.backoff_seconds.inc(backoff)
        time.sleep(backoff)
    return results, failures, retries


def supervised_call(
    fn: Callable[[], T],
    *,
    max_retries: int,
    retry_backoff_s: float,
    sleep: Callable[[float], None] = time.sleep,
    label: str = "operation",
) -> T:
    """Run one fallible operation under the shard supervision discipline.

    Same classification as :func:`shard_round`: a
    :class:`~repro.errors.TraceError` is permanent and re-raised
    immediately; any other :class:`Exception` is retried up to
    ``max_retries`` times with exponential backoff starting at
    ``retry_backoff_s``.  ``sleep`` is injectable so async callers can
    substitute a non-blocking wait and tests can make it a no-op.
    """
    attempt = 0
    ins = _obs()
    while True:
        try:
            return fn()
        except TraceError:
            raise
        except Exception as exc:
            attempt += 1
            if attempt > max_retries:
                raise TraceError(
                    f"{label} failed after {max_retries} retries: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            backoff = retry_backoff_s * (2 ** (attempt - 1))
            ins.backoff_seconds.inc(backoff)
            sleep(backoff)


__all__ = [
    "use_threads",
    "make_pool",
    "shard_round",
    "run_supervised",
    "supervised_call",
]
