"""Profiles: the averaged view that traces are not (paper Fig 1, §V-B1).

A profile summarises a whole run: per function, how many samples landed in
it and the estimated total time ``T * n / N`` (Section V-B1's estimator,
where T is total elapsed time, n the function's samples, N all samples).
Profiles are useful context but *cannot* show a fluctuation — a point the
Fig 1 bench demonstrates by building both views from the same run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hybrid import HybridTrace
from repro.core.symbols import UNKNOWN, SymbolTable
from repro.machine.pebs import SampleArrays


@dataclass(frozen=True)
class FunctionProfile:
    """One profile row: a function's aggregate over the whole run."""

    name: str
    n_samples: int
    est_cycles: float
    fraction: float


def build_profile(
    samples: SampleArrays, symtab: SymbolTable, total_cycles: int
) -> list[FunctionProfile]:
    """The T*n/N sample-count profile, descending by estimated time.

    Unlike the per-data-item trace, this estimator is meaningful even for
    functions shorter than the sample interval, because it averages over
    the whole run (Section V-B1).
    """
    fidx = symtab.lookup_many(samples.ip)
    known = fidx[fidx != UNKNOWN]
    total = int(samples.ts.shape[0])
    if total == 0:
        return []
    counts = np.bincount(known, minlength=len(symtab))
    rows = [
        FunctionProfile(
            name=symtab.names[i],
            n_samples=int(counts[i]),
            est_cycles=total_cycles * counts[i] / total,
            fraction=counts[i] / total,
        )
        for i in range(len(symtab))
        if counts[i] > 0
    ]
    rows.sort(key=lambda r: r.est_cycles, reverse=True)
    return rows


def profile_from_trace(trace: HybridTrace, min_samples: int = 2) -> dict[str, int]:
    """Collapse a per-item trace into per-function totals (Fig 1, right).

    This is exactly the information loss the paper warns about: summing
    over items hides that one item took 9x longer than another.
    """
    out: dict[str, int] = {}
    for est in trace.rows(min_samples=min_samples):
        out[est.fn_name] = out.get(est.fn_name, 0) + est.elapsed_cycles
    return out
