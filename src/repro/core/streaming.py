"""Streaming, sharded trace ingestion.

The paper's data-rate analysis (Section IV-C3) puts the raw PEBS stream
at 106–270 MB/s *per core*; a 16-core trace of any useful length does
not fit in memory.  This module turns the one-shot
:func:`~repro.core.hybrid.integrate` into a pipeline that never holds
more than one chunk of one core's samples:

* :class:`StreamingIntegrator` consumes a core's samples chunk by chunk,
  carrying per-(window, function) first/last/count state across chunk
  boundaries; :meth:`StreamingIntegrator.finalize` routes through the
  same :func:`~repro.core.hybrid.finalize_window_groups` as one-shot
  integration, so the resulting :class:`~repro.core.hybrid.HybridTrace`
  is **bitwise-identical** to ``integrate()`` on the concatenated
  samples.
* :func:`ingest_trace` drives a whole container: sequentially (feeding
  an :class:`~repro.core.online.OnlineDiagnoser` as items complete, so
  diagnosis runs *while* ingesting), or fanned out per core-shard over a
  ``multiprocessing`` pool, with per-core partial traces combined by
  :func:`~repro.core.hybrid.merge_traces`.

Switch logs are two records per data-item — tiny next to the sample
stream — so window state is built whole per core; only samples stream.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.hybrid import (
    HybridTrace,
    _group_min_max_count,
    finalize_window_groups,
    merge_traces,
)
from repro.core.integrity import (
    KIND_CHECKSUM,
    KIND_LENGTH,
    KIND_MISSING,
    KIND_ORDER,
    KIND_SHARD,
    KIND_UNREADABLE,
    POLICY_REPAIR,
    POLICY_STRICT,
    CoverageStats,
    Defect,
    QuarantineLog,
    check_policy,
    degraded_items_for_span,
)
from repro.core.online import OnlineDiagnoser
from repro.core.options import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_RECORD_BYTES,
    IngestOptions,
)
from repro.core.records import (
    ItemWindow,
    SwitchRecords,
    WindowColumns,
    build_windows,
    windows_as_arrays,
)
from repro.core.shardpool import run_supervised, use_threads
from repro.core.symbols import UNKNOWN, SymbolTable
from repro.core.tracefile import TraceReader
from repro.errors import IntegrationError, ShardError, TraceError
from repro.machine.pebs import SampleArrays
from repro.obs.anomaly import (
    AnomalyLog,
    CoverageChecker,
    IngestCheckers,
    KIND_LOW_COVERAGE,
    build_ingest_checkers,
)
from repro.obs.instrumented import pipeline as _obs
from repro.obs.spans import span

# DEFAULT_CHUNK_SIZE / DEFAULT_RECORD_BYTES now live in
# repro.core.options next to IngestOptions; re-exported here for
# existing importers.


@dataclass(frozen=True)
class CompletedItem:
    """One data-item whose residency windows are all behind the stream."""

    item_id: int
    #: Per-function elapsed cycles (same filter as ``HybridTrace.breakdown``).
    breakdown: dict[str, int]
    #: Mapped samples the item contributed (all functions, unfiltered).
    n_samples: int
    #: Timestamp of the item's last window end.
    t_done: int


class StreamingIntegrator:
    """Incremental per-core integration over bounded sample chunks.

    Feed time-ordered chunks with :meth:`feed`; between chunks,
    :meth:`drain_completed` hands out items whose windows are fully in
    the past (for online diagnosis); :meth:`finalize` produces the exact
    one-shot :class:`HybridTrace`.
    """

    def __init__(
        self,
        symtab: SymbolTable,
        windows: list[ItemWindow] | WindowColumns,
        *,
        tolerate_reorder: bool = False,
    ) -> None:
        self.symtab = symtab
        self.windows = windows
        #: Accept chunks that are internally sorted but arrive out of
        #: order relative to earlier chunks (the repair policy's handling
        #: of shuffled storage).  The (window, function) merge is
        #: order-independent, so :meth:`finalize` stays bitwise-identical
        #: to one-shot integration; only :meth:`drain_completed`'s
        #: "complete" notion degrades (a late chunk may add samples to an
        #: item already handed out).
        self.tolerate_reorder = tolerate_reorder
        self._reordered = False
        if isinstance(windows, WindowColumns):
            self._starts, self._ends, self._win_items = windows.as_sorted_arrays()
        else:
            self._starts, self._ends, self._win_items = windows_as_arrays(windows)
        self._nfn = len(symtab)
        empty = np.empty(0, dtype=np.int64)
        self._keys = empty
        self._counts = empty.copy()
        self._tmin = empty.copy()
        self._tmax = empty.copy()
        #: Finalized (keys, counts, tmin, tmax) runs, strictly below the
        #: active tail; concatenating them with the tail yields the full
        #: sorted-unique state.
        self._seg: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._total = 0
        self._unmapped = 0
        self._unknown = 0
        self._last_ts: int | None = None
        self._emitted: set[int] = set()
        #: item id -> end of its last window; built on first drain only.
        self._item_done_cache: dict[int, int] | None = None
        self._result: HybridTrace | None = None

    @property
    def _item_done(self) -> dict[int, int]:
        if self._item_done_cache is None:
            if self._win_items.shape[0]:
                order = np.argsort(self._win_items, kind="stable")
                items_o = self._win_items[order]
                uniq, start = np.unique(items_o, return_index=True)
                last_end = np.maximum.reduceat(self._ends[order], start)
                self._item_done_cache = dict(
                    zip(uniq.tolist(), last_end.tolist())
                )
            else:
                self._item_done_cache = {}
        return self._item_done_cache

    @classmethod
    def from_switches(
        cls, symtab: SymbolTable, switches: SwitchRecords
    ) -> "StreamingIntegrator":
        return cls(symtab, build_windows(switches))

    # -- streaming -------------------------------------------------------
    @property
    def total_samples(self) -> int:
        return self._total

    def feed(self, chunk: SampleArrays) -> None:
        """Consume one chunk (must continue the core's time order)."""
        if self._result is not None:
            raise IntegrationError("cannot feed a finalized StreamingIntegrator")
        ins = _obs()
        if ins.enabled:
            t0 = time.perf_counter()
            try:
                self._feed(chunk, ins)
            finally:
                ins.feed_seconds.observe(time.perf_counter() - t0)
        else:
            self._feed(chunk, ins)

    def _feed(self, chunk: SampleArrays, ins) -> None:
        ts = chunk.ts
        n = int(ts.shape[0])
        if n == 0:
            return
        ins.integ_samples.inc(n)
        ins.integ_chunks.inc()
        if np.any(np.diff(ts) < 0):
            # Disorder *within* a chunk is always corruption (the reader's
            # repair policy drops such records before feeding).
            raise IntegrationError("sample timestamps must be sorted")
        if self._last_ts is not None and int(ts[0]) < self._last_ts:
            if not self.tolerate_reorder:
                raise IntegrationError("sample timestamps must be sorted")
            # An out-of-order chunk can touch windows already retired;
            # bring the retired state back and stop retiring — from here
            # on, no window index is guaranteed to be behind the stream.
            self._reordered = True
            ins.reorder_events.inc()
            self._collapse()
        self._last_ts = (
            int(ts[-1]) if self._last_ts is None else max(self._last_ts, int(ts[-1]))
        )
        self._total += n
        if self._starts.shape[0] == 0:
            self._unmapped += n
            return
        # Same step 2a/2b as one-shot integrate(), per chunk.
        widx = np.searchsorted(self._starts, ts, side="right") - 1
        in_window = (widx >= 0) & (ts <= self._ends[np.clip(widx, 0, None)])
        fidx = self.symtab.lookup_many(chunk.ip)
        known = fidx != UNKNOWN
        valid = in_window & known
        self._unmapped += int(np.count_nonzero(~in_window))
        self._unknown += int(np.count_nonzero(in_window & ~known))
        if not np.any(valid):
            return
        combined = widx[valid] * self._nfn + fidx[valid]
        tv = ts[valid]
        order = np.argsort(combined, kind="stable")
        uniq, counts, t_min, t_max = _group_min_max_count(combined[order], tv[order])
        self._merge_groups(uniq, counts, t_min, t_max)
        # Window indices are non-decreasing in time, so every future
        # sample lands in a window >= this chunk's last one: state below
        # it is final.  Retiring it keeps the per-chunk merge bounded by
        # the chunk, not by everything carried so far.  Once a reorder has
        # been observed that invariant is gone, so retirement stops.
        if not self._reordered:
            self._retire((int(uniq[-1]) // self._nfn) * self._nfn)

    def _merge_groups(
        self,
        keys: np.ndarray,
        counts: np.ndarray,
        t_min: np.ndarray,
        t_max: np.ndarray,
    ) -> None:
        """Fold a chunk's (window, function) groups into the carried state.

        Both sides hold unique sorted keys, so each merged key occurs at
        most twice; ``reduceat`` combines the duplicates vectorised.
        """
        if self._keys.shape[0] == 0:
            self._keys, self._counts, self._tmin, self._tmax = keys, counts, t_min, t_max
            return
        all_keys = np.concatenate([self._keys, keys])
        order = np.argsort(all_keys, kind="stable")
        sorted_keys = all_keys[order]
        uniq, start = np.unique(sorted_keys, return_index=True)
        self._keys = uniq
        self._counts = np.add.reduceat(
            np.concatenate([self._counts, counts])[order], start
        )
        self._tmin = np.minimum.reduceat(
            np.concatenate([self._tmin, t_min])[order], start
        )
        self._tmax = np.maximum.reduceat(
            np.concatenate([self._tmax, t_max])[order], start
        )

    def _retire(self, active_min_key: int) -> None:
        """Move carried state below ``active_min_key`` into ``_seg``."""
        cut = int(np.searchsorted(self._keys, active_min_key))
        if cut:
            self._seg.append(
                (
                    self._keys[:cut],
                    self._counts[:cut],
                    self._tmin[:cut],
                    self._tmax[:cut],
                )
            )
            self._keys = self._keys[cut:]
            self._counts = self._counts[cut:]
            self._tmin = self._tmin[cut:]
            self._tmax = self._tmax[cut:]

    def _collapse(self) -> None:
        """Fold retired segments back into one contiguous state."""
        if self._seg:
            segs = self._seg
            self._seg = []
            self._keys = np.concatenate([s[0] for s in segs] + [self._keys])
            self._counts = np.concatenate([s[1] for s in segs] + [self._counts])
            self._tmin = np.concatenate([s[2] for s in segs] + [self._tmin])
            self._tmax = np.concatenate([s[3] for s in segs] + [self._tmax])

    # -- online hand-off -------------------------------------------------
    def drain_completed(
        self, min_samples: int = 2, final: bool = False
    ) -> list[CompletedItem]:
        """Items whose last window ended before the stream position.

        An item is *complete* when its last window's end is strictly
        before the newest timestamp fed (later samples can no longer land
        in it); ``final=True`` drains everything left (end of stream).
        Only items with at least one mapped sample are reported — the
        same population ``HybridTrace.items()`` sees.  Each item is
        reported exactly once, in completion order.
        """
        self._collapse()
        if self._keys.shape[0] == 0:
            return []
        win_of = (self._keys // self._nfn).astype(np.int64)
        fn_of = (self._keys % self._nfn).astype(np.int64)
        item_of = self._win_items[win_of]
        elapsed = self._tmax - self._tmin
        ready: list[tuple[int, int]] = []  # (t_done, item_id)
        for item in np.unique(item_of).tolist():
            if item in self._emitted:
                continue
            t_done = self._item_done[item]
            if final or (self._last_ts is not None and t_done < self._last_ts):
                ready.append((t_done, item))
        ready.sort()
        out: list[CompletedItem] = []
        for t_done, item in ready:
            mask = item_of == item
            agg: dict[int, tuple[int, int]] = {}
            for fn, cnt, el in zip(
                fn_of[mask].tolist(),
                self._counts[mask].tolist(),
                elapsed[mask].tolist(),
            ):
                c0, e0 = agg.get(fn, (0, 0))
                agg[fn] = (c0 + cnt, e0 + el)
            breakdown = {
                self.symtab.names[fn]: el
                for fn, (cnt, el) in agg.items()
                if cnt >= min_samples
            }
            n_item = sum(cnt for cnt, _ in agg.values())
            out.append(
                CompletedItem(
                    item_id=item,
                    breakdown=breakdown,
                    n_samples=n_item,
                    t_done=t_done,
                )
            )
            self._emitted.add(item)
        if out:
            _obs().windows_closed.inc(len(out))
        return out

    # -- result ----------------------------------------------------------
    def finalize(self) -> HybridTrace:
        """The exact trace one-shot ``integrate()`` would have produced."""
        if self._result is None:
            self._collapse()
            self._result = finalize_window_groups(
                self.symtab,
                self.windows,
                self._win_items,
                self._keys,
                self._counts,
                self._tmin,
                self._tmax,
                total_samples=self._total,
                unmapped_samples=self._unmapped,
                unknown_ip_samples=self._unknown,
            )
        return self._result


# ---------------------------------------------------------------------------
# Whole-container ingestion


@dataclass(frozen=True)
class IngestStats:
    """Throughput accounting for one :func:`ingest_trace` run."""

    cores: tuple[int, ...]
    chunks: int
    samples: int
    sample_bytes: int
    workers: int
    chunk_size: int
    wall_s: float
    #: Resolved worker backend: "inline" (workers=1), "thread", "process".
    pool: str = "inline"
    #: Cores whose shards failed permanently (partial-result merge).
    failed_cores: tuple[int, ...] = ()

    @property
    def mb_per_s(self) -> float:
        return self.sample_bytes / 1e6 / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class IngestResult:
    """Merged trace + per-core shards + throughput stats.

    ``quarantine`` and ``coverage`` carry the degradation accounting of a
    lenient run; under the default strict policy the log is empty and
    every core's coverage is complete.
    """

    trace: HybridTrace
    per_core: dict[int, HybridTrace]
    stats: IngestStats
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    coverage: dict[int, CoverageStats] = field(default_factory=dict)
    #: Invariant violations observed while streaming (None unless
    #: ``options.anomaly.enabled``).
    anomalies: AnomalyLog | None = None


#: Defect kinds whose ts spans localise lost *samples* (not switch marks).
_SAMPLE_KINDS = (KIND_CHECKSUM, KIND_LENGTH, KIND_ORDER, KIND_MISSING, KIND_UNREADABLE)


def _stream_core(
    reader: TraceReader,
    core: int,
    chunk_size: int | None,
    policy: str,
    quarantine: QuarantineLog,
    coverage: CoverageStats,
    diagnoser: OnlineDiagnoser | None = None,
    record_bytes: int = DEFAULT_RECORD_BYTES,
    checkers: IngestCheckers | None = None,
) -> tuple[HybridTrace, int]:
    """Stream-integrate one core under a corruption policy.

    The single code path behind both the sequential loop and the worker
    shard: windows are paired (leniently when the policy allows), sample
    chunks are validated/repaired by the reader, and every defect's
    timestamp span is mapped to the item windows it overlaps so
    ``coverage.degraded_items`` names exactly the items whose numbers
    rest on incomplete data.
    """
    with span("ingest.windows", core=core):
        windows = reader.switch_window_columns(
            core, policy=policy, quarantine=quarantine, coverage=coverage
        )
    integ = StreamingIntegrator(
        reader.symtab, windows, tolerate_reorder=(policy == POLICY_REPAIR)
    )
    if checkers is not None:
        # The integrator already holds the paired windows as sorted
        # start/end columns — exactly what the mark-gap invariant needs.
        checkers.check_windows(integ._starts, integ._ends)
    chunks = 0
    with span("ingest.stream", core=core):
        for chunk in reader.iter_sample_chunks(
            core, chunk_size, policy=policy, quarantine=quarantine, coverage=coverage
        ):
            integ.feed(chunk)
            chunks += 1
            if checkers is not None:
                checkers.observe_chunk(chunk.ts)
            if diagnoser is not None:
                for done in integ.drain_completed():
                    diagnoser.observe_item(
                        done.item_id, done.breakdown, done.n_samples * record_bytes
                    )
    if diagnoser is not None:
        for done in integ.drain_completed(final=True):
            diagnoser.observe_item(
                done.item_id, done.breakdown, done.n_samples * record_bytes
            )
    with span("ingest.finalize", core=core):
        trace = integ.finalize()
    for d in quarantine.for_core(core):
        if d.kind in _SAMPLE_KINDS:
            if d.ts_lo is None and d.ts_hi is None and d.records_lost != 0:
                coverage.unknown_extent = True
            else:
                coverage.mark_degraded(
                    degraded_items_for_span(windows, d.ts_lo, d.ts_hi)
                )
    if checkers is not None:
        checkers.check_coverage(coverage)
    return trace, chunks


def _integrate_core_shard(
    path: str, core: int, chunk_size: int | None, policy: str = POLICY_STRICT
) -> tuple[int, HybridTrace, int, list[Defect], CoverageStats]:
    """Worker: stream-integrate one core's shard of a container.

    Module-level so it pickles into a multiprocessing pool; each worker
    opens its own reader and touches only its core's members.  Defects
    and coverage travel back with the shard result so the parent can fold
    them into the run-wide accounting.
    """
    with TraceReader(path) as reader:
        quarantine = QuarantineLog()
        coverage = CoverageStats(core=core)
        trace, chunks = _stream_core(
            reader, core, chunk_size, policy, quarantine, coverage
        )
        return core, trace, chunks, quarantine.defects, coverage


def replay_into(
    diagnoser: OnlineDiagnoser,
    trace: HybridTrace,
    record_bytes: int = DEFAULT_RECORD_BYTES,
    min_samples: int = 2,
) -> None:
    """Feed a finished trace's items to an online estimator in completion order.

    Used after a parallel ingest, where per-core workers cannot share one
    estimator: the merged trace is replayed item by item, ordered by each
    item's last sample timestamp, approximating what the sequential
    streaming path observes live.
    """
    done: dict[int, int] = {}
    n_of: dict[int, int] = {}
    for item, t_last, n in zip(
        trace.item_ids.tolist(), trace.t_last.tolist(), trace.n_samples.tolist()
    ):
        done[item] = max(done.get(item, t_last), t_last)
        n_of[item] = n_of.get(item, 0) + n
    for _, item in sorted((t, i) for i, t in done.items()):
        diagnoser.observe_item(
            item,
            trace.breakdown(item, min_samples=min_samples),
            n_of[item] * record_bytes,
        )


def ingest_trace(
    path: str | pathlib.Path,
    *,
    options: IngestOptions | None = None,
    cores: list[int] | None = None,
    diagnoser: OnlineDiagnoser | None = None,
    _shard_fn=None,
) -> IngestResult:
    """Stream-integrate a trace container and merge the per-core shards.

    Ingestion knobs travel in one :class:`~repro.core.options.IngestOptions`
    object (``options=``).  The individual ``chunk_size=``/``workers=``/...
    keywords were a deprecated spelling shimmed for one release and have
    been removed; passing them now raises :class:`TypeError`.

    ``options.workers > 1`` fans core-shards out to a worker pool (each worker
    reads only its own core's chunk members); ``pool`` selects processes
    or threads, with ``"auto"`` picking threads on single-CPU hosts where
    process fan-out cannot pay for itself.  With one worker, cores are
    streamed in-process and ``diagnoser`` — if given — observes each item
    the moment its windows complete, i.e. diagnosis runs while ingesting.
    After a parallel ingest the diagnoser is fed by replaying the merged
    trace in item-completion order instead.

    Fault tolerance:

    * ``on_corruption`` selects the corruption policy applied to every
      chunk and switch log — ``"strict"`` raises on the first defect,
      ``"quarantine"`` skips defective chunks, ``"repair"`` drops only
      the offending records where possible.  Defects and per-core
      coverage come back on the :class:`IngestResult`.
    * ``shard_timeout`` bounds each parallel shard's wall time;
      ``max_retries`` re-attempts timed-out or crashed shards (with
      exponential backoff starting at ``retry_backoff_s``) in a fresh
      pool, so a hung worker cannot stall the run.  Retries apply only to
      nondeterministic failures — a corrupt shard fails the same way
      every time and is not retried.
    * A shard that fails permanently fails the run under ``"strict"``;
      under a lenient policy the remaining shards still merge, the lost
      core is reported in ``stats.failed_cores`` with a
      :class:`~repro.core.integrity.Defect` in the quarantine log, and
      its coverage is marked ``shard_failed``.  Only when *every* shard
      fails does a lenient run raise :class:`~repro.errors.ShardError`.

    ``_shard_fn`` swaps the shard worker (fault-injection tests).
    """
    opts = options if options is not None else IngestOptions()
    chunk_size = opts.chunk_size
    workers = opts.workers
    record_bytes = opts.record_bytes
    on_corruption = opts.on_corruption
    threads = use_threads(opts.pool)
    strict = on_corruption == POLICY_STRICT
    shard_fn = _shard_fn if _shard_fn is not None else _integrate_core_shard
    t0 = time.perf_counter()
    path = str(path)
    per_core: dict[int, HybridTrace] = {}
    quarantine = QuarantineLog()
    coverage: dict[int, CoverageStats] = {}
    shard_failures: dict[int, str] = {}
    retries: dict[int, int] = {}
    chunks_by_core: dict[int, int] = {}
    total_chunks = 0
    anomalies = AnomalyLog(opts.anomaly.log_capacity) if opts.anomaly.enabled else None
    if workers == 1:
        with TraceReader(path) as reader:
            use_cores = cores if cores is not None else reader.sample_cores
            for core in use_cores:
                cov = CoverageStats(core=core)
                try:
                    with span("ingest.core", core=core):
                        trace, chunks = _stream_core(
                            reader,
                            core,
                            chunk_size,
                            on_corruption,
                            quarantine,
                            cov,
                            diagnoser=diagnoser,
                            record_bytes=record_bytes,
                            checkers=build_ingest_checkers(
                                anomalies, opts.anomaly, core
                            ),
                        )
                except TraceError as exc:
                    if strict:
                        raise
                    # Lenient sequential run: a core the policy could not
                    # salvage degrades like a permanently failed shard.
                    shard_failures[core] = f"{type(exc).__name__}: {exc}"
                    coverage[core] = cov
                    continue
                per_core[core] = trace
                coverage[core] = cov
                chunks_by_core[core] = chunks
                total_chunks += chunks
    else:
        with TraceReader(path) as reader:
            use_cores = cores if cores is not None else reader.sample_cores
            for core in use_cores:  # fail fast on unknown cores
                reader._check_core(core)
        n_procs = min(workers, max(len(use_cores), 1))
        jobs = [
            (core, (path, core, chunk_size, on_corruption)) for core in use_cores
        ]
        results, shard_failures, retries = run_supervised(
            jobs, n_procs, threads, opts.shard_timeout, opts.max_retries,
            opts.retry_backoff_s, shard_fn,
        )
        for core, trace, chunks, defects, cov in results.values():
            per_core[core] = trace
            coverage[core] = cov
            cov.retries = retries.get(core, 0)
            quarantine.extend(defects)
            chunks_by_core[core] = chunks
            total_chunks += chunks
    for core, msg in sorted(shard_failures.items()):
        if strict:
            raise ShardError(f"shard for core {core} failed permanently: {msg}")
        quarantine.record(
            Defect(
                core=core,
                kind=KIND_SHARD,
                member=None,
                detail=f"shard failed permanently: {msg}",
                records_lost=-1,
            )
        )
        cov = coverage.setdefault(core, CoverageStats(core=core))
        cov.shard_failed = True
        cov.unknown_extent = True
        cov.retries = retries.get(core, 0)
    if anomalies is not None and workers > 1 and opts.anomaly.wants(KIND_LOW_COVERAGE):
        # Workers cannot share the parent's log; the in-stream checkers
        # need workers=1 (repro monitor forces it), but the end-of-shard
        # coverage invariant replays here from the collected stats.
        for core in sorted(coverage):
            CoverageChecker(anomalies, opts.anomaly).check(coverage[core])
    if not per_core:
        if shard_failures:
            raise ShardError(
                f"every shard of {path} failed permanently: "
                + "; ".join(f"core {c}: {m}" for c, m in sorted(shard_failures.items()))
            )
        raise TraceError(f"trace file {path} has no sampled cores to ingest")
    with span("ingest.merge", cores=len(per_core)):
        merged = merge_traces([per_core[c] for c in sorted(per_core)])
    if diagnoser is not None and workers > 1:
        replay_into(diagnoser, merged, record_bytes=record_bytes)
    wall = time.perf_counter() - t0
    n_samples = sum(t.total_samples for t in per_core.values())
    # Shard-level totals are published by the parent from the collected
    # results, so they are correct even when the shards ran in a process
    # pool whose in-child counter updates died with the workers.
    ins = _obs()
    ins.ingest_samples.inc(n_samples)
    ins.ingest_chunks.inc(total_chunks)
    ins.ingest_wall.set(wall)
    ins.ingest_workers.set(workers)
    ins.shard_failures.inc(len(shard_failures))
    for core, trace in per_core.items():
        ins.shard_samples(core).inc(trace.total_samples)
        ins.shard_chunks(core).inc(chunks_by_core.get(core, 0))
    stats = IngestStats(
        cores=tuple(sorted(per_core)),
        chunks=total_chunks,
        samples=n_samples,
        sample_bytes=n_samples * 24,  # three int64 columns per sample
        workers=workers,
        chunk_size=chunk_size if chunk_size is not None else 0,
        wall_s=wall,
        pool="inline" if workers == 1 else ("thread" if threads else "process"),
        failed_cores=tuple(sorted(shard_failures)),
    )
    return IngestResult(
        trace=merged,
        per_core=per_core,
        stats=stats,
        quarantine=quarantine,
        coverage=coverage,
        anomalies=anomalies,
    )
