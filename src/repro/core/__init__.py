"""The paper's contribution: hybrid coarse-instrumentation + PEBS tracing.

Module map:

* :class:`~repro.core.instrument.MarkingTracer` — the coarse instrumentation
  (a marking function only at data-item switches).
* :class:`~repro.core.fulltrace.FullInstrumentationTracer` — the gprof-style
  per-function baseline the paper compares against.
* :func:`~repro.core.hybrid.integrate` — merge PEBS samples with switch
  records and a symbol table into per-data-item, per-function elapsed-time
  estimates (paper Section III-D steps 2 and 3).
* :mod:`~repro.core.profilelib` — averaged profiles (what traces are *not*).
* :mod:`~repro.core.fluctuation` — turning a trace into a diagnosis.
* :mod:`~repro.core.online` — divergence-triggered raw-sample dumping.
* :mod:`~repro.core.registertag` — Section V-A register-tag mapping.
* :mod:`~repro.core.overhead` — ref [6]-style overhead prediction.
* :mod:`~repro.core.storage` — trace encoding and data-rate accounting.

The *package-level* re-exports below (``from repro.core import integrate``)
are deprecated in favour of the :mod:`repro.api` facade — or, for pieces
the facade does not cover, the defining submodule (``from
repro.core.hybrid import integrate``).  They keep working for one
release, each emitting a :class:`DeprecationWarning` naming the new
spelling.
"""

#: name -> (defining module, attribute, recommended new spelling)
_EXPORTS = {
    "AccuracyReport": ("repro.core.compare", "AccuracyReport", None),
    "AdaptiveResetController": ("repro.core.adaptive", "AdaptiveResetController", None),
    "AddressAllocator": ("repro.core.symbols", "AddressAllocator", None),
    "CallGraphGuess": ("repro.core.callgraph", "CallGraphGuess", None),
    "compare_with_truth": ("repro.core.compare", "compare_with_truth", None),
    "FluctuationReport": ("repro.core.fluctuation", "FluctuationReport", None),
    "FullInstrumentationTracer": ("repro.core.fulltrace", "FullInstrumentationTracer", None),
    "FunctionProfile": ("repro.core.profilelib", "FunctionProfile", None),
    "HybridTrace": ("repro.core.hybrid", "HybridTrace", None),
    "ItemWindow": ("repro.core.records", "ItemWindow", None),
    "MarkingTracer": ("repro.core.instrument", "MarkingTracer", None),
    "OnlineDiagnoser": ("repro.core.online", "OnlineDiagnoser", None),
    "OverheadModel": ("repro.core.overhead", "OverheadModel", None),
    "SwitchRecords": ("repro.core.records", "SwitchRecords", None),
    "SymbolTable": ("repro.core.symbols", "SymbolTable", None),
    "TraceFile": ("repro.core.tracefile", "TraceFile", None),
    "build_profile": ("repro.core.profilelib", "build_profile", None),
    "build_windows": ("repro.core.records", "build_windows", None),
    "build_windows_lenient": ("repro.core.records", "build_windows_lenient", None),
    "diagnose": ("repro.core.fluctuation", "diagnose", "repro.api.diagnose()"),
    "guess_call_edges": ("repro.core.callgraph", "guess_call_edges", None),
    "integrate": ("repro.core.hybrid", "integrate", "repro.api.integrate()"),
    "integrate_by_tag": ("repro.core.registertag", "integrate_by_tag", None),
    "load_trace": ("repro.core.tracefile", "load_trace", "repro.api.load()"),
    "merge_traces": ("repro.core.hybrid", "merge_traces", None),
    "save_session": ("repro.core.tracefile", "save_session", None),
    "save_trace": ("repro.core.tracefile", "save_trace", None),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib
        import warnings

        module, attr, new = _EXPORTS[name]
        spelling = new if new is not None else f"{module}.{attr}"
        warnings.warn(
            f"'from repro.core import {name}' is deprecated; use {spelling}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


def __dir__() -> list[str]:
    return list(__all__)
