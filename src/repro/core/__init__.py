"""The paper's contribution: hybrid coarse-instrumentation + PEBS tracing.

Public surface:

* :class:`~repro.core.instrument.MarkingTracer` — the coarse instrumentation
  (a marking function only at data-item switches).
* :class:`~repro.core.fulltrace.FullInstrumentationTracer` — the gprof-style
  per-function baseline the paper compares against.
* :func:`~repro.core.hybrid.integrate` — merge PEBS samples with switch
  records and a symbol table into per-data-item, per-function elapsed-time
  estimates (paper Section III-D steps 2 and 3).
* :mod:`~repro.core.profilelib` — averaged profiles (what traces are *not*).
* :mod:`~repro.core.fluctuation` — turning a trace into a diagnosis.
* :mod:`~repro.core.online` — divergence-triggered raw-sample dumping.
* :mod:`~repro.core.registertag` — Section V-A register-tag mapping.
* :mod:`~repro.core.overhead` — ref [6]-style overhead prediction.
* :mod:`~repro.core.storage` — trace encoding and data-rate accounting.
"""

from repro.core.adaptive import AdaptiveResetController
from repro.core.callgraph import CallGraphGuess, guess_call_edges
from repro.core.compare import AccuracyReport, compare_with_truth
from repro.core.fluctuation import FluctuationReport, diagnose
from repro.core.fulltrace import FullInstrumentationTracer
from repro.core.hybrid import HybridTrace, integrate, merge_traces
from repro.core.instrument import MarkingTracer
from repro.core.online import OnlineDiagnoser
from repro.core.overhead import OverheadModel
from repro.core.profilelib import FunctionProfile, build_profile
from repro.core.records import (
    ItemWindow,
    SwitchRecords,
    build_windows,
    build_windows_lenient,
)
from repro.core.tracefile import TraceFile, load_trace, save_session, save_trace
from repro.core.registertag import integrate_by_tag
from repro.core.symbols import AddressAllocator, SymbolTable

__all__ = [
    "AccuracyReport",
    "AdaptiveResetController",
    "AddressAllocator",
    "CallGraphGuess",
    "compare_with_truth",
    "FluctuationReport",
    "FullInstrumentationTracer",
    "FunctionProfile",
    "HybridTrace",
    "ItemWindow",
    "MarkingTracer",
    "OnlineDiagnoser",
    "OverheadModel",
    "SwitchRecords",
    "SymbolTable",
    "TraceFile",
    "build_profile",
    "build_windows",
    "build_windows_lenient",
    "diagnose",
    "guess_call_edges",
    "integrate",
    "integrate_by_tag",
    "load_trace",
    "merge_traces",
    "save_session",
    "save_trace",
]
