"""Coarse instrumentation: the marking function at data-item switches.

This is half of the paper's hybrid approach (Section III-C).  The marking
function is invoked exactly twice per data-item — at the switch-in and
switch-out points — and records ``(timestamp, item_id)``.  Its cost
(default 200 ns: format + store a log record, prototype Section III-E)
is charged to the calling core by the scheduler, and the code executes at
its own symbol address, so PEBS samples can legitimately land inside the
marking function itself.
"""

from __future__ import annotations

from repro.core.records import SwitchRecords
from repro.machine.core import SimCore
from repro.obs.instrumented import pipeline as _obs
from repro.runtime.actions import SwitchKind
from repro.runtime.thread import AppThread
from repro.units import ns_to_cycles

#: Bytes one switch log record occupies (timestamp + item id, Section III-E).
SWITCH_RECORD_BYTES = 16


class MarkingTracer:
    """Records data-item switches; ignores per-function markers.

    Implements the scheduler's ``InstrumentationHook`` protocol.  Function
    entry/exit markers cost nothing — under the hybrid approach they are
    not instrumented at all.

    Parameters
    ----------
    mark_ip:
        Address of the marking function (allocate one via
        :class:`~repro.core.symbols.AddressAllocator` so it appears in the
        symbol table).
    cost_ns:
        Wall time of one marking call.  The prototype prints to SSD
        (~200 ns); Section III-E notes the records could instead be
        "temporarily stored to the main memory and periodically dumped
        to minimise the overhead" — model that with a small ``cost_ns``
        (~20 ns for a memory store) plus ``buffer_records`` /
        ``dump_cost_ns``.
    buffer_records:
        When set, every ``buffer_records``-th call on a core additionally
        pays ``dump_cost_ns`` (the periodic dump of the in-memory log).
    freq_ghz:
        Core frequency, to convert the costs into cycles.
    """

    def __init__(
        self,
        mark_ip: int,
        cost_ns: float = 200.0,
        freq_ghz: float = 3.0,
        buffer_records: int | None = None,
        dump_cost_ns: float = 2_000.0,
    ) -> None:
        if cost_ns < 0:
            raise ValueError(f"cost_ns must be >= 0, got {cost_ns}")
        if buffer_records is not None and buffer_records < 1:
            raise ValueError(f"buffer_records must be >= 1, got {buffer_records}")
        if dump_cost_ns < 0:
            raise ValueError(f"dump_cost_ns must be >= 0, got {dump_cost_ns}")
        self.mark_ip = mark_ip
        self.cost_cycles = ns_to_cycles(cost_ns, freq_ghz)
        self.buffer_records = buffer_records
        self.dump_cost_cycles = ns_to_cycles(dump_cost_ns, freq_ghz)
        self._buffered: dict[int, int] = {}
        self.dumps = 0
        self._records: dict[int, SwitchRecords] = {}
        self.calls = 0

    def records_for_core(self, core_id: int) -> SwitchRecords:
        """The switch log of one core (created on first use)."""
        if core_id not in self._records:
            self._records[core_id] = SwitchRecords(core_id)
        return self._records[core_id]

    @property
    def bytes_logged(self) -> int:
        """Total instrumentation log volume (for overhead accounting)."""
        return self.calls * SWITCH_RECORD_BYTES

    # -- InstrumentationHook -------------------------------------------------
    def on_mark(
        self, thread: AppThread, core: SimCore, kind: SwitchKind, item_id: int
    ) -> tuple[int, int]:
        # The timestamp logged is read at the top of the marking function,
        # before its cost is paid (the paper's log(d.id, timestamp)).
        self.records_for_core(core.core_id).append(core.clock, item_id, kind)
        self.calls += 1
        _obs().marks.inc()
        cost = self.cost_cycles
        if self.buffer_records is not None:
            n = self._buffered.get(core.core_id, 0) + 1
            if n >= self.buffer_records:
                cost += self.dump_cost_cycles
                self.dumps += 1
                n = 0
            self._buffered[core.core_id] = n
        return (cost, self.mark_ip)

    def on_fn_enter(self, thread: AppThread, core: SimCore, fn_ip: int) -> tuple[int, int]:
        return (0, 0)

    def on_fn_leave(self, thread: AppThread, core: SimCore, fn_ip: int) -> tuple[int, int]:
        return (0, 0)
