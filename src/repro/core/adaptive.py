"""Closed-loop reset-value control (automating Section V-C).

The paper's workflow for picking R is manual: measure the event rate,
know the per-sample cost (ref [6]), solve for the R that meets an
overhead budget.  This module closes the loop: run short epochs, observe
how many samples each actually took, and update R so the *measured*
sampling overhead converges to the budget — robust to workload phase
changes that shift the event rate.

The update is exact rather than incremental: one epoch's
``(samples, R, cycles)`` determines the event rate, and the budget
equation ``rate * cost / R <= budget`` gives the next R directly, with
an optional smoothing factor for noisy epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class EpochObservation:
    """What one epoch measured."""

    reset_value: int
    samples: int
    cycles: int

    @property
    def event_rate_per_cycle(self) -> float:
        """Events per cycle implied by the samples taken at this R."""
        if self.cycles <= 0:
            return 0.0
        return self.samples * self.reset_value / self.cycles


@dataclass
class AdaptiveResetController:
    """Adapts R between epochs to hold a sampling-overhead budget.

    Parameters
    ----------
    target_overhead:
        Budget as a fraction of execution time (e.g. 0.05).
    per_sample_cycles:
        Cost of one sample (the PEBS assist; ref [6]'s fitted slope).
    initial_reset_value:
        Starting R for the first epoch.
    smoothing:
        Exponential smoothing of the measured event rate in (0, 1];
        1.0 = trust the last epoch completely.
    min_reset / max_reset:
        Clamp for the recommendation.
    """

    target_overhead: float
    per_sample_cycles: float = 750.0
    initial_reset_value: int = 1000
    smoothing: float = 1.0
    min_reset: int = 100
    max_reset: int = 10_000_000
    history: list[EpochObservation] = field(default_factory=list)
    _rate: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_overhead < 1.0:
            raise ConfigError(
                f"target overhead must be in (0, 1), got {self.target_overhead}"
            )
        if self.per_sample_cycles <= 0:
            raise ConfigError("per-sample cost must be positive")
        if not 0.0 < self.smoothing <= 1.0:
            raise ConfigError(f"smoothing must be in (0, 1], got {self.smoothing}")
        if not 1 <= self.min_reset <= self.max_reset:
            raise ConfigError("need 1 <= min_reset <= max_reset")
        self._next = max(self.min_reset, min(self.initial_reset_value, self.max_reset))

    @property
    def reset_value(self) -> int:
        """The R to use for the next epoch."""
        return self._next

    def measured_overhead(self, obs: EpochObservation) -> float:
        """Overhead fraction an epoch paid under the linear cost model."""
        if obs.cycles <= 0:
            return 0.0
        return obs.samples * self.per_sample_cycles / obs.cycles

    def observe_epoch(self, samples: int, cycles: int) -> int:
        """Feed one epoch's outcome; returns the recommended next R."""
        if samples < 0 or cycles < 0:
            raise ConfigError("samples and cycles must be >= 0")
        obs = EpochObservation(
            reset_value=self._next, samples=samples, cycles=cycles
        )
        self.history.append(obs)
        # The event rate must be computed against the *application's* own
        # cycles: the epoch's wall cycles include the sampling overhead
        # itself, which would bias the rate (and hence R) low exactly
        # when the overhead is far from budget.
        app_cycles = cycles - samples * self.per_sample_cycles
        if app_cycles <= 0:
            app_cycles = cycles
        rate = samples * obs.reset_value / app_cycles if app_cycles > 0 else 0.0
        if rate > 0:
            if self._rate is None:
                self._rate = rate
            else:
                self._rate += self.smoothing * (rate - self._rate)
            ideal = self._rate * self.per_sample_cycles / self.target_overhead
            self._next = int(max(self.min_reset, min(self.max_reset, round(ideal))))
        return self._next

    @property
    def converged(self) -> bool:
        """True once the last epoch's overhead was within 20% of target."""
        if not self.history:
            return False
        last = self.history[-1]
        oh = self.measured_overhead(last)
        return abs(oh - self.target_overhead) <= 0.2 * self.target_overhead
