"""Overhead modelling and reset-value selection (paper Section V-C, ref [6]).

Ref [6] found that the extra execution time a traced program pays is
accurately predictable from the *number of samples taken*, almost
regardless of application characteristics.  :class:`OverheadModel` fits
that linear relation from measured (sample count, extra time) pairs and
inverts it to choose a reset value for a given overhead budget — the
"finding a right spot within the trade-off" workflow of Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass
class OverheadModel:
    """Linear overhead model: extra_cycles ~ per_sample_cycles * n + fixed."""

    per_sample_cycles: float = 0.0
    fixed_cycles: float = 0.0
    residual_rms: float = 0.0
    fitted: bool = False

    @classmethod
    def fit(cls, sample_counts: np.ndarray, extra_cycles: np.ndarray) -> "OverheadModel":
        """Least-squares fit over measured runs (needs >= 2 points)."""
        x = np.asarray(sample_counts, dtype=np.float64)
        y = np.asarray(extra_cycles, dtype=np.float64)
        if x.shape != y.shape or x.shape[0] < 2:
            raise ConfigError("need >= 2 (sample count, overhead) pairs of equal length")
        slope, intercept = np.polyfit(x, y, deg=1)
        resid = y - (slope * x + intercept)
        return cls(
            per_sample_cycles=float(slope),
            fixed_cycles=float(intercept),
            residual_rms=float(np.sqrt(np.mean(resid**2))),
            fitted=True,
        )

    def predict_extra_cycles(self, n_samples: float) -> float:
        """Predicted extra execution time for a run taking n samples."""
        if not self.fitted:
            raise ConfigError("model has not been fitted")
        return self.per_sample_cycles * n_samples + self.fixed_cycles

    def r_squared(self, sample_counts: np.ndarray, extra_cycles: np.ndarray) -> float:
        """Goodness of fit on a (possibly held-out) data set."""
        x = np.asarray(sample_counts, dtype=np.float64)
        y = np.asarray(extra_cycles, dtype=np.float64)
        pred = self.per_sample_cycles * x + self.fixed_cycles
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot


def reset_value_for_budget(
    event_rate_per_cycle: float,
    per_sample_cycles: float,
    budget_fraction: float,
) -> int:
    """Smallest reset value keeping sampling overhead within a budget.

    With an event rate e (events/cycle) and reset value R, samples arrive
    at e/R per cycle and cost ``per_sample_cycles`` each, so the overhead
    fraction is ``e * per_sample_cycles / R``.  Returns the smallest
    integer R meeting ``budget_fraction``.
    """
    if event_rate_per_cycle <= 0:
        raise ConfigError(f"event rate must be positive, got {event_rate_per_cycle}")
    if per_sample_cycles <= 0:
        raise ConfigError(f"per-sample cost must be positive, got {per_sample_cycles}")
    if not 0 < budget_fraction < 1:
        raise ConfigError(f"budget fraction must be in (0, 1), got {budget_fraction}")
    r = event_rate_per_cycle * per_sample_cycles / budget_fraction
    return max(1, int(np.ceil(r)))


def expected_sample_interval_cycles(
    reset_value: int, event_rate_per_cycle: float, per_sample_cycles: float = 0.0
) -> float:
    """Predicted achieved sample interval for a reset value (Section V-C).

    The interval is linear in R (events arrive at a near-constant rate for
    a steady workload) plus the per-sample cost itself, which is why the
    paper finds "a strong linearity with the reset values".
    """
    if reset_value < 1:
        raise ConfigError(f"reset value must be >= 1, got {reset_value}")
    if event_rate_per_cycle <= 0:
        raise ConfigError(f"event rate must be positive, got {event_rate_per_cycle}")
    return reset_value / event_rate_per_cycle + per_sample_cycles
