"""One options object for every ingestion entry point.

Before this module existed, the same six knobs travelled under three
spellings: ``ingest_trace(chunk_size=..., workers=..., pool=...)`` in
Python, ``--chunk-size --workers --pool`` on the CLI, and ad-hoc subsets
in ``repro monitor`` and the benchmarks.  :class:`IngestOptions` is the
single canonical form: the facade (:mod:`repro.api`), the CLI (via
:meth:`IngestOptions.from_args`), :func:`repro.core.streaming.ingest_trace`
and the ingestion daemon (:mod:`repro.service`) all accept exactly this
object.  The per-call keyword shim on ``ingest_trace`` served its one
release and has been removed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.integrity import check_policy
from repro.errors import TraceError
from repro.obs.anomaly import AnomalyConfig

#: Default samples per chunk (~1.5 MB of raw columns at 24 B/sample).
DEFAULT_CHUNK_SIZE = 65536

#: Default raw PEBS record size for byte accounting (MachineSpec default).
DEFAULT_RECORD_BYTES = 240


@dataclass(frozen=True)
class IngestOptions:
    """How to stream a trace container: chunking, workers, fault policy.

    Every field has the default the pipeline has always used, so
    ``IngestOptions()`` is the plain sequential strict ingest.  The
    object is frozen; derive variants with :meth:`replace`.
    """

    #: Samples per chunk (bounded-memory re-slicing); None = file layout.
    chunk_size: int | None = DEFAULT_CHUNK_SIZE
    #: Core-shards integrated concurrently (1 = sequential, in-process).
    workers: int = 1
    #: Worker backend: "auto" (threads only on single-CPU hosts),
    #: "thread", or "process".
    pool: str = "auto"
    #: Corruption policy: "strict" raises, "quarantine" drops chunks,
    #: "repair" drops only the offending records.
    on_corruption: str = "strict"
    #: Seconds before a parallel core-shard is declared hung (None = never).
    shard_timeout: float | None = None
    #: Re-attempts for timed-out or crashed shards.
    max_retries: int = 2
    #: First retry round's backoff (doubles per round).
    retry_backoff_s: float = 0.05
    #: Raw PEBS record size used for byte accounting.
    record_bytes: int = DEFAULT_RECORD_BYTES
    #: Online invariant checking (off by default: zero-cost when disabled).
    anomaly: AnomalyConfig = AnomalyConfig()

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 1:
            raise TraceError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.workers < 1:
            raise TraceError(f"workers must be >= 1, got {self.workers}")
        if self.pool not in ("auto", "thread", "process"):
            raise TraceError(
                f"pool must be 'auto', 'thread' or 'process', got {self.pool!r}"
            )
        check_policy(self.on_corruption)
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise TraceError(f"shard_timeout must be > 0, got {self.shard_timeout}")
        if self.max_retries < 0:
            raise TraceError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s < 0:
            raise TraceError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.record_bytes < 1:
            raise TraceError(f"record_bytes must be >= 1, got {self.record_bytes}")
        if not isinstance(self.anomaly, AnomalyConfig):
            raise TraceError(
                f"anomaly must be an AnomalyConfig, got {type(self.anomaly).__name__}"
            )

    def replace(self, **changes) -> "IngestOptions":
        """A copy with the given fields changed (validated again)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_args(cls, args) -> "IngestOptions":
        """Build from an argparse namespace (CLI flag spellings).

        Commands that only expose a subset of the flags (``repro
        monitor``) fall back to the field defaults for the rest, so every
        CLI entry point funnels through the same validation.
        """
        defaults = cls()
        return cls(
            chunk_size=getattr(args, "chunk_size", defaults.chunk_size),
            workers=getattr(args, "workers", defaults.workers),
            pool=getattr(args, "pool", defaults.pool),
            on_corruption=getattr(args, "on_corruption", defaults.on_corruption),
            shard_timeout=getattr(args, "shard_timeout", defaults.shard_timeout),
            max_retries=getattr(args, "max_retries", defaults.max_retries),
            anomaly=AnomalyConfig.from_args(args),
        )
