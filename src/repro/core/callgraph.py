"""Call-graph *guessing* from sample order (paper Section V-B2).

PEBS records no call stack, so nesting can only be guessed: "if a sample
mapped to function g exists between samples mapped to another function
f, we can only guess that g is called by f but cannot guarantee it".
This module implements that guess — and deliberately preserves its
documented failure mode: a top-level sequence ``f(); g(); f();`` yields
the same sample pattern as a nested call and is mis-guessed as ``f -> g``
("this may lead to wrong understanding when a small utility function is
called many times").

Use the output as a hint, never as ground truth; the tests encode both
the correct inference and the inherent false positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.records import SwitchRecords, build_windows, windows_as_arrays
from repro.core.symbols import UNKNOWN, SymbolTable
from repro.machine.pebs import SampleArrays


@dataclass(frozen=True)
class CallEdgeGuess:
    """One guessed edge: ``callee`` appeared sandwiched inside ``caller``."""

    caller: str
    callee: str
    occurrences: int


@dataclass
class CallGraphGuess:
    """All guessed edges of a trace, with query helpers."""

    edges: dict[tuple[str, str], int] = field(default_factory=dict)

    def add(self, caller: str, callee: str) -> None:
        key = (caller, callee)
        self.edges[key] = self.edges.get(key, 0) + 1

    def as_list(self) -> list[CallEdgeGuess]:
        """Edges sorted by occurrence count (most frequent first)."""
        return sorted(
            (CallEdgeGuess(c, e, n) for (c, e), n in self.edges.items()),
            key=lambda g: (-g.occurrences, g.caller, g.callee),
        )

    def callees_of(self, caller: str) -> list[str]:
        return sorted(e for (c, e) in self.edges if c == caller)

    def dot(self) -> str:
        """Graphviz rendering of the guessed graph (edges labelled with
        counts; all edges are guesses — see the module docstring)."""
        lines = ["digraph guessed_calls {"]
        for g in self.as_list():
            lines.append(
                f'  "{g.caller}" -> "{g.callee}" [label="{g.occurrences}"];'
            )
        lines.append("}")
        return "\n".join(lines)


def _runs(seq: list[str]) -> list[str]:
    """Collapse consecutive duplicates: f f g g f -> f g f."""
    out: list[str] = []
    for fn in seq:
        if not out or out[-1] != fn:
            out.append(fn)
    return out


def guess_call_edges(
    samples: SampleArrays,
    switches: SwitchRecords,
    symtab: SymbolTable,
) -> CallGraphGuess:
    """Guess call edges from per-item sample order.

    Within each data-item window the time-ordered function sequence is
    collapsed into runs; every run of g with the *same* function f on
    both sides contributes one guessed edge f -> g.
    """
    windows = build_windows(switches)
    starts, ends, _ = windows_as_arrays(windows)
    guess = CallGraphGuess()
    if samples.ts.shape[0] == 0 or starts.shape[0] == 0:
        return guess
    widx = np.searchsorted(starts, samples.ts, side="right") - 1
    in_window = (widx >= 0) & (samples.ts <= ends[np.clip(widx, 0, None)])
    fidx = symtab.lookup_many(samples.ip)
    valid = in_window & (fidx != UNKNOWN)
    for w in np.unique(widx[valid]):
        mask = valid & (widx == w)
        seq = [symtab.names[int(i)] for i in fidx[mask]]
        runs = _runs(seq)
        # Iteratively collapse innermost sandwiches so hierarchical
        # nesting resolves outward: f g h g f -> (g->h) -> f g f ->
        # (f->g) -> f.
        changed = True
        while changed:
            changed = False
            for i in range(1, len(runs) - 1):
                if runs[i - 1] == runs[i + 1] and runs[i] != runs[i - 1]:
                    guess.add(caller=runs[i - 1], callee=runs[i])
                    runs = _runs(runs[:i] + runs[i + 1 :])
                    changed = True
                    break
    return guess
