"""Register-tag mapping for the timer-switching architecture (Section V-A).

Instead of timestamp windows, every PEBS sample carries the data-item ID
that a user-level-threading runtime parked in a general-purpose register
(r13).  Mapping becomes trivial — group samples by tag — and survives
preemptive item switches that window-based mapping would need per-segment
marks for.

An item's samples may be split into several contiguous *runs* by
preemption; estimating elapsed time as (last - first) over all of an
item's samples would wrongly include the time other items ran in between.
We therefore segment by tag-change first, estimate per run, and sum runs
per (item, function) — mirroring what the hybrid integration does with
multiple windows.
"""

from __future__ import annotations

import numpy as np

from repro.core.hybrid import HybridTrace, _group_min_max_count
from repro.core.records import ItemWindow
from repro.core.symbols import UNKNOWN, SymbolTable
from repro.errors import IntegrationError
from repro.machine.pebs import TAG_NONE, SampleArrays


def integrate_by_tag(samples: SampleArrays, symtab: SymbolTable) -> HybridTrace:
    """Build a :class:`~repro.core.hybrid.HybridTrace` from sample tags.

    Samples with ``tag == TAG_NONE`` (scheduler code, untagged threads) are
    counted as unmapped.  Item "windows" in the result are inferred from
    the first/last sample of each tag run, so ``item_window_cycles`` is a
    sampling-resolution approximation rather than instrumented truth.
    """
    ts = samples.ts
    if ts.shape[0] and np.any(np.diff(ts) < 0):
        raise IntegrationError("sample timestamps must be sorted")
    n = int(ts.shape[0])
    nfn = len(symtab)
    tagged = samples.tag != TAG_NONE
    fidx = symtab.lookup_many(samples.ip)
    known = fidx != UNKNOWN
    valid = tagged & known
    unmapped = int(np.count_nonzero(~tagged))
    unknown_ip = int(np.count_nonzero(tagged & ~known))
    if not np.any(valid):
        empty = np.empty(0, dtype=np.int64)
        return HybridTrace(
            symtab=symtab,
            windows=[],
            item_ids=empty,
            fn_idx=empty.copy(),
            n_samples=empty.copy(),
            elapsed=empty.copy(),
            t_first=empty.copy(),
            t_last=empty.copy(),
            total_samples=n,
            unmapped_samples=unmapped,
            unknown_ip_samples=unknown_ip,
        )

    tags = samples.tag[valid]
    fv = fidx[valid]
    tv = ts[valid]
    # Segment into contiguous runs of one tag (preemption boundaries).
    change = np.empty(tags.shape[0], dtype=bool)
    change[0] = True
    change[1:] = tags[1:] != tags[:-1]
    run_id = np.cumsum(change) - 1
    n_runs = int(run_id[-1]) + 1

    # Per-run windows (for item_window_cycles and reporting).
    run_start_idx = np.nonzero(change)[0]
    run_end_idx = np.append(run_start_idx[1:], tags.shape[0]) - 1
    windows = [
        ItemWindow(
            item_id=int(tags[a]),
            t_start=int(tv[a]),
            t_end=int(tv[b]),
        )
        for a, b in zip(run_start_idx, run_end_idx)
    ]

    combined = run_id * nfn + fv
    order = np.argsort(combined, kind="stable")
    uniq, counts, t_min, t_max = _group_min_max_count(combined[order], tv[order])
    run_of = (uniq // nfn).astype(np.int64)
    fn_of = (uniq % nfn).astype(np.int64)
    item_of = tags[run_start_idx][run_of]
    per_run_elapsed = t_max - t_min

    combined2 = item_of * nfn + fn_of
    order2 = np.argsort(combined2, kind="stable")
    uniq2, start2 = np.unique(combined2[order2], return_index=True)
    seg_end = np.append(start2[1:], combined2.shape[0])
    counts_o = counts[order2]
    elapsed_o = per_run_elapsed[order2]
    tmin_o = t_min[order2]
    tmax_o = t_max[order2]
    n_rows = uniq2.shape[0]
    item_ids = (uniq2 // nfn).astype(np.int64)
    fn_rows = (uniq2 % nfn).astype(np.int64)
    agg_counts = np.empty(n_rows, dtype=np.int64)
    agg_elapsed = np.empty(n_rows, dtype=np.int64)
    agg_first = np.empty(n_rows, dtype=np.int64)
    agg_last = np.empty(n_rows, dtype=np.int64)
    for i, (a, b) in enumerate(zip(start2, seg_end)):
        agg_counts[i] = counts_o[a:b].sum()
        agg_elapsed[i] = elapsed_o[a:b].sum()
        agg_first[i] = tmin_o[a:b].min()
        agg_last[i] = tmax_o[a:b].max()

    return HybridTrace(
        symtab=symtab,
        windows=windows,
        item_ids=item_ids,
        fn_idx=fn_rows,
        n_samples=agg_counts,
        elapsed=agg_elapsed,
        t_first=agg_first,
        t_last=agg_last,
        total_samples=n,
        unmapped_samples=unmapped,
        unknown_ip_samples=unknown_ip,
    )
