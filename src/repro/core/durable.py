"""Crash-safe trace recording: journaled segments, replayable recovery.

:func:`repro.core.tracefile.save_trace` is all-or-nothing: the container
exists only once the whole run is over, so a SIGKILL, ENOSPC, or power
cut mid-capture loses everything.  This module is the durable write path
that closes that gap (PAPER §IV's overhead discussion assumes
long-running production captures; a tracer that loses a night's trace to
one crash is not deployable):

* :class:`DurableTraceWriter` appends **sealed segments** — bounded npz
  files, each carrying its own header and per-member crc32 — to a
  journal directory next to the target container.  A segment is written
  to a temp name, fsync'd, renamed into place, and only then recorded in
  an fsync'd append-only journal (``journal.jsonl``).  The journal line
  is the commit point: a process killed at any instant leaves a
  recoverable prefix of fully-sealed segments.
* :func:`recover` replays the journal, salvages every sealed segment
  that still validates, reports everything else through the existing
  :class:`~repro.core.integrity.Defect` / ``QuarantineLog`` machinery,
  and assembles a valid version-3 container (atomic temp + rename).
  Replay is idempotent: running it twice yields the same container
  content and the same defect report.
* :meth:`DurableTraceWriter.finalize` **is** that replay run on the
  writer's own journal — the recovery path is exercised on every clean
  shutdown, not only after disasters.

The fsync discipline per segment is::

    write seg-N.npz.tmp → fsync(tmp) → rename(tmp, seg-N.npz)
      → fsync(dir) → append journal line → fsync(journal)

so every kill point loses at most the segment being sealed (reported as
``unsealed``), never a sealed one.  All syscalls go through a swappable
:class:`RecorderIO`, which is how the fault suite injects kills, torn
writes, ENOSPC, and fsync failures at every individual operation.
"""

from __future__ import annotations

import io as _io
import json
import os
import pathlib
import shutil
from dataclasses import dataclass, field

import numpy as np

from repro.core.integrity import (
    KIND_CHECKSUM,
    KIND_MISSING,
    KIND_SWITCH,
    KIND_UNREADABLE,
    KIND_UNSEALED,
    POLICY_STRICT,
    Defect,
    QuarantineLog,
    member_crc,
)
from repro.core.records import SwitchRecords
from repro.core.symbols import SymbolTable
from repro.core.tracefile import (
    _CODE_KIND,
    _KIND_CODE,
    _READ_ERRORS,
    _symbol_arrays,
    atomic_savez,
    build_container_members,
    container_path,
)
from repro.errors import CorruptionError, RecoveryError, TraceWriteError
from repro.machine.pebs import SampleArrays
from repro.obs.instrumented import pipeline as _obs

#: Journal format version, written into the manifest line.
JOURNAL_VERSION = 1

#: Suffix appended to the container path to name the journal directory.
JOURNAL_SUFFIX = ".journal"

_JOURNAL_FILE = "journal.jsonl"
_SEG_HEADER = "seg_json"
_SAMPLE_COLS = ("ts", "ip", "tag")
_SWITCH_COLS = ("ts", "item", "kind")

#: Segment kinds a journal may seal.
KIND_SEG_MANIFEST = "manifest"
KIND_SEG_SAMPLES = "samples"
KIND_SEG_SWITCH = "switch"
KIND_SEG_META = "meta"


def journal_dir_for(path: str | pathlib.Path) -> pathlib.Path:
    """The journal directory a durable write of ``path`` uses."""
    final = container_path(path)
    return final.with_name(final.name + JOURNAL_SUFFIX)


class RecorderIO:
    """The durable writer's syscall surface, one method per kill point.

    The default implementation is the real filesystem; the fault suite
    substitutes shims (see :mod:`repro.testing.faults`) that kill the
    process-under-test after N operations, tear writes halfway, or fail
    with ENOSPC — which is what lets the kill-at-any-offset tests
    enumerate every crash instant deterministically.
    """

    def makedirs(self, path: pathlib.Path) -> None:
        os.makedirs(path, exist_ok=True)

    def write_bytes(self, path: pathlib.Path, data: bytes) -> None:
        with open(path, "wb") as fh:
            fh.write(data)

    def append_bytes(self, path: pathlib.Path, data: bytes) -> None:
        with open(path, "ab") as fh:
            fh.write(data)
            fh.flush()

    def fsync_path(self, path: pathlib.Path) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path: pathlib.Path) -> None:
        # Not delegated through self.fsync_path: each surface method is
        # exactly one kill point, so shims must see one call per op.
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src: pathlib.Path, dst: pathlib.Path) -> None:
        os.replace(src, dst)

    def rmtree(self, path: pathlib.Path) -> None:
        shutil.rmtree(path, ignore_errors=True)


def _npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    buf = _io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _seg_name(seq: int) -> str:
    return f"seg-{seq:06d}.npz"


def _write_failed(path, exc: OSError) -> TraceWriteError:
    return TraceWriteError(f"durable recording failed at {path}: {exc}")


class DurableTraceWriter:
    """Append-only, crash-consistent recorder for one capture.

    Parameters
    ----------
    path:
        The container the capture finalizes into (``.npz`` appended when
        missing, as for :func:`~repro.core.tracefile.save_trace`).
    symtab, meta:
        Sealed immediately as segment 0 (the manifest), so *any* crash
        after construction leaves enough on disk to assemble a loadable
        container.
    compress:
        Compression of the **final** container.  Segments themselves are
        stored uncompressed — the journal is transient and the capture
        hot path should not pay zlib.
    io:
        Syscall surface; tests substitute fault-injecting shims.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        symtab: SymbolTable,
        meta: dict | None = None,
        *,
        compress: bool = True,
        io: RecorderIO | None = None,
    ) -> None:
        self.path = container_path(path)
        self.dir = journal_dir_for(path)
        self.compress = compress
        self._io = io if io is not None else RecorderIO()
        self._journal = self.dir / _JOURNAL_FILE
        self._seq = 0
        self.segments_sealed = 0
        self.finalized = False
        try:
            self._io.makedirs(self.dir)
        except OSError as exc:
            raise _write_failed(self.dir, exc) from exc
        manifest = dict(_symbol_arrays(symtab))
        self._seal(
            KIND_SEG_MANIFEST,
            manifest,
            extra={
                "journal_version": JOURNAL_VERSION,
                "out": str(self.path),
                "meta": meta or {},
            },
        )

    # -- recording ---------------------------------------------------------
    def append_samples(self, core: int, samples: SampleArrays) -> int:
        """Seal one core's next chunk of samples; returns the segment seq.

        Chunks must arrive in per-core timestamp order (each PEBS unit
        appends monotonically, so draining in capture order satisfies
        this); recovery preserves arrival order per core.
        """
        if self.finalized:
            raise TraceWriteError(f"{self.path}: writer already finalized")
        arrays = {"ts": samples.ts, "ip": samples.ip, "tag": samples.tag}
        n = len(samples)
        extra = {
            "core": int(core),
            "rows": n,
            "ts_lo": int(samples.ts[0]) if n else None,
            "ts_hi": int(samples.ts[-1]) if n else None,
        }
        return self._seal(KIND_SEG_SAMPLES, arrays, extra=extra)

    def append_switches(self, core: int, records: SwitchRecords, start: int = 0) -> int:
        """Seal a core's switch marks from index ``start`` onward."""
        if self.finalized:
            raise TraceWriteError(f"{self.path}: writer already finalized")
        ts = records.ts[start:]
        item = records.item[start:]
        kind = np.asarray(
            [_KIND_CODE[k] for k in records.kinds[start:]], dtype=np.int8
        )
        n = int(ts.shape[0])
        extra = {
            "core": int(records.core_id),
            "rows": n,
            "ts_lo": int(ts[0]) if n else None,
            "ts_hi": int(ts[-1]) if n else None,
        }
        del core  # the records carry their core id; kept for call symmetry
        return self._seal(
            KIND_SEG_SWITCH, {"ts": ts, "item": item, "kind": kind}, extra=extra
        )

    def append_meta(self, patch: dict) -> int:
        """Seal a metadata patch (merged over the manifest meta at assembly).

        Checkpoints use this to journal capture-side accounting — shed
        sample spans, adaptive-R history — so a crash-recovered container
        still carries the degradation record up to the last checkpoint.
        """
        if self.finalized:
            raise TraceWriteError(f"{self.path}: writer already finalized")
        payload = np.frombuffer(
            json.dumps(patch).encode("utf-8"), dtype=np.uint8
        ).copy()
        return self._seal(KIND_SEG_META, {"patch": payload}, extra={"rows": 0})

    def finalize(self, extra_meta: dict | None = None) -> "RecoveryReport":
        """Assemble the final container from the journal; clean up.

        This *is* a :func:`recover` run over the writer's own journal
        (strict: a clean shutdown that cannot validate its own segments
        is a bug, not a salvage situation), followed by a ``finalize``
        journal record and removal of the journal directory.
        """
        if self.finalized:
            raise TraceWriteError(f"{self.path}: writer already finalized")
        report = recover(
            self.dir,
            out=self.path,
            policy=POLICY_STRICT,
            extra_meta=extra_meta,
            _finalizing=True,
        )
        line = json.dumps({"op": "finalize", "out": str(self.path)}) + "\n"
        try:
            self._io.append_bytes(self._journal, line.encode("utf-8"))
            self._io.fsync_path(self._journal)
        except OSError as exc:
            raise _write_failed(self._journal, exc) from exc
        _obs().journal_fsyncs.inc()
        self._io.rmtree(self.dir)
        self.finalized = True
        return report

    # -- internals ---------------------------------------------------------
    def _seal(self, kind: str, arrays: dict[str, np.ndarray], extra: dict) -> int:
        seq = self._seq
        record = {"op": "seal", "seq": seq, "kind": kind, "file": _seg_name(seq)}
        record.update(extra)
        record["crc"] = {name: member_crc(arr) for name, arr in arrays.items()}
        seg_arrays = dict(arrays)
        seg_arrays[_SEG_HEADER] = np.frombuffer(
            json.dumps(record).encode("utf-8"), dtype=np.uint8
        ).copy()
        data = _npz_bytes(seg_arrays)
        final = self.dir / record["file"]
        tmp = self.dir / (record["file"] + ".tmp")
        line = (json.dumps(record) + "\n").encode("utf-8")
        ins = _obs()
        try:
            self._io.write_bytes(tmp, data)
            self._io.fsync_path(tmp)
            self._io.replace(tmp, final)
            self._io.fsync_dir(self.dir)
            self._io.append_bytes(self._journal, line)
            self._io.fsync_path(self._journal)
        except OSError as exc:
            raise _write_failed(final, exc) from exc
        ins.segments_sealed.inc()
        ins.journal_fsyncs.inc()
        ins.journal_bytes.inc(len(data) + len(line))
        self._seq += 1
        self.segments_sealed += 1
        return seq


# ---------------------------------------------------------------------------
# Recovery


@dataclass
class RecoveryReport:
    """What one journal replay salvaged, lost, and wrote."""

    out: pathlib.Path | None
    finalized: bool
    segments_sealed: int
    segments_recovered: int
    segments_lost: int
    segments_unsealed: int
    samples_recovered: int
    samples_lost: int
    marks_recovered: int
    marks_lost: int
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    #: Per-core timestamp spans of lost sample data, ``(lo, hi)`` with
    #: ``None`` meaning unbounded on that side — the input the diagnosis
    #: layer uses to flag affected items as degraded.
    lost_spans: dict[int, list[tuple[int | None, int | None]]] = field(
        default_factory=dict
    )

    @property
    def complete(self) -> bool:
        """True iff nothing sealed or unsealed was lost."""
        return (
            self.segments_lost == 0
            and self.segments_unsealed == 0
            and self.samples_lost == 0
            and self.marks_lost == 0
        )

    def describe(self) -> str:
        head = (
            f"recovered {self.segments_recovered}/{self.segments_sealed} "
            f"sealed segment(s) -> {self.out}"
        )
        if self.complete:
            return head + " (no loss)"
        return head + (
            f"; lost {self.segments_lost} sealed + "
            f"{self.segments_unsealed} unsealed segment(s), "
            f"{self.samples_lost} sample(s), {self.marks_lost} switch mark(s)"
        )


def _read_journal(
    jpath: pathlib.Path,
) -> tuple[list[dict], bool]:
    """Parse journal lines; returns (records, torn_tail).

    A torn final line (the process died mid-append) is expected and
    dropped; any *earlier* unparsable line ends the trusted prefix, since
    an append-only log is only meaningful up to its first corruption.
    """
    try:
        raw = jpath.read_bytes()
    except FileNotFoundError:
        return [], False
    except OSError as exc:
        raise RecoveryError(f"cannot read journal {jpath}: {exc}") from exc
    records: list[dict] = []
    lines = raw.split(b"\n")
    torn = False
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line.decode("utf-8"))
            if not isinstance(rec, dict) or "op" not in rec:
                raise ValueError("not a journal record")
        except (ValueError, UnicodeDecodeError):
            torn = True
            break
        records.append(rec)
    return records, torn


def read_journal(jdir: str | pathlib.Path) -> tuple[list[dict], bool]:
    """Parse a journal directory's log; returns (records, torn_tail).

    Public entry point for consumers that walk a journal without
    replaying it — the ingestion service ships sealed segments listed
    here over the wire.  A torn final line is expected after a crash and
    reported via the flag, never as an error.
    """
    return _read_journal(pathlib.Path(jdir) / _JOURNAL_FILE)


def _load_segment(
    path: pathlib.Path, crc: dict | None
) -> tuple[dict[str, np.ndarray] | None, str, str]:
    """Load + validate one segment; returns (arrays, defect_kind, detail)."""
    if not path.exists():
        return None, KIND_MISSING, f"segment file {path.name} is absent"
    try:
        with np.load(str(path), allow_pickle=False) as data:
            arrays = {k: data[k].copy() for k in data.files if k != _SEG_HEADER}
    except _READ_ERRORS as exc:
        return None, KIND_UNREADABLE, f"segment {path.name}: {exc}"
    if crc:
        bad = [
            name
            for name, want in crc.items()
            if name not in arrays or member_crc(arrays[name]) != int(want)
        ]
        if bad:
            return (
                None,
                KIND_CHECKSUM,
                f"segment {path.name}: crc32 mismatch in {', '.join(bad)}",
            )
    return arrays, "", ""


def _orphan_records(
    jdir: pathlib.Path, sealed_files: set[str]
) -> list[tuple[pathlib.Path, dict | None]]:
    """Segment files on disk the journal never sealed, with their embedded
    headers when readable (a torn file yields ``None``)."""
    out = []
    for p in sorted(jdir.glob("seg-*.npz*")):
        if p.name in sealed_files or p.name == _JOURNAL_FILE:
            continue
        header: dict | None = None
        if p.suffix == ".npz":
            try:
                with np.load(str(p), allow_pickle=False) as data:
                    if _SEG_HEADER in data.files:
                        header = json.loads(bytes(data[_SEG_HEADER]).decode("utf-8"))
                        if header is not None and header.get("crc"):
                            arrays = {
                                k: data[k] for k in data.files if k != _SEG_HEADER
                            }
                            for name, want in header["crc"].items():
                                if (
                                    name not in arrays
                                    or member_crc(arrays[name]) != int(want)
                                ):
                                    header["_self_check_failed"] = True
                                    break
            except (*_READ_ERRORS, KeyError):
                header = None
        out.append((p, header))
    return out


def _decode_switch_kinds(kind_codes: np.ndarray) -> list:
    return [_CODE_KIND[int(c)] for c in kind_codes.tolist()]


def recover(
    source: str | pathlib.Path,
    out: str | pathlib.Path | None = None,
    *,
    policy: str = "quarantine",
    salvage_unsealed: bool = False,
    extra_meta: dict | None = None,
    _finalizing: bool = False,
) -> RecoveryReport:
    """Replay a recording journal into a valid version-3 container.

    ``source`` is the journal directory, or the container path whose
    ``<path>.journal`` sibling should be replayed.  ``out`` defaults to
    the final path the manifest recorded.  Under ``policy="strict"`` any
    damaged sealed segment raises
    :class:`~repro.errors.CorruptionError`; the default ``"quarantine"``
    salvages what validates and reports the rest as
    :class:`~repro.core.integrity.Defect` records.  ``salvage_unsealed``
    additionally admits segments that were fully written and internally
    consistent but whose journal line never landed (default: report them
    as lost, so the journal alone states what the container contains).

    Replay is idempotent — the journal is never modified — and the
    assembled container loads cleanly under ``--on-corruption strict``.
    """
    src = pathlib.Path(source)
    jdir = src if src.is_dir() else journal_dir_for(src)
    if not jdir.is_dir():
        raise RecoveryError(
            f"no recording journal at {jdir} (nothing to recover; a "
            "finalized capture removes its journal)"
        )
    records, torn = _read_journal(jdir / _JOURNAL_FILE)
    manifest = next(
        (r for r in records if r.get("kind") == KIND_SEG_MANIFEST), None
    )
    if manifest is None:
        raise RecoveryError(
            f"{jdir}: journal has no sealed manifest — the recorder died "
            "before its first fsync; nothing recoverable"
        )
    ins = _obs()
    ins.recover_runs.inc()
    quarantine = QuarantineLog()
    lost_spans: dict[int, list[tuple[int | None, int | None]]] = {}
    # finalize() replays its own journal *before* appending the finalize
    # record, so it declares itself via _finalizing instead.
    finalized = _finalizing or any(r.get("op") == "finalize" for r in records)
    seals = [r for r in records if r.get("op") == "seal"]
    sealed_files = {r["file"] for r in seals if "file" in r}

    n_recovered = n_lost = 0
    samples_rec = samples_lost = marks_rec = marks_lost = 0
    symtab: SymbolTable | None = None
    meta: dict = dict(manifest.get("meta") or {})
    chunks_by_core: dict[int, list[SampleArrays]] = {}
    switch_parts: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}

    def _lose(rec: dict, kind: str, detail: str) -> None:
        nonlocal n_lost, samples_lost, marks_lost
        n_lost += 1
        core = int(rec.get("core", -1))
        rows = int(rec.get("rows", -1))
        lo, hi = rec.get("ts_lo"), rec.get("ts_hi")
        seg_kind = rec.get("kind")
        if seg_kind == KIND_SEG_SWITCH:
            kind = KIND_SWITCH
            if rows > 0:
                marks_lost += rows
        elif seg_kind == KIND_SEG_SAMPLES:
            if rows > 0:
                samples_lost += rows
            lost_spans.setdefault(core, []).append((lo, hi))
        if policy == POLICY_STRICT:
            raise CorruptionError(f"{jdir}: {detail}")
        quarantine.record(
            Defect(
                core=core,
                kind=kind,
                member=rec.get("file"),
                detail=detail,
                records_lost=rows,
                ts_lo=lo,
                ts_hi=hi,
            )
        )
        ins.segments_lost.inc()

    for rec in seals:
        arrays, bad_kind, detail = _load_segment(
            jdir / rec["file"], rec.get("crc")
        )
        if arrays is None:
            _lose(rec, bad_kind, detail)
            continue
        n_recovered += 1
        ins.segments_recovered.inc()
        seg_kind = rec.get("kind")
        if seg_kind == KIND_SEG_MANIFEST:
            symtab = SymbolTable.from_ranges(
                {
                    str(name): (int(lo), int(hi))
                    for name, lo, hi in zip(
                        arrays["sym_names"], arrays["sym_lo"], arrays["sym_hi"]
                    )
                }
            )
        elif seg_kind == KIND_SEG_SAMPLES:
            core = int(rec["core"])
            chunk = SampleArrays(
                ts=arrays["ts"], ip=arrays["ip"], tag=arrays["tag"]
            )
            chunks_by_core.setdefault(core, []).append(chunk)
            samples_rec += len(chunk)
        elif seg_kind == KIND_SEG_SWITCH:
            core = int(rec["core"])
            switch_parts.setdefault(core, []).append(
                (arrays["ts"], arrays["item"], arrays["kind"])
            )
            marks_rec += int(arrays["ts"].shape[0])
        elif seg_kind == KIND_SEG_META:
            meta.update(json.loads(bytes(arrays["patch"]).decode("utf-8")))

    # Orphans: files the journal never sealed (the crash window).
    n_unsealed = 0
    for p, header in _orphan_records(jdir, sealed_files):
        readable = header is not None and not header.get("_self_check_failed")
        if salvage_unsealed and readable and header.get("kind") in (
            KIND_SEG_SAMPLES,
            KIND_SEG_SWITCH,
            KIND_SEG_META,
        ):
            arrays, _, _ = _load_segment(p, header.get("crc"))
            if arrays is not None:
                n_recovered += 1
                ins.segments_recovered.inc()
                core = int(header.get("core", -1))
                if header["kind"] == KIND_SEG_SAMPLES:
                    chunk = SampleArrays(
                        ts=arrays["ts"], ip=arrays["ip"], tag=arrays["tag"]
                    )
                    chunks_by_core.setdefault(core, []).append(chunk)
                    samples_rec += len(chunk)
                elif header["kind"] == KIND_SEG_SWITCH:
                    switch_parts.setdefault(core, []).append(
                        (arrays["ts"], arrays["item"], arrays["kind"])
                    )
                    marks_rec += int(arrays["ts"].shape[0])
                else:
                    meta.update(
                        json.loads(bytes(arrays["patch"]).decode("utf-8"))
                    )
                continue
        n_unsealed += 1
        rec = dict(header or {})
        rec["file"] = p.name
        detail = (
            f"segment {p.name} was written but never sealed in the journal"
            + ("" if readable else " (file torn or unreadable)")
        )
        _lose(rec, KIND_UNSEALED, detail)
        n_lost -= 1  # _lose counts sealed losses; track unsealed separately

    if torn:
        quarantine.record(
            Defect(
                core=-1,
                kind=KIND_UNSEALED,
                member=_JOURNAL_FILE,
                detail="journal tail torn mid-append (expected for a crash; "
                "the last unsealed segment is accounted above)",
                records_lost=0,
            )
        )

    if symtab is None:
        raise RecoveryError(
            f"{jdir}: manifest segment failed validation; cannot rebuild a "
            "container without the symbol table"
        )

    switches_by_core: dict[int, SwitchRecords] = {}
    for core, parts in switch_parts.items():
        ts = np.concatenate([p[0] for p in parts])
        item = np.concatenate([p[1] for p in parts])
        kind_codes = np.concatenate([p[2] for p in parts])
        switches_by_core[core] = SwitchRecords.from_arrays(
            core, ts, item, _decode_switch_kinds(kind_codes)
        )

    if extra_meta:
        meta.update(extra_meta)
    if not (finalized and n_lost == 0 and n_unsealed == 0):
        meta.setdefault("recovery", {})
        meta["recovery"] = {
            "finalized": finalized,
            "segments_recovered": n_recovered,
            "segments_lost": n_lost,
            "segments_unsealed": n_unsealed,
            "samples_lost": samples_lost,
            "marks_lost": marks_lost,
            "lost_spans": {
                str(c): [[lo, hi] for lo, hi in spans]
                for c, spans in lost_spans.items()
            },
        }

    out_path = container_path(out if out is not None else manifest["out"])
    arrays = build_container_members(
        # Explicit chunk lists: recovery keeps whatever segment boundaries
        # survived, so no concatenation of the (possibly huge) stream.
        {c: chunks for c, chunks in chunks_by_core.items()},
        switches_by_core,
        symtab,
        meta,
        chunk_size=None,
        checksums=True,
    )
    atomic_savez(out_path, arrays, compress=True)
    ins.samples_recovered.inc(samples_rec)
    return RecoveryReport(
        out=out_path,
        finalized=finalized,
        segments_sealed=len(seals),
        segments_recovered=n_recovered,
        segments_lost=n_lost,
        segments_unsealed=n_unsealed,
        samples_recovered=samples_rec,
        samples_lost=samples_lost,
        marks_recovered=marks_rec,
        marks_lost=marks_lost,
        quarantine=quarantine,
        lost_spans=lost_spans,
    )


# ---------------------------------------------------------------------------
# Flight-recorder segment ring


@dataclass
class _RingSamples:
    core: int
    samples: SampleArrays


@dataclass
class _RingSwitches:
    core: int
    ts: np.ndarray
    item: np.ndarray
    kinds: list


class SegmentRing:
    """Bounded in-memory ring of recent capture segments.

    The flight-recorder counterpart of :class:`DurableTraceWriter`: it
    accepts the same checkpoint deltas (``append_samples`` /
    ``append_switches`` / ``append_meta``) but retains only the newest
    ``capacity`` data segments, evicting the oldest — and *counting*
    what fell off, so a sealed incident bundle says exactly which spans
    its history no longer covers.  Metadata patches are tiny and
    load-bearing (shed spans, degradation flags); they are merged and
    kept whole, never evicted.

    :meth:`seal_incident` replays the retained segments through a fresh
    :class:`DurableTraceWriter` and finalizes it, producing a valid
    version-3 container with the triggering anomaly stamped into its
    meta — consumable by ``repro diagnose`` and ``repro push`` like any
    other trace.
    """

    def __init__(
        self,
        symtab: SymbolTable,
        meta: dict | None = None,
        *,
        capacity: int = 16,
    ) -> None:
        if capacity < 1:
            raise TraceWriteError(f"ring capacity must be >= 1, got {capacity}")
        self.symtab = symtab
        self.meta = dict(meta or {})
        self.capacity = capacity
        self._entries: list = []
        self._meta_patch: dict = {}
        self.appended_segments = 0
        self.evicted_segments = 0
        self.evicted_samples = 0
        self.evicted_marks = 0
        #: Per-core ``[lo, hi]`` timestamp spans of evicted sample data —
        #: the incident bundle's "history starts here" record.
        self.evicted_spans: dict[int, list[list[int]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- writer-compatible surface ----------------------------------------
    def append_samples(self, core: int, samples: SampleArrays) -> int:
        seq = self.appended_segments
        self._entries.append(_RingSamples(core=int(core), samples=samples))
        self.appended_segments += 1
        self._evict()
        return seq

    def append_switches(self, core: int, records: SwitchRecords, start: int = 0) -> int:
        seq = self.appended_segments
        # Materialize the delta: the tracer keeps appending to
        # ``records``, so a live slice taken at seal time would cover a
        # different range than the checkpoint that produced it.
        self._entries.append(
            _RingSwitches(
                core=int(records.core_id),
                ts=records.ts[start:].copy(),
                item=records.item[start:].copy(),
                kinds=list(records.kinds[start:]),
            )
        )
        del core  # the records carry their core id; kept for call symmetry
        self.appended_segments += 1
        self._evict()
        return seq

    def append_meta(self, patch: dict) -> int:
        _deep_merge(self._meta_patch, patch)
        return -1

    def _evict(self) -> None:
        while len(self._entries) > self.capacity:
            gone = self._entries.pop(0)
            self.evicted_segments += 1
            if isinstance(gone, _RingSamples):
                n = len(gone.samples)
                self.evicted_samples += n
                if n:
                    self.evicted_spans.setdefault(gone.core, []).append(
                        [int(gone.samples.ts[0]), int(gone.samples.ts[-1])]
                    )
            else:
                self.evicted_marks += int(gone.ts.shape[0])

    def eviction_summary(self) -> dict:
        return {
            "segments": self.evicted_segments,
            "samples": self.evicted_samples,
            "marks": self.evicted_marks,
            "spans": {str(c): s for c, s in self.evicted_spans.items()},
        }

    # -- sealing -----------------------------------------------------------
    def seal_incident(
        self,
        path: str | pathlib.Path,
        incident: dict,
        *,
        io: RecorderIO | None = None,
        compress: bool = True,
    ) -> RecoveryReport:
        """Write the ring's contents as a tagged incident container.

        ``incident`` lands under the container's ``incident`` meta key,
        alongside a ``flightrec`` block recording what the bounded ring
        had already evicted.  Raises
        :class:`~repro.errors.TraceWriteError` on storage failure, like
        any durable write.
        """
        writer = DurableTraceWriter(
            path, self.symtab, self.meta, compress=compress, io=io
        )
        for entry in self._entries:
            if isinstance(entry, _RingSamples):
                writer.append_samples(entry.core, entry.samples)
            else:
                writer.append_switches(
                    entry.core,
                    SwitchRecords.from_arrays(
                        entry.core, entry.ts, entry.item, entry.kinds
                    ),
                )
        patch = dict(self._meta_patch)
        patch["incident"] = dict(incident)
        patch["flightrec"] = self.eviction_summary()
        writer.append_meta(patch)
        return writer.finalize()


def _deep_merge(dst: dict, src: dict) -> None:
    for key, value in src.items():
        if isinstance(value, dict) and isinstance(dst.get(key), dict):
            _deep_merge(dst[key], value)
        else:
            dst[key] = value


__all__ = [
    "DurableTraceWriter",
    "RecorderIO",
    "RecoveryReport",
    "SegmentRing",
    "recover",
    "read_journal",
    "journal_dir_for",
    "JOURNAL_VERSION",
]
