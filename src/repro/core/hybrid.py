"""Hybrid integration: PEBS samples × switch records × symbol table.

Paper Section III-D, steps 2 and 3:

2. Each PEBS sample's timestamp is compared with the timestamps recorded
   at data-item switches to find the data-item it belongs to, and its
   instruction pointer is compared with the symbol table to find the
   function it was taken in.
3. The elapsed time of function *f* for data-item *M* is the difference
   between the timestamps of the first and the last sample belonging to
   {f, M}.

The whole integration is vectorised: one ``searchsorted`` maps every
sample to a window, one maps every ip to a symbol, and a lexsort +
``reduceat``-style grouping computes first/last/count per (window,
function) — the per-sample hot path never enters a Python loop.

Under timer-switching an item can occupy several windows; per-window
estimates are summed per (item, function), matching how the paper's
method would treat resumed items.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.integrity import CoverageStats
from repro.core.records import (
    ItemWindow,
    SwitchRecords,
    WindowColumns,
    build_windows,
    pair_switch_columns_lenient,
    windows_as_arrays,
)
from repro.core.symbols import UNKNOWN, SymbolTable
from repro.errors import IntegrationError
from repro.machine.pebs import SampleArrays
from repro.obs.spans import span
from repro.runtime.actions import SwitchKind


@dataclass(frozen=True)
class Estimate:
    """Estimated elapsed time of one function for one data-item."""

    item_id: int
    fn_name: str
    n_samples: int
    elapsed_cycles: int
    t_first: int
    t_last: int


class HybridTrace:
    """Result of the integration: per-(item, function) estimates.

    ``estimable`` (Section V-B1): a (item, function) pair needs at least
    two samples for an elapsed-time estimate; pairs seen once are kept
    with ``elapsed_cycles == 0`` and can be filtered via ``min_samples``
    arguments on the query methods.

    ``windows`` may be handed in as ``list[ItemWindow]`` or as
    :class:`~repro.core.records.WindowColumns`; the object list is
    materialised lazily on first access, so ingestion pipelines that only
    consume whole columns never pay for one Python object per window.
    """

    def __init__(
        self,
        *,
        symtab: SymbolTable,
        windows: list[ItemWindow] | WindowColumns,
        item_ids: np.ndarray,
        fn_idx: np.ndarray,
        n_samples: np.ndarray,
        elapsed: np.ndarray,
        t_first: np.ndarray,
        t_last: np.ndarray,
        total_samples: int,
        unmapped_samples: int,
        unknown_ip_samples: int,
    ) -> None:
        self.symtab = symtab
        self._windows_raw = windows
        self.item_ids = item_ids
        self.fn_idx = fn_idx
        self.n_samples = n_samples
        self.elapsed = elapsed
        self.t_first = t_first
        self.t_last = t_last
        self.total_samples = total_samples
        self.unmapped_samples = unmapped_samples
        self.unknown_ip_samples = unknown_ip_samples
        self._by_key_cache: dict[tuple[int, int], int] | None = None

    @property
    def windows(self) -> list[ItemWindow]:
        if not isinstance(self._windows_raw, list):
            self._windows_raw = self._windows_raw.to_windows()
        return self._windows_raw

    @property
    def window_columns(self) -> WindowColumns:
        """Windows as columns, whichever representation is held."""
        if isinstance(self._windows_raw, WindowColumns):
            return self._windows_raw
        return WindowColumns.from_windows(self._windows_raw)

    @property
    def _by_key(self) -> dict[tuple[int, int], int]:
        # Built lazily on the first point query: ingestion pipelines create
        # (and merge, and pickle) many traces whose rows are only ever
        # consumed as whole columns.
        if self._by_key_cache is None:
            self._by_key_cache = {
                (int(it), int(fi)): row
                for row, (it, fi) in enumerate(zip(self.item_ids, self.fn_idx))
            }
        return self._by_key_cache

    # Traces cross process boundaries when per-core shards are integrated
    # in a worker pool; ship windows as columns so pickling is array-speed
    # instead of one dataclass per window.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_by_key_cache"] = None
        state["_windows_raw"] = self.window_columns
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- queries ---------------------------------------------------------
    def items(self) -> list[int]:
        """Distinct item ids with at least one mapped sample, ascending."""
        return sorted(set(int(i) for i in self.item_ids))

    def functions(self) -> list[str]:
        """Function names observed in the trace, in symbol order."""
        idx = sorted(set(int(i) for i in self.fn_idx))
        return [self.symtab.names[i] for i in idx]

    def estimate(self, item_id: int, fn_name: str) -> Estimate | None:
        """The estimate for one (item, function), or None if unsampled."""
        fi = self.symtab.index_of(fn_name)
        row = self._by_key.get((item_id, fi))
        if row is None:
            return None
        return Estimate(
            item_id=item_id,
            fn_name=fn_name,
            n_samples=int(self.n_samples[row]),
            elapsed_cycles=int(self.elapsed[row]),
            t_first=int(self.t_first[row]),
            t_last=int(self.t_last[row]),
        )

    def elapsed_cycles(self, item_id: int, fn_name: str, min_samples: int = 2) -> int:
        """Elapsed cycles of a function for an item (0 when not estimable)."""
        est = self.estimate(item_id, fn_name)
        if est is None or est.n_samples < min_samples:
            return 0
        return est.elapsed_cycles

    def breakdown(self, item_id: int, min_samples: int = 2) -> dict[str, int]:
        """Per-function elapsed cycles for one item (Fig 8's stacked bars)."""
        out: dict[str, int] = {}
        mask = self.item_ids == item_id
        for row in np.nonzero(mask)[0]:
            if int(self.n_samples[row]) < min_samples:
                continue
            out[self.symtab.names[int(self.fn_idx[row])]] = int(self.elapsed[row])
        return out

    def unattributed_cycles(self, item_id: int, min_samples: int = 2) -> int:
        """Window time no function estimate covers (clamped at zero).

        Off-CPU and stall-dominated stretches (a synchronous page read, a
        lock wait) retire almost no micro-ops, so a retirement-event PEBS
        counter takes (almost) no samples there: the time is real — it is
        inside the item's instrumented window — but no function claims
        it.  A large unattributed share is therefore the *signature of
        stalls* under this method; the paper's Section V-D event-swapping
        can then identify the stall source.
        """
        gap = self.item_window_cycles(item_id) - sum(
            self.breakdown(item_id, min_samples=min_samples).values()
        )
        return max(0, gap)

    def item_window_cycles(self, item_id: int) -> int:
        """Instrumented ground-truth residency of the item (window length)."""
        total = sum(w.duration for w in self.windows if w.item_id == item_id)
        if total == 0 and all(w.item_id != item_id for w in self.windows):
            raise IntegrationError(f"no window recorded for item {item_id}")
        return total

    def rows(self, min_samples: int = 2) -> list[Estimate]:
        """All estimates as a flat list, ordered by (item, function)."""
        out: list[Estimate] = []
        order = np.lexsort((self.fn_idx, self.item_ids))
        for row in order:
            if int(self.n_samples[row]) < min_samples:
                continue
            out.append(
                Estimate(
                    item_id=int(self.item_ids[row]),
                    fn_name=self.symtab.names[int(self.fn_idx[row])],
                    n_samples=int(self.n_samples[row]),
                    elapsed_cycles=int(self.elapsed[row]),
                    t_first=int(self.t_first[row]),
                    t_last=int(self.t_last[row]),
                )
            )
        return out

    @property
    def mapped_fraction(self) -> float:
        """Fraction of samples that landed in a window with a known symbol."""
        if self.total_samples == 0:
            return 0.0
        mapped = self.total_samples - self.unmapped_samples - self.unknown_ip_samples
        return mapped / self.total_samples


def _group_min_max_count(
    keys: np.ndarray, ts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """For sorted-by-key ``keys`` return (uniq, count, t_min, t_max).

    ``ts`` must be time-ordered within equal keys (guaranteed by a stable
    sort of time-sorted samples).
    """
    uniq, start = np.unique(keys, return_index=True)
    counts = np.diff(np.append(start, keys.shape[0]))
    t_min = ts[start]
    t_max = ts[start + counts - 1]
    return uniq, counts, t_min, t_max


def finalize_window_groups(
    symtab: SymbolTable,
    windows: list[ItemWindow] | WindowColumns,
    win_items: np.ndarray,
    keys: np.ndarray,
    counts: np.ndarray,
    t_min: np.ndarray,
    t_max: np.ndarray,
    *,
    total_samples: int,
    unmapped_samples: int,
    unknown_ip_samples: int,
) -> HybridTrace:
    """Turn per-(window, function) groups into the final per-item trace.

    ``keys`` are unique, ascending ``window_index * len(symtab) + fn_index``
    group keys with their sample ``counts`` and first/last timestamps.
    This is the single construction point shared by one-shot
    :func:`integrate` and the chunked path in :mod:`repro.core.streaming`,
    which is what makes streaming results bitwise-identical to one-shot.
    """
    nfn = len(symtab)
    if keys.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return HybridTrace(
            symtab=symtab,
            windows=windows,
            item_ids=empty,
            fn_idx=empty.copy(),
            n_samples=empty.copy(),
            elapsed=empty.copy(),
            t_first=empty.copy(),
            t_last=empty.copy(),
            total_samples=total_samples,
            unmapped_samples=unmapped_samples,
            unknown_ip_samples=unknown_ip_samples,
        )
    win_of = (keys // nfn).astype(np.int64)
    fn_of = (keys % nfn).astype(np.int64)
    item_of = win_items[win_of]
    per_win_elapsed = t_max - t_min

    # Aggregate windows of the same item (timer-switching): sum elapsed,
    # sum counts, min/max the boundary timestamps.
    combined2 = item_of * nfn + fn_of
    order2 = np.argsort(combined2, kind="stable")
    uniq2, start2 = np.unique(combined2[order2], return_index=True)
    item_ids = (uniq2 // nfn).astype(np.int64)
    fn_rows = (uniq2 % nfn).astype(np.int64)
    agg_counts = np.add.reduceat(counts[order2], start2)
    agg_elapsed = np.add.reduceat(per_win_elapsed[order2], start2)
    agg_first = np.minimum.reduceat(t_min[order2], start2)
    agg_last = np.maximum.reduceat(t_max[order2], start2)

    return HybridTrace(
        symtab=symtab,
        windows=windows,
        item_ids=item_ids,
        fn_idx=fn_rows,
        n_samples=agg_counts,
        elapsed=agg_elapsed,
        t_first=agg_first,
        t_last=agg_last,
        total_samples=total_samples,
        unmapped_samples=unmapped_samples,
        unknown_ip_samples=unknown_ip_samples,
    )


def traces_equal(a: HybridTrace, b: HybridTrace) -> bool:
    """Bitwise equality of two traces (arrays, windows, and counters)."""
    return (
        a.symtab.names == b.symtab.names
        and a.windows == b.windows
        and np.array_equal(a.item_ids, b.item_ids)
        and np.array_equal(a.fn_idx, b.fn_idx)
        and np.array_equal(a.n_samples, b.n_samples)
        and np.array_equal(a.elapsed, b.elapsed)
        and np.array_equal(a.t_first, b.t_first)
        and np.array_equal(a.t_last, b.t_last)
        and a.total_samples == b.total_samples
        and a.unmapped_samples == b.unmapped_samples
        and a.unknown_ip_samples == b.unknown_ip_samples
    )


def merge_traces(traces: list[HybridTrace]) -> HybridTrace:
    """Combine per-core traces into one (multi-worker applications).

    Items processed on different cores are simply concatenated; if the
    same (item, function) pair appears on several cores (an item migrated
    between residencies), counts and elapsed times are summed like
    multiple windows of one item.
    """
    if not traces:
        raise IntegrationError("need at least one trace to merge")
    symtab = traces[0].symtab
    for t in traces[1:]:
        if t.symtab is not symtab and t.symtab.names != symtab.names:
            raise IntegrationError("traces to merge must share a symbol table")
    nfn = len(symtab)
    item_ids = np.concatenate([t.item_ids for t in traces])
    fn_idx = np.concatenate([t.fn_idx for t in traces])
    n_samples = np.concatenate([t.n_samples for t in traces])
    elapsed = np.concatenate([t.elapsed for t in traces])
    t_first = np.concatenate([t.t_first for t in traces])
    t_last = np.concatenate([t.t_last for t in traces])

    combined = item_ids * nfn + fn_idx
    order = np.argsort(combined, kind="stable")
    uniq, start = np.unique(combined[order], return_index=True)
    out_items = (uniq // nfn).astype(np.int64)
    out_fns = (uniq % nfn).astype(np.int64)
    if uniq.shape[0]:
        out_counts = np.add.reduceat(n_samples[order], start)
        out_elapsed = np.add.reduceat(elapsed[order], start)
        out_first = np.minimum.reduceat(t_first[order], start)
        out_last = np.maximum.reduceat(t_last[order], start)
    else:  # all-empty shards (e.g. cores that took no mapped samples)
        out_counts = np.empty(0, dtype=np.int64)
        out_elapsed = np.empty(0, dtype=np.int64)
        out_first = np.empty(0, dtype=np.int64)
        out_last = np.empty(0, dtype=np.int64)

    merged_cols = [t.window_columns for t in traces]
    return HybridTrace(
        symtab=symtab,
        windows=WindowColumns(
            item_id=np.concatenate([c.item_id for c in merged_cols]),
            t_start=np.concatenate([c.t_start for c in merged_cols]),
            t_end=np.concatenate([c.t_end for c in merged_cols]),
        ),
        item_ids=out_items,
        fn_idx=out_fns,
        n_samples=out_counts,
        elapsed=out_elapsed,
        t_first=out_first,
        t_last=out_last,
        total_samples=sum(t.total_samples for t in traces),
        unmapped_samples=sum(t.unmapped_samples for t in traces),
        unknown_ip_samples=sum(t.unknown_ip_samples for t in traces),
    )


def integrate(
    samples: SampleArrays,
    switches: SwitchRecords,
    symtab: SymbolTable,
) -> HybridTrace:
    """Merge one core's PEBS samples and switch records into a trace.

    Samples whose timestamp falls outside every item window (busy-poll
    spinning, scheduler code) are counted in ``unmapped_samples``; samples
    inside a window whose ip resolves to no symbol are counted in
    ``unknown_ip_samples``.

    Window boundaries are inclusive on both ends; when two windows share a
    boundary instant (item N's END and item N+1's START logged at the same
    timestamp) a sample exactly there is assigned to the **later** window —
    at that instant the marking function has already recorded the new
    item's start.
    """
    with span("integrate.core", core=switches.core_id, samples=int(samples.ts.shape[0])):
        windows = build_windows(switches)
        ts = samples.ts
        if ts.shape[0] and np.any(np.diff(ts) < 0):
            raise IntegrationError("sample timestamps must be sorted")
        return _integrate_columns(samples, windows, symtab)


def _integrate_columns(
    samples: SampleArrays,
    windows: list[ItemWindow] | WindowColumns,
    symtab: SymbolTable,
) -> HybridTrace:
    """Steps 2–3 of the integration over already-built, sorted inputs.

    Shared by strict :func:`integrate` (which validates first) and
    :func:`integrate_degraded` (which repairs first); the sample
    timestamps must already be non-decreasing and the windows
    non-overlapping.
    """
    if isinstance(windows, WindowColumns):
        starts, ends, win_items = windows.as_sorted_arrays()
    else:
        starts, ends, win_items = windows_as_arrays(windows)
    ts = samples.ts
    n = int(ts.shape[0])
    nfn = len(symtab)
    if n == 0 or starts.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return finalize_window_groups(
            symtab,
            windows,
            win_items,
            empty,
            empty.copy(),
            empty.copy(),
            empty.copy(),
            total_samples=n,
            unmapped_samples=n,
            unknown_ip_samples=0,
        )
    # Step 2a: sample timestamp -> window (t_start <= ts <= t_end).
    widx = np.searchsorted(starts, ts, side="right") - 1
    in_window = (widx >= 0) & (ts <= ends[np.clip(widx, 0, None)])
    # Step 2b: sample ip -> function.
    fidx = symtab.lookup_many(samples.ip)
    known = fidx != UNKNOWN
    valid = in_window & known
    unmapped = int(np.count_nonzero(~in_window))
    unknown_ip = int(np.count_nonzero(in_window & ~known))

    wv = widx[valid]
    fv = fidx[valid]
    tv = ts[valid]
    # Step 3 per (window, function): first/last sample timestamps.
    combined = wv * nfn + fv
    order = np.argsort(combined, kind="stable")
    uniq, counts, t_min, t_max = _group_min_max_count(combined[order], tv[order])
    return finalize_window_groups(
        symtab,
        windows,
        win_items,
        uniq,
        counts,
        t_min,
        t_max,
        total_samples=n,
        unmapped_samples=unmapped,
        unknown_ip_samples=unknown_ip,
    )


def integrate_degraded(
    samples: SampleArrays,
    switches: SwitchRecords,
    symtab: SymbolTable,
) -> tuple[HybridTrace, CoverageStats]:
    """One-shot integration of possibly-damaged inputs, with coverage.

    Where :func:`integrate` raises on the failure modes a real deployment
    produces — clock skew leaving sample timestamps out of order, switch
    marks dropped by a log-buffer overrun — this variant repairs what it
    can and accounts for what it cannot:

    * out-of-order sample timestamps are stably sorted (clock skew
      reorders observations but loses none, so no samples are dropped);
    * the switch log goes through best-effort pairing
      (:func:`~repro.core.records.pair_switch_columns_lenient`): every
      window used is a genuinely paired START/END, dropped marks are
      counted, and the items involved land in
      :attr:`~repro.core.integrity.CoverageStats.degraded_items`.

    Returns the trace together with the :class:`CoverageStats` that a
    degraded report must carry.
    """
    coverage = CoverageStats(core=switches.core_id)
    kind_codes = np.asarray(
        [0 if k is SwitchKind.ITEM_START else 1 for k in switches.kinds],
        dtype=np.int8,
    )
    lw = pair_switch_columns_lenient(
        switches.core_id, switches.ts, switches.item, kind_codes
    )
    coverage.switch_marks = lw.total_marks
    coverage.switch_marks_dropped = lw.dropped_marks
    if lw.dropped_marks:
        coverage.mark_degraded(lw.affected_items)
    ts = samples.ts
    if ts.shape[0] and np.any(np.diff(ts) < 0):
        order = np.argsort(ts, kind="stable")
        samples = SampleArrays(
            ts=ts[order], ip=samples.ip[order], tag=samples.tag[order]
        )
        coverage.chunks_repaired += 1
    coverage.samples_kept = int(samples.ts.shape[0])
    return _integrate_columns(samples, lw.windows, symtab), coverage
