"""Online divergence-triggered sample retention (paper Section IV-C3).

Dumping every PEBS sample to storage costs hundreds of MB/s per core.  The
paper suggests estimating elapsed times online and dumping raw samples
*only* when an estimate diverges from the running average — keeping the
forensic detail for anomalous items while discarding the boring bulk.

:class:`OnlineDiagnoser` implements that policy with Welford running
mean/variance per (function) statistic and a k-sigma divergence rule, and
accounts the bytes kept vs saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.obs.instrumented import pipeline as _obs


@dataclass
class _Welford:
    n: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return (self.m2 / (self.n - 1)) ** 0.5


@dataclass(frozen=True)
class ItemDecision:
    """Outcome of observing one item online."""

    item_id: int
    dumped: bool
    trigger_fn: str | None
    raw_bytes: int


@dataclass
class OnlineDiagnoser:
    """Streaming estimator with divergence-triggered raw-sample dumping.

    Parameters
    ----------
    k_sigma:
        Dump when any function's elapsed time deviates from its running
        mean by more than ``k_sigma`` standard deviations.
    min_baseline:
        Items to observe per function before the rule can fire (the
        running statistics need a baseline; early items are never dumped).
    unseen_fn_triggers:
        Also dump when a function *first appears* after the baseline is
        established — a code path that steady-state items never execute
        (e.g. a recompute path on a cache miss) is itself a divergence.
    """

    k_sigma: float = 3.0
    min_baseline: int = 5
    unseen_fn_triggers: bool = True
    #: Bound on the retained decision log.  A months-long capture feeds
    #: millions of items; keeping every :class:`ItemDecision` would grow
    #: without limit, so the oldest entries are evicted (and counted in
    #: ``decisions_evicted``) once the bound is hit.  The aggregate
    #: counters (``items_observed``, byte totals) are unaffected by
    #: eviction.  ``None`` disables the bound.
    max_decisions: int | None = 100_000
    items_observed: int = 0
    _stats: dict[str, _Welford] = field(default_factory=dict)
    decisions: list[ItemDecision] = field(default_factory=list)
    decisions_evicted: int = 0
    bytes_dumped: int = 0
    bytes_discarded: int = 0
    items_dumped: int = 0

    def __post_init__(self) -> None:
        if self.k_sigma <= 0:
            raise TraceError(f"k_sigma must be positive, got {self.k_sigma}")
        if self.min_baseline < 1:
            raise TraceError(f"min_baseline must be >= 1, got {self.min_baseline}")
        if self.max_decisions is not None and self.max_decisions < 1:
            raise TraceError(
                f"max_decisions must be >= 1, got {self.max_decisions}"
            )

    def observe_item(
        self, item_id: int, breakdown: dict[str, int], raw_bytes: int
    ) -> ItemDecision:
        """Feed one item's per-function estimates; decide dump vs discard.

        ``raw_bytes`` is the size of the item's raw PEBS samples, accounted
        to whichever bucket the decision selects.  Statistics are updated
        with the item either way (anomalies shift the running mean, as any
        online estimator must accept).
        """
        trigger: str | None = None
        for fn, elapsed in breakdown.items():
            st = self._stats.get(fn)
            if st is None:
                if (
                    self.unseen_fn_triggers
                    and self.items_observed >= self.min_baseline
                ):
                    trigger = fn
                    break
                continue
            if st.n >= self.min_baseline and st.std > 0:
                if abs(elapsed - st.mean) > self.k_sigma * st.std:
                    trigger = fn
                    break
        # Update statistics for every function this item ran, and count 0
        # for known functions it did not run (absence is information).
        for fn in set(self._stats) | set(breakdown):
            self._stats.setdefault(fn, _Welford()).update(float(breakdown.get(fn, 0)))
        self.items_observed += 1
        dumped = trigger is not None
        ins = _obs()
        ins.online_items.inc()
        if dumped:
            self.bytes_dumped += raw_bytes
            ins.online_dumped.inc()
            ins.online_bytes_dumped.inc(raw_bytes)
        else:
            self.bytes_discarded += raw_bytes
            ins.online_bytes_discarded.inc(raw_bytes)
        if dumped:
            self.items_dumped += 1
        decision = ItemDecision(
            item_id=item_id, dumped=dumped, trigger_fn=trigger, raw_bytes=raw_bytes
        )
        self.decisions.append(decision)
        if (
            self.max_decisions is not None
            and len(self.decisions) > self.max_decisions
        ):
            del self.decisions[0]
            self.decisions_evicted += 1
            ins.online_decisions_dropped.inc()
        return decision

    @property
    def reduction_factor(self) -> float:
        """How much storage the policy saved (total / kept)."""
        total = self.bytes_dumped + self.bytes_discarded
        if self.bytes_dumped == 0:
            return float("inf") if total > 0 else 1.0
        return total / self.bytes_dumped

    def mean_of(self, fn: str) -> float:
        """Running mean elapsed time of a function (0.0 if unseen)."""
        st = self._stats.get(fn)
        return st.mean if st is not None else 0.0

    def summary(self) -> dict:
        """Policy outcome counters (for ingest reports and logs).

        Computed from running totals, not the decision log — the log is
        bounded and may have evicted its oldest entries.
        """
        return {
            "items_observed": self.items_observed,
            "items_dumped": self.items_dumped,
            "items_discarded": self.items_observed - self.items_dumped,
            "decisions_evicted": self.decisions_evicted,
            "bytes_dumped": self.bytes_dumped,
            "bytes_discarded": self.bytes_discarded,
            "reduction_factor": self.reduction_factor,
        }
