"""Comparing hybrid estimates against instrumented ground truth.

The paper's Fig 9 evaluates the method by comparing its estimates with a
"baseline" obtained from selective instrumentation.  This module makes
that comparison a reusable operation: pair a
:class:`~repro.core.hybrid.HybridTrace` with the exact per-(item,
function) elapsed times of a
:class:`~repro.core.fulltrace.FullInstrumentationTracer` run (or any
truth mapping) and report the error distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hybrid import HybridTrace
from repro.core.symbols import SymbolTable
from repro.errors import TraceError


@dataclass(frozen=True)
class PairError:
    """One (item, function) comparison."""

    item_id: int
    fn_name: str
    estimate_cycles: int
    truth_cycles: int

    @property
    def abs_error_cycles(self) -> int:
        return abs(self.estimate_cycles - self.truth_cycles)

    @property
    def rel_error(self) -> float:
        if self.truth_cycles == 0:
            return 0.0 if self.estimate_cycles == 0 else float("inf")
        return (self.estimate_cycles - self.truth_cycles) / self.truth_cycles


@dataclass(frozen=True)
class AccuracyReport:
    """Error distribution of a hybrid trace against ground truth."""

    pairs: list[PairError]
    unestimable: int

    @property
    def n(self) -> int:
        return len(self.pairs)

    @property
    def mean_abs_error_cycles(self) -> float:
        if not self.pairs:
            return 0.0
        return sum(p.abs_error_cycles for p in self.pairs) / len(self.pairs)

    @property
    def mean_rel_error(self) -> float:
        """Signed mean relative error (negative = systematic underestimate)."""
        finite = [p.rel_error for p in self.pairs if p.rel_error != float("inf")]
        if not finite:
            return 0.0
        return sum(finite) / len(finite)

    @property
    def coverage(self) -> float:
        """Fraction of truth pairs the hybrid could estimate at all."""
        total = len(self.pairs) + self.unestimable
        return len(self.pairs) / total if total else 0.0


def compare_with_truth(
    trace: HybridTrace,
    truth: dict[tuple[int, int], int],
    symtab: SymbolTable,
    min_samples: int = 2,
) -> AccuracyReport:
    """Compare against ``{(item_id, fn_ip): cycles}`` ground truth.

    The truth keys use entry-point ips (what
    :meth:`FullInstrumentationTracer.elapsed_by_item` returns); they are
    resolved through the symbol table.  Truth entries for item -1
    (outside any window) are ignored.
    """
    pairs: list[PairError] = []
    unestimable = 0
    for (item, fn_ip), truth_cycles in truth.items():
        if item < 0:
            continue
        name = symtab.lookup(fn_ip)
        if name is None:
            raise TraceError(f"truth references unknown ip {fn_ip:#x}")
        est = trace.estimate(item, name)
        if est is None or est.n_samples < min_samples:
            unestimable += 1
            continue
        pairs.append(
            PairError(
                item_id=item,
                fn_name=name,
                estimate_cycles=est.elapsed_cycles,
                truth_cycles=truth_cycles,
            )
        )
    pairs.sort(key=lambda p: (p.item_id, p.fn_name))
    return AccuracyReport(pairs=pairs, unestimable=unestimable)
