"""Turning a per-item trace into a fluctuation diagnosis.

The paper's end goal: find data-items whose latency deviates from that of
*similar or identical* items, and name the function responsible.  The
caller supplies the similarity grouping (e.g. the query's ``n`` value in
the Fig 8 sample app, or the packet type in the ACL study); within each
group we compare an item's total against the group median and break the
excess down per function.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Callable, Hashable, Mapping

from repro.core.hybrid import HybridTrace
from repro.errors import TraceError

#: Pseudo-function name for window time no sampled function covers —
#: the stall/off-CPU signature (see HybridTrace.unattributed_cycles).
UNATTRIBUTED = "(unattributed/stall)"


@dataclass(frozen=True)
class ItemDiagnosis:
    """One flagged data-item and where its extra time went."""

    item_id: int
    group: Hashable
    total_cycles: int
    group_median_cycles: float
    ratio: float
    per_fn_excess: dict[str, int]
    culprit: str | None

    def describe(self, freq_ghz: float = 3.0) -> str:
        """One-line human-readable summary (times in µs)."""
        total_us = self.total_cycles / freq_ghz / 1_000
        med_us = self.group_median_cycles / freq_ghz / 1_000
        culprit = self.culprit or "<unresolved>"
        return (
            f"item {self.item_id} (group {self.group!r}): {total_us:.2f} us vs "
            f"group median {med_us:.2f} us ({self.ratio:.2f}x); "
            f"dominant excess in {culprit}"
        )


@dataclass(frozen=True)
class GroupStats:
    """Latency statistics of one similarity group."""

    group: Hashable
    n_items: int
    median_cycles: float
    min_cycles: int
    max_cycles: int


@dataclass(frozen=True)
class FluctuationReport:
    """Diagnosis result: flagged items plus per-group context."""

    outliers: list[ItemDiagnosis]
    groups: list[GroupStats]

    @property
    def fluctuating(self) -> bool:
        return bool(self.outliers)


def diagnose(
    trace: HybridTrace,
    group_of: Mapping[int, Hashable] | Callable[[int], Hashable],
    threshold: float = 1.5,
    min_samples: int = 2,
) -> FluctuationReport:
    """Flag items whose total residency exceeds ``threshold`` x group median.

    ``group_of`` maps an item id to its similarity key.  Totals come from
    the instrumented item windows (exact); the per-function excess uses the
    sampled estimates, so the culprit attribution inherits sampling
    resolution.
    """
    if threshold <= 1.0:
        raise TraceError(f"threshold must be > 1.0, got {threshold}")
    lookup = group_of if callable(group_of) else group_of.__getitem__

    items = trace.items()
    if not items:
        return FluctuationReport(outliers=[], groups=[])
    totals = {i: trace.item_window_cycles(i) for i in items}
    by_group: dict[Hashable, list[int]] = {}
    for i in items:
        by_group.setdefault(lookup(i), []).append(i)

    groups: list[GroupStats] = []
    outliers: list[ItemDiagnosis] = []
    for key, members in by_group.items():
        vals = [totals[i] for i in members]
        med = float(median(vals))
        groups.append(
            GroupStats(
                group=key,
                n_items=len(members),
                median_cycles=med,
                min_cycles=min(vals),
                max_cycles=max(vals),
            )
        )
        if med <= 0:
            continue
        # Per-function group medians, for the excess breakdown.  Window
        # time that no function estimate covers is tracked as the
        # UNATTRIBUTED pseudo-function, so stall-dominated outliers (IO,
        # lock waits — invisible to retirement-event sampling) are named
        # rather than silently unexplained.
        fn_names: set[str] = set()
        per_item_bd = {}
        for i in members:
            bd = dict(trace.breakdown(i, min_samples=min_samples))
            bd[UNATTRIBUTED] = trace.unattributed_cycles(i, min_samples=min_samples)
            per_item_bd[i] = bd
        for bd in per_item_bd.values():
            fn_names.update(bd)
        fn_median = {
            fn: float(median(per_item_bd[i].get(fn, 0) for i in members))
            for fn in fn_names
        }
        for i in members:
            ratio = totals[i] / med
            if ratio < threshold:
                continue
            excess = {
                fn: int(per_item_bd[i].get(fn, 0) - fn_median[fn])
                for fn in fn_names
            }
            positive = {fn: v for fn, v in excess.items() if v > 0}
            culprit = max(positive, key=positive.__getitem__) if positive else None
            outliers.append(
                ItemDiagnosis(
                    item_id=i,
                    group=key,
                    total_cycles=totals[i],
                    group_median_cycles=med,
                    ratio=ratio,
                    per_fn_excess=excess,
                    culprit=culprit,
                )
            )
    outliers.sort(key=lambda d: d.ratio, reverse=True)
    groups.sort(key=lambda g: str(g.group))
    return FluctuationReport(outliers=outliers, groups=groups)
