"""Persistent trace files: dump a session, analyse offline.

The paper's prototype writes PEBS samples and switch logs to an SSD and
integrates them later (Section III-E).  This module is that workflow's
file format: one ``.npz`` container holding, per core, the raw sample
columns and switch records, plus the symbol table and free-form
metadata.  Loading gives everything needed to rerun the integration,
diagnosis, or call-graph guessing without the original process.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.core.hybrid import HybridTrace, integrate
from repro.core.records import SwitchRecords
from repro.core.symbols import SymbolTable
from repro.errors import TraceError
from repro.machine.pebs import SampleArrays
from repro.runtime.actions import SwitchKind

#: Format version written into every file; bumped on layout changes.
FORMAT_VERSION = 1

_KIND_CODE = {SwitchKind.ITEM_START: 0, SwitchKind.ITEM_END: 1}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def save_trace(
    path: str | pathlib.Path,
    samples_by_core: dict[int, SampleArrays],
    switches_by_core: dict[int, SwitchRecords],
    symtab: SymbolTable,
    meta: dict | None = None,
) -> None:
    """Write one trace container (compressed npz)."""
    arrays: dict[str, np.ndarray] = {}
    header = {
        "version": FORMAT_VERSION,
        "sample_cores": sorted(samples_by_core),
        "switch_cores": sorted(switches_by_core),
        "meta": meta or {},
    }
    arrays["header_json"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ).copy()
    arrays["sym_lo"] = np.asarray([s.lo for s in symtab], dtype=np.int64)
    arrays["sym_hi"] = np.asarray([s.hi for s in symtab], dtype=np.int64)
    arrays["sym_names"] = np.asarray([s.name for s in symtab], dtype="U128")
    for core, s in samples_by_core.items():
        arrays[f"core{core}_sample_ts"] = s.ts
        arrays[f"core{core}_sample_ip"] = s.ip
        arrays[f"core{core}_sample_tag"] = s.tag
    for core, r in switches_by_core.items():
        arrays[f"core{core}_switch_ts"] = r.ts
        arrays[f"core{core}_switch_item"] = r.item
        arrays[f"core{core}_switch_kind"] = np.asarray(
            [_KIND_CODE[k] for k in r.kinds], dtype=np.int8
        )
    np.savez_compressed(str(path), **arrays)


@dataclass
class TraceFile:
    """A loaded trace container."""

    symtab: SymbolTable
    meta: dict
    _samples: dict[int, SampleArrays]
    _switches: dict[int, SwitchRecords]

    @property
    def sample_cores(self) -> list[int]:
        return sorted(self._samples)

    def samples(self, core: int) -> SampleArrays:
        try:
            return self._samples[core]
        except KeyError:
            raise TraceError(f"trace file has no samples for core {core}")

    def switches(self, core: int) -> SwitchRecords:
        try:
            return self._switches[core]
        except KeyError:
            raise TraceError(f"trace file has no switch records for core {core}")

    def integrate(self, core: int) -> HybridTrace:
        """Run the paper's integration for one core, offline."""
        return integrate(self.samples(core), self.switches(core), self.symtab)


def load_trace(path: str | pathlib.Path) -> TraceFile:
    """Read a container written by :func:`save_trace`."""
    try:
        data = np.load(str(path), allow_pickle=False)
    except Exception as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    if "header_json" not in data:
        raise TraceError(f"{path} is not a repro trace file (no header)")
    header = json.loads(bytes(data["header_json"]).decode("utf-8"))
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"trace file version {header.get('version')} unsupported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    symtab = SymbolTable.from_ranges(
        {
            str(name): (int(lo), int(hi))
            for name, lo, hi in zip(data["sym_names"], data["sym_lo"], data["sym_hi"])
        }
    )
    samples: dict[int, SampleArrays] = {}
    for core in header["sample_cores"]:
        samples[core] = SampleArrays(
            ts=data[f"core{core}_sample_ts"],
            ip=data[f"core{core}_sample_ip"],
            tag=data[f"core{core}_sample_tag"],
        )
    switches: dict[int, SwitchRecords] = {}
    for core in header["switch_cores"]:
        r = SwitchRecords(core)
        kinds = data[f"core{core}_switch_kind"]
        for ts, item, kind in zip(
            data[f"core{core}_switch_ts"], data[f"core{core}_switch_item"], kinds
        ):
            r.append(int(ts), int(item), _CODE_KIND[int(kind)])
        switches[core] = r
    return TraceFile(
        symtab=symtab, meta=header["meta"], _samples=samples, _switches=switches
    )


def save_session(path: str | pathlib.Path, session, symtab: SymbolTable, meta: dict | None = None) -> None:
    """Persist a :class:`~repro.session.TraceSession` (samples + switches)."""
    samples = {c: u.finalize() for c, u in session.units.items()}
    switches = {
        c: session.tracer.records_for_core(c) for c in session.units
    }
    save_trace(path, samples, switches, symtab, meta)
