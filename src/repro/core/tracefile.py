"""Persistent trace files: dump a session, analyse offline.

The paper's prototype writes PEBS samples and switch logs to an SSD and
integrates them later (Section III-E).  This module is that workflow's
file format: one ``.npz`` container holding, per core, the raw sample
columns and switch records, plus the symbol table and free-form
metadata.  Loading gives everything needed to rerun the integration,
diagnosis, or call-graph guessing without the original process.

Two layouts share the container:

* **flat** (format version 1, still written when ``chunk_size`` is not
  given): one member per sample column per core.
* **chunked** (format version 2): each core's sample columns are split
  into bounded-size chunk members (``core{c}_s{k}_ts`` …).  Because npz
  members are decompressed individually on access, a chunked file can be
  integrated with bounded memory via :class:`TraceReader` — the layout
  behind :mod:`repro.core.streaming`.  The paper's data-rate analysis
  (Section IV-C3: 106–270 MB/s per core) is why this matters: a
  production trace does not fit in memory.

:func:`load_trace` reads both layouts; files written by version-1 code
load unchanged.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.core.hybrid import HybridTrace, integrate
from repro.core.records import (
    ItemWindow,
    SwitchRecords,
    WindowColumns,
    pair_switch_columns,
)
from repro.core.symbols import SymbolTable
from repro.errors import TraceError
from repro.machine.pebs import SampleArrays
from repro.runtime.actions import SwitchKind

#: Format version written into every file; bumped on layout changes.
#: Version 1 = flat per-core sample columns; version 2 adds the chunked
#: layout.  Readers accept 1..FORMAT_VERSION.
FORMAT_VERSION = 2

_KIND_CODE = {SwitchKind.ITEM_START: 0, SwitchKind.ITEM_END: 1}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def _symbol_arrays(symtab: SymbolTable) -> dict[str, np.ndarray]:
    names = [s.name for s in symtab]
    # Exact-width unicode dtype: a fixed "U128" silently truncated longer
    # symbol names (C++ mangled names easily exceed 128 chars).
    width = max((len(n) for n in names), default=1)
    return {
        "sym_lo": np.asarray([s.lo for s in symtab], dtype=np.int64),
        "sym_hi": np.asarray([s.hi for s in symtab], dtype=np.int64),
        "sym_names": np.asarray(names, dtype=f"U{max(width, 1)}"),
    }


def save_trace(
    path: str | pathlib.Path,
    samples_by_core: dict[int, SampleArrays],
    switches_by_core: dict[int, SwitchRecords],
    symtab: SymbolTable,
    meta: dict | None = None,
    *,
    chunk_size: int | None = None,
    compress: bool = True,
) -> None:
    """Write one trace container.

    ``chunk_size`` selects the version-2 chunked layout (each core's
    sample columns split into members of at most ``chunk_size`` samples);
    ``None`` keeps the flat layout that version-1 readers understand.
    ``compress=False`` writes a stored (uncompressed) zip — at the
    paper's per-core data rates, zlib becomes the ingest bottleneck.
    """
    if chunk_size is not None and chunk_size < 1:
        raise TraceError(f"chunk_size must be >= 1, got {chunk_size}")
    arrays: dict[str, np.ndarray] = {}
    header: dict = {
        "version": FORMAT_VERSION,
        "sample_cores": sorted(samples_by_core),
        "switch_cores": sorted(switches_by_core),
        "meta": meta or {},
    }
    if chunk_size is not None:
        header["chunk_size"] = chunk_size
        header["sample_chunks"] = {}
    arrays.update(_symbol_arrays(symtab))
    for core, s in samples_by_core.items():
        if chunk_size is None:
            arrays[f"core{core}_sample_ts"] = s.ts
            arrays[f"core{core}_sample_ip"] = s.ip
            arrays[f"core{core}_sample_tag"] = s.tag
        else:
            n_chunks = 0
            for k, chunk in enumerate(s.iter_chunks(chunk_size)):
                arrays[f"core{core}_s{k}_ts"] = chunk.ts
                arrays[f"core{core}_s{k}_ip"] = chunk.ip
                arrays[f"core{core}_s{k}_tag"] = chunk.tag
                n_chunks = k + 1
            header["sample_chunks"][str(core)] = n_chunks
    for core, r in switches_by_core.items():
        arrays[f"core{core}_switch_ts"] = r.ts
        arrays[f"core{core}_switch_item"] = r.item
        arrays[f"core{core}_switch_kind"] = np.asarray(
            [_KIND_CODE[k] for k in r.kinds], dtype=np.int8
        )
    arrays["header_json"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ).copy()
    writer = np.savez_compressed if compress else np.savez
    writer(str(path), **arrays)


@dataclass
class TraceFile:
    """A loaded trace container."""

    symtab: SymbolTable
    meta: dict
    _samples: dict[int, SampleArrays]
    _switches: dict[int, SwitchRecords]

    @property
    def sample_cores(self) -> list[int]:
        return sorted(self._samples)

    def samples(self, core: int) -> SampleArrays:
        try:
            return self._samples[core]
        except KeyError:
            raise TraceError(f"trace file has no samples for core {core}")

    def switches(self, core: int) -> SwitchRecords:
        try:
            return self._switches[core]
        except KeyError:
            raise TraceError(f"trace file has no switch records for core {core}")

    def integrate(self, core: int) -> HybridTrace:
        """Run the paper's integration for one core, offline."""
        return integrate(self.samples(core), self.switches(core), self.symtab)


def _open_container(path: str | pathlib.Path):
    """np.load + header parse shared by load_trace and TraceReader."""
    try:
        data = np.load(str(path), allow_pickle=False)
    except Exception as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    if "header_json" not in data:
        data.close()
        raise TraceError(f"{path} is not a repro trace file (no header)")
    try:
        header = json.loads(bytes(data["header_json"]).decode("utf-8"))
    except Exception as exc:
        data.close()
        raise TraceError(f"{path} has a corrupt header: {exc}") from exc
    version = header.get("version")
    if not isinstance(version, int) or not 1 <= version <= FORMAT_VERSION:
        data.close()
        raise TraceError(
            f"trace file version {version} unsupported "
            f"(this build reads versions 1..{FORMAT_VERSION})"
        )
    return data, header


def _load_symtab(data) -> SymbolTable:
    return SymbolTable.from_ranges(
        {
            str(name): (int(lo), int(hi))
            for name, lo, hi in zip(data["sym_names"], data["sym_lo"], data["sym_hi"])
        }
    )


def _sample_chunk_keys(header: dict, core: int) -> list[tuple[str, str, str]]:
    """Member-name triples (ts, ip, tag) for one core, in chunk order."""
    chunks = header.get("sample_chunks")
    if chunks is None:  # flat layout (v1, or v2 without chunking)
        return [
            (
                f"core{core}_sample_ts",
                f"core{core}_sample_ip",
                f"core{core}_sample_tag",
            )
        ]
    return [
        (f"core{core}_s{k}_ts", f"core{core}_s{k}_ip", f"core{core}_s{k}_tag")
        for k in range(int(chunks[str(core)]))
    ]


def load_trace(path: str | pathlib.Path) -> TraceFile:
    """Read a container written by :func:`save_trace` (any layout)."""
    data, header = _open_container(path)
    with data:
        symtab = _load_symtab(data)
        samples: dict[int, SampleArrays] = {}
        for core in header["sample_cores"]:
            try:
                parts = [
                    SampleArrays(ts=data[kt], ip=data[ki], tag=data[kg])
                    for kt, ki, kg in _sample_chunk_keys(header, core)
                ]
            except KeyError as exc:
                raise TraceError(
                    f"{path} is truncated: missing sample member {exc}"
                ) from exc
            if len(parts) == 1:
                samples[core] = parts[0]
            elif not parts:  # a sampled core that took no samples
                empty = np.empty(0, dtype=np.int64)
                samples[core] = SampleArrays(ts=empty, ip=empty.copy(), tag=empty.copy())
            else:
                samples[core] = SampleArrays(
                    ts=np.concatenate([p.ts for p in parts]),
                    ip=np.concatenate([p.ip for p in parts]),
                    tag=np.concatenate([p.tag for p in parts]),
                )
        switches: dict[int, SwitchRecords] = {}
        for core in header["switch_cores"]:
            kinds = [
                _CODE_KIND[int(c)] for c in data[f"core{core}_switch_kind"].tolist()
            ]
            switches[core] = SwitchRecords.from_arrays(
                core, data[f"core{core}_switch_ts"], data[f"core{core}_switch_item"], kinds
            )
    return TraceFile(
        symtab=symtab, meta=header["meta"], _samples=samples, _switches=switches
    )


class TraceReader:
    """Bounded-memory view of a trace container.

    Unlike :func:`load_trace`, which materialises every core's columns,
    a reader parses only the header and symbol table up front and hands
    out sample *chunks* on demand — npz members are decompressed
    individually, so a chunked (version-2) file never needs more than one
    chunk of one core in memory.  Flat files are supported for backward
    compatibility, but their per-core columns are decompressed whole on
    first access (the best a v1 layout allows); chunk iteration then
    slices views.

    Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._npz, self._header = _open_container(path)
        self.symtab = _load_symtab(self._npz)
        self.meta: dict = self._header["meta"]
        self.version: int = self._header["version"]
        #: Chunk size the file was written with (None for flat layouts).
        self.stored_chunk_size: int | None = self._header.get("chunk_size")

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        self._npz.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure -------------------------------------------------------
    @property
    def sample_cores(self) -> list[int]:
        return sorted(self._header["sample_cores"])

    @property
    def switch_cores(self) -> list[int]:
        return sorted(self._header["switch_cores"])

    def _check_core(self, core: int) -> None:
        if core not in self._header["sample_cores"]:
            raise TraceError(f"trace file has no samples for core {core}")

    def n_switch_records(self, core: int) -> int:
        if core not in self._header["switch_cores"]:
            raise TraceError(f"trace file has no switch records for core {core}")
        return int(self._npz[f"core{core}_switch_ts"].shape[0])

    # -- data ------------------------------------------------------------
    def iter_sample_chunks(self, core: int, chunk_size: int | None = None):
        """Yield one core's samples as bounded chunks, in time order.

        ``chunk_size`` re-slices stored chunks (or a flat column) into
        pieces of at most that many samples; ``None`` yields the file's
        own chunking (the whole column for flat files).
        """
        self._check_core(core)
        if chunk_size is not None and chunk_size < 1:
            raise TraceError(f"chunk_size must be >= 1, got {chunk_size}")
        for kt, ki, kg in _sample_chunk_keys(self._header, core):
            try:
                stored = SampleArrays(
                    ts=self._npz[kt], ip=self._npz[ki], tag=self._npz[kg]
                )
            except KeyError as exc:
                raise TraceError(
                    f"{self.path} is truncated: missing sample member {exc}"
                ) from exc
            if chunk_size is None:
                yield stored
            else:
                yield from stored.iter_chunks(chunk_size)

    def switch_window_columns(self, core: int) -> WindowColumns:
        """Per-item residency windows for one core, as column arrays.

        Switch logs are two records per data-item — small next to the
        sample stream — so they are read whole; the pairing itself avoids
        the per-record state machine on well-formed logs, and the column
        form never materialises per-window Python objects.
        """
        if core not in self._header["switch_cores"]:
            raise TraceError(f"trace file has no switch records for core {core}")
        return pair_switch_columns(
            core,
            self._npz[f"core{core}_switch_ts"],
            self._npz[f"core{core}_switch_item"],
            self._npz[f"core{core}_switch_kind"],
            start_code=_KIND_CODE[SwitchKind.ITEM_START],
            end_code=_KIND_CODE[SwitchKind.ITEM_END],
        )

    def switch_windows(self, core: int) -> list[ItemWindow]:
        """Per-item residency windows for one core, as objects."""
        return self.switch_window_columns(core).to_windows()

    def switches(self, core: int) -> SwitchRecords:
        """One core's switch log as a :class:`SwitchRecords` object."""
        if core not in self._header["switch_cores"]:
            raise TraceError(f"trace file has no switch records for core {core}")
        kinds = [
            _CODE_KIND[int(c)] for c in self._npz[f"core{core}_switch_kind"].tolist()
        ]
        return SwitchRecords.from_arrays(
            core,
            self._npz[f"core{core}_switch_ts"],
            self._npz[f"core{core}_switch_item"],
            kinds,
        )


def save_session(
    path: str | pathlib.Path,
    session,
    symtab: SymbolTable,
    meta: dict | None = None,
    *,
    chunk_size: int | None = None,
    compress: bool = True,
) -> None:
    """Persist a :class:`~repro.session.TraceSession` (samples + switches)."""
    samples = {c: u.finalize() for c, u in session.units.items()}
    switches = {
        c: session.tracer.records_for_core(c) for c in session.units
    }
    save_trace(
        path,
        samples,
        switches,
        symtab,
        meta,
        chunk_size=chunk_size,
        compress=compress,
    )
