"""Persistent trace files: dump a session, analyse offline.

The paper's prototype writes PEBS samples and switch logs to an SSD and
integrates them later (Section III-E).  This module is that workflow's
file format: one ``.npz`` container holding, per core, the raw sample
columns and switch records, plus the symbol table and free-form
metadata.  Loading gives everything needed to rerun the integration,
diagnosis, or call-graph guessing without the original process.

Three layouts share the container:

* **flat** (format version 1, still written when ``chunk_size`` is not
  given): one member per sample column per core.
* **chunked** (format version 2): each core's sample columns are split
  into bounded-size chunk members (``core{c}_s{k}_ts`` …).  Because npz
  members are decompressed individually on access, a chunked file can be
  integrated with bounded memory via :class:`TraceReader` — the layout
  behind :mod:`repro.core.streaming`.  The paper's data-rate analysis
  (Section IV-C3: 106–270 MB/s per core) is why this matters: a
  production trace does not fit in memory.
* **checksummed** (format version 3): either layout plus a per-member
  crc32 map and per-chunk row counts in the header, so a reader can
  detect bit rot, torn writes, and truncation *before* integrating — and,
  under a lenient corruption policy, skip or repair the damage instead of
  aborting (see :mod:`repro.core.integrity`).

:func:`load_trace` and :class:`TraceReader` read all three layouts;
files written by version-1 or version-2 code load unchanged.
"""

from __future__ import annotations

import bisect
import json
import os
import pathlib
import zipfile
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.hybrid import HybridTrace, integrate, integrate_degraded
from repro.core.integrity import (
    KIND_CHECKSUM,
    KIND_LENGTH,
    KIND_MISSING,
    KIND_ORDER,
    KIND_SWITCH,
    KIND_UNREADABLE,
    POLICY_REPAIR,
    POLICY_STRICT,
    CoverageStats,
    Defect,
    QuarantineLog,
    check_policy,
    member_crc,
)
from repro.core.records import (
    ItemWindow,
    SwitchRecords,
    WindowColumns,
    pair_switch_columns,
    pair_switch_columns_lenient,
)
from repro.core.symbols import SymbolTable
from repro.errors import CorruptionError, TraceError, TraceWriteError
from repro.machine.pebs import SampleArrays
from repro.obs.instrumented import pipeline as _obs
from repro.runtime.actions import SwitchKind
from repro.runtime.waitedge import WaitColumns

#: Format version written into every file; bumped on layout changes.
#: Version 1 = flat per-core sample columns; version 2 adds the chunked
#: layout; version 3 adds the crc32 member checksums and per-chunk row
#: counts.  Readers accept 1..FORMAT_VERSION.
FORMAT_VERSION = 3

_KIND_CODE = {SwitchKind.ITEM_START: 0, SwitchKind.ITEM_END: 1}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}

#: Exceptions np.load / npz member access raise on damaged containers.
_READ_ERRORS = (OSError, ValueError, EOFError, zipfile.BadZipFile, zlib.error)

#: Column suffixes of the optional per-core wait-edge member set
#: (``core{c}_wait_<col>``).  The member set is *optional* within format
#: version 3: containers without it (older writers, journal recovery)
#: load unchanged, and readers report an empty edge list.
_WAIT_COLS = (
    "ts",
    "cycles",
    "kind",
    "queue",
    "blocker_core",
    "blocker_ip",
    "waiter_ip",
)


def _wait_member_names(core: int) -> list[str]:
    return [f"core{core}_wait_{col}" for col in _WAIT_COLS]


def _symbol_arrays(symtab: SymbolTable) -> dict[str, np.ndarray]:
    names = [s.name for s in symtab]
    # Exact-width unicode dtype: a fixed "U128" silently truncated longer
    # symbol names (C++ mangled names easily exceed 128 chars).
    width = max((len(n) for n in names), default=1)
    return {
        "sym_lo": np.asarray([s.lo for s in symtab], dtype=np.int64),
        "sym_hi": np.asarray([s.hi for s in symtab], dtype=np.int64),
        "sym_names": np.asarray(names, dtype=f"U{max(width, 1)}"),
    }


def container_path(path: str | pathlib.Path) -> pathlib.Path:
    """The on-disk name a container write lands at.

    Mirrors ``np.savez``'s historical behaviour of appending ``.npz`` to
    extension-less names, so the atomic write path names the same file
    the legacy direct write did.
    """
    p = pathlib.Path(path)
    return p if p.name.endswith(".npz") else p.with_name(p.name + ".npz")


#: OS error numbers worth naming in a TraceWriteError message.
_ERRNO_HINTS = {
    28: "disk full (ENOSPC)",
    13: "permission denied (EACCES)",
    30: "read-only filesystem (EROFS)",
    122: "quota exceeded (EDQUOT)",
}


def _write_error(path, exc: OSError) -> TraceWriteError:
    hint = _ERRNO_HINTS.get(exc.errno or 0)
    what = f"{hint}: {exc}" if hint else str(exc)
    return TraceWriteError(f"cannot write trace file {path}: {what}")


def atomic_savez(
    path: str | pathlib.Path, arrays: dict[str, np.ndarray], *, compress: bool
) -> pathlib.Path:
    """Durably write an npz container: temp file + fsync + ``os.replace``.

    A crash at any instant leaves either the previous file intact or the
    new one complete — never a truncated container.  Parent directories
    are created, and storage failures surface as
    :class:`~repro.errors.TraceWriteError` instead of a raw ``OSError``.
    Returns the final path (``.npz`` appended when missing, matching
    ``np.savez``).
    """
    final = container_path(path)
    tmp = final.with_name(final.name + ".tmp")
    writer = np.savez_compressed if compress else np.savez
    try:
        if final.parent and not final.parent.exists():
            final.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fh:
            writer(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise _write_error(final, exc) from exc
    return final


def build_container_members(
    samples_by_core: dict[int, "SampleArrays | list[SampleArrays]"],
    switches_by_core: dict[int, SwitchRecords],
    symtab: SymbolTable,
    meta: dict | None,
    *,
    chunk_size: int | None,
    checksums: bool,
    waits_by_core: dict[int, WaitColumns] | None = None,
) -> dict[str, np.ndarray]:
    """Assemble the member dict of one v3 container (header included).

    A core's samples may be a single :class:`SampleArrays` (chunked by
    ``chunk_size``, or flat when it is ``None``) or an explicit list of
    chunks — the form journal recovery produces, where chunk boundaries
    are whatever segments survived and need not share a size.

    ``waits_by_core`` adds the optional wait-edge member set (one
    ``core{c}_wait_*`` column group per core plus the shared
    ``wait_queue_names`` table); readers that predate it skip unknown
    members, so the format version does not change.
    """
    arrays: dict[str, np.ndarray] = {}
    header: dict = {
        "version": FORMAT_VERSION,
        "sample_cores": sorted(samples_by_core),
        "switch_cores": sorted(switches_by_core),
        "meta": meta or {},
        "chunk_rows": {},
    }
    pre_chunked = any(isinstance(s, list) for s in samples_by_core.values())
    if chunk_size is not None or pre_chunked:
        if chunk_size is not None:
            header["chunk_size"] = chunk_size
        header["sample_chunks"] = {}
    data_members: list[str] = []
    for core, s in samples_by_core.items():
        if chunk_size is None and not isinstance(s, list):
            arrays[f"core{core}_sample_ts"] = s.ts
            arrays[f"core{core}_sample_ip"] = s.ip
            arrays[f"core{core}_sample_tag"] = s.tag
            data_members += [
                f"core{core}_sample_ts",
                f"core{core}_sample_ip",
                f"core{core}_sample_tag",
            ]
            header["chunk_rows"][str(core)] = [len(s)]
        else:
            chunks = s if isinstance(s, list) else s.iter_chunks(chunk_size)
            n_chunks = 0
            rows: list[int] = []
            for k, chunk in enumerate(chunks):
                arrays[f"core{core}_s{k}_ts"] = chunk.ts
                arrays[f"core{core}_s{k}_ip"] = chunk.ip
                arrays[f"core{core}_s{k}_tag"] = chunk.tag
                data_members += [
                    f"core{core}_s{k}_ts",
                    f"core{core}_s{k}_ip",
                    f"core{core}_s{k}_tag",
                ]
                rows.append(len(chunk))
                n_chunks = k + 1
            header["sample_chunks"][str(core)] = n_chunks
            header["chunk_rows"][str(core)] = rows
    for core, r in switches_by_core.items():
        arrays[f"core{core}_switch_ts"] = r.ts
        arrays[f"core{core}_switch_item"] = r.item
        arrays[f"core{core}_switch_kind"] = np.asarray(
            [_KIND_CODE[k] for k in r.kinds], dtype=np.int8
        )
        data_members += [
            f"core{core}_switch_ts",
            f"core{core}_switch_item",
            f"core{core}_switch_kind",
        ]
    if waits_by_core:
        header["wait_cores"] = sorted(waits_by_core)
        queue_names: tuple[str, ...] = ()
        for core, w in waits_by_core.items():
            for col in _WAIT_COLS:
                name = f"core{core}_wait_{col}"
                arrays[name] = getattr(w, col)
                data_members.append(name)
            queue_names = queue_names or w.queue_names
        width = max((len(n) for n in queue_names), default=1)
        # Uncrc'd like the symbol-table members: a small name table whose
        # damage surfaces as a read error, not silent misattribution.
        arrays["wait_queue_names"] = np.asarray(
            list(queue_names), dtype=f"U{max(width, 1)}"
        )
    arrays.update(_symbol_arrays(symtab))
    if checksums:
        header["crc32"] = {name: member_crc(arrays[name]) for name in data_members}
    arrays["header_json"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ).copy()
    return arrays


def save_trace(
    path: str | pathlib.Path,
    samples_by_core: dict[int, SampleArrays],
    switches_by_core: dict[int, SwitchRecords],
    symtab: SymbolTable,
    meta: dict | None = None,
    *,
    chunk_size: int | None = None,
    compress: bool = True,
    checksums: bool = True,
    waits_by_core: dict[int, WaitColumns] | None = None,
) -> None:
    """Write one trace container.

    ``chunk_size`` selects the chunked layout (each core's sample columns
    split into members of at most ``chunk_size`` samples); ``None`` keeps
    the flat layout that version-1 readers understand.
    ``compress=False`` writes a stored (uncompressed) zip — at the
    paper's per-core data rates, zlib becomes the ingest bottleneck.
    ``checksums=False`` omits the version-3 crc32 map (readers then skip
    checksum validation, as for files written by older versions).

    The write is atomic (temp file + ``os.replace``), parent directories
    are created, and storage failures raise
    :class:`~repro.errors.TraceWriteError` — an interrupted re-save never
    truncates an existing good trace.
    """
    if chunk_size is not None and chunk_size < 1:
        raise TraceError(f"chunk_size must be >= 1, got {chunk_size}")
    arrays = build_container_members(
        samples_by_core,
        switches_by_core,
        symtab,
        meta,
        chunk_size=chunk_size,
        checksums=checksums,
        waits_by_core=waits_by_core,
    )
    atomic_savez(path, arrays, compress=compress)


@dataclass
class TraceFile:
    """A loaded trace container."""

    symtab: SymbolTable
    meta: dict
    _samples: dict[int, SampleArrays]
    _switches: dict[int, SwitchRecords]
    _waits: dict[int, WaitColumns] = field(default_factory=dict)

    @property
    def sample_cores(self) -> list[int]:
        return sorted(self._samples)

    @property
    def wait_cores(self) -> list[int]:
        """Cores with recorded wait edges (empty for older containers)."""
        return sorted(self._waits)

    def waits(self, core: int) -> WaitColumns:
        """One core's wait edges; empty columns when the container has
        none (pre-wait-edge writers, journal recovery) — never an error,
        so blocked-by diagnosis degrades to an empty graph."""
        got = self._waits.get(core)
        return got if got is not None else WaitColumns.empty()

    def samples(self, core: int) -> SampleArrays:
        try:
            return self._samples[core]
        except KeyError:
            raise TraceError(f"trace file has no samples for core {core}")

    def switches(self, core: int) -> SwitchRecords:
        try:
            return self._switches[core]
        except KeyError:
            raise TraceError(f"trace file has no switch records for core {core}")

    def integrate(self, core: int, *, lenient: bool | None = None) -> HybridTrace:
        """Run the paper's integration for one core, offline.

        ``lenient=None`` (the default) auto-detects: containers sealed
        *mid-run* — flight-recorder incident bundles (``incident`` meta)
        and signal-interrupted durable sessions (``interrupted`` meta) —
        necessarily cut items in flight, leaving dangling START marks
        that strict integration rejects.  Those route through
        :func:`~repro.core.hybrid.integrate_degraded`, which pairs what
        genuinely paired and drops the cut marks.  Pass ``lenient=True``
        / ``False`` to force either path.
        """
        if lenient is None:
            lenient = "incident" in self.meta or "interrupted" in self.meta
        if lenient:
            trace, _coverage = integrate_degraded(
                self.samples(core), self.switches(core), self.symtab
            )
            return trace
        return integrate(self.samples(core), self.switches(core), self.symtab)


def _open_container(path: str | pathlib.Path):
    """np.load + header parse shared by load_trace and TraceReader."""
    try:
        data = np.load(str(path), allow_pickle=False)
    except _READ_ERRORS as exc:
        # Narrowed deliberately: KeyboardInterrupt and MemoryError must
        # propagate during ingestion instead of masquerading as a corrupt
        # file.
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    if "header_json" not in data:
        data.close()
        raise TraceError(f"{path} is not a repro trace file (no header)")
    try:
        header = json.loads(bytes(data["header_json"]).decode("utf-8"))
    except ValueError as exc:  # covers UnicodeDecodeError and JSONDecodeError
        data.close()
        raise TraceError(f"{path} has a corrupt header: {exc}") from exc
    version = header.get("version")
    if not isinstance(version, int) or not 1 <= version <= FORMAT_VERSION:
        data.close()
        raise TraceError(
            f"trace file version {version} unsupported "
            f"(this build reads versions 1..{FORMAT_VERSION})"
        )
    return data, header


def _load_symtab(data) -> SymbolTable:
    return SymbolTable.from_ranges(
        {
            str(name): (int(lo), int(hi))
            for name, lo, hi in zip(data["sym_names"], data["sym_lo"], data["sym_hi"])
        }
    )


def _sample_chunk_keys(header: dict, core: int) -> list[tuple[str, str, str]]:
    """Member-name triples (ts, ip, tag) for one core, in chunk order."""
    chunks = header.get("sample_chunks")
    if chunks is None:  # flat layout (v1, or later versions without chunking)
        return [
            (
                f"core{core}_sample_ts",
                f"core{core}_sample_ip",
                f"core{core}_sample_tag",
            )
        ]
    return [
        (f"core{core}_s{k}_ts", f"core{core}_s{k}_ip", f"core{core}_s{k}_tag")
        for k in range(int(chunks[str(core)]))
    ]


def _read_wait_columns(data, header: dict, core: int, getter) -> WaitColumns:
    """Load one core's optional wait-edge columns via ``getter``.

    Any missing member degrades to empty columns — the member set is
    optional by contract, so a partially present one (hand-truncated
    file, older tooling that rewrote the container) must not make a
    reader refuse data it can otherwise serve.
    """
    if core not in (header.get("wait_cores") or []):
        return WaitColumns.empty()
    try:
        cols = {col: getter(f"core{core}_wait_{col}") for col in _WAIT_COLS}
        names = tuple(str(n) for n in data["wait_queue_names"])
    except KeyError:
        return WaitColumns.empty()
    return WaitColumns(queue_names=names, **cols)


def _monotone_keep_mask(ts: np.ndarray) -> np.ndarray:
    """Mask keeping a longest non-decreasing subsequence of ``ts``.

    The repair policy's record-level surgery: records outside some
    longest non-decreasing subsequence are the minimal set whose removal
    restores sample order, so a single flipped timestamp costs exactly
    one record rather than the tail (or head) of the chunk.
    """
    n = int(ts.shape[0])
    tails: list[int] = []       # last value of the best subsequence per length
    tails_idx: list[int] = []   # index of that value
    prev = np.full(n, -1, dtype=np.int64)
    for i, v in enumerate(ts.tolist()):
        j = bisect.bisect_right(tails, v)
        if j == len(tails):
            tails.append(v)
            tails_idx.append(i)
        else:
            tails[j] = v
            tails_idx[j] = i
        if j > 0:
            prev[i] = tails_idx[j - 1]
    keep = np.zeros(n, dtype=bool)
    i = tails_idx[-1] if tails_idx else -1
    while i != -1:
        keep[i] = True
        i = int(prev[i])
    return keep


def load_trace(
    path: str | pathlib.Path, *, verify_checksums: bool = True
) -> TraceFile:
    """Read a container written by :func:`save_trace` (any layout).

    When the file carries the version-3 crc32 map, every data member is
    verified against it; a mismatch raises
    :class:`~repro.errors.CorruptionError`.  ``verify_checksums=False``
    skips that (e.g. to salvage what loads from a damaged file — for a
    policy-driven alternative use :class:`TraceReader` with
    :mod:`repro.core.streaming`).
    """
    data, header = _open_container(path)
    crc_map = (header.get("crc32") or {}) if verify_checksums else {}

    def _member(key: str) -> np.ndarray:
        arr = data[key]
        want = crc_map.get(key)
        if want is not None and member_crc(arr) != int(want):
            raise CorruptionError(
                f"{path}: member {key} fails its crc32 check (stored {want})"
            )
        return arr

    with data:
        symtab = _load_symtab(data)
        samples: dict[int, SampleArrays] = {}
        for core in header["sample_cores"]:
            try:
                parts = [
                    SampleArrays(ts=_member(kt), ip=_member(ki), tag=_member(kg))
                    for kt, ki, kg in _sample_chunk_keys(header, core)
                ]
            except KeyError as exc:
                raise TraceError(
                    f"{path} is truncated: missing sample member {exc}"
                ) from exc
            if len(parts) == 1:
                samples[core] = parts[0]
            elif not parts:  # a sampled core that took no samples
                empty = np.empty(0, dtype=np.int64)
                samples[core] = SampleArrays(ts=empty, ip=empty.copy(), tag=empty.copy())
            else:
                samples[core] = SampleArrays(
                    ts=np.concatenate([p.ts for p in parts]),
                    ip=np.concatenate([p.ip for p in parts]),
                    tag=np.concatenate([p.tag for p in parts]),
                )
        switches: dict[int, SwitchRecords] = {}
        for core in header["switch_cores"]:
            kinds = [
                _CODE_KIND[int(c)]
                for c in _member(f"core{core}_switch_kind").tolist()
            ]
            switches[core] = SwitchRecords.from_arrays(
                core,
                _member(f"core{core}_switch_ts"),
                _member(f"core{core}_switch_item"),
                kinds,
            )
        waits: dict[int, WaitColumns] = {}
        for core in header.get("wait_cores") or []:
            w = _read_wait_columns(data, header, core, _member)
            if len(w):
                waits[core] = w
    return TraceFile(
        symtab=symtab,
        meta=header["meta"],
        _samples=samples,
        _switches=switches,
        _waits=waits,
    )


class TraceReader:
    """Bounded-memory view of a trace container.

    Unlike :func:`load_trace`, which materialises every core's columns,
    a reader parses only the header and symbol table up front and hands
    out sample *chunks* on demand — npz members are decompressed
    individually, so a chunked file never needs more than one chunk of
    one core in memory.  Flat files are supported for backward
    compatibility, but their per-core columns are decompressed whole on
    first access (the best a v1 layout allows); chunk iteration then
    slices views.

    Per-chunk integrity checks (missing members, column-length agreement,
    crc32 when the v3 map is present, timestamp monotonicity) run on
    every access; the ``policy`` argument of the data methods selects
    what a failed check does — ``"strict"`` raises, ``"quarantine"``
    skips the chunk and records a :class:`~repro.core.integrity.Defect`,
    ``"repair"`` drops only the offending records where the corruption
    can be localised (falling back to quarantining the chunk where it
    cannot).

    Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._npz, self._header = _open_container(path)
        self.symtab = _load_symtab(self._npz)
        self.meta: dict = self._header["meta"]
        self.version: int = self._header["version"]
        #: Chunk size the file was written with (None for flat layouts).
        self.stored_chunk_size: int | None = self._header.get("chunk_size")
        self._crc: dict = self._header.get("crc32") or {}

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        self._npz.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- structure -------------------------------------------------------
    @property
    def sample_cores(self) -> list[int]:
        return sorted(self._header["sample_cores"])

    @property
    def switch_cores(self) -> list[int]:
        return sorted(self._header["switch_cores"])

    def _check_core(self, core: int) -> None:
        if core not in self._header["sample_cores"]:
            raise TraceError(f"trace file has no samples for core {core}")

    def n_switch_records(self, core: int) -> int:
        if core not in self._header["switch_cores"]:
            raise TraceError(f"trace file has no switch records for core {core}")
        return int(self._npz[f"core{core}_switch_ts"].shape[0])

    def _chunk_rows(self, core: int) -> list[int] | None:
        """Stored per-chunk row counts (v3), or None for older files."""
        rows = self._header.get("chunk_rows")
        if rows is None:
            return None
        got = rows.get(str(core))
        return [int(r) for r in got] if got is not None else None

    # -- data ------------------------------------------------------------
    def iter_sample_chunks(
        self,
        core: int,
        chunk_size: int | None = None,
        *,
        policy: str = POLICY_STRICT,
        quarantine: QuarantineLog | None = None,
        coverage: CoverageStats | None = None,
    ):
        """Yield one core's samples as bounded, integrity-checked chunks.

        ``chunk_size`` re-slices stored chunks (or a flat column) into
        pieces of at most that many samples; ``None`` yields the file's
        own chunking (the whole column for flat files).

        Under ``"repair"``, chunks that are internally sorted but start
        before the previous chunk's end are yielded as-is (no data is
        lost); the consumer must tolerate out-of-order chunks — feed them
        to a :class:`~repro.core.streaming.StreamingIntegrator` built
        with ``tolerate_reorder=True``.  ``quarantine`` and ``coverage``
        collect the defect and coverage accounting when given.
        """
        check_policy(policy)
        self._check_core(core)
        if chunk_size is not None and chunk_size < 1:
            raise TraceError(f"chunk_size must be >= 1, got {chunk_size}")
        quarantine = quarantine if quarantine is not None else QuarantineLog()
        coverage = coverage if coverage is not None else CoverageStats(core=core)
        for stored in self._validated_chunks(core, policy, quarantine, coverage):
            if chunk_size is None:
                yield stored
            else:
                yield from stored.iter_chunks(chunk_size)

    def _load_members(
        self, names: tuple[str, str, str]
    ) -> tuple[list[np.ndarray] | None, str, str]:
        """Load a chunk's column members; (arrays, defect_kind, detail)."""
        out = []
        for name in names:
            try:
                out.append(self._npz[name])
            except KeyError:
                return None, KIND_MISSING, f"member {name} is absent"
            except _READ_ERRORS as exc:
                return None, KIND_UNREADABLE, f"member {name}: {exc}"
        return out, "", ""

    def _validated_chunks(
        self,
        core: int,
        policy: str,
        quarantine: QuarantineLog,
        coverage: CoverageStats,
    ):
        """Generator behind :meth:`iter_sample_chunks`: one stored chunk a time."""
        ins = _obs()
        expected_rows = self._chunk_rows(core)
        prev_last: int | None = None
        for idx, names in enumerate(_sample_chunk_keys(self._header, core)):
            n_expected = (
                expected_rows[idx]
                if expected_rows is not None and idx < len(expected_rows)
                else -1
            )
            arrays, kind, detail = self._load_members(names)
            if arrays is None:
                if policy == POLICY_STRICT:
                    raise CorruptionError(
                        f"{self.path} is truncated or unreadable: {detail}"
                    )
                # Nothing to repair when the bytes are gone: both lenient
                # policies drop the chunk.  Without its timestamps the
                # affected span is open-ended from the previous chunk on.
                quarantine.record(
                    Defect(
                        core=core,
                        kind=kind,
                        member=names[0],
                        detail=detail + " (chunk dropped)",
                        records_lost=n_expected,
                        ts_lo=prev_last,
                        ts_hi=None,
                    )
                )
                coverage.chunks_dropped += 1
                ins.chunks_quarantined.inc()
                if n_expected >= 0:
                    coverage.samples_dropped += n_expected
                    ins.samples_dropped.inc(n_expected)
                else:
                    coverage.unknown_extent = True
                continue
            ts, ip, tag = arrays
            ins.bytes_read.inc(
                int(ts.nbytes) + int(ip.nbytes) + int(tag.nbytes)
            )
            chunk, ok = self._check_chunk(
                core, names, ts, ip, tag, n_expected, policy,
                prev_last, quarantine, coverage,
            )
            if not ok:
                continue
            if len(chunk):
                last = int(chunk.ts[-1])
                prev_last = last if prev_last is None else max(prev_last, last)
            yield chunk

    def _check_chunk(
        self,
        core: int,
        names: tuple[str, str, str],
        ts: np.ndarray,
        ip: np.ndarray,
        tag: np.ndarray,
        n_expected: int,
        policy: str,
        prev_last: int | None,
        quarantine: QuarantineLog,
        coverage: CoverageStats,
    ) -> tuple[SampleArrays, bool]:
        """Validate one stored chunk; returns (chunk, keep)."""
        member = names[0]
        ins = _obs()

        def drop(kind: str, detail: str, lost: int, lo, hi) -> tuple[SampleArrays, bool]:
            quarantine.record(
                Defect(
                    core=core, kind=kind, member=member,
                    detail=detail + " (chunk dropped)",
                    records_lost=lost, ts_lo=lo, ts_hi=hi,
                )
            )
            coverage.chunks_dropped += 1
            ins.chunks_quarantined.inc()
            if lost >= 0:
                coverage.samples_dropped += lost
                ins.samples_dropped.inc(lost)
            else:
                coverage.unknown_extent = True
            return SampleArrays(ts=ts, ip=ip, tag=tag), False

        # 1. Column lengths must agree (torn write / partial member).
        lens = (int(ts.shape[0]), int(ip.shape[0]), int(tag.shape[0]))
        repaired = False
        if len(set(lens)) != 1:
            m = min(lens)
            n_stored = n_expected if n_expected >= 0 else max(lens)
            detail = f"column lengths disagree {lens}"
            if policy == POLICY_STRICT:
                raise CorruptionError(f"{self.path} [{member}]: {detail}")
            span_lo = int(ts[m]) if int(ts.shape[0]) > m else prev_last
            span_hi = int(ts[-1]) if int(ts.shape[0]) > m else None
            if policy == POLICY_REPAIR and m > 0:
                quarantine.record(
                    Defect(
                        core=core, kind=KIND_LENGTH, member=member,
                        detail=detail + f" (truncated to {m} aligned records)",
                        records_lost=max(n_stored - m, 0),
                        ts_lo=span_lo, ts_hi=span_hi,
                    )
                )
                coverage.samples_dropped += max(n_stored - m, 0)
                coverage.chunks_repaired += 1
                ins.samples_dropped.inc(max(n_stored - m, 0))
                ins.chunks_repaired.inc()
                ts, ip, tag = ts[:m], ip[:m], tag[:m]
                repaired = True
            else:
                return drop(
                    KIND_LENGTH, detail, n_stored,
                    int(ts[0]) if len(ts) else prev_last,
                    int(ts[-1]) if len(ts) else None,
                )

        # 2. crc32 vs the v3 map (absent for older files -> skipped).
        bad_crc = [
            name
            for name, arr in zip(names, (ts, ip, tag))
            if not repaired
            and name in self._crc
            and member_crc(arr) != int(self._crc[name])
        ]
        if bad_crc:
            ins.crc_failures.inc(len(bad_crc))
        # 3. Timestamp monotonicity within the chunk.
        unsorted = bool(ts.shape[0]) and bool(np.any(np.diff(ts) < 0))

        if bad_crc and not unsorted:
            # Corruption that cannot be localised to records: the flipped
            # bits left the timestamps ordered (or hit ip/tag), so no
            # record can be singled out — even repair drops the chunk.
            detail = f"crc32 mismatch in {', '.join(bad_crc)}"
            if policy == POLICY_STRICT:
                raise CorruptionError(f"{self.path} [{member}]: {detail}")
            return drop(
                KIND_CHECKSUM, detail, len(ts),
                int(ts.min()) if len(ts) else prev_last,
                int(ts.max()) if len(ts) else None,
            )
        if unsorted:
            detail = "timestamps out of order within chunk" + (
                f" (crc32 mismatch in {', '.join(bad_crc)})" if bad_crc else ""
            )
            if policy == POLICY_STRICT:
                raise CorruptionError(f"{self.path} [{member}]: {detail}")
            if policy != POLICY_REPAIR:
                return drop(
                    KIND_ORDER, detail, len(ts), int(ts.min()), int(ts.max())
                )
            # Repair: drop the minimal record set whose removal restores
            # order (a flipped timestamp localises itself by breaking it).
            keep = _monotone_keep_mask(ts)
            lost = int(np.count_nonzero(~keep))
            lo, hi = self._dropped_span(ts, keep, prev_last)
            quarantine.record(
                Defect(
                    core=core, kind=KIND_ORDER, member=member,
                    detail=detail + f" ({lost} offending record(s) dropped)",
                    records_lost=lost, ts_lo=lo, ts_hi=hi,
                )
            )
            coverage.samples_dropped += lost
            coverage.chunks_repaired += 1
            ins.samples_dropped.inc(lost)
            ins.chunks_repaired.inc()
            ts, ip, tag = ts[keep], ip[keep], tag[keep]
            repaired = True

        # 4. Cross-chunk order: a chunk starting before the previous
        #    chunk's end means the chunks were stored out of order.
        if (
            len(ts)
            and prev_last is not None
            and int(ts[0]) < prev_last
        ):
            detail = (
                f"chunk starts at {int(ts[0])}, before previous chunk end {prev_last}"
            )
            if policy == POLICY_STRICT:
                raise CorruptionError(f"{self.path} [{member}]: {detail}")
            if policy != POLICY_REPAIR:
                return drop(KIND_ORDER, detail, len(ts), int(ts[0]), int(ts[-1]))
            # Repair: nothing is corrupt inside the chunk — yield it and
            # let a reorder-tolerant integrator merge it (no data lost).

        if repaired:
            coverage.samples_kept += len(ts)
        else:
            coverage.chunks_kept += 1
            coverage.samples_kept += len(ts)
            ins.chunks_validated.inc()
        return SampleArrays(ts=ts, ip=ip, tag=tag), True

    @staticmethod
    def _dropped_span(
        ts: np.ndarray, keep: np.ndarray, prev_last: int | None
    ) -> tuple[int | None, int | None]:
        """Trustworthy ts bounds around dropped records (for Defect spans).

        Dropped records carry corrupt timestamps, so the span is taken
        from their nearest *kept* neighbours instead.
        """
        kept_pos = np.nonzero(keep)[0]
        lo: int | None = None
        hi: int | None = None
        open_hi = False
        for i in np.nonzero(~keep)[0].tolist():
            left = kept_pos[kept_pos < i]
            right = kept_pos[kept_pos > i]
            lo_i = int(ts[left[-1]]) if len(left) else prev_last
            if lo_i is not None:
                lo = lo_i if lo is None else min(lo, lo_i)
            if len(right):
                hi_i = int(ts[right[0]])
                hi = hi_i if hi is None else max(hi, hi_i)
            else:
                open_hi = True
        return lo, (None if open_hi else hi)

    def _switch_arrays(
        self, core: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if core not in self._header["switch_cores"]:
            raise TraceError(f"trace file has no switch records for core {core}")
        return (
            self._npz[f"core{core}_switch_ts"],
            self._npz[f"core{core}_switch_item"],
            self._npz[f"core{core}_switch_kind"],
        )

    def switch_window_columns(
        self,
        core: int,
        *,
        policy: str = POLICY_STRICT,
        quarantine: QuarantineLog | None = None,
        coverage: CoverageStats | None = None,
    ) -> WindowColumns:
        """Per-item residency windows for one core, as column arrays.

        Switch logs are two records per data-item — small next to the
        sample stream — so they are read whole; the pairing itself avoids
        the per-record state machine on well-formed logs, and the column
        form never materialises per-window Python objects.

        Under a lenient ``policy``, malformed logs (duplicated or dropped
        marks, corrupt timestamps) go through best-effort pairing: every
        window returned is a genuinely paired START/END, dropped marks
        are recorded in ``quarantine``, and the affected items land in
        ``coverage.degraded_items``.
        """
        check_policy(policy)
        quarantine = quarantine if quarantine is not None else QuarantineLog()
        coverage = coverage if coverage is not None else CoverageStats(core=core)
        ts, item, kinds = self._switch_arrays(core)
        crc_bad = [
            name
            for name, arr in zip(
                (
                    f"core{core}_switch_ts",
                    f"core{core}_switch_item",
                    f"core{core}_switch_kind",
                ),
                (ts, item, kinds),
            )
            if name in self._crc and member_crc(arr) != int(self._crc[name])
        ]
        if crc_bad:
            _obs().crc_failures.inc(len(crc_bad))
            detail = f"crc32 mismatch in {', '.join(crc_bad)}"
            if policy == POLICY_STRICT:
                raise CorruptionError(f"{self.path}: switch log for core {core}: {detail}")
            quarantine.record(
                Defect(
                    core=core, kind=KIND_CHECKSUM, member=crc_bad[0],
                    detail=detail + " (lenient pairing applied)",
                    records_lost=0,
                )
            )
        if policy == POLICY_STRICT:
            return pair_switch_columns(
                core,
                ts,
                item,
                kinds,
                start_code=_KIND_CODE[SwitchKind.ITEM_START],
                end_code=_KIND_CODE[SwitchKind.ITEM_END],
            )
        lw = pair_switch_columns_lenient(
            core,
            ts,
            item,
            kinds,
            start_code=_KIND_CODE[SwitchKind.ITEM_START],
            end_code=_KIND_CODE[SwitchKind.ITEM_END],
        )
        coverage.switch_marks += lw.total_marks
        coverage.switch_marks_dropped += lw.dropped_marks
        if lw.dropped_marks:
            _obs().marks_dropped.inc(lw.dropped_marks)
            coverage.mark_degraded(lw.affected_items)
            quarantine.record(
                Defect(
                    core=core,
                    kind=KIND_SWITCH,
                    member=f"core{core}_switch_ts",
                    detail=(
                        f"{lw.dropped_marks} of {lw.total_marks} switch mark(s) "
                        f"unpaired (items {', '.join(map(str, lw.affected_items))})"
                    ),
                    records_lost=lw.dropped_marks,
                )
            )
        return lw.windows

    def switch_windows(self, core: int) -> list[ItemWindow]:
        """Per-item residency windows for one core, as objects."""
        return self.switch_window_columns(core).to_windows()

    def switches(self, core: int) -> SwitchRecords:
        """One core's switch log as a :class:`SwitchRecords` object."""
        ts, item, kind_codes = self._switch_arrays(core)
        kinds = [_CODE_KIND[int(c)] for c in kind_codes.tolist()]
        return SwitchRecords.from_arrays(core, ts, item, kinds)

    @property
    def wait_cores(self) -> list[int]:
        """Cores with recorded wait edges (empty for older containers)."""
        return sorted(self._header.get("wait_cores") or [])

    def wait_columns(self, core: int) -> WaitColumns:
        """One core's wait edges; empty for containers without the
        optional member set (never an error)."""

        def _member(key: str) -> np.ndarray:
            arr = self._npz[key]
            want = self._crc.get(key)
            if want is not None and member_crc(arr) != int(want):
                raise CorruptionError(
                    f"{self.path}: member {key} fails its crc32 check "
                    f"(stored {want})"
                )
            return arr

        return _read_wait_columns(self._npz, self._header, core, _member)


def save_session(
    path: str | pathlib.Path,
    session,
    symtab: SymbolTable,
    meta: dict | None = None,
    *,
    chunk_size: int | None = None,
    compress: bool = True,
    checksums: bool = True,
) -> None:
    """Persist a :class:`~repro.session.TraceSession` (samples + switches,
    plus the optional wait-edge member set when the session recorded
    waits)."""
    samples = {c: u.finalize() for c, u in session.units.items()}
    switches = {
        c: session.tracer.records_for_core(c) for c in session.units
    }
    wait_log = getattr(session, "wait_log", None)
    waits = wait_log.per_core_columns() if wait_log is not None else None
    save_trace(
        path,
        samples,
        switches,
        symtab,
        meta,
        chunk_size=chunk_size,
        compress=compress,
        checksums=checksums,
        waits_by_core=waits or None,
    )
