"""Trace record types produced by instrumentation.

A :class:`SwitchRecords` accumulates ``(timestamp, item_id, kind)`` triples
per core — exactly what the paper's marking function logs (Section III-C).
:func:`build_windows` pairs starts with ends into per-item residency
windows, validating the pairing discipline (no nesting: one item at a time
per core, the defining property of the Fig 5 architecture).

Under the self-switching architecture an item has exactly one window per
core; under timer-switching (Section V-A) an item may have several
disjoint windows — ``build_windows`` supports both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.runtime.actions import SwitchKind


@dataclass(frozen=True)
class ItemWindow:
    """One residency of a data-item on a core: [t_start, t_end]."""

    item_id: int
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise TraceError(
                f"item {self.item_id}: window end {self.t_end} before start {self.t_start}"
            )

    @property
    def duration(self) -> int:
        return self.t_end - self.t_start


class SwitchRecords:
    """Append-only log of data-item switch marks for one core."""

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._ts: list[int] = []
        self._item: list[int] = []
        self._kind: list[SwitchKind] = []

    def append(self, ts: int, item_id: int, kind: SwitchKind) -> None:
        self._ts.append(ts)
        self._item.append(item_id)
        self._kind.append(kind)

    def __len__(self) -> int:
        return len(self._ts)

    @property
    def ts(self) -> np.ndarray:
        return np.asarray(self._ts, dtype=np.int64)

    @property
    def item(self) -> np.ndarray:
        return np.asarray(self._item, dtype=np.int64)

    @property
    def kinds(self) -> list[SwitchKind]:
        return list(self._kind)


def build_windows(records: SwitchRecords) -> list[ItemWindow]:
    """Pair START/END marks into windows, enforcing one-item-at-a-time.

    Raises :class:`~repro.errors.TraceError` on a malformed log: an END
    without a START, a START while another item is open, mismatched ids,
    or a dangling START at the end of the log.
    """
    windows: list[ItemWindow] = []
    open_item: int | None = None
    open_ts = 0
    for ts, item, kind in zip(records._ts, records._item, records._kind):
        if kind is SwitchKind.ITEM_START:
            if open_item is not None:
                raise TraceError(
                    f"core {records.core_id}: item {item} started at {ts} while "
                    f"item {open_item} is still open (one item per core at a time)"
                )
            open_item = item
            open_ts = ts
        elif kind is SwitchKind.ITEM_END:
            if open_item is None:
                raise TraceError(
                    f"core {records.core_id}: item {item} ended at {ts} with no open item"
                )
            if open_item != item:
                raise TraceError(
                    f"core {records.core_id}: item {item} ended at {ts} but "
                    f"item {open_item} was open"
                )
            windows.append(ItemWindow(item_id=item, t_start=open_ts, t_end=ts))
            open_item = None
        else:  # pragma: no cover - exhaustive enum
            raise TraceError(f"unknown switch kind {kind!r}")
    if open_item is not None:
        raise TraceError(
            f"core {records.core_id}: item {open_item} never ended (dangling START)"
        )
    return windows


def build_windows_lenient(records: SwitchRecords) -> tuple[list[ItemWindow], int]:
    """Best-effort pairing for *lossy* switch logs.

    A production marking path can drop records (log-buffer overruns,
    sampled logging).  Policy: an END with no matching open START is
    dropped; a START arriving while another item is open drops the open
    one (its END was evidently lost); a dangling START at end-of-log is
    dropped.  Returns ``(windows, dropped_marks)`` — every returned
    window corresponds to a genuinely paired START/END of one item, so
    integration stays sound and merely loses the affected items.
    """
    windows: list[ItemWindow] = []
    dropped = 0
    open_item: int | None = None
    open_ts = 0
    for ts, item, kind in zip(records._ts, records._item, records._kind):
        if kind is SwitchKind.ITEM_START:
            if open_item is not None:
                dropped += 1  # the open item's END was lost
            open_item = item
            open_ts = ts
        else:  # ITEM_END
            if open_item == item:
                windows.append(ItemWindow(item_id=item, t_start=open_ts, t_end=ts))
                open_item = None
            else:
                dropped += 1
                if open_item is not None:
                    # Mismatched END also invalidates the open window.
                    open_item = None
                    dropped += 1
    if open_item is not None:
        dropped += 1
    return windows, dropped


def windows_as_arrays(windows: list[ItemWindow]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column view (starts, ends, item_ids) sorted by start time.

    Validates that windows do not overlap — they cannot, on one core, if
    the marking discipline was followed.
    """
    if not windows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    starts = np.asarray([w.t_start for w in windows], dtype=np.int64)
    ends = np.asarray([w.t_end for w in windows], dtype=np.int64)
    items = np.asarray([w.item_id for w in windows], dtype=np.int64)
    order = np.argsort(starts, kind="stable")
    starts, ends, items = starts[order], ends[order], items[order]
    if np.any(starts[1:] < ends[:-1]):
        raise TraceError("item windows overlap on one core")
    return starts, ends, items
