"""Trace record types produced by instrumentation.

A :class:`SwitchRecords` accumulates ``(timestamp, item_id, kind)`` triples
per core — exactly what the paper's marking function logs (Section III-C).
:func:`build_windows` pairs starts with ends into per-item residency
windows, validating the pairing discipline (no nesting: one item at a time
per core, the defining property of the Fig 5 architecture).

Under the self-switching architecture an item has exactly one window per
core; under timer-switching (Section V-A) an item may have several
disjoint windows — ``build_windows`` supports both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.runtime.actions import SwitchKind


@dataclass(frozen=True)
class ItemWindow:
    """One residency of a data-item on a core: [t_start, t_end]."""

    item_id: int
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise TraceError(
                f"item {self.item_id}: window end {self.t_end} before start {self.t_start}"
            )

    @property
    def duration(self) -> int:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class WindowColumns:
    """Array-backed window columns: the object-free twin of ``list[ItemWindow]``.

    The streaming pipeline carries windows in this form so that
    million-item shards never materialise one Python object per window
    (two switch marks per data-item make windows the largest per-item
    population in a trace).  :meth:`to_windows` converts when
    object-level access is wanted; :class:`~repro.core.hybrid.HybridTrace`
    does that lazily on first touch of ``.windows``.
    """

    item_id: np.ndarray
    t_start: np.ndarray
    t_end: np.ndarray

    def __len__(self) -> int:
        return int(self.item_id.shape[0])

    @classmethod
    def from_windows(cls, windows: list[ItemWindow]) -> "WindowColumns":
        return cls(
            item_id=np.asarray([w.item_id for w in windows], dtype=np.int64),
            t_start=np.asarray([w.t_start for w in windows], dtype=np.int64),
            t_end=np.asarray([w.t_end for w in windows], dtype=np.int64),
        )

    def to_windows(self) -> list[ItemWindow]:
        return [
            ItemWindow(item_id=i, t_start=a, t_end=b)
            for i, a, b in zip(
                self.item_id.tolist(), self.t_start.tolist(), self.t_end.tolist()
            )
        ]

    def as_sorted_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(starts, ends, item_ids) sorted by start, overlap-checked.

        Array-native equivalent of :func:`windows_as_arrays`.
        """
        if not len(self):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        order = np.argsort(self.t_start, kind="stable")
        starts = self.t_start[order]
        ends = self.t_end[order]
        items = self.item_id[order]
        if np.any(starts[1:] < ends[:-1]):
            raise TraceError("item windows overlap on one core")
        return starts, ends, items


class SwitchRecords:
    """Append-only log of data-item switch marks for one core."""

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._ts: list[int] = []
        self._item: list[int] = []
        self._kind: list[SwitchKind] = []

    @classmethod
    def from_arrays(
        cls,
        core_id: int,
        ts: np.ndarray,
        item: np.ndarray,
        kinds: list[SwitchKind],
    ) -> "SwitchRecords":
        """Build a log from column data (trace-file loading, generators)."""
        if not (ts.shape[0] == item.shape[0] == len(kinds)):
            raise TraceError(
                f"core {core_id}: switch columns disagree in length "
                f"({ts.shape[0]}, {item.shape[0]}, {len(kinds)})"
            )
        r = cls(core_id)
        r._ts = [int(t) for t in ts.tolist()]
        r._item = [int(i) for i in item.tolist()]
        r._kind = list(kinds)
        return r

    def append(self, ts: int, item_id: int, kind: SwitchKind) -> None:
        self._ts.append(ts)
        self._item.append(item_id)
        self._kind.append(kind)

    def __len__(self) -> int:
        return len(self._ts)

    @property
    def ts(self) -> np.ndarray:
        return np.asarray(self._ts, dtype=np.int64)

    @property
    def item(self) -> np.ndarray:
        return np.asarray(self._item, dtype=np.int64)

    @property
    def kinds(self) -> list[SwitchKind]:
        return list(self._kind)


def build_windows(records: SwitchRecords) -> list[ItemWindow]:
    """Pair START/END marks into windows, enforcing one-item-at-a-time.

    Raises :class:`~repro.errors.TraceError` on a malformed log: an END
    without a START, a START while another item is open, mismatched ids,
    or a dangling START at the end of the log.
    """
    windows: list[ItemWindow] = []
    open_item: int | None = None
    open_ts = 0
    for ts, item, kind in zip(records._ts, records._item, records._kind):
        if kind is SwitchKind.ITEM_START:
            if open_item is not None:
                raise TraceError(
                    f"core {records.core_id}: item {item} started at {ts} while "
                    f"item {open_item} is still open (one item per core at a time)"
                )
            open_item = item
            open_ts = ts
        elif kind is SwitchKind.ITEM_END:
            if open_item is None:
                raise TraceError(
                    f"core {records.core_id}: item {item} ended at {ts} with no open item"
                )
            if open_item != item:
                raise TraceError(
                    f"core {records.core_id}: item {item} ended at {ts} but "
                    f"item {open_item} was open"
                )
            windows.append(ItemWindow(item_id=item, t_start=open_ts, t_end=ts))
            open_item = None
        else:  # pragma: no cover - exhaustive enum
            raise TraceError(f"unknown switch kind {kind!r}")
    if open_item is not None:
        raise TraceError(
            f"core {records.core_id}: item {open_item} never ended (dangling START)"
        )
    return windows


def pair_switch_columns(
    core_id: int,
    ts: np.ndarray,
    item: np.ndarray,
    kind_codes: np.ndarray,
    *,
    start_code: int = 0,
    end_code: int = 1,
) -> WindowColumns:
    """Vectorised window pairing straight from switch column arrays.

    A *valid* one-item-at-a-time log is strictly alternating
    START, END, START, END, … with matching item ids, so the pairing can
    be checked with a handful of array comparisons instead of a
    per-record Python loop — this is the streaming-ingest hot path for
    traces with millions of data-items (two marks per item).  Any log
    that fails the vectorised checks is re-run through the per-record
    :func:`build_windows` state machine, which raises the precise
    :class:`~repro.errors.TraceError` for the first offending record.
    """
    n = int(ts.shape[0])
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return WindowColumns(item_id=empty, t_start=empty.copy(), t_end=empty.copy())
    ts = np.asarray(ts, dtype=np.int64)
    item = np.asarray(item, dtype=np.int64)
    kind_codes = np.asarray(kind_codes)
    valid = (
        n % 2 == 0
        and bool(np.all(kind_codes[0::2] == start_code))
        and bool(np.all(kind_codes[1::2] == end_code))
        and bool(np.all(item[0::2] == item[1::2]))
        and bool(np.all(ts[1::2] >= ts[0::2]))
    )
    if not valid:
        # Fall back to the state machine for exact error reporting.
        kinds = [
            SwitchKind.ITEM_START if c == start_code else SwitchKind.ITEM_END
            for c in kind_codes.tolist()
        ]
        return WindowColumns.from_windows(
            build_windows(SwitchRecords.from_arrays(core_id, ts, item, kinds))
        )
    return WindowColumns(
        item_id=item[0::2].copy(), t_start=ts[0::2].copy(), t_end=ts[1::2].copy()
    )


def build_windows_from_arrays(
    core_id: int,
    ts: np.ndarray,
    item: np.ndarray,
    kind_codes: np.ndarray,
    *,
    start_code: int = 0,
    end_code: int = 1,
) -> list[ItemWindow]:
    """Like :func:`pair_switch_columns`, but materialised as objects."""
    return pair_switch_columns(
        core_id, ts, item, kind_codes, start_code=start_code, end_code=end_code
    ).to_windows()


@dataclass(frozen=True)
class LenientWindows:
    """Outcome of best-effort pairing over a possibly-corrupt switch log.

    ``affected_items`` are the items whose marks were dropped or whose
    window boundaries had to be guessed — their residency windows are not
    trustworthy ground truth and degraded reports flag them.
    """

    windows: WindowColumns
    total_marks: int
    dropped_marks: int
    affected_items: tuple[int, ...]

    @property
    def coverage(self) -> float:
        """Fraction of switch marks that paired into usable windows."""
        if self.total_marks == 0:
            return 1.0
        return 1.0 - self.dropped_marks / self.total_marks


def pair_switch_columns_lenient(
    core_id: int,
    ts: np.ndarray,
    item: np.ndarray,
    kind_codes: np.ndarray,
    *,
    start_code: int = 0,
    end_code: int = 1,
) -> LenientWindows:
    """Best-effort column pairing for corrupt or lossy switch logs.

    Well-formed logs take the same vectorised fast path as
    :func:`pair_switch_columns` and report zero drops.  Malformed logs
    fall back to the :func:`build_windows_lenient` policy (an END with no
    open START is dropped; a START over an open item drops the open one;
    a dangling START is dropped), extended for *corrupt* — not merely
    lossy — data: a window whose end precedes its start, or that overlaps
    the previous window after sorting, is dropped too.  Every drop is
    charged to the item(s) involved so coverage can name them.
    """
    n = int(ts.shape[0])
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return LenientWindows(
            WindowColumns(item_id=empty, t_start=empty.copy(), t_end=empty.copy()),
            total_marks=0,
            dropped_marks=0,
            affected_items=(),
        )
    ts = np.asarray(ts, dtype=np.int64)
    item = np.asarray(item, dtype=np.int64)
    kind_codes = np.asarray(kind_codes)
    strictly_valid = (
        n % 2 == 0
        and bool(np.all(kind_codes[0::2] == start_code))
        and bool(np.all(kind_codes[1::2] == end_code))
        and bool(np.all(item[0::2] == item[1::2]))
        and bool(np.all(ts[1::2] >= ts[0::2]))
        and bool(np.all(ts[2::2] >= ts[1:-1:2]))
    )
    if strictly_valid:
        return LenientWindows(
            WindowColumns(
                item_id=item[0::2].copy(), t_start=ts[0::2].copy(), t_end=ts[1::2].copy()
            ),
            total_marks=n,
            dropped_marks=0,
            affected_items=(),
        )
    win_item: list[int] = []
    win_start: list[int] = []
    win_end: list[int] = []
    dropped = 0
    affected: set[int] = set()
    open_item: int | None = None
    open_ts = 0
    for t, it, code in zip(ts.tolist(), item.tolist(), kind_codes.tolist()):
        if code == start_code:
            if open_item is not None:
                dropped += 1  # the open item's END was evidently lost
                affected.add(open_item)
            open_item = it
            open_ts = t
        else:
            if open_item == it:
                if t < open_ts:  # corrupt timestamp: window ends before it starts
                    dropped += 2
                    affected.add(it)
                else:
                    win_item.append(it)
                    win_start.append(open_ts)
                    win_end.append(t)
                open_item = None
            else:
                dropped += 1
                affected.add(it)
                if open_item is not None:
                    # A mismatched END also invalidates the open window.
                    dropped += 1
                    affected.add(open_item)
                    open_item = None
    if open_item is not None:
        dropped += 1
        affected.add(open_item)
    cols = WindowColumns(
        item_id=np.asarray(win_item, dtype=np.int64),
        t_start=np.asarray(win_start, dtype=np.int64),
        t_end=np.asarray(win_end, dtype=np.int64),
    )
    # Overlap pruning: corrupt timestamps can pair into windows that
    # overlap after sorting, which the integration cannot accept.  Keep
    # the earlier-starting window, drop each later one that intrudes.
    if len(cols):
        order = np.argsort(cols.t_start, kind="stable")
        items_s = cols.item_id[order]
        starts_s = cols.t_start[order]
        ends_s = cols.t_end[order]
        keep = np.ones(len(cols), dtype=bool)
        last_end = None
        for i in range(len(cols)):
            if last_end is not None and int(starts_s[i]) < last_end:
                keep[i] = False
                dropped += 2
                affected.add(int(items_s[i]))
            else:
                last_end = int(ends_s[i])
        if not np.all(keep):
            cols = WindowColumns(
                item_id=items_s[keep], t_start=starts_s[keep], t_end=ends_s[keep]
            )
        else:
            cols = WindowColumns(item_id=items_s, t_start=starts_s, t_end=ends_s)
    return LenientWindows(
        windows=cols,
        total_marks=n,
        dropped_marks=dropped,
        affected_items=tuple(sorted(affected)),
    )


def build_windows_lenient(records: SwitchRecords) -> tuple[list[ItemWindow], int]:
    """Best-effort pairing for *lossy* switch logs.

    A production marking path can drop records (log-buffer overruns,
    sampled logging).  Policy: an END with no matching open START is
    dropped; a START arriving while another item is open drops the open
    one (its END was evidently lost); a dangling START at end-of-log is
    dropped.  Returns ``(windows, dropped_marks)`` — every returned
    window corresponds to a genuinely paired START/END of one item, so
    integration stays sound and merely loses the affected items.
    """
    windows: list[ItemWindow] = []
    dropped = 0
    open_item: int | None = None
    open_ts = 0
    for ts, item, kind in zip(records._ts, records._item, records._kind):
        if kind is SwitchKind.ITEM_START:
            if open_item is not None:
                dropped += 1  # the open item's END was lost
            open_item = item
            open_ts = ts
        else:  # ITEM_END
            if open_item == item:
                windows.append(ItemWindow(item_id=item, t_start=open_ts, t_end=ts))
                open_item = None
            else:
                dropped += 1
                if open_item is not None:
                    # Mismatched END also invalidates the open window.
                    open_item = None
                    dropped += 1
    if open_item is not None:
        dropped += 1
    return windows, dropped


def windows_as_arrays(windows: list[ItemWindow]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column view (starts, ends, item_ids) sorted by start time.

    Validates that windows do not overlap — they cannot, on one core, if
    the marking discipline was followed.
    """
    if not windows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    starts = np.asarray([w.t_start for w in windows], dtype=np.int64)
    ends = np.asarray([w.t_end for w in windows], dtype=np.int64)
    items = np.asarray([w.item_id for w in windows], dtype=np.int64)
    order = np.argsort(starts, kind="stable")
    starts, ends, items = starts[order], ends[order], items[order]
    if np.any(starts[1:] < ends[:-1]):
        raise TraceError("item windows overlap on one core")
    return starts, ends, items
