"""Symbol tables: mapping instruction pointers to function names.

Paper Section III-D step 2: "the values of the instruction pointer included
in each PEBS sample are compared with the symbol table of the target
program.  Symbols are the names of functions and the addresses of their
beginning and ending points obtained from the binary."

Lookup over many sample ips is the integration hot path, so it is fully
vectorised: one ``np.searchsorted`` over the sorted range starts plus a
bounds check (per the HPC guide — never loop over samples in Python).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SymbolError

#: Function index meaning "ip not covered by any symbol".
UNKNOWN = -1


@dataclass(frozen=True)
class FunctionSymbol:
    """One function: name plus the half-open address range [lo, hi)."""

    name: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SymbolError("symbol name must be non-empty")
        if self.lo < 0 or self.hi <= self.lo:
            raise SymbolError(f"invalid range [{self.lo}, {self.hi}) for {self.name!r}")

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def contains(self, ip: int) -> bool:
        return self.lo <= ip < self.hi


class SymbolTable:
    """An immutable-after-build table of non-overlapping function ranges."""

    def __init__(self, symbols: list[FunctionSymbol]) -> None:
        ordered = sorted(symbols, key=lambda s: s.lo)
        for a, b in zip(ordered, ordered[1:]):
            if b.lo < a.hi:
                raise SymbolError(
                    f"symbols {a.name!r} [{a.lo},{a.hi}) and {b.name!r} "
                    f"[{b.lo},{b.hi}) overlap"
                )
        names = [s.name for s in ordered]
        if len(set(names)) != len(names):
            raise SymbolError("duplicate symbol names")
        self._symbols = ordered
        self._lo = np.asarray([s.lo for s in ordered], dtype=np.int64)
        self._hi = np.asarray([s.hi for s in ordered], dtype=np.int64)
        self._names = names

    @classmethod
    def from_ranges(cls, ranges: dict[str, tuple[int, int]]) -> "SymbolTable":
        """Build from ``{name: (lo, hi)}``."""
        return cls([FunctionSymbol(n, lo, hi) for n, (lo, hi) in ranges.items()])

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self):
        return iter(self._symbols)

    @property
    def names(self) -> list[str]:
        """Function names in address order."""
        return list(self._names)

    def index_of(self, name: str) -> int:
        """Index of a function by name (raises SymbolError if absent)."""
        try:
            return self._names.index(name)
        except ValueError:
            raise SymbolError(f"no symbol named {name!r}")

    def symbol(self, idx: int) -> FunctionSymbol:
        return self._symbols[idx]

    def range_of(self, name: str) -> tuple[int, int]:
        s = self._symbols[self.index_of(name)]
        return (s.lo, s.hi)

    def lookup(self, ip: int) -> str | None:
        """Name of the function containing ``ip``, or None."""
        idx = self.lookup_many(np.asarray([ip], dtype=np.int64))[0]
        return None if idx == UNKNOWN else self._names[idx]

    def lookup_many(self, ips: np.ndarray) -> np.ndarray:
        """Vectorised ip -> function-index lookup (UNKNOWN for misses)."""
        ips = np.asarray(ips, dtype=np.int64)
        idx = np.searchsorted(self._lo, ips, side="right") - 1
        ok = (idx >= 0) & (ips < self._hi[np.clip(idx, 0, None)])
        return np.where(ok, idx, UNKNOWN)


class AddressAllocator:
    """Assigns non-overlapping address ranges to function names.

    Simulated applications use this to lay out their "binary": every
    function gets a range, block ips point inside it, and the resulting
    :class:`SymbolTable` is what the analysis side sees.
    """

    def __init__(self, base: int = 0x40_0000, default_size: int = 0x400) -> None:
        if default_size < 1:
            raise SymbolError("default_size must be >= 1")
        self._next = base
        self._default_size = default_size
        self._ranges: dict[str, tuple[int, int]] = {}

    def add(self, name: str, size: int | None = None) -> int:
        """Allocate a range for ``name``; returns its entry point (lo)."""
        if name in self._ranges:
            raise SymbolError(f"function {name!r} already allocated")
        sz = self._default_size if size is None else size
        if sz < 1:
            raise SymbolError(f"size must be >= 1, got {sz}")
        lo = self._next
        self._next += sz
        self._ranges[name] = (lo, lo + sz)
        return lo

    def ip_of(self, name: str, offset: int = 0) -> int:
        """An ip inside ``name`` (entry point + offset, bounds-checked)."""
        try:
            lo, hi = self._ranges[name]
        except KeyError:
            raise SymbolError(f"function {name!r} not allocated")
        if not 0 <= offset < hi - lo:
            raise SymbolError(f"offset {offset} outside {name!r} (size {hi - lo})")
        return lo + offset

    def table(self) -> SymbolTable:
        """Freeze the allocations into a SymbolTable."""
        return SymbolTable.from_ranges(dict(self._ranges))
