"""Trace storage: record encoding and data-rate accounting (§IV-C3).

The paper reports the PEBS sample volume of the ACL experiment — 270 MB/s
at R = 8K down to 106 MB/s at R = 24K per core — extrapolates to a 16-core
CPU, and compares against the 127.8 GB/s memory bandwidth of a 6-channel
DDR4-2666 socket.  This module provides the byte accounting behind those
numbers plus a binary encoding for sample/switch records (what the
prototype's helper program writes to the SSD).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instrument import SWITCH_RECORD_BYTES
from repro.errors import TraceError
from repro.machine.pebs import PEBSUnit, SampleArrays
from repro.units import cycles_to_seconds

#: dtype of one encoded PEBS record: timestamp, ip, tag register.
SAMPLE_DTYPE = np.dtype([("ts", "<i8"), ("ip", "<i8"), ("tag", "<i8")])


def encode_samples(samples: SampleArrays) -> bytes:
    """Serialise samples to the on-disk format (little-endian packed)."""
    arr = np.empty(len(samples), dtype=SAMPLE_DTYPE)
    arr["ts"] = samples.ts
    arr["ip"] = samples.ip
    arr["tag"] = samples.tag
    return arr.tobytes()


def decode_samples(data: bytes) -> SampleArrays:
    """Inverse of :func:`encode_samples`."""
    if len(data) % SAMPLE_DTYPE.itemsize != 0:
        raise TraceError(
            f"encoded sample stream length {len(data)} is not a multiple of "
            f"{SAMPLE_DTYPE.itemsize}"
        )
    arr = np.frombuffer(data, dtype=SAMPLE_DTYPE)
    return SampleArrays(
        ts=arr["ts"].astype(np.int64),
        ip=arr["ip"].astype(np.int64),
        tag=arr["tag"].astype(np.int64),
    )


@dataclass(frozen=True)
class DataRateReport:
    """Storage cost of one traced core, with the paper's extrapolations."""

    reset_value: int
    sample_count: int
    switch_records: int
    duration_s: float
    sample_bytes: int
    switch_bytes: int
    mb_per_s: float
    per_cpu_gb_s: float
    mem_bw_fraction: float


def datarate_report(
    unit: PEBSUnit,
    duration_cycles: int,
    freq_ghz: float,
    switch_records: int = 0,
    extrapolate_cores: int = 16,
    mem_bw_gb_s: float = 127.8,
) -> DataRateReport:
    """Compute MB/s for one core and the paper's 16-core / bandwidth view.

    ``mem_bw_gb_s`` defaults to the Intel Xeon Platinum 8153 figure the
    paper quotes (16 cores, 6 channels of DDR4-2666).
    """
    if duration_cycles <= 0:
        raise TraceError(f"duration must be positive, got {duration_cycles}")
    duration_s = cycles_to_seconds(duration_cycles, freq_ghz)
    sample_bytes = unit.sample_count * unit.spec.pebs_record_bytes
    switch_bytes = switch_records * SWITCH_RECORD_BYTES
    mb_per_s = (sample_bytes / duration_s) / 1e6
    per_cpu_gb_s = mb_per_s * extrapolate_cores / 1e3
    return DataRateReport(
        reset_value=unit.config.reset_value,
        sample_count=unit.sample_count,
        switch_records=switch_records,
        duration_s=duration_s,
        sample_bytes=sample_bytes,
        switch_bytes=switch_bytes,
        mb_per_s=mb_per_s,
        per_cpu_gb_s=per_cpu_gb_s,
        mem_bw_fraction=per_cpu_gb_s / mem_bw_gb_s,
    )
