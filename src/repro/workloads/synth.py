"""Synthetic workload builders for tests and ablation benchmarks.

These produce minimal but complete applications (symbols + threads) with
precisely known ground truth, so tests can assert exact properties of the
tracing pipeline without the noise of the realistic workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.symbols import AddressAllocator, SymbolTable
from repro.errors import WorkloadError
from repro.machine.block import timed_block
from repro.runtime.actions import Exec, FnEnter, FnLeave, Mark, SwitchKind
from repro.runtime.thread import AppThread


@dataclass(frozen=True)
class FixedItem:
    """One item processed as a fixed sequence of (fn_name, cycles) steps."""

    item_id: int
    steps: tuple[tuple[str, int], ...]


class FixedSequenceApp:
    """Single-thread app processing items with exactly-known function times.

    Every function takes exactly the requested number of cycles (modulo
    sampling overhead), so tests can compare tracer estimates against
    arithmetic truth.
    """

    CORE = 0

    def __init__(self, items: list[FixedItem]) -> None:
        if not items:
            raise WorkloadError("need at least one item")
        names: set[str] = set()
        for it in items:
            for fn, cycles in it.steps:
                if cycles < 1:
                    raise WorkloadError(f"step cycles must be >= 1, got {cycles}")
                names.add(fn)
        alloc = AddressAllocator()
        self.poll_ip = alloc.add("dispatch_loop")
        self.fn_ips = {name: alloc.add(name) for name in sorted(names)}
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        self.items = list(items)

    def _body(self):
        for it in self.items:
            yield Mark(SwitchKind.ITEM_START, it.item_id)
            for fn, cycles in it.steps:
                ip = self.fn_ips[fn]
                yield FnEnter(ip)
                yield Exec(timed_block(ip, cycles))
                yield FnLeave(ip)
            yield Mark(SwitchKind.ITEM_END, it.item_id)

    def threads(self) -> list[AppThread]:
        return [AppThread("fixed-seq", self.CORE, self._body, self.poll_ip)]


def uniform_items(
    n_items: int, fn_cycles: dict[str, int], first_id: int = 1
) -> list[FixedItem]:
    """n identical items, each running every function once."""
    if n_items < 1:
        raise WorkloadError("need at least one item")
    steps = tuple(fn_cycles.items())
    return [FixedItem(item_id=first_id + i, steps=steps) for i in range(n_items)]


def jittered_items(
    n_items: int,
    fn_cycles: dict[str, int],
    jitter: float = 0.02,
    rng=None,
    first_id: int = 1,
) -> list[FixedItem]:
    """n near-identical items: each step's cycles jittered by ±``jitter``.

    ``rng`` is a :class:`numpy.random.Generator`; passing the same seeded
    generator reproduces the exact item list bit-for-bit, which is what
    the interference attribution matrix relies on.  ``rng=None`` or
    ``jitter=0`` degrades to :func:`uniform_items`.
    """
    if n_items < 1:
        raise WorkloadError("need at least one item")
    if not 0.0 <= jitter < 1.0:
        raise WorkloadError(f"jitter must be in [0, 1), got {jitter}")
    if rng is None or jitter == 0.0:
        return uniform_items(n_items, fn_cycles, first_id=first_id)
    items = []
    for i in range(n_items):
        steps = tuple(
            (fn, max(1, int(round(c * (1.0 + jitter * (2.0 * float(rng.random()) - 1.0))))))
            for fn, c in fn_cycles.items()
        )
        items.append(FixedItem(item_id=first_id + i, steps=steps))
    return items
