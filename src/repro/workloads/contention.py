"""Shared-LLC contention: the paper's second motivating fluctuation.

Paper Section I cites Dobrescu et al.: *"the performance of a software
packet-processing platform drops by 27% in the worst case due to shared
resource contentions"*.  This workload reproduces that mechanism with
the real cache model:

* the **victim** is a packet-processing worker whose lookup table (a
  rotating window sweeps it) fits the shared LLC when it runs alone, so
  items are fast after the first sweep;
* the **aggressor** is a streaming kernel on another core scanning a
  much larger array with high memory-level parallelism, continuously
  evicting the victim's lines from the shared LLC.

Running the victim with and without the aggressor gives the throughput
drop; tracing the victim per item shows *where* it goes (the table-walk
function's time and its LLC-miss samples grow, Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.symbols import AddressAllocator, SymbolTable
from repro.errors import WorkloadError
from repro.machine.block import LINE_BYTES, Block, MemRef
from repro.machine.config import CacheLevelSpec, MachineSpec
from repro.runtime.actions import Exec, FnEnter, FnLeave, IdleUntil, Mark, SwitchKind
from repro.runtime.lock import SimLock
from repro.runtime.thread import AppThread


@dataclass(frozen=True)
class ContentionConfig:
    """Victim and aggressor shapes.

    Defaults are calibrated so the victim loses roughly a quarter of its
    throughput under contention on the default machine — the order of
    Dobrescu et al.'s 27 %.
    """

    n_items: int = 2000
    victim_region_bytes: int = 768 * 1024  # > L2, well inside the (scaled) LLC
    victim_lines_per_item: int = 96
    victim_base_uops: int = 16_000
    aggressor_region_bytes: int = 64 * 1024 * 1024
    aggressor_lines_per_block: int = 512
    aggressor_mlp: int = 16
    aggressor_uops_per_block: int = 2_048
    #: The aggressor alternates thrash bursts with idle phases (a
    #: co-located batch job's duty cycle).  A steady low rate would not
    #: contend at all — LRU protects the victim's recently-refreshed
    #: lines until the insertion rate crosses the associativity cliff —
    #: so bursty interference is both the realistic and the fluctuation-
    #: producing shape: identical packets are fast between bursts and
    #: slow during them.  A burst must outlast the victim's refresh
    #: period (one sweep of its region) to actually evict.
    aggressor_burst_blocks: int = 170
    aggressor_idle_cycles: int = 9_500_000
    #: LLC size for this study.  Scaled to 2 MB so that crossing the
    #: LRU associativity cliff needs ~20 K insertions per victim sweep
    #: instead of ~130 K — same physics, tractable simulation.
    llc_bytes: int = 2 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise WorkloadError("need at least one item")
        if self.victim_lines_per_item < 1:
            raise WorkloadError("victim must touch at least one line per item")
        if self.victim_region_bytes < self.victim_lines_per_item * LINE_BYTES:
            raise WorkloadError("victim region smaller than one item's window")
        if self.aggressor_mlp < 1:
            raise WorkloadError("aggressor_mlp must be >= 1")


class ContentionApp:
    """Victim worker (+ optional aggressor) on a shared-LLC machine.

    Build the machine with ``with_caches=True``; the contention is real
    LLC state, not a cost model.
    """

    VICTIM_CORE = 0
    AGGRESSOR_CORE = 1

    def __init__(
        self,
        config: ContentionConfig = ContentionConfig(),
        with_aggressor: bool = True,
        rng=None,
    ) -> None:
        self.config = config
        self.with_aggressor = with_aggressor
        # Walk offsets are drawn once here (not in the body) so threads()
        # can be called repeatedly without consuming generator state: the
        # same seeded rng always yields the same bit-identical run.
        region_lines = config.victim_region_bytes // LINE_BYTES
        if rng is None:
            self._walk_offsets = [
                (item * config.victim_lines_per_item) % region_lines
                for item in range(1, config.n_items + 1)
            ]
        else:
            self._walk_offsets = [
                int(rng.integers(0, region_lines)) for _ in range(config.n_items)
            ]
        alloc = AddressAllocator()
        self.victim_poll_ip = alloc.add("victim_loop")
        self.process_ip = alloc.add("process_packet")
        self.walk_ip = alloc.add("table_walk")
        self.aggr_ip = alloc.add("stream_scan")
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        #: Set by the victim when it finishes; the aggressor stops at the
        #: next block boundary after observing it.
        self._victim_done = False
        self.victim_base = 0x4000_0000
        self.aggr_base = 0x8000_0000

    def machine_spec(self) -> MachineSpec:
        """The machine this study runs on (scaled LLC; see config)."""
        return MachineSpec(
            llc=CacheLevelSpec(self.config.llc_bytes, 16, 42)
        )

    def _victim(self):
        cfg = self.config
        region_lines = cfg.victim_region_bytes // LINE_BYTES
        for item in range(1, cfg.n_items + 1):
            yield Mark(SwitchKind.ITEM_START, item)
            yield FnEnter(self.process_ip)
            yield Exec(
                Block(ip=self.process_ip, uops=cfg.victim_base_uops, branches=200)
            )
            yield FnLeave(self.process_ip)
            # The table walk: a window over the victim's region (rotating
            # by default, randomised when the app was built with an rng).
            first = self._walk_offsets[item - 1]
            count = min(cfg.victim_lines_per_item, region_lines - first)
            yield FnEnter(self.walk_ip)
            yield Exec(
                Block(
                    ip=self.walk_ip,
                    uops=count * 40,
                    mem=MemRef(
                        base=self.victim_base + first * LINE_BYTES,
                        count=count,
                        stride=LINE_BYTES,
                    ),
                    branches=count,
                )
            )
            yield FnLeave(self.walk_ip)
            yield Mark(SwitchKind.ITEM_END, item)
        self._victim_done = True

    def _aggressor(self):
        cfg = self.config
        region_lines = cfg.aggressor_region_bytes // LINE_BYTES
        offset = 0
        # Hard cap so a mis-configured run can never spin forever.
        for _ in range(2_000_000):
            if self._victim_done:
                return
            outcome = None
            for _ in range(cfg.aggressor_burst_blocks):
                count = min(cfg.aggressor_lines_per_block, region_lines - offset)
                outcome = yield Exec(
                    Block(
                        ip=self.aggr_ip,
                        uops=cfg.aggressor_uops_per_block,
                        mem=MemRef(
                            base=self.aggr_base + offset * LINE_BYTES,
                            count=count,
                            stride=LINE_BYTES,
                        ),
                        mem_mlp=cfg.aggressor_mlp,
                    )
                )
                offset = (offset + count) % region_lines
            if cfg.aggressor_idle_cycles > 0 and outcome is not None:
                yield IdleUntil(outcome.end + cfg.aggressor_idle_cycles)

    def threads(self) -> list[AppThread]:
        threads = [
            AppThread("victim", self.VICTIM_CORE, self._victim, self.victim_poll_ip)
        ]
        if self.with_aggressor:
            threads.append(
                AppThread("aggressor", self.AGGRESSOR_CORE, self._aggressor, self.aggr_ip)
            )
        return threads

    def group_of(self, item_id: int) -> str:
        """All victim items are identical — one similarity group."""
        return "packet"


@dataclass(frozen=True)
class LockConvoyConfig:
    """Shapes of the lock-convoy study.

    Defaults make the hog hold the lock ~30× longer than the victim
    needs it, so nearly every victim item queues behind a full hog
    critical section — the convoy the waiting-dependency diagnosis must
    name (`repro diagnose --why` should blame ``locked_update`` on the
    hog's core, not any victim code).
    """

    n_items: int = 24
    #: Cycles the hog spends inside the critical section per acquisition.
    hog_hold_uops: int = 60_000
    #: Cycles the victim spends inside the critical section per item.
    victim_hold_uops: int = 2_000
    #: Victim work outside the lock (keeps items non-degenerate).
    victim_prep_uops: int = 1_500
    #: Hog pause between acquisitions (lets the victim in sometimes).
    hog_gap_uops: int = 500

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise WorkloadError("need at least one item")
        if min(self.hog_hold_uops, self.victim_hold_uops) < 1:
            raise WorkloadError("critical sections must cost at least one uop")


class LockConvoyApp:
    """Two cores convoying on one lock — the second contention mechanism.

    Unlike :class:`ContentionApp` (cache interference, invisible to any
    queue), this fluctuation is *waiting*: the victim's items are slow
    because core 0 holds ``lock:shared`` inside ``locked_update``.  The
    recorded wait edges let ``repro diagnose --why`` name exactly that.
    """

    HOG_CORE = 0
    VICTIM_CORE = 1

    def __init__(self, config: LockConvoyConfig = LockConvoyConfig()) -> None:
        self.config = config
        alloc = AddressAllocator()
        self.poll_ip = alloc.add("convoy_loop")
        self.hog_ip = alloc.add("locked_update")
        self.victim_ip = alloc.add("handle_item")
        self.prep_ip = alloc.add("prepare_item")
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        self.lock = SimLock("shared")
        self._victim_done = False

    def _hog(self):
        cfg = self.config
        for _ in range(cfg.n_items * 4):
            if self._victim_done:
                return
            yield self.lock.acquire()
            yield FnEnter(self.hog_ip)
            yield Exec(Block(ip=self.hog_ip, uops=cfg.hog_hold_uops))
            yield FnLeave(self.hog_ip)
            yield self.lock.release()
            yield Exec(Block(ip=self.poll_ip, uops=cfg.hog_gap_uops))

    def _victim(self):
        cfg = self.config
        for item in range(1, cfg.n_items + 1):
            yield Mark(SwitchKind.ITEM_START, item)
            yield FnEnter(self.prep_ip)
            yield Exec(Block(ip=self.prep_ip, uops=cfg.victim_prep_uops))
            yield FnLeave(self.prep_ip)
            yield self.lock.acquire()
            yield FnEnter(self.victim_ip)
            yield Exec(Block(ip=self.victim_ip, uops=cfg.victim_hold_uops))
            yield FnLeave(self.victim_ip)
            yield self.lock.release()
            yield Mark(SwitchKind.ITEM_END, item)
        self._victim_done = True

    def threads(self) -> list[AppThread]:
        return [
            AppThread("hog", self.HOG_CORE, self._hog, self.poll_ip),
            AppThread("victim", self.VICTIM_CORE, self._victim, self.poll_ip),
        ]

    def group_of(self, item_id: int) -> str:
        """All victim items are identical — one similarity group."""
        return "item"
