"""A MariaDB-style thread-pool database engine (paper §I / §II-A).

The paper motivates fluctuation diagnosis with Huang et al.'s TPC-C
measurement on production databases: *"the standard deviation was twice
the mean"* and *"the 99th percentile was an order of magnitude greater
than the mean"*.  This workload reproduces that latency shape from
first principles and gives the tracer something to diagnose:

* **architecture** — one dispatcher thread feeding a shared
  :class:`~repro.runtime.queue.MPMCQueue`, one worker per core (MariaDB's
  "single active thread for each CPU", the self-switching architecture);
* **query mix** — mostly point selects, some range scans, rare
  analytic queries (the TPC-C-ish skew that creates the tail);
* **buffer pool** — a real LRU page cache shared by the workers; a cold
  page stalls the query for a synchronous read, so two identical
  queries differ by whether their pages are resident — the per-item
  non-functional state the tracer must expose;
* **functions** — parse_sql / plan_query / fetch_pages / execute_op /
  commit_log, so a hybrid trace attributes an outlier's excess (it
  lands in fetch_pages when the pool was cold).

Latencies are recorded externally (dispatch timestamp vs completion),
like the GNET tester: queue waiting counts, instrumentation does not
perturb the ground truth.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.symbols import AddressAllocator, SymbolTable
from repro.errors import WorkloadError
from repro.machine.block import Block
from repro.runtime.actions import Exec, FnEnter, FnLeave, IdleUntil, Mark, Pop, Push, SwitchKind
from repro.runtime.queue import MPMCQueue
from repro.runtime.thread import AppThread
from repro.units import ns_to_cycles


class QueryClass(enum.Enum):
    """The three-tier query mix behind the TPC-C-like tail."""

    POINT = "point"
    RANGE = "range"
    ANALYTIC = "analytic"


@dataclass(frozen=True)
class _ClassShape:
    """Pages touched and compute uops of one query class."""

    pages: int
    plan_uops: int
    execute_uops: int
    page_region: str  # 'hot' | 'warm' | 'cold'


_SHAPES: dict[QueryClass, _ClassShape] = {
    QueryClass.POINT: _ClassShape(pages=2, plan_uops=2_000, execute_uops=180_000, page_region="hot"),
    QueryClass.RANGE: _ClassShape(pages=16, plan_uops=8_000, execute_uops=1_500_000, page_region="warm"),
    QueryClass.ANALYTIC: _ClassShape(pages=24, plan_uops=20_000, execute_uops=4_800_000, page_region="cold"),
}

#: Page-id spans per region.  Hot pages recur constantly (always resident
#: after warm-up); the warm region fits the pool comfortably, so range
#: queries are fast once resident but pay IO during warm-up (the
#: within-class fluctuation the tracer should catch); the cold region
#: never fits, so analytic queries always pay.
_REGIONS = {"hot": (0, 256), "warm": (10_000, 10_512), "cold": (100_000, 165_536)}

#: uops charged per page visited in fetch_pages (pointer chasing, latching).
_FETCH_UOPS_PER_PAGE = 1_500

#: Chunk size for large execute blocks (keeps sampling granular).
_EXEC_CHUNK_UOPS = 100_000


@dataclass(frozen=True)
class DBQuery:
    """One data-item: a query with its page working set."""

    qid: int
    qclass: QueryClass
    pages: tuple[int, ...]


class BufferPool:
    """Shared LRU page cache; misses cost a synchronous page read."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise WorkloadError("buffer pool needs >= 1 page")
        self.capacity = capacity_pages
        self._pages: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        """Touch one page; True on hit.  Misses insert with LRU eviction."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
        self._pages[page] = True
        self.misses += 1
        return False

    def access_many(self, pages: tuple[int, ...]) -> int:
        """Touch pages in order; returns the number of misses."""
        return sum(0 if self.access(p) else 1 for p in pages)


@dataclass(frozen=True)
class DBPoolConfig:
    """Workload shape and machine-facing costs."""

    n_workers: int = 3
    n_queries: int = 1200
    mix: tuple[float, float, float] = (0.80, 0.18, 0.02)  # point/range/analytic
    inter_arrival_ns: float = 100_000.0
    buffer_pool_pages: int = 4_096
    io_stall_cycles: int = 90_000  # ~30 us synchronous page read
    queue_capacity: int = 512
    prewarm_hot: bool = True
    seed: int = 42
    freq_ghz: float = 3.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise WorkloadError("need at least one worker")
        if self.n_queries < 1:
            raise WorkloadError("need at least one query")
        if abs(sum(self.mix) - 1.0) > 1e-9 or any(m < 0 for m in self.mix):
            raise WorkloadError(f"mix must be a distribution, got {self.mix}")
        if self.io_stall_cycles < 0:
            raise WorkloadError("io_stall_cycles must be >= 0")


class DBPoolApp:
    """Dispatcher + N pinned workers around a shared run queue."""

    DISPATCHER_CORE = 0

    def __init__(self, config: DBPoolConfig = DBPoolConfig()) -> None:
        self.config = config
        alloc = AddressAllocator()
        self._alloc = alloc
        self.dispatch_ip = alloc.add("dispatcher_loop")
        self.worker_ip = alloc.add("worker_loop")
        self.parse_ip = alloc.add("parse_sql")
        self.plan_ip = alloc.add("plan_query")
        self.fetch_ip = alloc.add("fetch_pages")
        self.execute_ip = alloc.add("execute_op")
        self.commit_ip = alloc.add("commit_log")
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        self.queue = MPMCQueue("run_queue", capacity=config.queue_capacity)
        self.pool = BufferPool(config.buffer_pool_pages)
        if config.prewarm_hot:
            # A production database's hot set is resident before any
            # measurement window starts; without this, most of the run is
            # hot-set coupon collecting rather than steady-state traffic.
            lo, hi = _REGIONS["hot"]
            for page in range(lo, hi):
                self.pool.access(page)
            self.pool.hits = self.pool.misses = 0
        self.queries = self._generate_queries()
        #: qid -> dispatch timestamp (cycles), recorded by the dispatcher.
        self.dispatched: dict[int, int] = {}
        #: qid -> completion timestamp (cycles), recorded by workers.
        self.completed: dict[int, int] = {}
        #: qid -> page misses this query suffered (ground truth).
        self.page_misses: dict[int, int] = {}

    # -- workload generation --------------------------------------------------
    def _generate_queries(self) -> list[DBQuery]:
        rng = np.random.default_rng(self.config.seed)
        classes = list(QueryClass)
        out: list[DBQuery] = []
        for qid in range(1, self.config.n_queries + 1):
            qclass = classes[int(rng.choice(3, p=self.config.mix))]
            shape = _SHAPES[qclass]
            lo, hi = _REGIONS[shape.page_region]
            pages = tuple(
                int(p) for p in rng.integers(lo, hi, size=shape.pages)
            )
            out.append(DBQuery(qid=qid, qclass=qclass, pages=pages))
        return out

    # -- thread bodies -----------------------------------------------------------
    def _dispatcher(self):
        gap = ns_to_cycles(self.config.inter_arrival_ns, self.config.freq_ghz)
        t = 0
        for q in self.queries:
            t += gap
            yield IdleUntil(t)
            out = yield Exec(Block(ip=self.dispatch_ip, uops=600, branches=20))
            self.dispatched[q.qid] = out.end
            yield Push(self.queue, q)
        for _ in range(self.config.n_workers):
            yield Push(self.queue, None)

    def _worker(self):
        cfg = self.config
        while True:
            q = yield Pop(self.queue)
            if q is None:
                return
            shape = _SHAPES[q.qclass]
            yield Mark(SwitchKind.ITEM_START, q.qid)

            yield FnEnter(self.parse_ip)
            yield Exec(Block(ip=self.parse_ip, uops=1_500, branches=60, mispredicts=2))
            yield FnLeave(self.parse_ip)

            yield FnEnter(self.plan_ip)
            yield Exec(Block(ip=self.plan_ip, uops=shape.plan_uops, branches=shape.plan_uops // 20))
            yield FnLeave(self.plan_ip)

            # fetch_pages: real buffer-pool lookups; misses stall for IO.
            yield FnEnter(self.fetch_ip)
            misses = self.pool.access_many(q.pages)
            self.page_misses[q.qid] = misses
            yield Exec(
                Block(
                    ip=self.fetch_ip,
                    uops=len(q.pages) * _FETCH_UOPS_PER_PAGE,
                    branches=len(q.pages) * 8,
                    extra_cycles=misses * cfg.io_stall_cycles,
                )
            )
            yield FnLeave(self.fetch_ip)

            yield FnEnter(self.execute_ip)
            remaining = shape.execute_uops
            while remaining > 0:
                chunk = min(_EXEC_CHUNK_UOPS, remaining)
                yield Exec(Block(ip=self.execute_ip, uops=chunk, branches=chunk // 30))
                remaining -= chunk
            yield FnLeave(self.execute_ip)

            yield FnEnter(self.commit_ip)
            out = yield Exec(Block(ip=self.commit_ip, uops=900, branches=10))
            yield FnLeave(self.commit_ip)

            yield Mark(SwitchKind.ITEM_END, q.qid)
            self.completed[q.qid] = out.end

    # -- public -----------------------------------------------------------------
    def threads(self) -> list[AppThread]:
        """Dispatcher on core 0, workers on cores 1..n."""
        threads = [
            AppThread("dispatcher", self.DISPATCHER_CORE, self._dispatcher, self.dispatch_ip)
        ]
        for i in range(self.config.n_workers):
            threads.append(
                AppThread(f"worker{i}", 1 + i, self._worker, self.worker_ip)
            )
        return threads

    @property
    def worker_cores(self) -> list[int]:
        return [1 + i for i in range(self.config.n_workers)]

    def group_of(self, qid: int) -> str:
        """Similarity key for diagnosis: the query class."""
        return self.queries[qid - 1].qclass.value

    # -- latency statistics ---------------------------------------------------------
    def latency_us(self, qid: int) -> float:
        """Dispatch-to-completion latency (includes queue wait), in µs."""
        try:
            cycles = self.completed[qid] - self.dispatched[qid]
        except KeyError:
            raise WorkloadError(f"query {qid} has not completed")
        return cycles / self.config.freq_ghz / 1_000.0

    def latencies_us(self, qclass: QueryClass | None = None) -> list[float]:
        out = []
        for q in self.queries:
            if qclass is not None and q.qclass is not qclass:
                continue
            if q.qid in self.completed:
                out.append(self.latency_us(q.qid))
        return out

    def latency_summary(self) -> dict[str, float]:
        """The Huang-et-al. statistics: mean, std, p99 and their ratios."""
        lats = np.asarray(self.latencies_us())
        if lats.size < 2:
            raise WorkloadError("not enough completed queries for statistics")
        mean = float(lats.mean())
        std = float(lats.std(ddof=1))
        p99 = float(np.percentile(lats, 99))
        return {
            "mean_us": mean,
            "std_us": std,
            "p99_us": p99,
            "std_over_mean": std / mean,
            "p99_over_mean": p99 / mean,
        }
