"""Workloads the paper evaluates on (or close stand-ins for them).

* :mod:`~repro.workloads.sampleapp` — the Fig 7 proof-of-concept query app
  with an in-memory result cache.
* :mod:`~repro.workloads.nginxmodel` — the NGINX measurement behind Fig 2.
* :mod:`~repro.workloads.spec` — SPEC CPU 2006 stand-ins (astar / bzip2 /
  gcc) with distinct retirement rates, for the Fig 4 sample-interval study.
* :mod:`~repro.workloads.synth` — generic synthetic builders for tests and
  ablations.
"""

from repro.workloads.sampleapp import PAPER_QUERIES, Query, SampleApp, SampleAppConfig
from repro.workloads.contention import ContentionApp, ContentionConfig
from repro.workloads.dbpool import BufferPool, DBPoolApp, DBPoolConfig, QueryClass
from repro.workloads.nginxmodel import NginxModel, NginxModelConfig
from repro.workloads.spec import SPEC_KERNELS, SpecKernel, spec_kernel

#: Workload names buildable by :func:`build_workload` (and the CLI).
#: ``uniform``/``pipeline``/``memwalk`` are the interference-matrix
#: targets (see :mod:`repro.interference.targets`).
WORKLOADS = ("sampleapp", "nginx", "acl", "dbpool", "uniform", "pipeline", "memwalk")


def build_workload(
    name: str, *, items: int = 60, full_rules: bool = False, seed: int | None = None
):
    """Instantiate a named workload; returns ``(app, group_map)``.

    ``group_map`` maps item id → similarity key (packet type, query
    class, ...), the grouping the diagnosis engine baselines within.
    Shared by the CLI's ``--workload`` flag and :func:`repro.api.record`.

    ``seed`` threads one :class:`numpy.random.Generator` seed through the
    workload's randomness, making the build bit-reproducible: nginx and
    dbpool re-seed their config, acl draws its packet stream from
    :func:`repro.acl.traffic.random_traffic` with it, and the matrix
    targets jitter their items from it.  ``seed=None`` keeps each
    workload's historical default (sampleapp is fully deterministic and
    ignores it).
    """
    import dataclasses

    if name == "sampleapp":
        from repro.workloads.sampleapp import SampleApp

        app = SampleApp()
        return app, {q.qid: f"n={q.n}" for q in app.config.queries}
    if name == "nginx":
        from repro.workloads.nginxmodel import NginxModel, NginxModelConfig

        cfg = NginxModelConfig(n_requests=items)
        if seed is not None:
            cfg = dataclasses.replace(cfg, seed=seed)
        app = NginxModel(cfg)
        return app, {r: "request" for r in range(1, items + 1)}
    if name == "acl":
        from repro.acl.app import ACLApp, ACLAppConfig
        from repro.acl.packets import make_test_stream
        from repro.acl.rules import paper_ruleset, small_ruleset

        rules = paper_ruleset() if full_rules else small_ruleset(8, 8)
        if seed is not None:
            from repro.acl.traffic import random_traffic

            pkts = random_traffic(max(1, items), seed=seed)
        else:
            pkts = make_test_stream(max(1, items // 3))
        app = ACLApp(rules, pkts, config=ACLAppConfig())
        return app, {p.pkt_id: p.ptype for p in pkts}
    if name == "dbpool":
        from repro.workloads.dbpool import DBPoolApp, DBPoolConfig

        cfg = DBPoolConfig(n_queries=items)
        if seed is not None:
            cfg = dataclasses.replace(cfg, seed=seed)
        app = DBPoolApp(cfg)
        return app, {q.qid: q.qclass.value for q in app.queries}
    if name in ("uniform", "pipeline", "memwalk"):
        # Imported lazily: repro.interference.targets itself imports
        # workload modules, so a top-level import would be circular.
        from repro.interference.targets import build_target

        target = build_target(name, items=items, seed=0 if seed is None else seed)
        return target.app, target.groups
    from repro.errors import ReproError

    raise ReproError(f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}")


__all__ = [
    "BufferPool",
    "ContentionApp",
    "ContentionConfig",
    "DBPoolApp",
    "DBPoolConfig",
    "NginxModel",
    "NginxModelConfig",
    "PAPER_QUERIES",
    "Query",
    "QueryClass",
    "SampleApp",
    "SampleAppConfig",
    "SPEC_KERNELS",
    "SpecKernel",
    "WORKLOADS",
    "build_workload",
    "spec_kernel",
]
