"""Workloads the paper evaluates on (or close stand-ins for them).

* :mod:`~repro.workloads.sampleapp` — the Fig 7 proof-of-concept query app
  with an in-memory result cache.
* :mod:`~repro.workloads.nginxmodel` — the NGINX measurement behind Fig 2.
* :mod:`~repro.workloads.spec` — SPEC CPU 2006 stand-ins (astar / bzip2 /
  gcc) with distinct retirement rates, for the Fig 4 sample-interval study.
* :mod:`~repro.workloads.synth` — generic synthetic builders for tests and
  ablations.
"""

from repro.workloads.sampleapp import PAPER_QUERIES, Query, SampleApp, SampleAppConfig
from repro.workloads.contention import ContentionApp, ContentionConfig
from repro.workloads.dbpool import BufferPool, DBPoolApp, DBPoolConfig, QueryClass
from repro.workloads.nginxmodel import NginxModel, NginxModelConfig
from repro.workloads.spec import SPEC_KERNELS, SpecKernel, spec_kernel

__all__ = [
    "BufferPool",
    "ContentionApp",
    "ContentionConfig",
    "DBPoolApp",
    "DBPoolConfig",
    "NginxModel",
    "NginxModelConfig",
    "PAPER_QUERIES",
    "Query",
    "QueryClass",
    "SampleApp",
    "SampleAppConfig",
    "SPEC_KERNELS",
    "SpecKernel",
    "spec_kernel",
]
