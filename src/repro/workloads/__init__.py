"""Workloads the paper evaluates on (or close stand-ins for them).

* :mod:`~repro.workloads.sampleapp` — the Fig 7 proof-of-concept query app
  with an in-memory result cache.
* :mod:`~repro.workloads.nginxmodel` — the NGINX measurement behind Fig 2.
* :mod:`~repro.workloads.spec` — SPEC CPU 2006 stand-ins (astar / bzip2 /
  gcc) with distinct retirement rates, for the Fig 4 sample-interval study.
* :mod:`~repro.workloads.synth` — generic synthetic builders for tests and
  ablations.
"""

from repro.workloads.sampleapp import PAPER_QUERIES, Query, SampleApp, SampleAppConfig
from repro.workloads.contention import ContentionApp, ContentionConfig
from repro.workloads.dbpool import BufferPool, DBPoolApp, DBPoolConfig, QueryClass
from repro.workloads.nginxmodel import NginxModel, NginxModelConfig
from repro.workloads.spec import SPEC_KERNELS, SpecKernel, spec_kernel

#: Workload names buildable by :func:`build_workload` (and the CLI).
WORKLOADS = ("sampleapp", "nginx", "acl", "dbpool")


def build_workload(name: str, *, items: int = 60, full_rules: bool = False):
    """Instantiate a named workload; returns ``(app, group_map)``.

    ``group_map`` maps item id → similarity key (packet type, query
    class, ...), the grouping the diagnosis engine baselines within.
    Shared by the CLI's ``--workload`` flag and :func:`repro.api.record`.
    """
    if name == "sampleapp":
        from repro.workloads.sampleapp import SampleApp

        app = SampleApp()
        return app, {q.qid: f"n={q.n}" for q in app.config.queries}
    if name == "nginx":
        from repro.workloads.nginxmodel import NginxModel, NginxModelConfig

        app = NginxModel(NginxModelConfig(n_requests=items))
        return app, {r: "request" for r in range(1, items + 1)}
    if name == "acl":
        from repro.acl.app import ACLApp, ACLAppConfig
        from repro.acl.packets import make_test_stream
        from repro.acl.rules import paper_ruleset, small_ruleset

        rules = paper_ruleset() if full_rules else small_ruleset(8, 8)
        pkts = make_test_stream(max(1, items // 3))
        app = ACLApp(rules, pkts, config=ACLAppConfig())
        return app, {p.pkt_id: p.ptype for p in pkts}
    if name == "dbpool":
        from repro.workloads.dbpool import DBPoolApp, DBPoolConfig

        app = DBPoolApp(DBPoolConfig(n_queries=items))
        return app, {q.qid: q.qclass.value for q in app.queries}
    from repro.errors import ReproError

    raise ReproError(f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}")


__all__ = [
    "BufferPool",
    "ContentionApp",
    "ContentionConfig",
    "DBPoolApp",
    "DBPoolConfig",
    "NginxModel",
    "NginxModelConfig",
    "PAPER_QUERIES",
    "Query",
    "QueryClass",
    "SampleApp",
    "SampleAppConfig",
    "SPEC_KERNELS",
    "SpecKernel",
    "WORKLOADS",
    "build_workload",
    "spec_kernel",
]
