"""SPEC CPU 2006 stand-ins for the Fig 4 sample-interval study.

Fig 4 runs astar, bzip2 and gcc under PEBS and under perf's software
sampling, sweeping the reset value.  The only workload property that
matters there is the *retirement rate* (micro-ops per cycle): at a given
reset value of a UOPS_RETIRED counter, a lower-IPC workload overflows less
often, so its achieved sample interval is longer — that is why the paper's
curves for the three benchmarks are offset from each other.

The stand-ins reproduce the qualitative IPC ordering of the originals:

* ``bzip2`` — dense compute, high retirement rate (~2.2 uops/cycle),
* ``astar`` — branchy pathfinding, mid rate (~1.4 uops/cycle),
* ``gcc``  — pointer-heavy with frequent stalls, low rate (~0.9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.symbols import AddressAllocator, SymbolTable
from repro.errors import WorkloadError
from repro.machine.block import Block
from repro.runtime.actions import Exec
from repro.runtime.thread import AppThread


@dataclass(frozen=True)
class KernelShape:
    """Per-block shape of one kernel (before jitter)."""

    uops: int
    branches: int
    mispredicts: int
    stall_cycles: int


#: Block shapes calibrated to the target retirement rates on the default
#: 3 GHz / IPC-4 machine (base + mispredict penalty + stalls).
SPEC_KERNELS: dict[str, KernelShape] = {
    "astar": KernelShape(uops=2000, branches=400, mispredicts=40, stall_cycles=300),
    "bzip2": KernelShape(uops=3000, branches=300, mispredicts=10, stall_cycles=450),
    "gcc": KernelShape(uops=1500, branches=300, mispredicts=15, stall_cycles=1070),
}


class SpecKernel:
    """One single-threaded kernel run for a fixed virtual duration."""

    CORE = 0

    def __init__(
        self,
        name: str,
        duration_cycles: int = 30_000_000,
        seed: int = 2006,
        jitter: float = 0.1,
    ) -> None:
        """``duration_cycles`` is the kernel's own work; wall-clock time
        additionally includes whatever sampling overhead is attached."""
        if name not in SPEC_KERNELS:
            raise WorkloadError(
                f"unknown kernel {name!r}; choose from {sorted(SPEC_KERNELS)}"
            )
        if duration_cycles < 1:
            raise WorkloadError("duration must be >= 1 cycle")
        if not 0.0 <= jitter < 1.0:
            raise WorkloadError(f"jitter must be in [0, 1), got {jitter}")
        self.name = name
        self.shape = SPEC_KERNELS[name]
        self.duration_cycles = duration_cycles
        self.seed = seed
        self.jitter = jitter
        alloc = AddressAllocator()
        self.poll_ip = alloc.add(f"{name}_dispatch")
        self.main_ip = alloc.add(f"{name}_main")
        self.symtab: SymbolTable = alloc.table()
        self.uops_retired = 0
        self.cycles_run = 0

    def _body(self):
        rng = np.random.default_rng(self.seed)
        shape = self.shape
        consumed = 0
        while consumed < self.duration_cycles:
            if self.jitter > 0.0:
                f = float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
            else:
                f = 1.0
            uops = max(1, int(shape.uops * f))
            block = Block(
                ip=self.main_ip,
                uops=uops,
                branches=shape.branches,
                mispredicts=shape.mispredicts,
                extra_cycles=int(shape.stall_cycles * f),
            )
            outcome = yield Exec(block)
            # Count only the kernel's own cycles: the amount of *work* is
            # fixed, so attached samplers lengthen the wall clock instead
            # of shrinking the workload (needed for overhead studies).
            consumed += outcome.cycles
            self.uops_retired += uops
        self.cycles_run = consumed

    def threads(self) -> list[AppThread]:
        """The kernel's single thread."""
        return [AppThread(self.name, self.CORE, self._body, self.poll_ip)]

    @property
    def uops_per_cycle(self) -> float:
        """Measured retirement rate of the last run."""
        if self.cycles_run == 0:
            raise WorkloadError("run the kernel before asking for its rate")
        return self.uops_retired / self.cycles_run


def spec_kernel(name: str, **kwargs) -> SpecKernel:
    """Factory matching the paper's benchmark naming."""
    return SpecKernel(name, **kwargs)
