"""The paper's proof-of-concept sample application (Fig 7 / Fig 8).

Two threads pinned to two cores.  Thread 0 receives queries and passes
them one by one to Thread 1 through a software queue.  A query is
``(id, n)``; Thread 1 applies linear transformations to ``n * 1000``
points and returns the results.  The app keeps an **in-memory result
cache**: points whose transform was already computed are not recomputed —
so the elapsed time of an identical query fluctuates with cache warmth,
which is exactly the phenomenon the tracer must expose.

Thread 1's loop body calls three functions (as in Fig 7):

* ``f1_parse``   — fixed-cost query decoding,
* ``f2_cache_lookup`` — per-point membership check over all N points,
* ``f3_compute`` — the linear transform for every *uncached* point
  (plus cache insertion); this is the function whose time collapses once
  the points are warm.

The data-item switch instrumentation brackets the whole loop body (two
``Mark`` actions), not the three functions — the paper's coarse
instrumentation.  ``FnEnter``/``FnLeave`` markers are also emitted so the
same app can run under the full-instrumentation baseline for ablations.

With ``use_cpu_caches`` the result store is laid out in simulated memory
and f2/f3 really touch it, so the Section V-D experiment (PEBS on an
LLC-miss event) sees genuine cold/warm behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.machine.block import Block, MemRef
from repro.runtime.actions import Exec, FnEnter, FnLeave, IdleUntil, Mark, Pop, Push, SwitchKind
from repro.runtime.queue import SPSCQueue
from repro.runtime.thread import AppThread
from repro.core.symbols import AddressAllocator, SymbolTable
from repro.units import ns_to_cycles

#: Bytes one cached point result occupies in the result store.
POINT_BYTES = 8

#: Points per transform chunk (one Block each) — keeps sampling granular.
CHUNK_POINTS = 1000


@dataclass(frozen=True)
class Query:
    """One data-item: a unique id and the point-count multiplier n."""

    qid: int
    n: int

    def __post_init__(self) -> None:
        if self.qid < 0:
            raise WorkloadError(f"query id must be >= 0, got {self.qid}")
        if self.n < 1:
            raise WorkloadError(f"query n must be >= 1, got {self.n}")


#: The ten queries of the paper's Fig 8: ids 1..10; queries 1, 2, 4, 8
#: share n=3 (the 1st pays the cold cache), queries 5, 7, 9 share n=5
#: (the 5th pays for the 2000 points not covered by earlier queries).
PAPER_QUERIES: tuple[Query, ...] = tuple(
    Query(qid, n) for qid, n in zip(range(1, 11), (3, 3, 2, 3, 5, 1, 5, 3, 5, 2))
)


@dataclass(frozen=True)
class SampleAppConfig:
    """Tunable knobs of the sample application.

    Default costs put a cold n=3 query near 17 µs and a warm one near
    3 µs on the 3 GHz machine — the "much longer" contrast of Fig 8.
    """

    queries: tuple[Query, ...] = PAPER_QUERIES
    points_per_n: int = 1000
    f1_uops: int = 20000
    f2_uops_per_point: int = 8
    f3_uops_per_point: int = 60
    inter_query_gap_ns: float = 1000.0
    use_cpu_caches: bool = False
    result_store_base: int = 0x1000_0000
    freq_ghz: float = 3.0

    def __post_init__(self) -> None:
        if not self.queries:
            raise WorkloadError("need at least one query")
        ids = [q.qid for q in self.queries]
        if len(set(ids)) != len(ids):
            raise WorkloadError("query ids must be unique")
        if self.points_per_n < 1:
            raise WorkloadError("points_per_n must be >= 1")
        if min(self.f1_uops, self.f2_uops_per_point, self.f3_uops_per_point) < 1:
            raise WorkloadError("function costs must be >= 1 uop")


class SampleApp:
    """Builds the two pinned threads and the symbol layout of the app."""

    RECEIVER_CORE = 0
    WORKER_CORE = 1

    def __init__(self, config: SampleAppConfig = SampleAppConfig()) -> None:
        self.config = config
        alloc = AddressAllocator()
        self._alloc = alloc
        self.poll_ip = alloc.add("poll_loop")
        self.recv_ip = alloc.add("receive_query")
        self.f1_ip = alloc.add("f1_parse")
        self.f2_ip = alloc.add("f2_cache_lookup")
        self.f3_ip = alloc.add("f3_compute")
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        self.queue = SPSCQueue("query_q", capacity=64)
        max_points = max(q.n for q in config.queries) * config.points_per_n
        # Host-side model of the in-memory result cache: True = computed.
        self._cached = np.zeros(max_points, dtype=bool)
        #: (qid -> number of points f3 had to compute) — ground truth for tests.
        self.computed_points: dict[int, int] = {}

    # -- thread bodies -------------------------------------------------------
    def _receiver(self):
        gap = ns_to_cycles(self.config.inter_query_gap_ns, self.config.freq_ghz)
        t = 0
        for q in self.config.queries:
            t += gap
            yield IdleUntil(t)
            yield Exec(Block(ip=self.recv_ip, uops=500, branches=20, mispredicts=1))
            yield Push(self.queue, q)
        yield Push(self.queue, None)

    def _worker(self):
        cfg = self.config
        while True:
            q = yield Pop(self.queue)
            if q is None:
                return
            n_points = q.n * cfg.points_per_n
            yield Mark(SwitchKind.ITEM_START, q.qid)

            # f1: parse / prepare the query.
            yield FnEnter(self.f1_ip)
            yield Exec(Block(ip=self.f1_ip, uops=cfg.f1_uops, branches=cfg.f1_uops // 20))
            yield FnLeave(self.f1_ip)

            # f2: check every point against the result cache.  The lookup
            # touches the *tag* region (hash-bucket tags), not the values.
            yield FnEnter(self.f2_ip)
            uncached = int(np.count_nonzero(~self._cached[:n_points]))
            mem = self._tag_ref(0, n_points) if cfg.use_cpu_caches else None
            yield Exec(
                Block(
                    ip=self.f2_ip,
                    uops=n_points * cfg.f2_uops_per_point,
                    mem=mem,
                    branches=n_points,
                    mispredicts=max(1, uncached // 64),
                )
            )
            yield FnLeave(self.f2_ip)

            # f3: transform the uncached points, chunk by chunk, and
            # insert results into the cache.
            yield FnEnter(self.f3_ip)
            self.computed_points[q.qid] = uncached
            if uncached > 0:
                todo = np.nonzero(~self._cached[:n_points])[0]
                self._cached[todo] = True
                for start in range(0, uncached, CHUNK_POINTS):
                    chunk = min(CHUNK_POINTS, uncached - start)
                    mem = (
                        self._result_ref(int(todo[start]), chunk)
                        if cfg.use_cpu_caches
                        else None
                    )
                    yield Exec(
                        Block(
                            ip=self.f3_ip,
                            uops=chunk * cfg.f3_uops_per_point,
                            mem=mem,
                            branches=chunk,
                        )
                    )
            else:
                # Even a fully-cached query executes the loop header once.
                yield Exec(Block(ip=self.f3_ip, uops=50, branches=2))
            yield FnLeave(self.f3_ip)

            yield Mark(SwitchKind.ITEM_END, q.qid)

    #: Offset separating the tag region (read by f2's lookups) from the
    #: result-value region (written by f3's compute) in the store layout.
    _RESULT_REGION_OFFSET = 0x0800_0000

    def _tag_ref(self, first_point: int, count: int) -> MemRef:
        """Accesses over the hash-bucket tag region (f2's lookups)."""
        base = self.config.result_store_base + first_point * POINT_BYTES
        return MemRef(base=base, count=count, stride=POINT_BYTES)

    def _result_ref(self, first_point: int, count: int) -> MemRef:
        """Accesses over the result-value region (f3's inserts)."""
        base = (
            self.config.result_store_base
            + self._RESULT_REGION_OFFSET
            + first_point * POINT_BYTES
        )
        return MemRef(base=base, count=count, stride=POINT_BYTES)

    # -- public ----------------------------------------------------------------
    def reset(self) -> None:
        """Clear the result cache and stats; required between runs.

        One SampleApp instance holds the application-level cache state, so
        reusing it without a reset would make the second run fully warm.
        """
        self._cached[:] = False
        self.computed_points.clear()
        self.queue = SPSCQueue("query_q", capacity=64)

    def threads(self) -> list[AppThread]:
        """The two pinned threads (fresh generators each call)."""
        return [
            AppThread("thread0-recv", self.RECEIVER_CORE, self._receiver, self.poll_ip),
            AppThread("thread1-work", self.WORKER_CORE, self._worker, self.poll_ip),
        ]

    def group_of(self, qid: int) -> int:
        """Similarity key for fluctuation diagnosis: the query's n."""
        for q in self.config.queries:
            if q.qid == qid:
                return q.n
        raise WorkloadError(f"unknown query id {qid}")
