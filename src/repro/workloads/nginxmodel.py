"""NGINX-like web server model behind the paper's Fig 2 motivation.

The paper served the 612-byte default index page from NGINX (one worker,
one core) under the Apache benchmark — 300 K requests in 44.8 s, i.e. an
average of 149 µs per request — and estimated per-request elapsed time of
each function as ``149us * c_f / c_a`` from perf cycle counts.  The
finding: *many functions take less than 4 µs*, so per-function
instrumentation is hopeless.

This model replays that workload shape: one worker thread runs a fixed
request-processing call sequence whose per-function mean costs are
calibrated to sum to ~149 µs at 3 GHz, with multiplicative jitter per
request.  Function names and cost ordering follow NGINX's actual hot path
(event loop, request parsing, static handler, writev dominating).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.symbols import AddressAllocator, SymbolTable
from repro.errors import WorkloadError
from repro.machine.block import timed_block
from repro.runtime.actions import Exec, FnEnter, FnLeave, Mark, SwitchKind
from repro.runtime.thread import AppThread

#: (function name, mean per-request cycles at 3 GHz).  Sums to ~447 K
#: cycles = ~149 µs.  Everything under 12 000 cycles is a sub-4 µs
#: function — the Fig 2 population that defeats instrumentation.
NGINX_FUNCTIONS: tuple[tuple[str, int], ...] = (
    ("ngx_epoll_process_events", 88_000),
    ("ngx_event_accept", 7_500),
    ("ngx_http_create_request", 9_000),
    ("ngx_recv", 21_000),
    ("ngx_http_process_request_line", 6_000),
    ("ngx_http_parse_header_line", 4_500),
    ("ngx_http_process_request_headers", 9_000),
    ("ngx_http_core_content_phase", 6_000),
    ("ngx_http_static_handler", 30_000),
    ("ngx_http_header_filter", 10_500),
    ("ngx_output_chain", 24_000),
    ("ngx_http_write_filter", 9_000),
    ("ngx_writev", 150_000),
    ("ngx_http_run_posted_requests", 3_000),
    ("ngx_http_log_handler", 12_000),
    ("ngx_http_finalize_connection", 12_000),
    ("ngx_http_free_request", 6_000),
    ("ngx_palloc", 3_000),
    ("ngx_http_variable_handler", 2_400),
    ("ngx_http_keepalive_handler", 15_000),
)


@dataclass(frozen=True)
class NginxModelConfig:
    """Workload shape: request count, jitter, machine frequency."""

    n_requests: int = 300
    jitter_cv: float = 0.2
    seed: int = 20180521
    freq_ghz: float = 3.0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise WorkloadError("need at least one request")
        if not 0.0 <= self.jitter_cv < 1.0:
            raise WorkloadError(f"jitter_cv must be in [0, 1), got {self.jitter_cv}")


class NginxModel:
    """One NGINX worker serving the benchmark requests."""

    WORKER_CORE = 0

    def __init__(self, config: NginxModelConfig = NginxModelConfig()) -> None:
        self.config = config
        alloc = AddressAllocator()
        self._alloc = alloc
        self.poll_ip = alloc.add("ngx_worker_process_cycle")
        self.fn_ips = {name: alloc.add(name) for name, _ in NGINX_FUNCTIONS}
        self.mark_ip = alloc.add("__mark")
        self.symtab: SymbolTable = alloc.table()
        #: Ground-truth cycles actually charged per function, per request
        #: (filled during the run; used to validate profile estimates).
        self.true_cycles: dict[str, int] = {name: 0 for name, _ in NGINX_FUNCTIONS}
        self.total_request_cycles = 0

    def _worker(self):
        rng = np.random.default_rng(self.config.seed)
        cv = self.config.jitter_cv
        for req in range(1, self.config.n_requests + 1):
            yield Mark(SwitchKind.ITEM_START, req)
            for name, mean_cycles in NGINX_FUNCTIONS:
                if cv > 0.0:
                    factor = float(rng.gamma(shape=1.0 / cv**2, scale=cv**2))
                else:
                    factor = 1.0
                cycles = max(1, int(round(mean_cycles * factor)))
                self.true_cycles[name] += cycles
                self.total_request_cycles += cycles
                yield FnEnter(self.fn_ips[name])
                yield Exec(timed_block(self.fn_ips[name], cycles))
                yield FnLeave(self.fn_ips[name])
            yield Mark(SwitchKind.ITEM_END, req)

    def threads(self) -> list[AppThread]:
        """The single worker thread."""
        return [AppThread("nginx-worker", self.WORKER_CORE, self._worker, self.poll_ip)]

    def mean_request_us(self) -> float:
        """Measured mean request time (ground truth) in microseconds."""
        if self.total_request_cycles == 0:
            raise WorkloadError("run the model before asking for results")
        per_req = self.total_request_cycles / self.config.n_requests
        return per_req / self.config.freq_ghz / 1_000.0

    def per_request_us(self, name: str) -> float:
        """Ground-truth mean per-request elapsed time of one function (µs)."""
        if name not in self.true_cycles:
            raise WorkloadError(f"unknown function {name!r}")
        per_req = self.true_cycles[name] / self.config.n_requests
        return per_req / self.config.freq_ghz / 1_000.0
