"""The asyncio ingestion daemon: admission control over the trace store.

One single-threaded event loop runs three kinds of task:

* **connection tasks** (one per producer) parse frames off the wire and
  either answer instantly (HELLO, credit policing, shed NACKs) or place
  work on the admission queue.  They never touch the store's write path,
  so a producer dying mid-segment cannot corrupt anything — its torn
  frame fails the crc and the connection is refused further input.
* the **store task** drains the admission queue one segment at a time,
  seals each into the run journal via
  :meth:`~repro.service.store.TraceStore.append_segment`, and only then
  ACKs — the ACK is a durability receipt, not a delivery receipt.
* **compaction tasks** (one per finishing run) replay the run journal
  into the committed container under the shard-pool supervision
  discipline (:func:`~repro.core.shardpool.supervised_call`).

Backpressure mirrors :mod:`repro.machine.overload`'s shed-don't-stall
policy, one layer up: the admission queue is bounded, a SEGMENT that
finds it full is NACKed immediately (never buffered, never blocked on),
and per-producer credit windows throttle the floods before they reach
the queue — ACKs stop granting credit above the high watermark and a
CREDIT frame restores the withheld window once the queue drains below
the low watermark.  Every rejection is counted by reason, so shed
accounting is exact.
"""

from __future__ import annotations

import asyncio
import functools
import hmac
import secrets
from dataclasses import dataclass, field

from repro.core.options import IngestOptions
from repro.core.shardpool import supervised_call
from repro.obs.anomaly import (
    AnomalyConfig,
    AnomalyLog,
    CreditStarvationChecker,
    ReplicaLagChecker,
)
from repro.errors import (
    CorruptionError,
    ProtocolError,
    RunCommittedError,
    StoreError,
    TraceError,
    TraceWriteError,
)
from repro.obs.instrumented import pipeline as _obs
from repro.service.protocol import (
    KIND_ACK,
    KIND_AUTH,
    KIND_CHALLENGE,
    KIND_COMMITTED,
    KIND_CREDIT,
    KIND_ERROR,
    KIND_FINISH,
    KIND_HELLO,
    KIND_NACK,
    KIND_REPLICATE,
    KIND_SEGMENT,
    KIND_SYNC_REQ,
    KIND_WELCOME,
    MAX_FRAME_BYTES,
    Frame,
    encode_frame,
)
from repro.service.replica import FollowerSessions, Replicator, auth_proof
from repro.service.sources import StreamSource
from repro.service.store import TraceStore

#: NACK reasons (the shed-accounting vocabulary).
NACK_OVERLOADED = "overloaded"  # admission queue full: shed, retry later
NACK_NO_CREDIT = "no-credit"  # producer overran its credit window
NACK_POISON = "poison"  # segment failed validation: never retry
NACK_DUPLICATE_RUN = "duplicate-run"  # run already committed
NACK_POISON_RUN = "poison-run"  # run journal cannot compact
NACK_STORAGE = "storage"  # store write failed (ENOSPC...): retry
NACK_SHUTTING_DOWN = "shutting-down"  # daemon is draining
NACK_UNAUTHORIZED = "unauthorized"  # bad or missing auth token: never retry


@dataclass
class DaemonConfig:
    """Knobs of one daemon instance (all bounded-resource policy)."""

    #: Admission queue capacity — the only place segments queue in RAM.
    capacity: int = 128
    #: Queue depth above which ACKs stop granting credit back.
    high_watermark: int | None = None
    #: Queue depth at or below which withheld credits are restored.
    low_watermark: int | None = None
    #: Per-producer credit window (max unACKed segments in flight).
    credits: int = 8
    #: Per-frame size ceiling enforced on every connection.
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Artificial per-segment store delay (tests: a slow consumer).
    drain_delay_s: float = 0.0
    #: Compaction supervision (PR 2 discipline: retries + backoff).
    compact_max_retries: int = 2
    compact_backoff_s: float = 0.05
    #: Ingestion knobs threaded through to the store / sources.
    options: IngestOptions = field(default_factory=IngestOptions)
    #: Online invariant checking (credit-window-starvation lives on the
    #: daemon side; off by default like every anomaly checker).
    anomaly: AnomalyConfig = field(default_factory=AnomalyConfig)
    #: Shared secret for the CHALLENGE/AUTH handshake (None = auth off,
    #: the compatible default).  With a token set, every connection's
    #: first frame is answered with a CHALLENGE and nothing is processed
    #: until a valid HMAC proof arrives.
    auth_token: bytes | None = None
    #: Follower addresses this daemon replicates its store to.
    replicate_to: tuple[str, ...] = ()
    #: Replicator wake interval (commits also kick it immediately).
    sync_interval_s: float = 30.0
    #: Every Nth replication round runs in verify mode — the periodic
    #: anti-entropy scrub that re-checks follower bytes against crcs.
    scrub_every: int = 8

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise StoreError(f"capacity must be >= 1, got {self.capacity}")
        if self.high_watermark is None:
            self.high_watermark = max(1, (self.capacity * 3) // 4)
        if self.low_watermark is None:
            self.low_watermark = self.capacity // 4
        if not 0 <= self.low_watermark < self.high_watermark <= self.capacity:
            raise StoreError(
                "watermarks must satisfy 0 <= low < high <= capacity, got "
                f"low={self.low_watermark} high={self.high_watermark} "
                f"capacity={self.capacity}"
            )
        if self.credits < 1:
            raise StoreError(f"credits must be >= 1, got {self.credits}")
        if self.scrub_every < 1:
            raise StoreError(f"scrub_every must be >= 1, got {self.scrub_every}")
        if isinstance(self.replicate_to, list):
            self.replicate_to = tuple(self.replicate_to)
        if isinstance(self.auth_token, str):
            self.auth_token = self.auth_token.encode("utf-8")


class _Conn:
    """Per-producer connection state (owned by the event loop)."""

    __slots__ = (
        "writer", "run", "credits", "withheld", "closed",
        "authed", "challenge", "pending_auth",
    )

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.run: str | None = None
        self.credits = 0
        self.withheld = 0
        self.closed = False
        #: Auth handshake state: True once the HMAC proof verified (or
        #: trivially when the daemon holds no token).
        self.authed = False
        self.challenge: str | None = None
        self.pending_auth: Frame | None = None

    def send(self, frame: Frame) -> None:
        """Queue one frame for transmit (single write; no await).

        Both the connection task and the store task reply on the same
        writer; issuing exactly one ``write()`` per frame keeps the
        byte stream frame-aligned without cross-task locking.
        """
        if not self.closed and not self.writer.is_closing():
            self.writer.write(encode_frame(frame))


class IngestDaemon:
    """Admission control + durability receipts over a :class:`TraceStore`."""

    def __init__(self, store: TraceStore, config: DaemonConfig | None = None) -> None:
        self.store = store
        self.config = config if config is not None else DaemonConfig()
        self._queue: asyncio.Queue | None = None
        self._store_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._compactions: dict[str, asyncio.Task] = {}
        self._conns: set[_Conn] = set()
        self._servers: list[asyncio.base_events.Server] = []
        self._accepting = False
        #: Resolves with the fatal exception if any daemon task dies
        #: unexpectedly — the chaos harness's kill detector.
        self.crashed: asyncio.Future | None = None
        #: Daemon-side anomaly log (None unless config.anomaly.enabled).
        acfg = self.config.anomaly
        self.anomalies: AnomalyLog | None = None
        self._credit_checker: CreditStarvationChecker | None = None
        self._replica_lag_checker: ReplicaLagChecker | None = None
        if acfg.enabled:
            self.anomalies = AnomalyLog(acfg.log_capacity)
            if acfg.wants(CreditStarvationChecker.kind):
                self._credit_checker = CreditStarvationChecker(
                    self.anomalies, acfg
                )
            if acfg.wants(ReplicaLagChecker.kind):
                self._replica_lag_checker = ReplicaLagChecker(
                    self.anomalies, acfg
                )
        #: Follower-side replication state (this daemon as a replica).
        self._followers = FollowerSessions(store)
        #: Primary-side replication tasks (this daemon as a primary).
        self.replicators: list[Replicator] = []
        self._replicator_tasks: list[asyncio.Task] = []
        self._lag_by_follower: dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> dict[str, str]:
        """Recover the store, then begin accepting work.

        Returns the recovery actions (run id → what recovery did), so a
        restarting operator sees exactly what the crash left behind.
        """
        if self._queue is not None:
            raise StoreError("daemon already started")
        self.crashed = asyncio.get_running_loop().create_future()
        actions = self.store.recover_store()
        self._queue = asyncio.Queue(maxsize=self.config.capacity)
        self._store_task = asyncio.create_task(
            self._store_loop(), name="ingest-store"
        )
        self._store_task.add_done_callback(self._task_died)
        self._accepting = True
        for addr in self.config.replicate_to:
            rep = Replicator(
                self.store,
                addr,
                interval_s=self.config.sync_interval_s,
                scrub_every=self.config.scrub_every,
                token=self.config.auth_token,
                on_lag=self._on_replica_lag,
            )
            self.replicators.append(rep)
            task = asyncio.create_task(rep.run(), name=f"replicate-{addr}")
            task.add_done_callback(self._task_died)
            self._replicator_tasks.append(task)
        ins = _obs()
        ins.svc_queue_capacity.set(self.config.capacity)
        ins.svc_compaction_lag.set(len(self.store.compaction_backlog()))
        return actions

    def _task_died(self, task: asyncio.Task) -> None:
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None and self.crashed is not None and not self.crashed.done():
            self.crashed.set_exception(exc)

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting, seal what was accepted, stop.

        Every segment that was ever ACKed is sealed before this returns;
        segments still on the queue are sealed too (they were admitted).
        In-flight compactions complete.  New SEGMENTs are NACKed
        ``shutting-down`` from the moment this is called.
        """
        self._accepting = False
        for server in self._servers:
            server.close()
        for rep in self.replicators:
            await rep.stop()
        for task in self._replicator_tasks:
            task.cancel()
        if self._replicator_tasks:
            await asyncio.gather(*self._replicator_tasks, return_exceptions=True)
        self._replicator_tasks.clear()
        if self._queue is not None and self._store_task is not None:
            if not self._store_task.done():
                # Drain what was admitted — but a store task that dies
                # mid-drain can never finish the join, so race them.
                join = asyncio.ensure_future(self._queue.join())
                await asyncio.wait(
                    {join, self._store_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if not join.done():
                    join.cancel()
            if not self._store_task.done():
                self._store_task.cancel()
                try:
                    await self._store_task
                except asyncio.CancelledError:
                    pass
        for task in list(self._compactions.values()):
            try:
                await task
            except BaseException:
                # A SimulatedCrash (chaos kill) is a BaseException on
                # purpose; the crash already surfaced via self.crashed.
                pass
        for conn in list(self._conns):
            conn.closed = True
            try:
                conn.writer.close()
            except Exception:  # pragma: no cover - transport teardown
                pass
        conn_tasks = list(self._conn_tasks)
        for task in conn_tasks:
            task.cancel()
        if conn_tasks:
            await asyncio.gather(*conn_tasks, return_exceptions=True)
        if self.crashed is not None and not self.crashed.done():
            self.crashed.cancel()

    # -- transports ------------------------------------------------------
    async def serve_unix(self, path: str) -> None:
        await self._clear_stale_socket(path)
        server = await asyncio.start_unix_server(self._accept, path=path)
        self._servers.append(server)

    @staticmethod
    async def _clear_stale_socket(path: str) -> None:
        """Unlink the socket a crashed daemon left behind — but only
        after probing proves no live daemon is listening on it, so two
        daemons can never both think they own one path."""
        import os
        import stat

        try:
            mode = os.stat(path).st_mode
        except FileNotFoundError:
            return
        if not stat.S_ISSOCK(mode):
            raise StoreError(
                f"refusing to serve on {path}: it exists and is not a socket"
            )
        try:
            _, probe = await asyncio.open_unix_connection(path)
        except (ConnectionRefusedError, FileNotFoundError):
            # Nobody home: the previous daemon died without unlinking.
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return
        except OSError as exc:
            raise StoreError(f"cannot probe socket {path}: {exc}") from exc
        probe.close()
        raise StoreError(
            f"refusing to serve on {path}: a live daemon already listens there"
        )

    async def serve_tcp(self, host: str, port: int) -> None:
        server = await asyncio.start_server(self._accept, host=host, port=port)
        self._servers.append(server)

    def _accept(self, reader, writer) -> None:
        task = asyncio.create_task(self.handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        task.add_done_callback(self._task_died)

    async def connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """An in-process connection (tests, same-process producers).

        Returns the client side of a socketpair whose server side is
        already being served by this daemon.
        """
        import socket

        s_client, s_server = socket.socketpair()
        c_reader, c_writer = await asyncio.open_connection(sock=s_client)
        s_reader, s_writer = await asyncio.open_connection(sock=s_server)
        self._accept(s_reader, s_writer)
        return c_reader, c_writer

    # -- connection protocol ---------------------------------------------
    async def handle_connection(self, reader, writer) -> None:
        conn = _Conn(writer)
        self._conns.add(conn)
        ins = _obs()
        ins.svc_connections.set(len(self._conns))
        src = StreamSource(reader, max_frame_bytes=self.config.max_frame_bytes)
        try:
            async for frame in src:
                await self._handle_frame(conn, frame)
                if self._queue is not None and self._queue.full():
                    # The producer raced ahead of the drain; yield so the
                    # store task gets scheduled between frames.
                    await asyncio.sleep(0)
        except ProtocolError as exc:
            # The stream is untrusted from here on: report and hang up.
            conn.send(Frame(KIND_ERROR, {"reason": str(exc)}))
            ins.svc_protocol_errors.inc()
        except (ConnectionError, OSError):  # producer vanished mid-read
            pass
        finally:
            conn.closed = True
            self._conns.discard(conn)
            self._followers.discard(conn)
            ins.svc_connections.set(len(self._conns))
            self._publish_credits()
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport teardown
                pass

    async def _handle_frame(self, conn: _Conn, frame: Frame) -> None:
        if self.config.auth_token is not None and not conn.authed:
            self._gate_auth(conn, frame)
            if not conn.authed or conn.pending_auth is None:
                return
            frame, conn.pending_auth = conn.pending_auth, None
        await self._dispatch(conn, frame)

    def _gate_auth(self, conn: _Conn, frame: Frame) -> None:
        """CHALLENGE/AUTH handshake: nothing is processed before a valid
        HMAC proof.  The first real frame is stashed and replayed once
        the proof verifies, so clients pay one extra round trip and zero
        protocol changes."""
        if frame.kind != KIND_AUTH:
            if conn.challenge is not None:
                raise ProtocolError("expected AUTH after CHALLENGE")
            conn.challenge = secrets.token_hex(16)
            conn.pending_auth = frame
            conn.send(Frame(KIND_CHALLENGE, {"nonce": conn.challenge}))
            return
        proof = frame.meta.get("proof")
        want = auth_proof(self.config.auth_token, conn.challenge or "")
        if not (
            conn.challenge is not None
            and isinstance(proof, str)
            and hmac.compare_digest(proof, want)
        ):
            _obs().svc_auth_failures.inc()
            self._nack(conn, None, NACK_UNAUTHORIZED, retry=False, credit=0)
            raise ProtocolError("authentication failed")
        conn.authed = True

    async def _dispatch(self, conn: _Conn, frame: Frame) -> None:
        if frame.kind == KIND_HELLO:
            self._on_hello(conn, frame)
        elif frame.kind == KIND_SEGMENT:
            self._on_segment(conn, frame)
        elif frame.kind == KIND_FINISH:
            await self._on_finish(conn, frame)
        elif frame.kind in (KIND_SYNC_REQ, KIND_REPLICATE):
            self._on_replica_frame(conn, frame)
        else:
            raise ProtocolError(
                f"unexpected {frame.kind_name} frame from a producer"
            )

    def _on_replica_frame(self, conn: _Conn, frame: Frame) -> None:
        """Replication frames ride the admission queue: every follower
        store write happens on the store task, where the chaos suite can
        kill it at any IO operation."""
        if not self._accepting:
            self._nack(conn, None, NACK_SHUTTING_DOWN, retry=True, credit=0)
            return
        try:
            self._queue.put_nowait((conn, frame))
        except asyncio.QueueFull:
            self._nack(conn, None, NACK_OVERLOADED, retry=True, credit=0)
            return
        _obs().svc_queue_depth.set(self._queue.qsize())

    def _on_replica_lag(self, addr: str, lag: int) -> None:
        """Publish the worst per-follower lag; feed the anomaly checker."""
        self._lag_by_follower[addr] = lag
        _obs().svc_replica_lag.set(max(self._lag_by_follower.values()))
        if self._replica_lag_checker is not None:
            self._replica_lag_checker.on_lag(
                addr, lag, len(self.store.catalog())
            )

    def _on_hello(self, conn: _Conn, frame: Frame) -> None:
        if conn.run is not None:
            raise ProtocolError("second HELLO on one connection")
        run_id = frame.meta.get("run")
        try:
            if self.store.committed(run_id):
                # Idempotent success: the producer's previous push made it
                # all the way; tell it so instead of forking the run.
                conn.send(
                    Frame(
                        KIND_COMMITTED,
                        {"run": run_id, "path": str(self.store.path_for(run_id))},
                    )
                )
                return
        except StoreError as exc:
            conn.send(Frame(KIND_ERROR, {"reason": str(exc)}))
            return
        conn.run = run_id
        conn.credits = self.config.credits
        self._publish_credits()
        conn.send(
            Frame(
                KIND_WELCOME,
                {
                    "credits": conn.credits,
                    "have": sorted(self.store.sealed_seqs(run_id)),
                },
            )
        )

    def _on_segment(self, conn: _Conn, frame: Frame) -> None:
        if conn.run is None:
            raise ProtocolError("SEGMENT before HELLO")
        seq = frame.meta.get("seq")
        ins = _obs()
        if not self._accepting:
            # credit=1: the daemon never consumed the credit the client
            # spent to send this frame — hand it straight back so the
            # client's window stays whole (the daemon's ledger is
            # untouched; both sides net out even).
            self._nack(conn, seq, NACK_SHUTTING_DOWN, retry=True, credit=1)
            return
        if conn.credits <= 0:
            # Credit overrun: the producer is flooding past its window.
            # credit=0 — by this ledger the client had nothing to spend,
            # and a compliant client never reaches this branch.
            self._nack(conn, seq, NACK_NO_CREDIT, retry=True, credit=0)
            return
        try:
            self._queue.put_nowait((conn, frame))
        except asyncio.QueueFull:
            # Shed, don't stall: the segment is rejected *now* with the
            # credit intact, exactly like overload.py sheds a PEBS fill
            # rather than blocking the core.
            self._nack(conn, seq, NACK_OVERLOADED, retry=True, credit=1)
            return
        conn.credits -= 1
        self._publish_credits()
        ins.svc_queue_depth.set(self._queue.qsize())

    async def _on_finish(self, conn: _Conn, frame: Frame) -> None:
        if conn.run is None:
            raise ProtocolError("FINISH before HELLO")
        # FINISH rides the queue so it orders behind this producer's
        # admitted segments.  It is exempt from credits and from shedding
        # (it carries no payload to shed) — an awaited put is a bounded
        # wait, since the store task is the consumer.
        await self._queue.put((conn, frame))

    def _nack(
        self, conn: _Conn, seq, reason: str, *, retry: bool, credit: int
    ) -> None:
        meta = {"reason": reason, "retry": retry, "credit": credit}
        if seq is not None:
            meta["seq"] = seq
        conn.send(Frame(KIND_NACK, meta))
        _obs().svc_nacks(reason).inc()

    def _publish_credits(self) -> None:
        _obs().svc_credits_outstanding.set(
            sum(c.credits for c in self._conns if c.run is not None)
        )

    # -- the store task --------------------------------------------------
    async def _store_loop(self) -> None:
        while True:
            conn, frame = await self._queue.get()
            try:
                if self.config.drain_delay_s:
                    await asyncio.sleep(self.config.drain_delay_s)
                if frame.kind == KIND_SEGMENT:
                    self._admit(conn, frame)
                elif frame.kind == KIND_SYNC_REQ:
                    self._followers.on_sync_req(conn, frame)
                elif frame.kind == KIND_REPLICATE:
                    try:
                        self._followers.on_replicate(conn, frame)
                    except ProtocolError as exc:
                        # A malformed replication frame condemns its
                        # connection, never the store task.
                        conn.send(Frame(KIND_ERROR, {"reason": str(exc)}))
                        _obs().svc_protocol_errors.inc()
                else:  # FINISH
                    self._finish(conn, frame)
            finally:
                self._queue.task_done()
            ins = _obs()
            ins.svc_queue_depth.set(self._queue.qsize())
            if self._queue.qsize() <= self.config.low_watermark:
                self._flush_credits()

    def _admit(self, conn: _Conn, frame: Frame) -> None:
        """Seal one admitted segment; the ACK is the durability receipt."""
        run_id = conn.run
        seq = frame.meta.get("seq")
        ins = _obs()
        try:
            fresh = self.store.append_segment(run_id, frame.meta, frame.body)
        except CorruptionError as exc:
            # Poison shard: preserve the bytes for forensics, refuse the
            # segment permanently.  The journal was never touched.
            self.store.quarantine_segment(run_id, seq, frame.body, str(exc))
            self._return_credit(conn)
            self._nack(conn, seq, NACK_POISON, retry=False, credit=1)
            return
        except RunCommittedError:
            self._return_credit(conn)
            self._nack(conn, seq, NACK_DUPLICATE_RUN, retry=False, credit=1)
            return
        except TraceWriteError:
            # Storage failed (ENOSPC, EIO).  The seal discipline leaves at
            # most a tmp/renamed orphan which a resend overwrites; degrade
            # to NACK so the producer backs off and retries.
            ins.svc_storage_errors.inc()
            self._return_credit(conn)
            self._nack(conn, seq, NACK_STORAGE, retry=True, credit=1)
            return
        if fresh:
            ins.svc_segments_admitted.inc()
        else:
            ins.svc_segments_deduped.inc()
        self._ack(conn, seq)

    def _ack(self, conn: _Conn, seq) -> None:
        """ACK a sealed segment, granting the credit back — unless the
        queue is above the high watermark, in which case it is withheld
        until :meth:`_flush_credits` sees the queue drain."""
        if self._queue.qsize() >= self.config.high_watermark:
            credit = 0
            conn.withheld += 1
            if self._credit_checker is not None:
                self._credit_checker.on_withheld(
                    conn.run, self._queue.qsize(), conn.credits
                )
        else:
            credit = 1
            conn.credits += 1
            if self._credit_checker is not None:
                self._credit_checker.on_restored(conn.run)
        conn.send(Frame(KIND_ACK, {"seq": seq, "credit": credit}))
        self._publish_credits()

    def _return_credit(self, conn: _Conn) -> None:
        """A consumed credit comes straight back on segment-level NACKs
        (the matching NACK frame carries ``credit: 1`` for the client's
        window) — a rejected segment must not shrink the window."""
        conn.credits += 1
        self._publish_credits()

    def _flush_credits(self) -> None:
        """Below the low watermark: restore every withheld credit."""
        for conn in self._conns:
            if conn.withheld > 0 and not conn.closed:
                conn.credits += conn.withheld
                conn.send(Frame(KIND_CREDIT, {"credit": conn.withheld}))
                conn.withheld = 0
                if self._credit_checker is not None:
                    self._credit_checker.on_restored(conn.run)
        self._publish_credits()

    def _finish(self, conn: _Conn, frame: Frame) -> None:
        run_id = conn.run
        ins = _obs()
        try:
            self.store.finish_run(run_id)
        except RunCommittedError:
            self._nack(conn, None, NACK_DUPLICATE_RUN, retry=False, credit=0)
            return
        except StoreError as exc:
            conn.send(Frame(KIND_ERROR, {"reason": str(exc)}))
            return
        except TraceWriteError:
            ins.svc_storage_errors.inc()
            self._nack(conn, None, NACK_STORAGE, retry=True, credit=0)
            return
        if run_id not in self._compactions:
            task = asyncio.create_task(
                self._compact(conn, run_id), name=f"compact-{run_id}"
            )
            self._compactions[run_id] = task
            task.add_done_callback(self._task_died)
            ins.svc_compaction_lag.set(len(self._compactions))

    async def _compact(self, conn: _Conn, run_id: str) -> None:
        """Supervised compaction of one finished run."""
        cfg = self.config
        ins = _obs()
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        try:
            out = supervised_call(
                functools.partial(self.store.compact_run, run_id),
                max_retries=cfg.compact_max_retries,
                retry_backoff_s=cfg.compact_backoff_s,
                label=f"compaction of run {run_id}",
            )
        except (CorruptionError, StoreError) as exc:
            # Deterministic failure: the journal itself is bad.  Get it
            # out of the ingest path; the bytes survive for forensics.
            self.store.quarantine_run(run_id, str(exc))
            ins.svc_runs_quarantined.inc()
            self._nack(conn, None, NACK_POISON_RUN, retry=False, credit=0)
            return
        except TraceWriteError:
            # Storage trouble (ENOSPC): the finish marker is durable, so
            # the *next* startup recovery compacts this run — defer, do
            # not quarantine a good journal for a full disk.
            ins.svc_storage_errors.inc()
            self._nack(conn, None, NACK_STORAGE, retry=True, credit=0)
            return
        finally:
            self._compactions.pop(run_id, None)
            ins.svc_compaction_lag.set(len(self._compactions))
        ins.svc_runs_committed.inc()
        ins.svc_compaction_seconds.observe(loop.time() - t0)
        conn.send(
            Frame(
                KIND_COMMITTED,
                {"run": run_id, "path": str(out)},
            )
        )
        for rep in self.replicators:
            rep.kick()


__all__ = [
    "DaemonConfig",
    "IngestDaemon",
    "NACK_OVERLOADED",
    "NACK_NO_CREDIT",
    "NACK_POISON",
    "NACK_POISON_RUN",
    "NACK_DUPLICATE_RUN",
    "NACK_STORAGE",
    "NACK_SHUTTING_DOWN",
    "NACK_UNAUTHORIZED",
]
