"""Crash-safe multi-run trace store behind the ingestion daemon.

Layout under the store root::

    catalog.jsonl                  append-only commit log (fsync'd)
    runs/<run-id>/journal/         PR 5 journal dir while the run is open
    runs/<run-id>/trace.npz        compacted v3 container once committed
    quarantine/<run-id>/           journals compaction refused (poison)

Durability is two nested commit points, both inherited from
:mod:`repro.core.durable`:

* **Segment commit** — a pushed segment is validated against its own
  crc *before* anything touches disk, then sealed with the exact
  write→fsync→rename→fsync(dir)→journal-append→fsync discipline of
  :class:`~repro.core.durable.DurableTraceWriter`.  The daemon ACKs only
  after this returns, so *ACKed ⊆ journal-sealed*: a kill at any instant
  loses at most a segment that was never acknowledged.
* **Run commit** — compaction replays the run's journal through
  :func:`~repro.core.durable.recover` (atomic temp + rename) and then
  appends one fsync'd line to ``catalog.jsonl``.  The catalog line is
  when the run becomes visible to ``repro diff``; a crash anywhere
  before it re-runs compaction idempotently on the next start, a crash
  after it only re-deletes the leftover journal.

Every syscall the store issues goes through the swappable
:class:`~repro.core.durable.RecorderIO`, so the chaos suite can
enumerate and kill at every single operation offset.
"""

from __future__ import annotations

import io as _io
import json
import pathlib
import re
import time
import uuid
import zlib

import numpy as np

from repro.core.durable import (
    KIND_SEG_MANIFEST,
    KIND_SEG_META,
    KIND_SEG_SAMPLES,
    KIND_SEG_SWITCH,
    RecorderIO,
    _seg_name,
    read_journal,
    recover,
)
from repro.core.integrity import POLICY_STRICT, member_crc
from repro.core.options import IngestOptions
from repro.core.tracefile import _READ_ERRORS
from repro.errors import (
    CorruptionError,
    RecoveryError,
    RunCommittedError,
    StoreError,
    TraceWriteError,
)
from repro.obs.instrumented import pipeline as _obs

_JOURNAL_FILE = "journal.jsonl"
_CATALOG_FILE = "catalog.jsonl"
_STORE_ID_FILE = "store.id"
_SEG_HEADER = "seg_json"
_SEG_KINDS = (KIND_SEG_MANIFEST, KIND_SEG_SAMPLES, KIND_SEG_SWITCH, KIND_SEG_META)

#: Run ids become directory names; this shape excludes separators,
#: dotfiles, and anything a shell or URL would mangle.
RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def check_run_id(run_id: str) -> str:
    if not isinstance(run_id, str) or not RUN_ID_RE.match(run_id):
        raise StoreError(
            f"invalid run id {run_id!r} (need 1-64 chars of [A-Za-z0-9._-], "
            "not starting with a separator or dot)"
        )
    return run_id


def _crc_signature(record: dict) -> str:
    """A segment's identity for idempotence: its member crcs, canonical."""
    return json.dumps(record.get("crc") or {}, sort_keys=True)


def validate_segment(record: dict, data: bytes) -> None:
    """Admission check: the bytes must prove the record's claims.

    Raises :class:`~repro.errors.CorruptionError` (the poison-shard
    path) on any mismatch; nothing is written before this passes, so a
    poison segment can never enter a run journal.
    """
    if not isinstance(record, dict) or record.get("op") != "seal":
        raise CorruptionError("segment record is not a seal record")
    seq = record.get("seq")
    if not isinstance(seq, int) or seq < 0:
        raise CorruptionError(f"segment record has invalid seq {seq!r}")
    if record.get("kind") not in _SEG_KINDS:
        raise CorruptionError(
            f"segment record has unknown kind {record.get('kind')!r}"
        )
    if record.get("file") != _seg_name(seq):
        # Also forecloses path traversal: the stored name is derived,
        # never taken from the wire.
        raise CorruptionError(
            f"segment record file {record.get('file')!r} does not match "
            f"its seq (expected {_seg_name(seq)})"
        )
    crc = record.get("crc")
    if not isinstance(crc, dict) or not crc:
        raise CorruptionError("segment record carries no member crcs")
    try:
        with np.load(_io.BytesIO(data), allow_pickle=False) as npz:
            arrays = {k: npz[k] for k in npz.files if k != _SEG_HEADER}
    except _READ_ERRORS as exc:
        raise CorruptionError(f"segment bytes are not a loadable npz: {exc}") from exc
    bad = [
        name
        for name, want in crc.items()
        if name not in arrays or member_crc(arrays[name]) != int(want)
    ]
    if bad:
        raise CorruptionError(
            f"segment {record['file']}: crc32 mismatch in {', '.join(sorted(bad))}"
        )


class TraceStore:
    """The daemon's durable state: per-run journals + commit catalog."""

    def __init__(
        self,
        root: str | pathlib.Path,
        *,
        io: RecorderIO | None = None,
        options: IngestOptions | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.options = options if options is not None else IngestOptions()
        self._io = io if io is not None else RecorderIO()
        self._catalog = self.root / _CATALOG_FILE
        #: run id -> {seq: crc signature} for every open run journal,
        #: loaded lazily; the dedupe map behind idempotent re-push.
        self._seals: dict[str, dict[int, str]] = {}
        self._committed: dict[str, dict] | None = None
        try:
            self._io.makedirs(self.root / "runs")
            self._io.makedirs(self.root / "quarantine")
        except OSError as exc:
            raise TraceWriteError(f"cannot create store at {self.root}: {exc}") from exc

    # -- paths -----------------------------------------------------------
    def run_dir(self, run_id: str) -> pathlib.Path:
        return self.root / "runs" / check_run_id(run_id)

    def journal_dir(self, run_id: str) -> pathlib.Path:
        return self.run_dir(run_id) / "journal"

    def container_path(self, run_id: str) -> pathlib.Path:
        return self.run_dir(run_id) / "trace.npz"

    # -- catalog ---------------------------------------------------------
    def _read_catalog(self) -> tuple[dict[str, dict], bool]:
        """Parse the catalog; returns (entries, torn_tail)."""
        try:
            raw = self._catalog.read_bytes()
        except FileNotFoundError:
            return {}, False
        except OSError as exc:
            raise StoreError(f"cannot read catalog {self._catalog}: {exc}") from exc
        entries: dict[str, dict] = {}
        torn = False
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                rec = json.loads(line.decode("utf-8"))
                if not isinstance(rec, dict) or "run" not in rec:
                    raise ValueError("not a catalog record")
            except (ValueError, UnicodeDecodeError):
                # A torn tail is the expected shape of a crash mid-append;
                # recovery rewrites the file before appending again.
                torn = True
                break
            if rec.get("op") == "retire":
                # Retention tombstone: the run moved to cold storage.  A
                # later commit line for the same id (a deliberate
                # re-push) makes it live again, so order matters here.
                entries.pop(rec["run"], None)
            else:
                entries.setdefault(rec["run"], rec)
        return entries, torn

    def catalog(self) -> dict[str, dict]:
        """Committed runs (cached; invalidated by commits/recovery)."""
        if self._committed is None:
            self._committed, _ = self._read_catalog()
        return self._committed

    def committed(self, run_id: str) -> bool:
        return check_run_id(run_id) in self.catalog()

    def runs(self) -> list[str]:
        """Every committed run id, in commit order."""
        return list(self.catalog())

    def path_for(self, run_id: str) -> pathlib.Path:
        """The committed container for ``run_id`` (for ``repro diff``)."""
        if not self.committed(run_id):
            known = ", ".join(self.runs()) or "(none)"
            raise StoreError(
                f"run {run_id!r} is not committed in {self.root} "
                f"(committed runs: {known})"
            )
        return self.container_path(run_id)

    def _append_catalog(self, entry: dict) -> None:
        line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        try:
            self._io.append_bytes(self._catalog, line)
            self._io.fsync_path(self._catalog)
        except OSError as exc:
            raise TraceWriteError(
                f"cannot commit run to catalog {self._catalog}: {exc}"
            ) from exc
        if self._committed is not None:
            self._committed.setdefault(entry["run"], entry)

    def _rewrite_catalog(self, entries: dict[str, dict]) -> None:
        """Atomically rewrite a catalog whose tail was torn by a crash.

        Appending after a torn (newline-less) tail would fuse two records
        into one unparsable line, so recovery compacts first.
        """
        tmp = self._catalog.with_name(_CATALOG_FILE + ".tmp")
        data = "".join(
            json.dumps(e, sort_keys=True) + "\n" for e in entries.values()
        ).encode("utf-8")
        try:
            self._io.write_bytes(tmp, data)
            self._io.fsync_path(tmp)
            self._io.replace(tmp, self._catalog)
            self._io.fsync_dir(self.root)
        except OSError as exc:
            raise TraceWriteError(
                f"cannot rewrite torn catalog {self._catalog}: {exc}"
            ) from exc
        self._committed = dict(entries)

    # -- segment admission ----------------------------------------------
    def _load_seals(self, run_id: str) -> dict[int, str]:
        if run_id not in self._seals:
            records, _torn = read_journal(self.journal_dir(run_id))
            self._seals[run_id] = {
                r["seq"]: _crc_signature(r)
                for r in records
                if r.get("op") == "seal" and isinstance(r.get("seq"), int)
            }
        return self._seals[run_id]

    def sealed_seqs(self, run_id: str) -> set[int]:
        """Seqs already durably sealed for an open run (resume hint)."""
        if self.committed(run_id):
            return set()
        if not self.journal_dir(run_id).is_dir():
            return set()
        return set(self._load_seals(run_id))

    def finished(self, run_id: str) -> bool:
        """True once the run journal carries its finish marker."""
        records, _ = read_journal(self.journal_dir(run_id))
        return any(r.get("op") == "finalize" for r in records)

    def append_segment(self, run_id: str, record: dict, data: bytes) -> bool:
        """Validate + durably seal one pushed segment.

        Returns ``True`` when the segment was newly sealed, ``False``
        for an idempotent duplicate (same seq, same crcs — the resend
        after a lost ACK).  Raises :class:`CorruptionError` for poison
        (bytes failing their own crcs, or a seq resent with *different*
        content) and :class:`RunCommittedError` when the run is already
        visible to ``diff`` — accepting more would fork it.
        """
        check_run_id(run_id)
        if self.committed(run_id):
            raise RunCommittedError(
                f"run {run_id!r} is already committed; a re-push would "
                "create a duplicate run"
            )
        validate_segment(record, data)
        seals = self._load_seals(run_id)
        seq = record["seq"]
        sig = _crc_signature(record)
        if seq in seals:
            if seals[seq] != sig:
                raise CorruptionError(
                    f"run {run_id!r} seq {seq} resent with different content "
                    "(conflicting producer or corrupted resend)"
                )
            return False
        jdir = self.journal_dir(run_id)
        final = jdir / record["file"]
        tmp = jdir / (record["file"] + ".tmp")
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        ins = _obs()
        try:
            self._io.makedirs(jdir)
            self._io.write_bytes(tmp, data)
            self._io.fsync_path(tmp)
            self._io.replace(tmp, final)
            self._io.fsync_dir(jdir)
            self._io.append_bytes(jdir / _JOURNAL_FILE, line)
            self._io.fsync_path(jdir / _JOURNAL_FILE)
        except OSError as exc:
            raise TraceWriteError(
                f"store {self.root}: sealing {run_id}/{record['file']} "
                f"failed: {exc}"
            ) from exc
        seals[seq] = sig
        ins.segments_sealed.inc()
        ins.journal_fsyncs.inc()
        ins.journal_bytes.inc(len(data) + len(line))
        return True

    # -- run completion --------------------------------------------------
    def finish_run(self, run_id: str) -> None:
        """Durably mark a run complete (the producer sent FINISH).

        After this line lands, startup recovery knows the run must be
        compacted even if the daemon dies before compaction starts.
        Idempotent; raises :class:`RunCommittedError` once committed.
        """
        check_run_id(run_id)
        if self.committed(run_id):
            raise RunCommittedError(f"run {run_id!r} is already committed")
        jdir = self.journal_dir(run_id)
        if not jdir.is_dir():
            raise StoreError(f"run {run_id!r} has no journal to finish")
        if self.finished(run_id):
            return
        line = (
            json.dumps({"op": "finalize", "out": str(self.container_path(run_id))})
            + "\n"
        ).encode("utf-8")
        try:
            self._io.append_bytes(jdir / _JOURNAL_FILE, line)
            self._io.fsync_path(jdir / _JOURNAL_FILE)
        except OSError as exc:
            raise TraceWriteError(
                f"store {self.root}: finishing run {run_id!r} failed: {exc}"
            ) from exc
        _obs().journal_fsyncs.inc()

    @staticmethod
    def _container_bytes(path: pathlib.Path) -> int | None:
        """On-disk size of a committed container (None if unreadable)."""
        try:
            return path.stat().st_size
        except OSError:
            return None

    @staticmethod
    def _was_interrupted(path: pathlib.Path) -> bool:
        """Whether the committed container's meta marks a cut-short run."""
        from repro.core.tracefile import TraceReader

        try:
            with TraceReader(path) as reader:
                return reader.meta.get("interrupted") is not None
        except Exception:
            return False

    def compact_run(self, run_id: str) -> pathlib.Path:
        """Replay a finished run's journal into its committed container.

        Strict replay — every sealed segment was validated at admission,
        so a segment failing now means the store's own disk corrupted it,
        which must surface, not be salvaged silently.  Idempotent at
        every crash point: recover() writes atomically, the catalog
        append dedupes, and the journal removal is last.
        """
        check_run_id(run_id)
        if self.committed(run_id):
            # Crash landed between catalog append and journal cleanup.
            self._io.rmtree(self.journal_dir(run_id))
            return self.container_path(run_id)
        jdir = self.journal_dir(run_id)
        out = self.container_path(run_id)
        try:
            report = recover(jdir, out=out, policy=POLICY_STRICT, _finalizing=True)
        except RecoveryError as exc:
            raise StoreError(
                f"run {run_id!r} cannot be compacted: {exc}"
            ) from exc
        entry = {
            "run": run_id,
            "file": str(out.relative_to(self.root)),
            "segments": report.segments_recovered,
            "samples": report.samples_recovered,
            "marks": report.marks_recovered,
            "bytes": self._container_bytes(out),
            "committed_at": time.time(),
            "interrupted": self._was_interrupted(out),
        }
        self._append_catalog(entry)
        self._io.rmtree(jdir)
        self._seals.pop(run_id, None)
        return out

    # -- replication support ---------------------------------------------
    def store_id(self) -> str:
        """Stable identity of this store (created on first use).

        Followers report it in SYNC_HAVE so the primary's replication
        ledger counts *stores*, not addresses — a follower reachable
        over two transports is still one replica toward quorum.
        """
        id_path = self.root / _STORE_ID_FILE
        try:
            return id_path.read_text().strip()
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise StoreError(f"cannot read store id {id_path}: {exc}") from exc
        new_id = uuid.uuid4().hex
        try:
            self._io.write_bytes(id_path, (new_id + "\n").encode("utf-8"))
            self._io.fsync_path(id_path)
        except OSError as exc:
            raise TraceWriteError(
                f"cannot write store id {id_path}: {exc}"
            ) from exc
        return new_id

    def container_crc(self, run_id: str) -> int | None:
        """crc32 of the committed container's bytes (None if unreadable).

        The anti-entropy scrub compares this across stores: a follower
        whose committed container fails to match the primary's crc has
        suffered disk corruption (bit flip, truncation, deletion) and is
        repaired by re-shipping the primary's bytes.
        """
        try:
            return zlib.crc32(self.container_path(run_id).read_bytes())
        except OSError:
            return None

    def adopt_container(self, run_id: str, entry: dict, data: bytes) -> pathlib.Path:
        """Commit a replicated container verbatim (the follower side).

        The primary ships the committed container's exact bytes plus its
        catalog entry; adopting both verbatim is what makes a replicated
        run *byte-identical* across stores — follower-side recompaction
        would re-zip the members with fresh archive metadata.  Same
        commit discipline as :meth:`compact_run`: tmp → fsync → rename →
        fsync(dir), then the fsync'd catalog line is the commit point,
        and the now-redundant warm journal is deleted last.  Re-adopting
        (scrub repairing a corrupted container) skips the duplicate
        catalog line.
        """
        check_run_id(run_id)
        dest = self.container_path(run_id)
        tmp = dest.with_name(dest.name + ".sync.tmp")
        try:
            self._io.makedirs(dest.parent)
            self._io.write_bytes(tmp, data)
            self._io.fsync_path(tmp)
            self._io.replace(tmp, dest)
            self._io.fsync_dir(dest.parent)
        except OSError as exc:
            raise TraceWriteError(
                f"store {self.root}: adopting replicated container for "
                f"run {run_id!r} failed: {exc}"
            ) from exc
        if not self.committed(run_id):
            self._append_catalog({**entry, "run": run_id})
        jdir = self.journal_dir(run_id)
        if jdir.is_dir():
            self._io.rmtree(jdir)
        self._seals.pop(run_id, None)
        return dest

    def drop_segment(self, run_id: str, seq: int) -> bool:
        """Forget one sealed segment of an *open* run (scrub repair).

        Used when the sealed bytes on disk no longer pass the crcs their
        journal record promised: the record is pruned (atomic journal
        rewrite) and the corrupt file unlinked, so a re-replicated copy
        can be sealed through the ordinary admission path.  Returns True
        when a segment was dropped.
        """
        check_run_id(run_id)
        if self.committed(run_id):
            raise RunCommittedError(
                f"run {run_id!r} is committed; its segments are part of "
                "the container now"
            )
        jdir = self.journal_dir(run_id)
        records, _torn = read_journal(jdir)
        kept = [
            r
            for r in records
            if not (r.get("op") == "seal" and r.get("seq") == seq)
        ]
        if len(kept) == len(records):
            return False
        self._rewrite_journal(jdir, kept)
        seg = jdir / _seg_name(seq)
        try:
            seg.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
        self._seals.pop(run_id, None)
        return True

    def tombstone_run(self, run_id: str, *, archive: str) -> None:
        """Retire a committed run from the catalog (retention commit point).

        One fsync'd append — ``{"run", "op": "retire", "archive"}`` —
        after which the run is invisible to ``diff``/``runs`` and its
        authoritative bytes live in the archive.  The caller deletes the
        run directory *after* this returns; a crash in between leaves an
        orphan directory the next retention pass sweeps.
        """
        check_run_id(run_id)
        if not self.committed(run_id):
            raise StoreError(f"run {run_id!r} is not committed; nothing to retire")
        line = (
            json.dumps(
                {"run": run_id, "op": "retire", "archive": archive},
                sort_keys=True,
            )
            + "\n"
        ).encode("utf-8")
        try:
            self._io.append_bytes(self._catalog, line)
            self._io.fsync_path(self._catalog)
        except OSError as exc:
            raise TraceWriteError(
                f"cannot retire run {run_id!r} in catalog {self._catalog}: {exc}"
            ) from exc
        if self._committed is not None:
            self._committed.pop(run_id, None)

    def remove_run_dir(self, run_id: str) -> None:
        """Delete a retired run's directory (post-tombstone cleanup)."""
        check_run_id(run_id)
        if self.committed(run_id):
            raise StoreError(
                f"run {run_id!r} is still committed; tombstone it first"
            )
        self._io.rmtree(self.run_dir(run_id))
        self._seals.pop(run_id, None)

    def quarantine_segment(
        self, run_id: str, seq, data: bytes, reason: str
    ) -> pathlib.Path:
        """Preserve a poison segment's bytes for forensics.

        The segment never entered the run journal (validation rejected
        it before any write), so this is pure evidence capture — the run
        itself stays healthy.  Best-effort durability: no fsync chain, a
        crash may lose the evidence but never store state.
        """
        check_run_id(run_id)
        tag = f"{seq:06d}" if isinstance(seq, int) and seq >= 0 else "unknown"
        dest = self.root / "quarantine" / f"{run_id}.seg-{tag}.npz"
        try:
            self._io.makedirs(dest.parent)
            self._io.write_bytes(dest, data)
            self._io.write_bytes(
                dest.with_suffix(".reason"), (reason + "\n").encode("utf-8")
            )
        except OSError as exc:
            raise TraceWriteError(
                f"store {self.root}: quarantining segment {seq} of run "
                f"{run_id!r} failed: {exc}"
            ) from exc
        return dest

    def quarantine_run(self, run_id: str, reason: str) -> pathlib.Path:
        """Move a poisoned run's journal out of the ingest path.

        The bytes are preserved for forensics; the run can never commit.
        """
        check_run_id(run_id)
        qdir = self.root / "quarantine" / run_id
        jdir = self.journal_dir(run_id)
        try:
            self._io.makedirs(qdir.parent)
            if jdir.is_dir():
                self._io.rmtree(qdir)
                self._io.replace(jdir, qdir)
            self._io.write_bytes(
                qdir.parent / f"{run_id}.reason",
                (reason + "\n").encode("utf-8"),
            )
        except OSError as exc:
            raise TraceWriteError(
                f"store {self.root}: quarantining run {run_id!r} failed: {exc}"
            ) from exc
        self._seals.pop(run_id, None)
        return qdir

    # -- startup recovery ------------------------------------------------
    def open_runs(self) -> list[str]:
        """Uncommitted runs that still hold a journal (resumable)."""
        out = []
        runs_dir = self.root / "runs"
        if runs_dir.is_dir():
            for d in sorted(runs_dir.iterdir()):
                if (d / "journal").is_dir() and d.name not in self.catalog():
                    out.append(d.name)
        return out

    def compaction_backlog(self) -> list[str]:
        """Finished-but-uncommitted runs (what recovery must compact)."""
        return [r for r in self.open_runs() if self.finished(r)]

    def recover_store(self) -> dict[str, str]:
        """Idempotent startup replay; returns {run_id: action} taken.

        Rules, in order, for every run directory found on disk:

        * catalog says committed → the journal (if any survives) is a
          leftover of a crash after the commit point: delete it;
        * journal carries the finish marker → the producer was done:
          compact and commit now;
        * otherwise → an open run; leave the journal for the producer to
          resume (stray ``.tmp`` files are pre-rename garbage and are
          swept).
        """
        self._seals.clear()
        self._committed = None
        entries, torn = self._read_catalog()
        if torn:
            self._rewrite_catalog(entries)
        self._committed = entries
        actions: dict[str, str] = {}
        runs_dir = self.root / "runs"
        if not runs_dir.is_dir():
            return actions
        for d in sorted(runs_dir.iterdir()):
            run_id = d.name
            if not RUN_ID_RE.match(run_id):
                continue
            jdir = d / "journal"
            if run_id in entries:
                if jdir.is_dir():
                    self._io.rmtree(jdir)
                    actions[run_id] = "cleaned"
                continue
            if not jdir.is_dir():
                continue
            if self.finished(run_id):
                try:
                    self.compact_run(run_id)
                    actions[run_id] = "compacted"
                except (StoreError, CorruptionError) as exc:
                    self.quarantine_run(run_id, str(exc))
                    actions[run_id] = "quarantined"
            else:
                for tmp in jdir.glob("*.tmp"):
                    try:
                        tmp.unlink()
                    except OSError:  # pragma: no cover - best-effort sweep
                        pass
                records, torn = read_journal(jdir)
                if torn:
                    # The run will be appended to when its producer
                    # resumes; appending after a newline-less torn tail
                    # would fuse two records, so compact the log now.
                    self._rewrite_journal(jdir, records)
                actions[run_id] = "resumable"
        return actions

    def _rewrite_journal(self, jdir: pathlib.Path, records: list[dict]) -> None:
        jpath = jdir / _JOURNAL_FILE
        tmp = jdir / (_JOURNAL_FILE + ".tmp")
        data = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records).encode(
            "utf-8"
        )
        try:
            self._io.write_bytes(tmp, data)
            self._io.fsync_path(tmp)
            self._io.replace(tmp, jpath)
            self._io.fsync_dir(jdir)
        except OSError as exc:
            raise TraceWriteError(
                f"cannot rewrite torn journal {jpath}: {exc}"
            ) from exc


__all__ = ["TraceStore", "check_run_id", "validate_segment", "RUN_ID_RE"]
