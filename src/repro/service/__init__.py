"""Fleet-scale trace ingestion: daemon, store, shard protocol, clients.

The one-shot :func:`repro.core.streaming.ingest_trace` assumes a whole
container sitting on local disk.  This package is the long-running side
of the same pipeline — the shape the ROADMAP's fleet deployment needs:

* :mod:`repro.service.protocol` — the framed shard protocol.  The wire
  unit is PR 5's sealed journal segment (header record + raw npz bytes),
  so durability semantics do not change between disk and network.
* :mod:`repro.service.sources` — pluggable segment sources: walk a
  journal directory, re-segment a finalized container, an in-memory
  queue, or an async byte stream.
* :mod:`repro.service.store` — the crash-safe multi-run trace store
  (per-run journals in the durable-writer format, an fsync'd append-only
  catalog as the commit point, idempotent startup recovery).
* :mod:`repro.service.daemon` — the asyncio ingestion daemon: admission
  queue with high/low watermarks, per-producer credit windows,
  shed-with-NACK (never stall), supervised compaction.
* :mod:`repro.service.client` — a producer that pushes a journal and
  honours credits, NACK backoff, and resume-after-crash.
"""

from repro.service.client import PushReport, push_journal
from repro.service.daemon import DaemonConfig, IngestDaemon
from repro.service.protocol import Frame, FrameDecoder, decode_frame, encode_frame
from repro.service.store import TraceStore

__all__ = [
    "DaemonConfig",
    "Frame",
    "FrameDecoder",
    "IngestDaemon",
    "PushReport",
    "TraceStore",
    "decode_frame",
    "encode_frame",
    "push_journal",
]
