"""The producer side of the shard protocol: push a journal, honour credits.

:func:`push_segments` is the protocol state machine; everything else is
packaging — :func:`push_journal` walks a journal directory (or
re-segments a finalized container) and drives the machine over a
transport, retrying NACKs with exponential backoff and surviving a lost
ACK through the daemon's idempotent dedupe.

The client's obligations under the backpressure contract:

* never more unACKed segments in flight than the granted credit window;
* a ``retry: true`` NACK re-queues the segment and backs off
  (exponentially per consecutive NACK, reset on any ACK);
* a ``retry: false`` NACK is final for that segment (and for
  ``duplicate-run`` / ``poison-run``, for the whole push).
"""

from __future__ import annotations

import asyncio
import pathlib
import random
import tempfile
from dataclasses import dataclass, field

from repro.core.durable import read_journal
from repro.core.options import IngestOptions
from repro.errors import ProtocolError, TraceError
from repro.service.protocol import (
    KIND_ACK,
    KIND_AUTH,
    KIND_CHALLENGE,
    KIND_COMMITTED,
    KIND_CREDIT,
    KIND_ERROR,
    KIND_FINISH,
    KIND_HELLO,
    KIND_NACK,
    KIND_SEGMENT,
    KIND_WELCOME,
    Frame,
    encode_frame,
)
from repro.service.sources import (
    StreamSource,
    iter_journal_segments,
    journal_from_container,
)


@dataclass
class PushReport:
    """What one push attempt did, in shed-accounting detail."""

    run: str
    #: SEGMENT frames actually sent (excludes segments skipped via the
    #: WELCOME ``have`` resume hint).
    sent: int = 0
    #: Segments the daemon skipped for us (already sealed server-side).
    skipped: int = 0
    acked: int = 0
    #: NACK count by reason — the client half of the shed ledger.
    nacked: dict[str, int] = field(default_factory=dict)
    #: Re-sends of segments that were NACKed with ``retry: true``.
    resent: int = 0
    #: Times the send loop stalled with zero credits and work pending.
    credit_stalls: int = 0
    #: Segments refused permanently (``retry: false``), by seq.
    rejected: list[int] = field(default_factory=list)
    committed: bool = False
    #: True when the daemon reported the run already committed at HELLO.
    already_committed: bool = False
    committed_path: str | None = None

    @property
    def nacks_total(self) -> int:
        return sum(self.nacked.values())

    def _count_nack(self, reason: str) -> None:
        self.nacked[reason] = self.nacked.get(reason, 0) + 1


async def push_segments(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    run_id: str,
    segments,
    *,
    reply_timeout: float = 30.0,
    nack_backoff_s: float = 0.01,
    max_backoff_s: float = 1.0,
    max_resends_per_segment: int = 16,
    token: bytes | None = None,
    seed: int | None = None,
    finish: bool = True,
) -> PushReport:
    """Drive one run's segments through an open connection.

    ``segments`` is an iterable of ``(record, data)`` pairs in seal
    order.  Returns the :class:`PushReport`; raises
    :class:`~repro.errors.TraceError` (carrying ``.report``) if the
    connection dies, the daemon refuses the run, any segment is refused
    permanently, or a segment keeps being shed past
    ``max_resends_per_segment`` — a committed run is always complete.

    ``token`` answers an auth CHALLENGE; ``seed`` makes the jittered
    NACK backoff deterministic; ``finish=False`` seals the segments but
    leaves the run open (the tail-follow mode pushes incrementally and
    finishes only after the producer's journal finalizes).
    """
    report = PushReport(run=run_id)
    src = StreamSource(reader)
    rng = random.Random(seed)

    def fail(message: str) -> TraceError:
        exc = TraceError(f"push of run {run_id!r}: {message}")
        exc.report = report  # partial accounting for the caller
        return exc

    async def reply() -> Frame:
        try:
            return await asyncio.wait_for(src.__anext__(), reply_timeout)
        except StopAsyncIteration:
            raise fail(
                "daemon closed the connection before the run committed"
            ) from None
        except asyncio.TimeoutError:
            raise fail(
                f"no reply from daemon within {reply_timeout:g}s"
            ) from None

    writer.write(encode_frame(Frame(KIND_HELLO, {"run": run_id})))
    await writer.drain()
    first = await reply()
    if first.kind == KIND_CHALLENGE:
        if token is None:
            raise fail(
                "daemon requires authentication and no token was given"
            )
        from repro.service.replica import auth_proof

        writer.write(encode_frame(Frame(
            KIND_AUTH,
            {"proof": auth_proof(token, first.meta.get("nonce", ""))},
        )))
        await writer.drain()
        first = await reply()
    if first.kind == KIND_NACK:
        raise fail(f"refused: {first.meta.get('reason')}")
    if first.kind == KIND_COMMITTED:
        report.committed = True
        report.already_committed = True
        report.committed_path = first.meta.get("path")
        return report
    if first.kind == KIND_ERROR:
        raise fail(f"refused: {first.meta.get('reason')}")
    if first.kind != KIND_WELCOME:
        raise ProtocolError(
            f"expected WELCOME after HELLO, got {first.kind_name}"
        )
    credits = int(first.meta.get("credits", 1))
    have = set(first.meta.get("have", []))

    pending: list[tuple[dict, bytes]] = []
    for record, data in segments:
        if record.get("seq") in have:
            report.skipped += 1
        else:
            pending.append((record, data))
    outstanding: dict[int, tuple[dict, bytes]] = {}
    resends: dict[int, int] = {}
    backoff = nack_backoff_s
    fatal: str | None = None

    def send_one() -> None:
        nonlocal credits
        record, data = pending.pop(0)
        outstanding[record["seq"]] = (record, data)
        credits -= 1
        report.sent += 1
        writer.write(encode_frame(Frame(KIND_SEGMENT, record, data)))

    while (pending or outstanding) and fatal is None:
        while credits > 0 and pending:
            send_one()
        await writer.drain()
        if not outstanding and pending:
            # Shed so hard we hold nothing in flight: window is closed.
            report.credit_stalls += 1
        frame = await reply()
        if frame.kind == KIND_ACK:
            seq = frame.meta.get("seq")
            if outstanding.pop(seq, None) is not None:
                report.acked += 1
            credits += int(frame.meta.get("credit", 0))
            backoff = nack_backoff_s
        elif frame.kind == KIND_CREDIT:
            credits += int(frame.meta.get("credit", 0))
        elif frame.kind == KIND_NACK:
            reason = frame.meta.get("reason", "unknown")
            report._count_nack(reason)
            credits += int(frame.meta.get("credit", 0))
            seq = frame.meta.get("seq")
            item = outstanding.pop(seq, None) if seq is not None else None
            if frame.meta.get("retry", False):
                if item is not None:
                    resends[seq] = resends.get(seq, 0) + 1
                    if resends[seq] > max_resends_per_segment:
                        raise fail(
                            f"segment {seq} shed {resends[seq]} times "
                            f"({reason}); giving up"
                        )
                    pending.append(item)
                    report.resent += 1
                # Back off before flooding again, with seeded jitter so
                # a fleet of shed producers fans out instead of
                # re-flooding the daemon in lockstep.
                await asyncio.sleep(backoff * (0.5 + rng.random()))
                backoff = min(backoff * 2, max_backoff_s)
            else:
                if seq is not None:
                    report.rejected.append(seq)
                if reason in ("duplicate-run", "poison-run"):
                    fatal = reason
        elif frame.kind == KIND_ERROR:
            raise fail(f"aborted by daemon: {frame.meta.get('reason')}")
        else:
            raise ProtocolError(
                f"unexpected {frame.kind_name} frame during push"
            )

    if fatal == "duplicate-run":
        report.committed = True
        report.already_committed = True
        return report
    if fatal is not None:
        raise fail(f"failed: {fatal}")
    if report.rejected:
        # A committed run must be complete: with segments permanently
        # refused (poison), finishing would either quarantine the whole
        # run or commit a hole.  Leave the run open and resumable; the
        # producer repairs and re-pushes (the daemon's have-set skips
        # everything already sealed).
        raise fail(
            f"segment(s) {sorted(report.rejected)} permanently refused; "
            "run left open for a repaired re-push"
        )

    if not finish:
        return report
    writer.write(encode_frame(Frame(KIND_FINISH, {"run": run_id})))
    await writer.drain()
    while True:
        frame = await reply()
        if frame.kind == KIND_COMMITTED:
            report.committed = True
            report.committed_path = frame.meta.get("path")
            return report
        if frame.kind == KIND_CREDIT:
            continue  # late watermark flush; harmless
        if frame.kind == KIND_NACK:
            reason = frame.meta.get("reason", "unknown")
            report._count_nack(reason)
            if frame.meta.get("retry", False):
                # storage trouble server-side: the finish marker (or the
                # re-finish) will land on a later attempt.
                raise fail(f"daemon could not commit ({reason}); retry later")
            raise fail(f"refused at finish: {reason}")
        if frame.kind == KIND_ERROR:
            raise fail(f"aborted at finish: {frame.meta.get('reason')}")
        raise ProtocolError(
            f"unexpected {frame.kind_name} frame while awaiting commit"
        )


async def open_transport(
    addr: str,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a client connection to ``unix:<path>`` or ``host:port``."""
    try:
        if addr.startswith("unix:"):
            return await asyncio.open_unix_connection(addr[len("unix:") :])
        host, sep, port = addr.rpartition(":")
        if not sep or not port.isdigit():
            raise TraceError(
                f"cannot parse daemon address {addr!r} (need unix:<path> or "
                "host:port)"
            )
        return await asyncio.open_connection(host or "127.0.0.1", int(port))
    except OSError as exc:
        raise TraceError(
            f"cannot connect to ingest daemon at {addr!r}: {exc}"
        ) from exc


async def push_source(
    source: str | pathlib.Path,
    run_id: str,
    *,
    addr: str | None = None,
    streams: tuple | None = None,
    options: IngestOptions | None = None,
    reply_timeout: float = 30.0,
    token: bytes | None = None,
    seed: int | None = None,
) -> PushReport:
    """Push a journal directory *or* finalized container as ``run_id``.

    Exactly one of ``addr`` (a transport address) or ``streams`` (an
    already-open reader/writer pair, e.g. from
    :meth:`~repro.service.daemon.IngestDaemon.connect`) must be given.
    """
    source = pathlib.Path(source)
    if (addr is None) == (streams is None):
        raise TraceError("pass exactly one of addr= or streams=")
    with tempfile.TemporaryDirectory(prefix="repro-push-") as tmp:
        if source.is_dir():
            jdir = source
        else:
            jdir = journal_from_container(source, tmp, options=options)
        segments = iter_journal_segments(jdir)
        if streams is not None:
            reader, writer = streams
        else:
            reader, writer = await open_transport(addr)
        try:
            return await push_segments(
                reader,
                writer,
                run_id,
                segments,
                reply_timeout=reply_timeout,
                token=token,
                seed=seed,
            )
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport teardown
                pass


async def follow_journal(
    jdir: str | pathlib.Path,
    run_id: str,
    *,
    addr: str | None = None,
    connect=None,
    poll_interval_s: float = 0.25,
    stop: asyncio.Event | None = None,
    token: bytes | None = None,
    seed: int | None = None,
    reply_timeout: float = 30.0,
) -> PushReport:
    """Tail a live capture's journal, pushing each segment as it seals.

    Polls ``jdir`` and ships newly sealed segments in rounds — each
    round is an ordinary bounded push over a fresh connection, so the
    credit window, shed NACKs, and resume-from-have all apply.  Only
    seal records that made the fsync'd journal are ever read, so a
    segment the producer is mid-way through writing (or whose seal line
    is torn) is never pushed — exactly the recovery commit point.  FINISH
    is sent only after the journal's ``finalize`` record appears; the
    returned report then carries ``committed=True``.  Setting ``stop``
    ends the tail after the current round (``committed`` stays False if
    the producer never finalized).

    Exactly one of ``addr`` or ``connect`` (an async callable returning
    a reader/writer pair, e.g. a daemon's in-process ``connect``) must
    be given.
    """
    if (addr is None) == (connect is None):
        raise TraceError("pass exactly one of addr= or connect=")
    jdir = pathlib.Path(jdir)
    total = PushReport(run=run_id)
    pushed: set[int] = set()

    async def round_push(fresh: list[dict], finish: bool) -> PushReport:
        if connect is not None:
            reader, writer = await connect()
        else:
            reader, writer = await open_transport(addr)
        try:
            return await push_segments(
                reader,
                writer,
                run_id,
                ((rec, (jdir / rec["file"]).read_bytes()) for rec in fresh),
                reply_timeout=reply_timeout,
                token=token,
                seed=seed,
                finish=finish,
            )
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport teardown
                pass

    while True:
        if jdir.is_dir():
            records, _torn = read_journal(jdir)
        else:
            records = []  # capture not started yet; keep tailing
        seals = [
            r
            for r in records
            if r.get("op") == "seal" and isinstance(r.get("seq"), int)
        ]
        finalized = any(r.get("op") == "finalize" for r in records)
        fresh = [r for r in seals if r["seq"] not in pushed]
        if fresh or finalized:
            report = await round_push(fresh, finalized)
            total.sent += report.sent
            total.skipped += report.skipped
            total.acked += report.acked
            total.resent += report.resent
            total.credit_stalls += report.credit_stalls
            for reason, count in report.nacked.items():
                total.nacked[reason] = total.nacked.get(reason, 0) + count
            total.rejected.extend(report.rejected)
            pushed.update(r["seq"] for r in fresh)
            if report.already_committed:
                total.already_committed = True
            if report.committed:
                total.committed = True
                total.committed_path = report.committed_path
                return total
        if stop is not None and stop.is_set():
            return total
        await asyncio.sleep(poll_interval_s)


def push_journal(
    source: str | pathlib.Path,
    run_id: str,
    addr: str,
    *,
    options: IngestOptions | None = None,
    reply_timeout: float = 30.0,
    token: bytes | None = None,
    seed: int | None = None,
) -> PushReport:
    """Synchronous wrapper: push ``source`` to the daemon at ``addr``."""
    return asyncio.run(
        push_source(
            source,
            run_id,
            addr=addr,
            options=options,
            reply_timeout=reply_timeout,
            token=token,
            seed=seed,
        )
    )


__all__ = [
    "PushReport",
    "follow_journal",
    "open_transport",
    "push_journal",
    "push_segments",
    "push_source",
]
