"""The framed shard protocol: segments on the wire, checked whole.

One frame is::

    +----+---+----+---------+-------+ +---------+------+-----------+
    | RS | v | k  | paylen  | crc32 | | metalen | meta |   body    |
    +----+---+----+---------+-------+ +---------+------+-----------+
      2b  1b  1b     4b        4b        4b       JSON    raw bytes
    `------------ header ----------'  `--------- payload ---------'

The crc32 covers the header prefix (magic, version, kind, paylen) *and*
the payload — a bit flip in the kind byte must not silently retype a
frame — so truncation, bit flips, and torn writes all fail the same
structural test and raise the same typed
:class:`~repro.errors.ProtocolError` — a frame is accepted whole or
rejected whole, never partially decoded.  ``meta`` is a JSON object (for
a SEGMENT frame it *is* the sealed-segment journal record from
:mod:`repro.core.durable`); ``body`` carries the raw npz bytes.

The framing is transport-agnostic: :func:`encode_frame` /
:func:`decode_frame` work on ``bytes``, and :class:`FrameDecoder` turns
any chunked byte stream (socket reads, file slices, queue items) into
whole frames.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import ProtocolError

#: First bytes of every frame ("Repro Shard").
MAGIC = b"RS"

#: Wire format version; bumped on any incompatible framing change.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload.  A segment is a bounded chunk
#: (~1.5 MB of raw columns at the default chunk size), so anything near
#: this limit is a corrupt length field, not a real segment — rejecting
#: it here is what makes a bit-flipped length harmless instead of an
#: attempted multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">2sBBII")
#: The crc-protected leading fields of the header (everything but crc).
_PREFIX = struct.Struct(">2sBBI")
_META_LEN = struct.Struct(">I")

# Frame kinds.  Client → daemon: HELLO, SEGMENT, FINISH.  Daemon →
# client: WELCOME, ACK, NACK, CREDIT, COMMITTED, ERROR.  Replication
# (primary → follower): SYNC_REQ asks for one run's durable state,
# SYNC_HAVE answers it, REPLICATE ships a sealed segment or a committed
# container chunk; the follower answers with the ordinary ACK/NACK
# vocabulary.  CHALLENGE/AUTH are the shared-secret handshake: a daemon
# holding a token answers the first frame of any session with CHALLENGE
# and accepts nothing but a valid AUTH proof after it.
KIND_HELLO = 1
KIND_WELCOME = 2
KIND_SEGMENT = 3
KIND_ACK = 4
KIND_NACK = 5
KIND_CREDIT = 6
KIND_FINISH = 7
KIND_COMMITTED = 8
KIND_ERROR = 9
KIND_SYNC_REQ = 10
KIND_SYNC_HAVE = 11
KIND_REPLICATE = 12
KIND_CHALLENGE = 13
KIND_AUTH = 14

KIND_NAMES = {
    KIND_HELLO: "HELLO",
    KIND_WELCOME: "WELCOME",
    KIND_SEGMENT: "SEGMENT",
    KIND_ACK: "ACK",
    KIND_NACK: "NACK",
    KIND_CREDIT: "CREDIT",
    KIND_FINISH: "FINISH",
    KIND_COMMITTED: "COMMITTED",
    KIND_ERROR: "ERROR",
    KIND_SYNC_REQ: "SYNC_REQ",
    KIND_SYNC_HAVE: "SYNC_HAVE",
    KIND_REPLICATE: "REPLICATE",
    KIND_CHALLENGE: "CHALLENGE",
    KIND_AUTH: "AUTH",
}


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    kind: int
    meta: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind-{self.kind}")


def encode_frame(frame: Frame, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize a frame; raises :class:`ProtocolError` on bad input."""
    if frame.kind not in KIND_NAMES:
        raise ProtocolError(f"cannot encode unknown frame kind {frame.kind}")
    try:
        meta = json.dumps(frame.meta, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame meta is not JSON-serializable: {exc}") from exc
    payload = _META_LEN.pack(len(meta)) + meta + frame.body
    if len(payload) > max_frame_bytes:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    prefix = _PREFIX.pack(MAGIC, PROTOCOL_VERSION, frame.kind, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return prefix + struct.pack(">I", crc) + payload


def _decode_payload(kind: int, payload: bytes) -> Frame:
    if len(payload) < _META_LEN.size:
        raise ProtocolError("frame payload shorter than its meta-length prefix")
    (meta_len,) = _META_LEN.unpack_from(payload)
    if meta_len > len(payload) - _META_LEN.size:
        raise ProtocolError(
            f"frame meta length {meta_len} exceeds payload "
            f"({len(payload) - _META_LEN.size} bytes after prefix)"
        )
    raw_meta = payload[_META_LEN.size : _META_LEN.size + meta_len]
    try:
        meta = json.loads(raw_meta.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame meta is not valid JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError(
            f"frame meta must be a JSON object, got {type(meta).__name__}"
        )
    return Frame(kind=kind, meta=meta, body=payload[_META_LEN.size + meta_len :])


def _check_header(data: bytes) -> tuple[int, int, int]:
    """Validate a frame header; returns (kind, payload_len, crc32)."""
    magic, version, kind, paylen, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (speaking {PROTOCOL_VERSION})"
        )
    if kind not in KIND_NAMES:
        raise ProtocolError(f"unknown frame kind {kind}")
    if paylen > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload length {paylen} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    if paylen < _META_LEN.size:
        raise ProtocolError("frame payload shorter than its meta-length prefix")
    return kind, paylen, crc


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one frame occupying all of ``data``."""
    if len(data) < _HEADER.size:
        raise ProtocolError(
            f"truncated frame: {len(data)} bytes, header needs {_HEADER.size}"
        )
    kind, paylen, crc = _check_header(data)
    payload = data[_HEADER.size :]
    if len(payload) != paylen:
        raise ProtocolError(
            f"truncated frame: header announces {paylen} payload bytes, "
            f"got {len(payload)}"
        )
    if zlib.crc32(payload, zlib.crc32(data[: _PREFIX.size])) != crc:
        raise ProtocolError("frame failed its crc32 check")
    return _decode_payload(kind, payload)


class FrameDecoder:
    """Incremental decoder: arbitrary byte chunks in, whole frames out.

    Feed it whatever the transport delivers; it buffers across frame
    boundaries and yields each frame only once fully received and
    crc-verified.  Any structural violation raises
    :class:`ProtocolError` immediately — after that the stream is
    untrusted and the decoder refuses further input.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buf = bytearray()
        self._max = max_frame_bytes
        self._poisoned = False

    @property
    def buffered_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb ``data``; return every frame completed by it."""
        if self._poisoned:
            raise ProtocolError("decoder already rejected this stream")
        self._buf.extend(data)
        frames: list[Frame] = []
        try:
            while len(self._buf) >= _HEADER.size:
                kind, paylen, crc = _check_header(bytes(self._buf[: _HEADER.size]))
                if paylen > self._max:
                    raise ProtocolError(
                        f"frame payload length {paylen} exceeds this decoder's "
                        f"{self._max}-byte limit"
                    )
                total = _HEADER.size + paylen
                if len(self._buf) < total:
                    break
                payload = bytes(self._buf[_HEADER.size : total])
                prefix_crc = zlib.crc32(bytes(self._buf[: _PREFIX.size]))
                if zlib.crc32(payload, prefix_crc) != crc:
                    raise ProtocolError("frame failed its crc32 check")
                frames.append(_decode_payload(kind, payload))
                del self._buf[:total]
        except ProtocolError:
            self._poisoned = True
            raise
        return frames

    def finish(self) -> None:
        """Declare end-of-stream; trailing partial bytes are an error."""
        if self._buf:
            self._poisoned = True
            raise ProtocolError(
                f"stream ended mid-frame with {len(self._buf)} undecoded byte(s)"
            )


__all__ = [
    "Frame",
    "FrameDecoder",
    "decode_frame",
    "encode_frame",
    "MAGIC",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "KIND_HELLO",
    "KIND_WELCOME",
    "KIND_SEGMENT",
    "KIND_ACK",
    "KIND_NACK",
    "KIND_CREDIT",
    "KIND_FINISH",
    "KIND_COMMITTED",
    "KIND_ERROR",
    "KIND_SYNC_REQ",
    "KIND_SYNC_HAVE",
    "KIND_REPLICATE",
    "KIND_CHALLENGE",
    "KIND_AUTH",
    "KIND_NAMES",
]
