"""Retention and compaction-to-cold-storage for a multi-run trace store.

A store that only ever grows eventually evicts the traces that matter.
This module enforces age/count/byte budgets by *retiring* the coldest
committed runs — compacting them into a single archived container per
pass — under two hard rules:

* **crash-safe via the journal discipline**: the archive is written
  tmp → fsync → rename → fsync(dir) *before* any run is touched, and
  each run's retirement commits as one fsync'd catalog tombstone
  (:meth:`~repro.service.store.TraceStore.tombstone_run`).  A crash
  before a run's tombstone leaves it live (the archive holds a harmless
  extra copy); a crash after leaves an orphan run directory the next
  pass sweeps.  At no point is the only durable copy of a run at risk.
* **constitutionally quorum-guarded**: a run whose replication-ledger
  confirmations (:func:`~repro.service.replica.replica_confirmations`)
  number fewer than ``RetentionPolicy.quorum`` is never retired — not
  skipped-with-a-warning, but excluded from the plan itself, however
  far over budget the store is.  Deleting the primary copy of an
  un-replicated run would convert an eviction into data loss.

The archive format is deliberately boring: one zip per retirement pass
(members stored, not recompressed — containers are already npz), holding
``<run>/trace.npz`` byte-for-byte, ``<run>/entry.json`` (the catalog
entry), and a ``manifest.json`` with per-run crc32s so a future reader
can verify an archive without the store that wrote it.
"""

from __future__ import annotations

import io as _io
import json
import pathlib
import re
import time
import zipfile
import zlib
from dataclasses import dataclass, field

from repro.errors import RetentionError, StoreError, TraceWriteError
from repro.obs.instrumented import pipeline as _obs
from repro.service.replica import replica_confirmations
from repro.service.store import TraceStore

_ARCHIVE_RE = re.compile(r"^archive-(\d{6})\.zip$")

#: Fixed member timestamp: archives of identical runs are identical
#: bytes regardless of when retention ran.
_EPOCH = (1980, 1, 1, 0, 0, 0)


@dataclass(frozen=True)
class RetentionPolicy:
    """Budget knobs plus the quorum rule.  ``None`` disables a budget."""

    #: Retire runs committed longer ago than this many seconds.
    max_age_s: float | None = None
    #: Keep at most this many committed runs (oldest retire first).
    max_runs: int | None = None
    #: Keep committed containers within this many bytes total.
    max_total_bytes: int | None = None
    #: Replica confirmations a run needs before it may be retired.
    #: 0 = no replication required (single-store deployments).
    quorum: int = 0
    #: Where archives land (default: ``<store>/archive``).
    archive_dir: str | None = None

    def __post_init__(self) -> None:
        for name in ("max_age_s", "max_runs", "max_total_bytes"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise RetentionError(f"{name} must be >= 0, got {value}")
        if self.quorum < 0:
            raise RetentionError(f"quorum must be >= 0, got {self.quorum}")

    @property
    def bounded(self) -> bool:
        return any(
            v is not None
            for v in (self.max_age_s, self.max_runs, self.max_total_bytes)
        )


@dataclass
class RetentionPlan:
    """What a pass would do: who retires, who is protected, and why."""

    retire: list[str] = field(default_factory=list)
    #: Cold runs the quorum rule protects: run id → "quorum have/need".
    blocked: dict[str, str] = field(default_factory=dict)
    kept: int = 0
    total_bytes: int = 0

    def to_dict(self) -> dict:
        return {
            "retire": list(self.retire),
            "blocked": dict(self.blocked),
            "kept": self.kept,
            "total_bytes": self.total_bytes,
        }


def plan_retention(
    store: TraceStore,
    policy: RetentionPolicy,
    *,
    now: float | None = None,
    confirmations: dict[str, set[str]] | None = None,
) -> RetentionPlan:
    """Select the cold runs the budgets evict, minus the quorum-blocked.

    Coldness is commit order (the catalog is append-ordered): the oldest
    committed runs go first, which is also what ``committed_at`` says.
    Quorum-blocked runs are excluded *before* budget accounting rather
    than after — their bytes still count against the budget, but nothing
    else is evicted in their place, so a replication outage degrades to
    an over-budget store, never to data loss.
    """
    plan = RetentionPlan()
    entries = store.catalog()
    if not entries or not policy.bounded:
        plan.kept = len(entries)
        plan.total_bytes = sum(int(e.get("bytes") or 0) for e in entries.values())
        return plan
    now = time.time() if now is None else now
    order = list(entries)  # commit order, oldest first
    sizes = {r: int(entries[r].get("bytes") or 0) for r in order}
    plan.total_bytes = sum(sizes.values())

    cold: list[str] = []
    cold_set: set[str] = set()

    def mark(run: str) -> None:
        if run not in cold_set:
            cold_set.add(run)
            cold.append(run)

    if policy.max_age_s is not None:
        cutoff = now - policy.max_age_s
        for run in order:
            committed_at = entries[run].get("committed_at")
            if committed_at is not None and committed_at < cutoff:
                mark(run)
    if policy.max_runs is not None and len(order) > policy.max_runs:
        for run in order[: len(order) - policy.max_runs]:
            mark(run)
    if policy.max_total_bytes is not None:
        excess = plan.total_bytes - policy.max_total_bytes
        for run in order:
            if excess <= 0:
                break
            if run not in cold_set:
                excess -= sizes[run]
            mark(run)

    if policy.quorum > 0:
        if confirmations is None:
            confirmations = replica_confirmations(store)
        for run in cold:
            have = len(confirmations.get(run, ()))
            if have < policy.quorum:
                plan.blocked[run] = f"quorum {have}/{policy.quorum}"
        cold = [r for r in cold if r not in plan.blocked]
    plan.retire = cold
    plan.kept = len(entries) - len(cold)
    return plan


@dataclass
class RetireReport:
    """What :func:`retire_runs` actually did."""

    retired: list[str] = field(default_factory=list)
    blocked: dict[str, str] = field(default_factory=dict)
    swept: list[str] = field(default_factory=list)
    archive: str | None = None
    archived_bytes: int = 0
    dry_run: bool = False

    def to_dict(self) -> dict:
        return {
            "retired": list(self.retired),
            "blocked": dict(self.blocked),
            "swept": list(self.swept),
            "archive": self.archive,
            "archived_bytes": self.archived_bytes,
            "dry_run": self.dry_run,
        }


def _archive_dir(store: TraceStore, policy: RetentionPolicy) -> pathlib.Path:
    if policy.archive_dir is not None:
        return pathlib.Path(policy.archive_dir)
    return store.root / "archive"


def _next_archive_path(adir: pathlib.Path) -> pathlib.Path:
    n = 0
    if adir.is_dir():
        for p in adir.iterdir():
            m = _ARCHIVE_RE.match(p.name)
            if m:
                n = max(n, int(m.group(1)) + 1)
    return adir / f"archive-{n:06d}.zip"


def _sweep_orphans(store: TraceStore, report: RetireReport) -> None:
    """Redo a crashed pass's cleanup: tombstoned dirs still on disk.

    A run directory holding a committed container but no journal and no
    catalog entry can only be the leftover of a crash between a
    retirement tombstone and the directory removal (compaction removes
    the journal *after* its catalog line lands, so a mid-compaction
    crash always leaves the journal behind).
    """
    runs_dir = store.root / "runs"
    if not runs_dir.is_dir():
        return
    for d in sorted(runs_dir.iterdir()):
        run_id = d.name
        if (
            (d / "trace.npz").exists()
            and not (d / "journal").is_dir()
            and run_id not in store.catalog()
        ):
            store.remove_run_dir(run_id)
            report.swept.append(run_id)


def build_archive(store: TraceStore, runs: list[str]) -> bytes:
    """Serialize the archive zip for ``runs`` (deterministic bytes)."""
    manifest: dict = {"format": "repro-archive", "version": 1, "runs": {}}
    buf = _io.BytesIO()
    with zipfile.ZipFile(buf, "w", compression=zipfile.ZIP_STORED) as zf:
        for run_id in runs:
            entry = store.catalog()[run_id]
            try:
                data = store.container_path(run_id).read_bytes()
            except OSError as exc:
                raise StoreError(
                    f"cannot archive run {run_id!r}: container unreadable: "
                    f"{exc}"
                ) from exc
            zf.writestr(
                zipfile.ZipInfo(f"{run_id}/trace.npz", date_time=_EPOCH), data
            )
            zf.writestr(
                zipfile.ZipInfo(f"{run_id}/entry.json", date_time=_EPOCH),
                json.dumps(entry, sort_keys=True) + "\n",
            )
            manifest["runs"][run_id] = {
                "crc": zlib.crc32(data),
                "bytes": len(data),
                "entry": entry,
            }
        zf.writestr(
            zipfile.ZipInfo("manifest.json", date_time=_EPOCH),
            json.dumps(manifest, sort_keys=True, indent=2) + "\n",
        )
    return buf.getvalue()


def retire_runs(
    store: TraceStore,
    policy: RetentionPolicy,
    *,
    now: float | None = None,
    dry_run: bool = False,
) -> RetireReport:
    """Enforce ``policy``: archive the cold runs, then retire them.

    Order of durability (each step idempotent under a crash + redo):

    1. sweep orphan directories a crashed pass left behind;
    2. write the archive (tmp → fsync → rename → fsync dir) holding
       every retiring run's exact container bytes;
    3. per run: one fsync'd catalog tombstone (the commit point), then
       remove the run directory.

    Quorum-blocked runs are reported, never touched.
    """
    report = RetireReport(dry_run=dry_run)
    if not dry_run:
        _sweep_orphans(store, report)
    plan = plan_retention(store, policy, now=now)
    report.blocked = plan.blocked
    if dry_run or not plan.retire:
        report.retired = list(plan.retire)
        return report

    adir = _archive_dir(store, policy)
    data = build_archive(store, plan.retire)
    path = _next_archive_path(adir)
    tmp = path.with_name(path.name + ".tmp")
    try:
        store._io.makedirs(adir)
        store._io.write_bytes(tmp, data)
        store._io.fsync_path(tmp)
        store._io.replace(tmp, path)
        store._io.fsync_dir(adir)
    except OSError as exc:
        raise TraceWriteError(f"cannot write archive {path}: {exc}") from exc
    try:
        archive_ref = str(path.relative_to(store.root))
    except ValueError:
        archive_ref = str(path)
    report.archive = str(path)
    report.archived_bytes = len(data)
    ins = _obs()
    ins.svc_archived_bytes.inc(len(data))
    for run_id in plan.retire:
        store.tombstone_run(run_id, archive=archive_ref)
        store.remove_run_dir(run_id)
        report.retired.append(run_id)
        ins.svc_runs_retired.inc()
    return report


def read_archive(path: str | pathlib.Path) -> dict:
    """Load and verify an archive's manifest against its member bytes."""
    path = pathlib.Path(path)
    try:
        with zipfile.ZipFile(path) as zf:
            manifest = json.loads(zf.read("manifest.json"))
            for run_id, info in manifest.get("runs", {}).items():
                data = zf.read(f"{run_id}/trace.npz")
                if zlib.crc32(data) != info.get("crc"):
                    raise StoreError(
                        f"archive {path}: run {run_id!r} fails its "
                        "manifest crc32"
                    )
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise StoreError(f"cannot read archive {path}: {exc}") from exc
    return manifest


def extract_run(
    archive: str | pathlib.Path, run_id: str, out: str | pathlib.Path
) -> pathlib.Path:
    """Restore one archived run's container to ``out`` (verified)."""
    archive = pathlib.Path(archive)
    out = pathlib.Path(out)
    manifest = read_archive(archive)
    if run_id not in manifest.get("runs", {}):
        raise StoreError(
            f"archive {archive} does not hold run {run_id!r} "
            f"(runs: {', '.join(sorted(manifest.get('runs', {}))) or '(none)'})"
        )
    with zipfile.ZipFile(archive) as zf:
        data = zf.read(f"{run_id}/trace.npz")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_bytes(data)
    return out


__all__ = [
    "RetentionPolicy",
    "RetentionPlan",
    "RetireReport",
    "build_archive",
    "extract_run",
    "plan_retention",
    "read_archive",
    "retire_runs",
]
