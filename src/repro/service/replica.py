"""Store-to-store replication and anti-entropy scrub.

A primary :class:`~repro.service.store.TraceStore` replicates two kinds
of durable state to follower stores, over the same crc-covered framing
the ingest path uses:

* **sealed segments** of still-open runs stream across as they land, so
  a follower is a warm standby — losing the primary mid-run loses at
  most the segments not yet shipped, never anything committed;
* **catalog commits** ship as the committed container's *exact bytes*
  plus the primary's catalog entry, adopted verbatim on the follower
  (:meth:`~repro.service.store.TraceStore.adopt_container`).  Shipping
  bytes rather than re-compacting is what makes a replicated run
  byte-identical across stores — and what lets the scrub compare one
  crc32 per run instead of re-reading members.

The wire dialect is three frames.  ``SYNC_REQ {run, verify}`` asks a
follower for one run's durable state; ``SYNC_HAVE`` answers with the
follower's store id, the sealed seqs it holds, and (in verify mode) the
committed container's crc32.  ``REPLICATE`` ships either one sealed
segment (``op: segment``) or one bounded chunk of a committed container
(``op: container``); the follower answers with the ordinary ACK/NACK
vocabulary, so backpressure, storage trouble, and poison all reuse the
ingest path's shed accounting.  The replicator sends one frame at a
time and retries retryable NACKs with seeded, jittered exponential
backoff and a bounded resend budget — past the budget it raises
:class:`~repro.errors.ReplicationError` and the next round starts over
from the follower's have-set.

Every follower confirmation is appended to the primary's fsync'd
**replication ledger** (``replication.jsonl``), which is what the
retention engine consults for its quorum rule: a run with fewer ledger
confirmations than ``RetentionPolicy.quorum`` cannot be retired, ever.

:func:`scrub_local` is the same anti-entropy pass for two stores on one
filesystem (``repro sync --from DIR --to DIR``): it diffs catalogs and
per-segment crcs directly and repairs the destination from the source.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import json
import pathlib
import random
import zlib
from dataclasses import dataclass

from repro.core.durable import _seg_name, read_journal
from repro.errors import (
    CorruptionError,
    ProtocolError,
    ReplicationError,
    RunCommittedError,
    StoreError,
    TraceError,
    TraceWriteError,
)
from repro.obs.instrumented import pipeline as _obs
from repro.service.protocol import (
    KIND_ACK,
    KIND_AUTH,
    KIND_CHALLENGE,
    KIND_NACK,
    KIND_SYNC_HAVE,
    KIND_SYNC_REQ,
    KIND_REPLICATE,
    Frame,
    encode_frame,
)
from repro.service.sources import StreamSource, iter_journal_segments
from repro.service.store import TraceStore, validate_segment

_LEDGER_FILE = "replication.jsonl"

#: Default bound on one REPLICATE container chunk.  Well under the
#: frame ceiling; small enough that a resend after a shed is cheap.
CONTAINER_CHUNK_BYTES = 8 * 1024 * 1024


def auth_proof(token: bytes, nonce: str) -> str:
    """The shared-secret HMAC answer to a CHALLENGE nonce."""
    return hmac.new(token, nonce.encode("utf-8"), hashlib.sha256).hexdigest()


# -- the replication ledger (primary side) ----------------------------------


def record_replication(store: TraceStore, run_id: str, replica_id: str) -> None:
    """Durably note that ``replica_id`` holds ``run_id``'s container.

    Append-only and fsync'd like the catalog: the quorum rule must
    survive a primary restart, or retention could delete the only copy
    of a run whose replication the crash forgot.
    """
    line = (
        json.dumps({"run": run_id, "replica": replica_id}, sort_keys=True) + "\n"
    ).encode("utf-8")
    path = store.root / _LEDGER_FILE
    try:
        store._io.append_bytes(path, line)
        store._io.fsync_path(path)
    except OSError as exc:
        raise TraceWriteError(
            f"cannot record replication in {path}: {exc}"
        ) from exc


def replica_confirmations(store: TraceStore) -> dict[str, set[str]]:
    """run id → set of replica store ids confirmed in the ledger.

    Torn tails (crash mid-append) end the parse, exactly like the
    catalog: a half-written confirmation never counts toward quorum.
    """
    path = store.root / _LEDGER_FILE
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return {}
    except OSError as exc:
        raise StoreError(f"cannot read replication ledger {path}: {exc}") from exc
    out: dict[str, set[str]] = {}
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            rec = json.loads(line.decode("utf-8"))
            run, replica = rec["run"], rec["replica"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            break
        out.setdefault(run, set()).add(replica)
    return out


# -- follower side (runs inside the daemon's store task) --------------------


class FollowerSessions:
    """Per-daemon replication state: container staging + frame handling.

    Container chunks stage in memory per ``(connection, run)`` — nothing
    touches the follower's disk until the final chunk's crc proves the
    assembly, so a replicator dying mid-container leaves no partial
    state to clean up.  All store writes happen on the daemon's store
    task, through the store's swappable IO: the chaos suite kills the
    follower at every one of these operations.
    """

    def __init__(self, store: TraceStore) -> None:
        self.store = store
        self._staging: dict[tuple[int, str], bytearray] = {}

    def discard(self, conn) -> None:
        """Drop any half-staged containers of a closed connection."""
        key = id(conn)
        for conn_id, run in list(self._staging):
            if conn_id == key:
                del self._staging[(conn_id, run)]

    def on_sync_req(self, conn, frame: Frame) -> None:
        run_id = frame.meta.get("run")
        verify = bool(frame.meta.get("verify", False))
        try:
            committed = self.store.committed(run_id)
        except StoreError as exc:
            conn.send(Frame(KIND_NACK, {
                "op": "sync", "run": run_id, "reason": "poison",
                "retry": False, "credit": 0, "detail": str(exc),
            }))
            return
        meta = {
            "run": run_id,
            "store": self.store.store_id(),
            "committed": committed,
            "have": [],
            "crc": None,
        }
        if committed:
            if verify:
                meta["crc"] = self.store.container_crc(run_id)
        else:
            have = sorted(self.store.sealed_seqs(run_id))
            if verify and have:
                healthy = self._prune_corrupt(run_id, have)
                meta["pruned"] = len(have) - len(healthy)
                have = healthy
            meta["have"] = have
        conn.send(Frame(KIND_SYNC_HAVE, meta))

    def _prune_corrupt(self, run_id: str, have: list[int]) -> list[int]:
        """Verify sealed bytes against their journal crcs; drop liars.

        A dropped seq disappears from the have-set, so the replicator
        re-ships it through the ordinary admission path — that *is* the
        segment-level scrub repair.
        """
        jdir = self.store.journal_dir(run_id)
        healthy: list[int] = []
        records = {
            r["seq"]: r
            for r in read_journal(jdir)[0]
            if r.get("op") == "seal" and isinstance(r.get("seq"), int)
        }
        for seq in have:
            rec = records.get(seq)
            try:
                data = (jdir / _seg_name(seq)).read_bytes()
                validate_segment(rec, data)
            except (OSError, CorruptionError):
                self.store.drop_segment(run_id, seq)
                _obs().svc_scrub_repairs.inc()
                continue
            healthy.append(seq)
        return healthy

    def on_replicate(self, conn, frame: Frame) -> None:
        op = frame.meta.get("op")
        if op == "segment":
            self._on_segment(conn, frame)
        elif op == "container":
            self._on_container(conn, frame)
        else:
            raise ProtocolError(f"REPLICATE frame with unknown op {op!r}")

    def _on_segment(self, conn, frame: Frame) -> None:
        run_id = frame.meta.get("run")
        record = frame.meta.get("record")
        seq = record.get("seq") if isinstance(record, dict) else None
        reply = {"op": "segment", "run": run_id, "seq": seq}
        try:
            self.store.append_segment(run_id, record, frame.body)
        except RunCommittedError:
            # The follower already holds the committed run — a resend
            # raced a commit.  Not an error worth a repair round.
            conn.send(Frame(KIND_ACK, {**reply, "committed": True}))
            return
        except CorruptionError as exc:
            conn.send(Frame(KIND_NACK, {
                **reply, "reason": "poison", "retry": False, "credit": 0,
                "detail": str(exc),
            }))
            _obs().svc_nacks("poison").inc()
            return
        except (TraceWriteError, StoreError) as exc:
            _obs().svc_storage_errors.inc()
            conn.send(Frame(KIND_NACK, {
                **reply, "reason": "storage", "retry": True, "credit": 0,
                "detail": str(exc),
            }))
            _obs().svc_nacks("storage").inc()
            return
        conn.send(Frame(KIND_ACK, reply))

    def _on_container(self, conn, frame: Frame) -> None:
        meta = frame.meta
        run_id = meta.get("run")
        key = (id(conn), str(run_id))
        reply = {"op": "container", "run": run_id, "offset": meta.get("offset")}
        if meta.get("offset") == 0:
            self._staging[key] = bytearray()
        buf = self._staging.get(key)
        if buf is None or len(buf) != meta.get("offset"):
            # Lost a chunk (or never saw offset 0): make the replicator
            # start this container over rather than commit a splice.
            self._staging.pop(key, None)
            conn.send(Frame(KIND_NACK, {
                **reply, "reason": "poison", "retry": False, "credit": 0,
                "detail": "container chunks arrived out of order",
            }))
            return
        buf.extend(frame.body)
        if not meta.get("last", False):
            conn.send(Frame(KIND_ACK, reply))
            return
        data = bytes(self._staging.pop(key))
        entry = meta.get("entry")
        if (
            len(data) != meta.get("size")
            or zlib.crc32(data) != meta.get("crc")
            or not isinstance(entry, dict)
        ):
            conn.send(Frame(KIND_NACK, {
                **reply, "reason": "poison", "retry": False, "credit": 0,
                "detail": "assembled container failed its crc32/size check",
            }))
            _obs().svc_nacks("poison").inc()
            return
        repaired = self.store.committed(run_id)
        try:
            self.store.adopt_container(run_id, entry, data)
        except (TraceWriteError, StoreError) as exc:
            _obs().svc_storage_errors.inc()
            conn.send(Frame(KIND_NACK, {
                **reply, "reason": "storage", "retry": True, "credit": 0,
                "detail": str(exc),
            }))
            _obs().svc_nacks("storage").inc()
            return
        if repaired:
            _obs().svc_scrub_repairs.inc()
        conn.send(Frame(KIND_ACK, {
            "op": "commit", "run": run_id, "crc": meta.get("crc"),
            "store": self.store.store_id(),
        }))


# -- primary side -----------------------------------------------------------


@dataclass
class SyncReport:
    """What one anti-entropy round did, in repair-accounting detail."""

    follower: str | None = None
    runs: int = 0
    confirmed: int = 0
    containers_shipped: int = 0
    containers_repaired: int = 0
    segments_shipped: int = 0
    segments_pruned: int = 0
    resends: int = 0
    #: Committed-on-primary runs the follower still lacks after this
    #: round (0 after any complete round — the replication lag).
    lag: int = 0

    def to_dict(self) -> dict:
        return {
            "follower": self.follower,
            "runs": self.runs,
            "confirmed": self.confirmed,
            "containers_shipped": self.containers_shipped,
            "containers_repaired": self.containers_repaired,
            "segments_shipped": self.segments_shipped,
            "segments_pruned": self.segments_pruned,
            "resends": self.resends,
            "lag": self.lag,
        }


async def sync_once(
    store: TraceStore,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    verify: bool = False,
    token: bytes | None = None,
    runs: list[str] | None = None,
    chunk_bytes: int = CONTAINER_CHUNK_BYTES,
    reply_timeout: float = 30.0,
    backoff_s: float = 0.01,
    max_backoff_s: float = 1.0,
    max_resends: int = 8,
    seed: int | None = None,
    ledger: bool = True,
) -> SyncReport:
    """Drive one full primary→follower sync over an open connection.

    Walks every committed run (catalog order) and every open run of
    ``store``, asks the follower what it holds, and ships the
    difference.  ``verify=True`` is the anti-entropy scrub: the follower
    re-checks its bytes against their crcs, and committed containers are
    compared crc-to-crc and re-shipped on mismatch.  Raises
    :class:`~repro.errors.ReplicationError` (carrying ``.report``) when
    the follower refuses permanently or keeps shedding past
    ``max_resends``; the connection dying raises the underlying
    :class:`~repro.errors.TraceError` — both leave the follower
    consistent, and the next round resumes from its have-set.
    """
    report = SyncReport()
    src = StreamSource(reader)
    rng = random.Random(seed)
    ins = _obs()

    def fail(message: str) -> ReplicationError:
        exc = ReplicationError(f"replication sync: {message}")
        exc.report = report
        return exc

    async def reply() -> Frame:
        try:
            return await asyncio.wait_for(src.__anext__(), reply_timeout)
        except StopAsyncIteration:
            raise fail("follower closed the connection mid-sync") from None
        except asyncio.TimeoutError:
            raise fail(
                f"no reply from follower within {reply_timeout:g}s"
            ) from None

    authed = False

    async def call(frame: Frame) -> Frame:
        """One request/response, absorbing auth and retryable NACKs."""
        nonlocal authed
        backoff = backoff_s
        resends = 0
        while True:
            writer.write(encode_frame(frame))
            await writer.drain()
            answer = await reply()
            if answer.kind == KIND_CHALLENGE and not authed:
                if token is None:
                    raise fail(
                        "follower requires authentication and no token "
                        "was given"
                    )
                writer.write(encode_frame(Frame(
                    KIND_AUTH, {"proof": auth_proof(token, answer.meta.get("nonce", ""))}
                )))
                await writer.drain()
                authed = True
                answer = await reply()
            if answer.kind == KIND_NACK and answer.meta.get("retry", False):
                resends += 1
                report.resends += 1
                ins.svc_replication_resends.inc()
                if resends > max_resends:
                    raise fail(
                        f"follower shed {resends} resends "
                        f"({answer.meta.get('reason')}); giving up"
                    )
                # Jittered exponential backoff: simultaneous replicators
                # must not hammer a struggling follower in lockstep.
                await asyncio.sleep(backoff * (0.5 + rng.random()))
                backoff = min(backoff * 2, max_backoff_s)
                continue
            return answer

    def confirm(run_id: str, replica_id: str | None) -> None:
        report.confirmed += 1
        if ledger and replica_id:
            record_replication(store, run_id, replica_id)

    committed = list(store.catalog()) if runs is None else []
    open_runs = store.open_runs() if runs is None else []
    targets = runs if runs is not None else committed + [
        r for r in open_runs if r not in set(committed)
    ]

    for run_id in targets:
        report.runs += 1
        have_frame = await call(Frame(KIND_SYNC_REQ, {"run": run_id, "verify": verify}))
        if have_frame.kind == KIND_NACK:
            raise fail(
                f"follower refused sync of run {run_id!r}: "
                f"{have_frame.meta.get('reason')}"
            )
        if have_frame.kind != KIND_SYNC_HAVE:
            raise ProtocolError(
                f"expected SYNC_HAVE, got {have_frame.kind_name}"
            )
        follower_id = have_frame.meta.get("store")
        report.follower = follower_id
        report.segments_pruned += int(have_frame.meta.get("pruned", 0) or 0)

        if store.committed(run_id):
            entry = store.catalog()[run_id]
            if have_frame.meta.get("committed"):
                if not verify:
                    confirm(run_id, follower_id)
                    continue
                want = store.container_crc(run_id)
                if have_frame.meta.get("crc") == want and want is not None:
                    confirm(run_id, follower_id)
                    continue
                report.containers_repaired += 1
                ins.svc_scrub_repairs.inc()
            await _ship_container(
                store, run_id, entry, call, chunk_bytes, fail
            )
            report.containers_shipped += 1
            ins.svc_replicated_runs.inc()
            confirm(run_id, follower_id)
        else:
            have = set(have_frame.meta.get("have", []))
            jdir = store.journal_dir(run_id)
            if not jdir.is_dir():
                continue
            for record, data in iter_journal_segments(jdir):
                if record.get("seq") in have:
                    continue
                answer = await call(Frame(
                    KIND_REPLICATE,
                    {"op": "segment", "run": run_id, "record": record},
                    data,
                ))
                if answer.kind == KIND_NACK:
                    raise fail(
                        f"follower refused segment {record.get('seq')} of "
                        f"run {run_id!r}: {answer.meta.get('reason')}"
                    )
                if answer.kind != KIND_ACK:
                    raise ProtocolError(
                        f"expected ACK for a segment, got {answer.kind_name}"
                    )
                if answer.meta.get("committed"):
                    break  # follower already holds the committed run
                report.segments_shipped += 1
                ins.svc_replicated_segments.inc()

    if runs is None and report.follower is not None and ledger:
        confirmed = replica_confirmations(store)
        report.lag = sum(
            1
            for r in store.catalog()
            if report.follower not in confirmed.get(r, set())
        )
    return report


async def _ship_container(store, run_id, entry, call, chunk_bytes, fail):
    """Ship one committed container's exact bytes in bounded chunks."""
    path = store.container_path(run_id)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise fail(
            f"cannot read committed container for run {run_id!r}: {exc}"
        ) from exc
    crc = zlib.crc32(data)
    size = len(data)
    offset = 0
    while True:
        chunk = data[offset : offset + chunk_bytes]
        last = offset + len(chunk) >= size
        meta = {
            "op": "container",
            "run": run_id,
            "offset": offset,
            "size": size,
            "crc": crc,
            "last": last,
        }
        if last:
            meta["entry"] = entry
        answer = await call(Frame(KIND_REPLICATE, meta, chunk))
        if answer.kind == KIND_NACK:
            raise fail(
                f"follower refused container of run {run_id!r}: "
                f"{answer.meta.get('reason')} "
                f"({answer.meta.get('detail', '')})"
            )
        if answer.kind != KIND_ACK:
            raise ProtocolError(
                f"expected ACK for a container chunk, got {answer.kind_name}"
            )
        if last:
            return
        offset += len(chunk)


class Replicator:
    """The primary daemon's per-follower replication task.

    Sleeps until kicked (a run committed) or the sync interval elapses,
    then drives :func:`sync_once` over a fresh connection.  Every
    ``scrub_every``-th round runs in verify mode — the periodic
    anti-entropy scrub.  Failures (follower down, mid-sync death) are
    absorbed: the lag they leave behind is published through ``on_lag``
    and the next round repairs it from the follower's have-set.
    """

    def __init__(
        self,
        store: TraceStore,
        addr: str,
        *,
        interval_s: float = 30.0,
        scrub_every: int = 8,
        token: bytes | None = None,
        seed: int | None = None,
        connect=None,
        on_lag=None,
        reply_timeout: float = 30.0,
    ) -> None:
        self.store = store
        self.addr = addr
        self.interval_s = interval_s
        self.scrub_every = max(1, scrub_every)
        self.token = token
        self.seed = seed
        self._connect = connect
        self._on_lag = on_lag
        self.reply_timeout = reply_timeout
        self._kicked = asyncio.Event()
        self._stopping = False
        self._rounds = 0
        self.last_report: SyncReport | None = None
        self.last_error: str | None = None

    def kick(self) -> None:
        """Wake the task now (a run just committed on the primary)."""
        self._kicked.set()

    async def stop(self) -> None:
        self._stopping = True
        self._kicked.set()

    async def sync(self, *, verify: bool = False) -> SyncReport:
        """One connect-sync-disconnect round (used by the task and tests)."""
        if self._connect is not None:
            reader, writer = await self._connect()
        else:
            from repro.service.client import open_transport

            reader, writer = await open_transport(self.addr)
        try:
            report = await sync_once(
                self.store,
                reader,
                writer,
                verify=verify,
                token=self.token,
                seed=self.seed,
                reply_timeout=self.reply_timeout,
            )
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport teardown
                pass
        self.last_report = report
        self.last_error = None
        return report

    async def run(self) -> None:
        """Task body: sync on kick or interval until stopped."""
        while not self._stopping:
            self._rounds += 1
            verify = (self._rounds % self.scrub_every) == 0
            lag = None
            try:
                report = await self.sync(verify=verify)
                lag = report.lag
            except (TraceError, OSError) as exc:
                # Follower unreachable or died mid-sync: every committed
                # run it lacks is lag until the next successful round.
                self.last_error = str(exc)
                lag = len(self.store.catalog())
            if self._on_lag is not None and lag is not None:
                self._on_lag(self.addr, lag)
            if self._stopping:
                break
            self._kicked.clear()
            try:
                await asyncio.wait_for(self._kicked.wait(), self.interval_s)
            except asyncio.TimeoutError:
                pass


# -- local (same-filesystem) scrub ------------------------------------------


def scrub_local(
    src_root: str | pathlib.Path,
    dst_root: str | pathlib.Path,
    *,
    verify: bool = True,
    ledger: bool = True,
) -> SyncReport:
    """Anti-entropy pass between two stores on one filesystem.

    The offline half of ``repro sync``: diff the catalogs, verify
    per-run container crcs and per-segment crcs, and repair ``dst`` from
    ``src`` — missing runs, corrupted containers (bit flips, truncation,
    deletion), and missing or corrupted sealed segments of open runs.
    """
    src = TraceStore(src_root)
    dst = TraceStore(dst_root)
    report = SyncReport(follower=dst.store_id())
    ins = _obs()

    for run_id, entry in src.catalog().items():
        report.runs += 1
        want = src.container_crc(run_id)
        if want is None:
            raise StoreError(
                f"primary container for run {run_id!r} is unreadable; "
                "refusing to propagate a hole"
            )
        if dst.committed(run_id):
            if not verify:
                report.confirmed += 1
                continue
            if dst.container_crc(run_id) == want:
                report.confirmed += 1
                continue
            report.containers_repaired += 1
            ins.svc_scrub_repairs.inc()
        data = src.container_path(run_id).read_bytes()
        dst.adopt_container(run_id, entry, data)
        report.containers_shipped += 1
        ins.svc_replicated_runs.inc()
        report.confirmed += 1
        if ledger:
            record_replication(src, run_id, report.follower)

    for run_id in src.open_runs():
        if dst.committed(run_id):
            continue
        report.runs += 1
        have = dst.sealed_seqs(run_id)
        if verify and have:
            jdir = dst.journal_dir(run_id)
            records = {
                r["seq"]: r
                for r in read_journal(jdir)[0]
                if r.get("op") == "seal" and isinstance(r.get("seq"), int)
            }
            for seq in sorted(have):
                try:
                    validate_segment(
                        records.get(seq), (jdir / _seg_name(seq)).read_bytes()
                    )
                except (OSError, CorruptionError):
                    dst.drop_segment(run_id, seq)
                    have.discard(seq)
                    report.segments_pruned += 1
                    ins.svc_scrub_repairs.inc()
        for record, data in iter_journal_segments(src.journal_dir(run_id)):
            if record.get("seq") in have:
                continue
            dst.append_segment(run_id, record, data)
            report.segments_shipped += 1
            ins.svc_replicated_segments.inc()
    return report


__all__ = [
    "CONTAINER_CHUNK_BYTES",
    "FollowerSessions",
    "Replicator",
    "SyncReport",
    "auth_proof",
    "record_replication",
    "replica_confirmations",
    "scrub_local",
    "sync_once",
]
