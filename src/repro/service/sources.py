"""Pluggable segment sources feeding the shard protocol.

The daemon consumes *frames*; producers hold their trace data in one of
three shapes.  Each source turns its shape into the common wire unit —
the sealed-segment ``(record, npz bytes)`` pair of
:mod:`repro.core.durable` — without re-encoding trace content:

* :func:`iter_journal_segments` walks a recording journal directory
  (a crashed or still-open durable capture) in seal order;
* :func:`journal_from_container` re-segments a *finalized* container
  back into journal form, so finished runs ship over the same protocol
  as crash leftovers;
* :class:`MemorySource` is an asyncio queue of frames (tests, in-process
  producers);
* :class:`StreamSource` decodes frames off any asyncio byte stream.
"""

from __future__ import annotations

import asyncio
import pathlib

from repro.core.durable import DurableTraceWriter, read_journal
from repro.core.options import IngestOptions
from repro.core.tracefile import TraceReader
from repro.errors import TraceError
from repro.service.protocol import MAX_FRAME_BYTES, Frame, FrameDecoder


def iter_journal_segments(jdir: str | pathlib.Path):
    """Yield ``(record, data)`` for every sealed segment, in seal order.

    ``record`` is the journal's seal line (already carrying seq, kind,
    crc and extent metadata); ``data`` is the raw npz segment file.  A
    torn journal tail is expected after a producer crash and simply ends
    the iteration; a sealed segment whose file is missing raises
    :class:`~repro.errors.TraceError` — the journal promised bytes the
    producer can no longer supply, which the caller must surface rather
    than silently ship a shorter run.
    """
    jdir = pathlib.Path(jdir)
    records, _torn = read_journal(jdir)
    for rec in records:
        if rec.get("op") != "seal":
            continue
        seg = jdir / rec["file"]
        try:
            data = seg.read_bytes()
        except OSError as exc:
            raise TraceError(
                f"journal {jdir} sealed {rec['file']} but the segment "
                f"cannot be read: {exc}"
            ) from exc
        yield rec, data


def journal_from_container(
    container: str | pathlib.Path,
    workdir: str | pathlib.Path,
    *,
    options: IngestOptions | None = None,
) -> pathlib.Path:
    """Re-segment a finalized container into a journal directory.

    Returns the journal directory (under ``workdir``), laid out exactly
    as a durable capture would have left it *before* finalizing — which
    is what makes a finished run and a crashed capture identical on the
    wire.  ``options.chunk_size`` bounds each sample segment.
    """
    container = pathlib.Path(container)
    opts = options if options is not None else IngestOptions()
    workdir = pathlib.Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    target = workdir / container.name
    with TraceReader(container) as reader:
        writer = DurableTraceWriter(
            target, reader.symtab, dict(reader.meta), compress=False
        )
        for core in reader.sample_cores:
            for chunk in reader.iter_sample_chunks(core, opts.chunk_size):
                writer.append_samples(core, chunk)
        for core in reader.switch_cores:
            writer.append_switches(core, reader.switches(core))
    # Deliberately not finalized: the journal *is* the product here.
    return writer.dir


class MemorySource:
    """An in-memory frame source: a bounded asyncio queue with EOF.

    The producer side calls :meth:`put` / :meth:`close`; the consumer
    iterates ``async for frame in source``.  Used by tests and
    in-process producers to drive the daemon without a transport.
    """

    _EOF = object()

    def __init__(self, maxsize: int = 64) -> None:
        self._q: asyncio.Queue = asyncio.Queue(maxsize=maxsize)

    async def put(self, frame: Frame) -> None:
        await self._q.put(frame)

    async def close(self) -> None:
        await self._q.put(self._EOF)

    def __aiter__(self):
        return self

    async def __anext__(self) -> Frame:
        item = await self._q.get()
        if item is self._EOF:
            raise StopAsyncIteration
        return item


class StreamSource:
    """Decode frames off an asyncio byte stream (socket, pipe).

    Wraps a :class:`~repro.service.protocol.FrameDecoder`; EOF mid-frame
    raises :class:`~repro.errors.ProtocolError` exactly like any other
    truncation, so a producer dying mid-segment can never half-deliver.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        read_size: int = 256 * 1024,
    ) -> None:
        self._reader = reader
        self._decoder = FrameDecoder(max_frame_bytes)
        self._read_size = read_size
        self._pending: list[Frame] = []

    def __aiter__(self):
        return self

    async def __anext__(self) -> Frame:
        while not self._pending:
            data = await self._reader.read(self._read_size)
            if not data:
                self._decoder.finish()  # raises if the stream died mid-frame
                raise StopAsyncIteration
            self._pending = self._decoder.feed(data)
        return self._pending.pop(0)


__all__ = [
    "MemorySource",
    "StreamSource",
    "iter_journal_segments",
    "journal_from_container",
]
