"""Ablation: double-buffered PEBS drains (Section III-E future work).

The prototype dumps each full PEBS buffer synchronously, stalling the
traced program for the whole copy; the paper lists double buffering as
the obvious optimisation and leaves it for future work.  Implemented
here: on buffer-full the hardware flips to a spare buffer (cheap) and
the helper drains asynchronously.  With a small buffer (frequent drains)
the latency overhead drop is clearly visible in the GNET-measured
latency; the sample stream itself is identical.
"""

from __future__ import annotations

import pytest

from repro.session import trace
from repro.acl.app import ACLApp, ACLAppConfig
from repro.acl.packets import make_test_stream
from repro.analysis.reporting import format_table
from repro.machine.config import MachineSpec
from repro.machine.machine import Machine
from repro.runtime.scheduler import Scheduler

#: Small buffer so drains happen many times per run.
SPEC = MachineSpec(pebs_buffer_records=64)
PER_TYPE = 60
RESET = 8_000


def run(paper_classifier, double: bool | None):
    """double=None means untraced (the L* control)."""
    app = ACLApp(
        [], make_test_stream(PER_TYPE), config=ACLAppConfig(), classifier=paper_classifier
    )
    if double is None:
        Scheduler(Machine(spec=SPEC, n_cores=3), app.threads()).run()
        return app, None
    session = trace(
        app,
        sample_cores=[ACLApp.ACL_CORE],
        reset_value=RESET,
        spec=SPEC,
        double_buffered=double,
    )
    return app, session.units[ACLApp.ACL_CORE]


@pytest.fixture(scope="module")
def runs(paper_classifier):
    control, _ = run(paper_classifier, None)
    single_app, single_unit = run(paper_classifier, False)
    double_app, double_unit = run(paper_classifier, True)
    return control, (single_app, single_unit), (double_app, double_unit)


def test_ablation_double_buffering(runs, report, benchmark, paper_classifier):
    control, (single_app, single_unit), (double_app, double_unit) = runs
    l_star = control.tester.mean_latency_us()
    l_single = single_app.tester.mean_latency_us()
    l_double = double_app.tester.mean_latency_us()
    rows = [
        ["untraced (L*)", f"{l_star:.2f}", "-", "-"],
        [
            "single buffer",
            f"{l_single:.2f}",
            f"{l_single - l_star:+.2f}",
            str(single_unit.drains),
        ],
        [
            "double buffered",
            f"{l_double:.2f}",
            f"{l_double - l_star:+.2f}",
            str(double_unit.drains),
        ],
    ]
    saved = (l_single - l_double) / (l_single - l_star)
    text = format_table(
        ["configuration", "mean latency (us)", "overhead (us)", "drains"],
        rows,
        title=(
            "Ablation: double-buffered PEBS drains "
            f"(64-record buffer, R={RESET}).  Total overhead cut by "
            f"{100 * saved:.0f}% — nearly all of the *drain* cost, but "
            "the per-sample microcode assist dominates at this rate, so "
            "the paper's deferred optimisation is second-order; "
            f"spare-buffer stalls: {double_unit.stall_cycles} cycles"
        ),
    )
    report("ablation_double_buffering", text)

    # Essentially the same sample stream (counts differ only through the
    # timeline feedback: fewer drain stalls -> shorter queue spins ->
    # slightly fewer spin-loop samples).
    assert single_unit.sample_count == pytest.approx(
        double_unit.sample_count, rel=0.03
    )
    assert l_star < l_double < l_single
    # Double buffering removes most of the drain share of the overhead
    # (~13% of the total here — the 250 ns/sample assist dominates).
    assert 0.05 < saved < 0.3
    # At this sampling rate the async drain keeps up: no stalls.
    assert double_unit.stall_cycles == 0

    benchmark.pedantic(
        lambda: run(paper_classifier, True), rounds=1, iterations=1
    )
