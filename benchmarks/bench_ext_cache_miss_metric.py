"""Section V-D: sampling a cache-miss event instead of retired uops.

Program PEBS with an LLC-miss event: a sample fires every R misses, so
the number of samples mapped to {function, data-item} measures how many
misses that function incurred for that item.  On the sample app with
real CPU caches, the cold query's f3/f2 must show many miss samples
while warm repeats show (almost) none — per-item cache-warmth made
visible, exactly the paper's example of "the number of cache misses
incurred by f1 fluctuates".
"""

from __future__ import annotations

import pytest

from repro.session import trace
from repro.analysis.reporting import format_table
from repro.machine.events import HWEvent
from repro.workloads.sampleapp import SampleApp, SampleAppConfig

MISS_RESET = 8  # one sample per 8 LLC misses


@pytest.fixture(scope="module")
def miss_trace():
    app = SampleApp(SampleAppConfig(use_cpu_caches=True))
    session = trace(
        app,
        sample_cores=[SampleApp.WORKER_CORE],
        reset_value=MISS_RESET,
        event=HWEvent.MEM_LOAD_RETIRED_L3_MISS,
        with_caches=True,
    )
    return app, session.trace_for(SampleApp.WORKER_CORE)


def test_ext_cache_miss_metric(miss_trace, report, benchmark):
    app, t = miss_trace
    rows = []
    miss_samples = {}
    for q in app.config.queries:
        per_fn = {}
        for fn in ("f2_cache_lookup", "f3_compute"):
            est = t.estimate(q.qid, fn)
            per_fn[fn] = est.n_samples if est else 0
        miss_samples[q.qid] = per_fn
        rows.append(
            [f"#{q.qid}", q.n]
            + [str(per_fn[fn]) for fn in ("f2_cache_lookup", "f3_compute")]
        )
    text = format_table(
        ["query", "n", "f2 miss samples (xR=8)", "f3 miss samples (xR=8)"],
        rows,
        title="Section V-D: per-item per-function LLC-miss samples "
        "(PEBS event = MEM_LOAD_RETIRED.L3_MISS, R=8)",
    )
    report("ext_cache_miss_metric", text)

    # Cold query 1 misses heavily in both f2 (cold tag reads) and f3
    # (fresh result writes for 3000 points); warm n=3 repeats (2, 4, 8)
    # barely miss at all.
    assert miss_samples[1]["f2_cache_lookup"] >= 10
    assert miss_samples[1]["f3_compute"] >= 10
    cold_total = sum(miss_samples[1].values())
    for warm in (2, 4, 8):
        assert sum(miss_samples[warm].values()) <= cold_total // 4
    # Query 5 (2000 new points) also shows fresh misses.
    assert miss_samples[5]["f3_compute"] >= 5

    benchmark.pedantic(
        lambda: trace(
            SampleApp(SampleAppConfig(use_cpu_caches=True)),
            sample_cores=[SampleApp.WORKER_CORE],
            reset_value=MISS_RESET,
            event=HWEvent.MEM_LOAD_RETIRED_L3_MISS,
            with_caches=True,
        ),
        rounds=1,
        iterations=1,
    )
