"""Fig 2: per-request elapsed time of NGINX functions.

Paper setup: NGINX serving the 612 B index page, 300 K requests in
44.8 s -> 149 us per request; per-request function time estimated as
``149us * c_f / c_a`` from sampled cycle counts.  Finding: *many
functions take less than 4 us*, so instrumenting every function is
hopeless.  We reproduce the estimator and the finding.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.core.profilelib import build_profile
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.pebs import PEBSConfig
from repro.runtime.scheduler import Scheduler
from repro.workloads.nginxmodel import NginxModel, NginxModelConfig


@pytest.fixture(scope="module")
def nginx_run():
    model = NginxModel(NginxModelConfig(n_requests=300))
    machine = Machine(n_cores=1)
    unit = machine.attach_pebs(0, PEBSConfig(HWEvent.UOPS_RETIRED_ALL, 8000))
    Scheduler(machine, model.threads()).run()
    return model, machine, unit


def test_fig02_nginx_function_times(nginx_run, report, benchmark):
    model, machine, unit = nginx_run
    total = machine.core(0).clock
    samples = unit.finalize()
    prof = benchmark.pedantic(
        lambda: build_profile(samples, model.symtab, total), rounds=3, iterations=1
    )
    n_req = model.config.n_requests
    freq = model.config.freq_ghz
    rows = []
    under_4us = 0
    for r in prof:
        us = r.est_cycles / n_req / freq / 1_000
        if r.name in ("ngx_worker_process_cycle", "__mark"):
            continue
        if us < 4.0:
            under_4us += 1
        rows.append([r.name, f"{us:.2f}", f"{100 * r.fraction:.1f}%"])
    text = format_table(
        ["function", "per-request us", "share"],
        rows,
        title=(
            f"Fig 2: per-request elapsed time of NGINX functions "
            f"(mean request {model.mean_request_us():.1f} us; "
            f"{under_4us}/{len(rows)} functions < 4 us)"
        ),
    )
    report("fig02_nginx_functions", text)

    # Paper's findings: ~149 us mean; many functions below 4 us.
    assert model.mean_request_us() == pytest.approx(149.0, rel=0.1)
    assert under_4us >= len(rows) // 2
