"""Extension: streaming sharded ingest vs the one-shot offline baseline.

The paper integrates PEBS samples and switch logs offline after dumping
them to an SSD (Section III-E), and its data-rate analysis (Section
IV-C3) puts the raw stream at 106-270 MB/s *per core* — a trace of any
useful length cannot be loaded whole.  This bench measures the
chunked-container ingest pipeline (``repro.core.streaming``) against the
pre-existing one-shot path (``load_trace`` + per-core ``integrate`` +
``merge_traces``) on a multi-core-shard trace, sweeping chunk size and
worker count, and cross-checks that every configuration reproduces the
one-shot result bit for bit.

The host here has a single CPU, so the speedup comes from the pipeline
itself — array-native window pairing and object-free shard transport —
not from parallelism; the worker rows quantify what the pool costs when
there are no spare cores to feed it.

Sizes are env-tunable so CI can smoke-test the bench quickly:
``REPRO_BENCH_STREAM_ITEMS`` (data-items per core, default 80000),
``REPRO_BENCH_STREAM_SPI`` (samples per item, default 5),
``REPRO_BENCH_STREAM_CORES`` (cores, default 4).  The >=2x acceptance
assertions only run at full scale — at smoke sizes the constant pool
overhead dominates and the ratios are meaningless.
"""

from __future__ import annotations

import gc
import os
import statistics
import time

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.hybrid import integrate, merge_traces, traces_equal
from repro.core.options import IngestOptions
from repro.core.records import SwitchRecords
from repro.core.shardpool import use_threads
from repro.core.streaming import StreamingIntegrator, ingest_trace
from repro.core.symbols import SymbolTable
from repro.core.tracefile import TraceReader, load_trace, save_trace
from repro.machine.pebs import SampleArrays
from repro.obs.metrics import MetricsRegistry
from repro.runtime.actions import SwitchKind

N_ITEMS = int(os.environ.get("REPRO_BENCH_STREAM_ITEMS", "80000"))
SAMPLES_PER_ITEM = int(os.environ.get("REPRO_BENCH_STREAM_SPI", "5"))
N_CORES = int(os.environ.get("REPRO_BENCH_STREAM_CORES", "4"))
FULL_SCALE = N_ITEMS >= 40_000  # acceptance assertions need real work

CHUNK_SIZES = (8_192, 65_536, 262_144)
WORKER_COUNTS = (1, 2, 4)
SAMPLE_BYTES = 24  # three int64 columns per stored sample

SYMTAB = SymbolTable.from_ranges(
    {f"fn_{i}": (i * 100, (i + 1) * 100) for i in range(8)}
)


def _make_core(core: int, n_items: int, spi: int, seed: int):
    """One core's shard: n_items back-to-back windows, spi samples each."""
    rng = np.random.default_rng(seed)
    gaps = rng.integers(50, 200, size=n_items)
    durs = rng.integers(400, 900, size=n_items)
    starts = np.cumsum(gaps + durs) - durs
    ends = starts + durs
    items = core * n_items + np.arange(1, n_items + 1)
    n2 = 2 * n_items
    ts2 = np.empty(n2, dtype=np.int64)
    ts2[0::2], ts2[1::2] = starts, ends
    item2 = np.empty(n2, dtype=np.int64)
    item2[0::2], item2[1::2] = items, items
    kinds = [SwitchKind.ITEM_START, SwitchKind.ITEM_END] * n_items
    switches = SwitchRecords.from_arrays(core, ts2, item2, kinds)
    ts = (starts[:, None] + rng.integers(0, 400, size=(n_items, spi))).ravel()
    ts.sort(kind="stable")
    ip = rng.integers(0, 800, size=n_items * spi)
    samples = SampleArrays(
        ts=ts.astype(np.int64),
        ip=ip.astype(np.int64),
        tag=np.full(n_items * spi, -1, dtype=np.int64),
    )
    return samples, switches


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    samples, switches = {}, {}
    for core in range(N_CORES):
        samples[core], switches[core] = _make_core(
            core, N_ITEMS, SAMPLES_PER_ITEM, seed=1234 + core
        )
    path = tmp_path_factory.mktemp("stream_bench") / "ingest.npz"
    # Uncompressed chunked v2: at the paper's data rates zlib would be
    # the shared bottleneck of every configuration under test.
    save_trace(path, samples, switches, SYMTAB, chunk_size=65_536, compress=False)
    return path


def _one_shot(path):
    tf = load_trace(path)
    per = {c: tf.integrate(c) for c in tf.sample_cores}
    return merge_traces([per[c] for c in sorted(per)])


def _timed(fn, repeat=3) -> float:
    walls = []
    for _ in range(repeat):
        gc.collect()  # each run starts from the same heap state
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls)


def test_streaming_ingest_throughput(trace_path, report, bench_point, benchmark):
    n_samples = N_CORES * N_ITEMS * SAMPLES_PER_ITEM
    mb = n_samples * SAMPLE_BYTES / 1e6

    # Timings flow through the telemetry registry: the table below, the
    # appended trajectory point, and any scrape of this registry all read
    # the same gauges.
    reg = MetricsRegistry()

    def record_wall(config: str, wall: float) -> None:
        reg.gauge(
            "repro_bench_streaming_wall_seconds",
            "Median wall time of one bench configuration",
            config=config,
        ).set(wall)
        reg.gauge(
            "repro_bench_streaming_mb_per_second",
            "Sample-column throughput of one bench configuration",
            config=config,
        ).set(mb / wall)

    # Correctness first, untimed: every configuration must reproduce the
    # one-shot integration bit for bit.
    reference = _one_shot(trace_path)
    for workers in (1, max(WORKER_COUNTS)):
        res = ingest_trace(
            trace_path, options=IngestOptions(chunk_size=65_536, workers=workers)
        )
        assert traces_equal(res.trace, reference)
    del res, reference
    gc.collect()

    base_wall = _timed(lambda: _one_shot(trace_path))
    record_wall("one-shot", base_wall)

    rows = [
        [
            "one-shot load_trace+integrate",
            f"{base_wall:.3f}",
            f"{mb / base_wall:.1f}",
            f"{n_samples / base_wall / 1e6:.2f}",
            "1.00x",
        ]
    ]
    chunk_walls = {}
    for chunk_size in CHUNK_SIZES:
        wall = _timed(
            lambda cs=chunk_size: ingest_trace(
                trace_path, options=IngestOptions(chunk_size=cs, workers=1)
            )
        )
        chunk_walls[chunk_size] = wall
        record_wall(f"chunk={chunk_size},workers=1", wall)
        rows.append(
            [
                f"stream chunk={chunk_size} workers=1",
                f"{wall:.3f}",
                f"{mb / wall:.1f}",
                f"{n_samples / wall / 1e6:.2f}",
                f"{base_wall / wall:.2f}x",
            ]
        )
    worker_walls = {1: chunk_walls[65_536]}
    for workers in WORKER_COUNTS[1:]:
        wall = _timed(
            lambda w=workers: ingest_trace(
                trace_path, options=IngestOptions(chunk_size=65_536, workers=w)
            )
        )
        worker_walls[workers] = wall
        pool = "thread" if use_threads("auto") else "process"
        record_wall(f"chunk=65536,workers={workers}", wall)
        rows.append(
            [
                f"stream chunk=65536 workers={workers} ({pool})",
                f"{wall:.3f}",
                f"{mb / wall:.1f}",
                f"{n_samples / wall / 1e6:.2f}",
                f"{base_wall / wall:.2f}x",
            ]
        )
    # One explicit process-pool row: on a single-CPU host this documents
    # what fork + cross-process shard transport costs (auto avoids it).
    proc_wall = _timed(
        lambda: ingest_trace(
            trace_path,
            options=IngestOptions(chunk_size=65_536, workers=4, pool="process"),
        )
    )
    record_wall("chunk=65536,workers=4,pool=process", proc_wall)
    rows.append(
        [
            "stream chunk=65536 workers=4 (process)",
            f"{proc_wall:.3f}",
            f"{mb / proc_wall:.1f}",
            f"{n_samples / proc_wall / 1e6:.2f}",
            f"{base_wall / proc_wall:.2f}x",
        ]
    )

    text = format_table(
        ["configuration", "wall (s)", "MB/s", "Msamples/s", "speedup"],
        rows,
        title=(
            f"streaming sharded ingest vs one-shot baseline: {N_CORES} cores x "
            f"{N_ITEMS} items x {SAMPLES_PER_ITEM} samples ({mb:.0f} MB of "
            f"sample columns; host has {os.cpu_count()} CPU(s), so worker rows "
            "measure pool overhead, not parallel speedup)"
        ),
    )
    report("ext_streaming_ingest", text)

    # The trajectory point is derived from the registry gauges, not from
    # the local variables — what lands in BENCH_streaming.json is exactly
    # what a telemetry scrape of this run would have reported.
    walls = {
        dict(g.labels)["config"]: g.value
        for g in reg.collect()
        if g.name == "repro_bench_streaming_wall_seconds"
    }
    bench_point(
        "streaming",
        {
            "bench": "ext_streaming_ingest",
            "n_cores": N_CORES,
            "n_items": N_ITEMS,
            "samples_per_item": SAMPLES_PER_ITEM,
            "sample_mb": round(mb, 3),
            "full_scale": FULL_SCALE,
            "host_cpus": os.cpu_count(),
            "wall_seconds": walls,
        },
    )

    if FULL_SCALE:
        assert base_wall / worker_walls[1] >= 2.0
        assert base_wall / worker_walls[4] >= 2.0

    # Representative hot op for pytest-benchmark: one chunked shard pass.
    with TraceReader(trace_path) as reader:
        core = reader.sample_cores[0]
        chunks = list(reader.iter_sample_chunks(core, 65_536))
        cols = reader.switch_window_columns(core)

    def one_shard():
        integ = StreamingIntegrator(SYMTAB, cols)
        for chunk in chunks:
            integ.feed(chunk)
        return integ.finalize()

    benchmark(one_shard)


def test_streaming_matches_one_shot_per_core(trace_path):
    """Per-core shard equality, through the reader (not just merged)."""
    res = ingest_trace(
        trace_path, options=IngestOptions(chunk_size=8_192, workers=1)
    )
    tf = load_trace(trace_path)
    for core in tf.sample_cores:
        assert traces_equal(res.per_core[core], tf.integrate(core))
