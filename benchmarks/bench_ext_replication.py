"""Extension: asynchronous replication under the <5% ingest budget.

Replication only earns its keep if a primary with a follower attached
ingests at (essentially) the speed of one without: the Replicator ships
sealed segments *after* the ingest path has ACKed them, so its cost must
stay off the producer's critical path.  This bench drives the same
4-producer push against a bare daemon and against one replicating to an
in-process follower over a unix socket, and gates the ingest-wall ratio
at the 5% budget.  The replication drain itself — commit to follower
convergence, bytes verified identical — is timed for the trajectory,
without a gate: it is asynchronous by design.

Sizes are env-tunable so CI can smoke-test the bench quickly:
``REPRO_BENCH_REPL_ITEMS`` (data-items per core, default 20000),
``REPRO_BENCH_REPL_SPI`` (samples per item, default 4),
``REPRO_BENCH_REPL_REPEATS`` (best-of repeats per config, default 3).
Acceptance assertions (every run commits, replication never sheds a
producer, the follower converges byte-identically) hold at every scale.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from benchmarks.bench_ext_streaming_ingest import SYMTAB, _make_core
from repro.analysis.reporting import format_table
from repro.core.options import IngestOptions
from repro.core.tracefile import save_trace
from repro.service.client import push_segments
from repro.service.daemon import DaemonConfig, IngestDaemon
from repro.service.sources import iter_journal_segments, journal_from_container
from repro.service.store import TraceStore

N_ITEMS = int(os.environ.get("REPRO_BENCH_REPL_ITEMS", "20000"))
SAMPLES_PER_ITEM = int(os.environ.get("REPRO_BENCH_REPL_SPI", "4"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPL_REPEATS", "3"))
N_CORES = 2
N_PRODUCERS = 4
BUDGET = 0.05
#: Timer-noise headroom: at smoke scale one descheduling blip can swamp
#: the (near-zero) true cost, exactly as in the depgraph overhead gate.
NOISE = 0.05


@pytest.fixture(scope="module")
def segments(tmp_path_factory):
    samples, switches = {}, {}
    for core in range(N_CORES):
        samples[core], switches[core] = _make_core(
            core, N_ITEMS, SAMPLES_PER_ITEM, seed=177 + core
        )
    work = tmp_path_factory.mktemp("repl_bench")
    path = work / "trace.npz"
    # Small container chunks => many wire segments: replication cost is
    # per-segment too (frame encode, follower seal chain), so segment
    # count is the denominator here just as in the ingest bench.
    save_trace(path, samples, switches, SYMTAB, chunk_size=4096, compress=False)
    jdir = journal_from_container(path, work / "journal", options=IngestOptions())
    return list(iter_journal_segments(jdir))


def drive(segments, root, *, replicate: bool):
    """Push N_PRODUCERS runs; returns (ingest_wall, drain_wall, reports).

    With ``replicate=True`` a follower daemon serves a unix socket in
    ``root`` and the primary replicates to it (short interval so commit
    kicks overlap the remaining producers' ingest, the worst case for
    the budget); ``drain_wall`` then covers last-ACK to full follower
    convergence, byte-verified.
    """
    run_ids = [f"run-{i}" for i in range(N_PRODUCERS)]

    async def scenario():
        follower = None
        config = DaemonConfig()
        if replicate:
            sock = root / "follower.sock"
            follower = IngestDaemon(
                TraceStore(root / "follower"), DaemonConfig()
            )
            await follower.start()
            await follower.serve_unix(str(sock))
            config = DaemonConfig(
                replicate_to=(f"unix:{sock}",), sync_interval_s=0.05
            )
        store = TraceStore(root / "primary", options=config.options)
        daemon = IngestDaemon(store, config)
        await daemon.start()
        try:
            pushes = []
            for run_id in run_ids:
                reader, writer = await daemon.connect()
                pushes.append(
                    push_segments(
                        reader,
                        writer,
                        run_id,
                        segments,
                        nack_backoff_s=0.001,
                        reply_timeout=120.0,
                    )
                )
            t0 = time.perf_counter()
            reports = await asyncio.gather(*pushes)
            ingest_wall = time.perf_counter() - t0

            drain_wall = 0.0
            if replicate:
                fstore = follower.store
                t0 = time.perf_counter()
                while not all(fstore.committed(r) for r in run_ids):
                    await asyncio.sleep(0.005)
                drain_wall = time.perf_counter() - t0
                for run_id in run_ids:
                    assert (
                        fstore.container_path(run_id).read_bytes()
                        == store.container_path(run_id).read_bytes()
                    ), f"follower copy of {run_id} not byte-identical"
        finally:
            await daemon.shutdown()
            if follower is not None:
                await follower.shutdown()
        return ingest_wall, drain_wall, reports

    return asyncio.run(scenario())


def _best(segments, tmp_path, tag: str, *, replicate: bool):
    """Best-of-REPEATS ingest wall (fresh roots: re-push is a no-op)."""
    best = None
    for i in range(REPEATS):
        ingest, drain, reports = drive(
            segments, tmp_path / f"{tag}{i}", replicate=replicate
        )
        assert all(r.committed for r in reports)
        # Replication must never cost a producer a shed: the follower
        # traffic rides its own connection, not the admission queue.
        assert sum(r.nacks_total for r in reports) == 0
        if best is None or ingest < best[0]:
            best = (ingest, drain)
    return best


def test_replication_overhead_within_budget(
    segments, tmp_path, report, bench_point, benchmark
):
    n_segs = len(segments)
    base_wall, _ = _best(segments, tmp_path, "base", replicate=False)
    repl_wall, drain_wall = _best(segments, tmp_path, "repl", replicate=True)
    ratio = (repl_wall - base_wall) / base_wall

    rows = [
        [
            "bare daemon",
            f"{base_wall:.3f}",
            f"{N_PRODUCERS * n_segs / base_wall:.0f}",
            "-",
        ],
        [
            "replicating to 1 follower",
            f"{repl_wall:.3f}",
            f"{N_PRODUCERS * n_segs / repl_wall:.0f}",
            f"{ratio:+.2%}",
        ],
        ["drain to converged follower", f"{drain_wall:.3f}", "-", "async"],
    ]
    report(
        "ext_replication",
        format_table(
            ["configuration", "wall s", "segments/s", "ingest overhead"],
            rows,
            title=(
                f"replication overhead: {N_PRODUCERS} producers, "
                f"{n_segs} segments/run (budget {BUDGET:.0%})"
            ),
        ),
    )
    bench_point(
        "replication",
        {
            "scale": {
                "items_per_core": N_ITEMS,
                "samples_per_item": SAMPLES_PER_ITEM,
                "cores": N_CORES,
                "producers": N_PRODUCERS,
            },
            "segments_per_run": n_segs,
            "ingest_wall_s": {
                "bare": round(base_wall, 4),
                "replicated": round(repl_wall, 4),
            },
            "overhead": round(ratio, 4),
            "drain_to_converged_s": round(drain_wall, 4),
            "budget": BUDGET,
        },
    )
    assert ratio < BUDGET + NOISE, (ratio, base_wall, repl_wall)

    # The hot operation for the timing history: one replicated push to
    # convergence (fresh roots per call — a committed run re-pushed, or
    # an already-converged follower, would time nothing).
    counter = iter(range(10**6))
    benchmark(
        lambda: drive(
            segments, tmp_path / f"rep{next(counter)}", replicate=True
        )
    )
