"""Section V-C: reset-value <-> interval linearity and overhead prediction.

The paper verifies (1) that sample intervals are strongly linear in the
reset value with small deviations, so the interval is predictable from
R, and (2) via ref [6] that the extra execution time is predictable
from the number of samples taken, almost regardless of workload.  Both
are reproduced: a linear fit over the ACL-style workload achieves
R^2 > 0.99, and an overhead model fitted on one workload predicts
another workload's overhead within a few percent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.intervals import interval_stats
from repro.analysis.linearity import fit_interval_linearity
from repro.analysis.reporting import format_table
from repro.core.overhead import OverheadModel, reset_value_for_budget
from repro.machine.events import HWEvent
from repro.machine.machine import Machine
from repro.machine.pebs import PEBSConfig
from repro.runtime.scheduler import Scheduler
from repro.workloads.spec import SpecKernel

RESET_VALUES = (4_000, 8_000, 12_000, 16_000, 20_000, 24_000)
DURATION = 6_000_000


def run(kernel_name: str, reset: int | None):
    kernel = SpecKernel(kernel_name, duration_cycles=DURATION)
    machine = Machine(n_cores=1)
    unit = None
    if reset is not None:
        unit = machine.attach_pebs(0, PEBSConfig(HWEvent.UOPS_RETIRED_ALL, reset))
    Scheduler(machine, kernel.threads()).run()
    return machine.core(0).clock, unit


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for name in ("bzip2", "gcc"):
        base, _ = run(name, None)
        rows = []
        for reset in RESET_VALUES:
            clock, unit = run(name, reset)
            iv = interval_stats(unit.finalize())
            rows.append((reset, iv.mean_cycles, unit.sample_count, clock - base))
        out[name] = rows
    return out


def test_ext_linearity_and_overhead_prediction(sweep, report, benchmark):
    bzip2 = sweep["bzip2"]
    resets = np.asarray([r for r, _, _, _ in bzip2], dtype=np.float64)
    intervals = np.asarray([iv for _, iv, _, _ in bzip2])
    fit = fit_interval_linearity(resets, intervals)

    # Overhead model fitted on bzip2, validated on gcc (ref [6]'s
    # "almost regardless of application characteristics").
    n_b = np.asarray([n for _, _, n, _ in bzip2], dtype=np.float64)
    extra_b = np.asarray([e for _, _, _, e in bzip2], dtype=np.float64)
    model = OverheadModel.fit(n_b, extra_b)
    gcc = sweep["gcc"]
    n_g = np.asarray([n for _, _, n, _ in gcc], dtype=np.float64)
    extra_g = np.asarray([e for _, _, _, e in gcc], dtype=np.float64)
    cross_r2 = model.r_squared(n_g, extra_g)

    rows = [
        [str(r), f"{iv:.0f}", f"{fit.predict(r):.0f}", str(n), f"{e}"]
        for r, iv, n, e in bzip2
    ]
    text = (
        format_table(
            ["reset value", "interval (cy)", "linear fit (cy)", "samples", "extra cycles"],
            rows,
            title=(
                f"Section V-C: interval~R linearity (R^2 = {fit.r_squared:.5f}); "
                f"overhead model {model.per_sample_cycles:.0f} cy/sample "
                f"(true assist 750), cross-workload R^2 = {cross_r2:.4f}"
            ),
        )
    )
    report("ext_linearity", text)

    assert fit.r_squared > 0.999
    assert model.per_sample_cycles == pytest.approx(750, rel=0.05)
    assert cross_r2 > 0.99
    # Budget inversion: a 5% budget choice keeps measured overhead <= 5%.
    rate = 2.2  # bzip2 events/cycle
    r_budget = reset_value_for_budget(rate, model.per_sample_cycles, 0.05)
    clock, unit = run("bzip2", r_budget)
    base, _ = run("bzip2", None)
    assert (clock - base) / base <= 0.055

    benchmark(lambda: fit_interval_linearity(resets, intervals))
