"""Extension: online invariant checking under the <5% overhead budget.

The anomaly checkers only earn their keep if they are cheap enough to
leave on: the paper's whole premise is that always-on capture must not
perturb the system it measures, and PR 3 held the telemetry registry to
a 5% budget for the same reason.  This bench times both checked paths
against their unchecked twins —

* **capture**: a full scheduler run of the pipeline workload, with the
  idle-core wait probe and shed listener armed vs. absent;
* **ingest**: streaming ingest of a clean synthetic container, with the
  mark-gap / rate-collapse / coverage bundle built vs. skipped —

and records the ratios into ``BENCH_anomaly.json``.  The acceptance
assertions gate both ratios at the 5% budget (with headroom for timer
noise at smoke scale; the clean-path checker work is O(1) per chunk).

Sizes are env-tunable for CI smoke: ``REPRO_BENCH_ANOMALY_ITEMS``
(capture items, default 96), ``REPRO_BENCH_ANOMALY_WINDOWS`` (ingest
windows, default 20000).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.options import IngestOptions
from repro.core.records import SwitchRecords
from repro.core.streaming import ingest_trace
from repro.core.symbols import SymbolTable
from repro.core.tracefile import save_trace
from repro.interference.targets import PipelineApp
from repro.machine.pebs import SampleArrays
from repro.obs.anomaly import AnomalyConfig
from repro.runtime.actions import SwitchKind
from repro.session import trace

N_ITEMS = int(os.environ.get("REPRO_BENCH_ANOMALY_ITEMS", "96"))
N_WINDOWS = int(os.environ.get("REPRO_BENCH_ANOMALY_WINDOWS", "20000"))
SAMPLES_PER_WINDOW = 4
BUDGET = 0.05
#: Timer-noise headroom: at smoke scale one scheduler run is a few ms,
#: so a single descheduling blip can swamp the (near-zero) true cost.
NOISE = 0.03


def _best(fn, n=7) -> float:
    walls = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return min(walls)


def _synthetic_container(path) -> None:
    symtab = SymbolTable.from_ranges({"rx": (0x1000, 0x2000), "tx": (0x2000, 0x3000)})
    rec = SwitchRecords(0)
    ts, ip = [], []
    t = 1_000
    for w in range(N_WINDOWS):
        rec.append(t, w + 1, SwitchKind.ITEM_START)
        rec.append(t + 900, w + 1, SwitchKind.ITEM_END)
        for s in range(SAMPLES_PER_WINDOW):
            ts.append(t + 100 + s * 200)
            ip.append(0x1000 + 0x1000 * (s % 2))
        t += 1_200
    samples = SampleArrays(
        ts=np.asarray(ts, dtype=np.int64),
        ip=np.asarray(ip, dtype=np.int64),
        tag=np.full(len(ts), -1, dtype=np.int64),
    )
    save_trace(path, {0: samples}, {0: rec}, symtab, chunk_size=8_192)


def test_anomaly_overhead_within_budget(tmp_path, report, bench_point):
    # -- capture path ------------------------------------------------------
    def capture(cfg):
        trace(PipelineApp(n_items=N_ITEMS), anomaly=cfg)

    capture(None)  # warm
    cap_off = _best(lambda: capture(None))
    anomaly_on = AnomalyConfig(enabled=True)
    cap_on = _best(lambda: capture(anomaly_on))
    cap_ratio = (cap_on - cap_off) / cap_off

    # -- ingest path -------------------------------------------------------
    container = tmp_path / "bench.npz"
    _synthetic_container(container)

    def ingest(cfg):
        res = ingest_trace(
            container, options=IngestOptions(workers=1, anomaly=cfg)
        )
        if cfg.enabled:
            assert res.anomalies.total == 0  # clean container stays clean
        return res

    ingest(AnomalyConfig())  # warm
    ing_off = _best(lambda: ingest(AnomalyConfig()))
    ing_on = _best(lambda: ingest(anomaly_on))
    ing_ratio = (ing_on - ing_off) / ing_off

    rows = [
        ["capture", f"{cap_off * 1e3:.2f}", f"{cap_on * 1e3:.2f}", f"{cap_ratio:+.2%}"],
        ["ingest", f"{ing_off * 1e3:.2f}", f"{ing_on * 1e3:.2f}", f"{ing_ratio:+.2%}"],
    ]
    report(
        "ext_anomaly_overhead",
        format_table(
            ["path", "off (ms)", "on (ms)", "overhead"],
            rows,
            title=(
                f"online invariant checking overhead "
                f"({N_ITEMS} capture items, {N_WINDOWS} ingest windows; "
                f"budget {BUDGET:.0%})"
            ),
        ),
    )
    bench_point(
        "anomaly",
        {
            "scale": {"capture_items": N_ITEMS, "ingest_windows": N_WINDOWS},
            "capture": {
                "off_ms": round(cap_off * 1e3, 3),
                "on_ms": round(cap_on * 1e3, 3),
                "overhead": round(cap_ratio, 4),
            },
            "ingest": {
                "off_ms": round(ing_off * 1e3, 3),
                "on_ms": round(ing_on * 1e3, 3),
                "overhead": round(ing_ratio, 4),
            },
            "budget": BUDGET,
        },
    )
    assert cap_ratio < BUDGET + NOISE, (cap_ratio, cap_off, cap_on)
    assert ing_ratio < BUDGET + NOISE, (ing_ratio, ing_off, ing_on)
