"""Ablation: the trie count amplifies the ACL fluctuation.

Section IV-C1, design fact (2): the per-packet cost difference between
key-walk depths "is amplified by the number of tries because the same is
applicable to every trie".  We hold the rule set fixed and vary only the
partitioning: vanilla DPDK's 8 tries vs intermediate counts vs the
paper's 247 — the A-to-C latency gap must grow roughly linearly with
the trie count.
"""

from __future__ import annotations

import pytest

from repro.acl.app import ACLApp, ACLAppConfig
from repro.acl.packets import make_test_stream
from repro.acl.rules import paper_ruleset
from repro.acl.trie import MultiTrieClassifier
from repro.analysis.reporting import format_table
from repro.machine.machine import Machine
from repro.runtime.scheduler import Scheduler

PER_TYPE = 20


def gap_for(classifier) -> tuple[float, float, float]:
    app = ACLApp(
        [],
        make_test_stream(PER_TYPE),
        config=ACLAppConfig(),
        classifier=classifier,
    )
    Scheduler(Machine(n_cores=3), app.threads()).run()
    a = app.tester.mean_latency_us("A")
    c = app.tester.mean_latency_us("C")
    return a, c, a - c


@pytest.fixture(scope="module")
def sweep(paper_classifier):
    rules = paper_ruleset()
    out = {}
    for label, clf in (
        ("8 (vanilla)", MultiTrieClassifier(rules, max_tries=8)),
        ("32", MultiTrieClassifier(rules, max_rules_per_trie=1563)),
        ("96", MultiTrieClassifier(rules, max_rules_per_trie=521)),
        ("247 (paper)", paper_classifier),
    ):
        out[(label, clf.n_tries)] = gap_for(clf)
    return out


def test_ablation_trie_count_amplifies_fluctuation(sweep, report, benchmark):
    rows = []
    for (label, n_tries), (a, c, gap) in sweep.items():
        rows.append([label, str(n_tries), f"{a:.2f}", f"{c:.2f}", f"{gap:.2f}"])
    text = format_table(
        ["configuration", "tries", "type A (us)", "type C (us)", "A - C gap (us)"],
        rows,
        title="Ablation: A-to-C latency gap vs trie count (same 50 000 rules)",
    )
    report("ablation_trie_count", text)

    gaps = {n: g for (_, n), (_, _, g) in sweep.items()}
    ns = sorted(gaps)
    # Gap grows monotonically with trie count...
    for a, b in zip(ns, ns[1:]):
        assert gaps[b] > gaps[a]
    # ... and roughly linearly (within 25%).
    assert gaps[247] / gaps[8] == pytest.approx(247 / 8, rel=0.25)
    # Vanilla DPDK's 8 tries make the fluctuation sub-microsecond — the
    # paper needed the enlarged trie limit to surface it clearly.
    assert gaps[8] < 1.0

    benchmark.pedantic(
        lambda: gap_for(
            MultiTrieClassifier(paper_ruleset()[:1000], max_rules_per_trie=125)
        ),
        rounds=1,
        iterations=1,
    )
